"""Tests for trace (de)serialisation (repro.trace.reader)."""

import json

import pytest

from repro.trace.cfg import generate_program
from repro.trace.oracle import run_oracle
from repro.trace.reader import load_trace, save_trace
from tests.conftest import tiny_spec


class TestSpecFormat:
    def test_roundtrip_regenerates_identical_stream(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "trace.json"
        save_trace(path, spec, program_seed=7, oracle_seed=11, n_instructions=2_000)
        program, stream = load_trace(path)

        expected_program = generate_program(spec, 7)
        expected = run_oracle(expected_program, 2_000, 11)
        assert stream.total_instructions == expected.total_instructions
        assert [(s.start, s.n_instrs) for s in stream.segments] == [
            (s.start, s.n_instrs) for s in expected.segments
        ]
        assert set(program.branches) == set(expected_program.branches)

    def test_file_is_small(self, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(path, tiny_spec(), 7, 11, 1_000_000)
        assert path.stat().st_size < 4_096


class TestSegmentDump:
    def test_roundtrip_with_segments(self, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(path, tiny_spec(), 7, 11, 2_000, include_segments=True)
        program, stream = load_trace(path)
        expected = run_oracle(generate_program(tiny_spec(), 7), 2_000, 11)
        assert stream.total_instructions == expected.total_instructions
        assert stream.total_branches == expected.total_branches
        assert stream.total_taken == expected.total_taken
        got = [(s.start, s.n_instrs, s.next_start, s.branches) for s in stream.segments]
        want = [(s.start, s.n_instrs, s.next_start, s.branches) for s in expected.segments]
        assert got == want


class TestCatalogueSegmentDump:
    def test_roundtrip_across_full_catalogue(self, tmp_path):
        """Every catalogue workload's segment dump round-trips exactly."""
        from repro.trace.workloads import default_workloads

        for wl in default_workloads():
            path = tmp_path / f"{wl.name}.json"
            save_trace(
                path,
                wl.program_spec,
                wl.program_seed,
                wl.oracle_seed,
                1_500,
                include_segments=True,
            )
            _program, stream = load_trace(path)
            expected = run_oracle(
                generate_program(wl.program_spec, wl.program_seed), 1_500, wl.oracle_seed
            )
            got = [(s.start, s.n_instrs, s.next_start, s.branches) for s in stream.segments]
            want = [(s.start, s.n_instrs, s.next_start, s.branches) for s in expected.segments]
            assert got == want, wl.name
            assert stream.total_instructions == expected.total_instructions, wl.name


class TestValidation:
    def test_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 0}))
        with pytest.raises(ValueError):
            load_trace(path)

    def test_newer_version_names_both_versions(self, tmp_path):
        from repro.trace.reader import FORMAT_VERSION

        path = tmp_path / "future.json"
        path.write_text(json.dumps({"format_version": FORMAT_VERSION + 1}))
        with pytest.raises(ValueError) as excinfo:
            load_trace(path)
        message = str(excinfo.value)
        assert f"version {FORMAT_VERSION + 1}" in message
        assert f"up to version {FORMAT_VERSION}" in message
        assert "upgrade" in message

    def test_rejects_unknown_spec_field(self, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(path, tiny_spec(), 7, 11, 100)
        doc = json.loads(path.read_text())
        doc["program_spec"]["mystery_knob"] = 1
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError):
            load_trace(path)
