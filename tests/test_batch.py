"""Lockstep batch simulation: bit-identity, fallback, and grouping.

The whole batching layer rests on one claim: a batched run is
bit-identical to the scalar run of the same configuration (the stepping
kernel is generated from the same schedule as the scalar kernel).  These
tests pin that claim across every registered prefetcher and direction
predictor, for mixed-config batches, and through the sweep runner's
transparent batch grouping.
"""

import pytest

from repro.common.params import SimParams
from repro.common.telemetry import Telemetry, TelemetryConfig
from repro.core.batch import batchable, run_batch, simulate_batch
from repro.core.simulator import Simulator, simulate
from repro.experiments.runner import (
    _plan_batches,
    batch_width,
    batching_enabled,
    clear_cache,
    run_matrix,
)
from repro.prefetch import prefetcher_names
from repro.trace.workloads import make_trace

WORKLOAD = "srv_web"


def fast(**kwargs):
    kwargs.setdefault("warmup_instructions", 500)
    kwargs.setdefault("sim_instructions", 2_000)
    return SimParams(**kwargs)


def identity(a, b):
    """Full bit-identity between two RunResults."""
    assert a.cycles == b.cycles
    assert a.instructions == b.instructions
    assert a.ipc == b.ipc
    assert a.stats.as_dict() == b.stats.as_dict()


@pytest.fixture(autouse=True)
def isolated(monkeypatch, tmp_path):
    """Fresh memo + private disk cache directory per test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_cache()
    yield
    clear_cache()


class TestBatchableFallback:
    def test_plain_config_is_batchable(self):
        ok, reason = batchable(fast())
        assert ok and reason == ""

    def test_invariant_checking_forces_scalar(self):
        ok, reason = batchable(fast(check_invariants=True))
        assert not ok and "invariant" in reason

    def test_telemetry_forces_scalar(self):
        tel = Telemetry(TelemetryConfig())
        ok, reason = batchable(fast(), telemetry=tel)
        assert not ok and "telemetry" in reason

    def test_simulate_batch_rejects_non_batchable(self):
        with pytest.raises(ValueError, match="not batchable"):
            simulate_batch(WORKLOAD, [fast(check_invariants=True)])

    def test_simulate_batch_rejects_mixed_lengths(self):
        with pytest.raises(ValueError, match="shared trace length"):
            simulate_batch(WORKLOAD, [fast(), fast(warmup_instructions=1_000)])


class TestBatchedScalarIdentity:
    @pytest.mark.parametrize("prefetcher", ["none", "perfect", *prefetcher_names()])
    def test_every_prefetcher(self, prefetcher):
        params = fast(prefetcher=prefetcher)
        scalar = simulate(WORKLOAD, params)
        for result in simulate_batch(WORKLOAD, [params, params]):
            identity(result, scalar)

    @pytest.mark.parametrize("direction", ["tage", "gshare", "perceptron", "perfect"])
    def test_every_direction_predictor(self, direction):
        params = fast().with_branch(
            direction_kind=direction, perfect_direction=direction == "perfect"
        )
        scalar = simulate(WORKLOAD, params)
        for result in simulate_batch(WORKLOAD, [params, params]):
            identity(result, scalar)

    def test_mixed_config_batch(self):
        # Members need not share a configuration -- each instance steps
        # its own specialized kernel; only the trace is shared.
        variants = [
            fast(),
            fast().with_frontend(ftq_entries=4),
            fast(prefetcher="djolt"),
            fast().with_branch(perfect_btb=True),
        ]
        batched = simulate_batch(WORKLOAD, variants)
        for params, result in zip(variants, batched):
            identity(result, simulate(WORKLOAD, params))

    def test_functional_warmup_batch(self):
        params = fast(warmup_mode="functional")
        scalar = simulate(WORKLOAD, params)
        for result in simulate_batch(WORKLOAD, [params, params]):
            identity(result, scalar)

    def test_run_batch_preserves_input_order(self):
        params_a, params_b = fast(), fast().with_frontend(ftq_entries=4)
        n = 2_500
        program, stream = make_trace(WORKLOAD, n)
        sims = [Simulator(p, program, stream) for p in (params_a, params_b)]
        results = run_batch(sims, [WORKLOAD, WORKLOAD])
        identity(results[0], simulate(WORKLOAD, params_a))
        identity(results[1], simulate(WORKLOAD, params_b))
        assert results[0].workload == WORKLOAD

    def test_run_batch_name_count_mismatch(self):
        with pytest.raises(ValueError, match="one workload name"):
            run_batch([], ["extra"])


class TestRunnerBatching:
    def test_env_toggle(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        assert batching_enabled()
        for off in ("0", "false", "no"):
            monkeypatch.setenv("REPRO_BATCH", off)
            assert not batching_enabled()
        monkeypatch.setenv("REPRO_BATCH", "1")
        assert batching_enabled()

    def test_width_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_WIDTH", raising=False)
        assert batch_width() == 8
        monkeypatch.setenv("REPRO_BATCH_WIDTH", "3")
        assert batch_width() == 3
        monkeypatch.setenv("REPRO_BATCH_WIDTH", "1")
        assert batch_width() == 2  # lockstep needs at least two members

    def test_plan_batches_groups_by_workload_and_length(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "1")
        monkeypatch.setenv("REPRO_BATCH_WIDTH", "2")
        # Pin the interpreted kernel: under "auto" the typed-eligible
        # points below would all be kept scalar (see the next test),
        # which is not the grouping behaviour under test here.
        monkeypatch.setenv("REPRO_KERNEL", "interp")
        pending = {
            "a1": ("srv_web", fast()),
            "a2": ("srv_web", fast().with_frontend(ftq_entries=4)),
            "a3": ("srv_web", fast().with_frontend(ftq_entries=8)),
            "b1": ("srv_db", fast()),
            "len": ("srv_web", fast(warmup_instructions=1_000)),
            "chk": ("srv_web", fast(check_invariants=True)),
        }
        batches, singles = _plan_batches(pending)
        # a1+a2 batch; a3 overflows width 2 into a singleton; b1 and
        # "len" have no same-(workload, length) partner; "chk" is not
        # batchable.
        assert batches == [["a1", "a2"]]
        assert sorted(singles) == ["a3", "b1", "chk", "len"]

    def test_plan_batches_prefers_typed_scalar(self, monkeypatch):
        # Under the default "auto" kernel, typed-eligible points skip
        # batching entirely: the typed scalar path is faster than the
        # batched interpreted path.  Non-eligible points still batch.
        monkeypatch.setenv("REPRO_BATCH", "1")
        monkeypatch.setenv("REPRO_BATCH_WIDTH", "2")
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        pending = {
            "t1": ("srv_web", fast()),
            "t2": ("srv_web", fast().with_frontend(ftq_entries=4)),
            "p1": ("srv_web", fast(prefetcher="djolt")),
            "p2": ("srv_web", fast(prefetcher="fnl_mma")),
        }
        batches, singles = _plan_batches(pending)
        assert batches == [["p1", "p2"]]
        assert sorted(singles) == ["t1", "t2"]

    def test_plan_batches_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "0")
        batches, singles = _plan_batches({"a1": ("srv_web", fast())})
        assert batches == [] and singles == ["a1"]

    def test_run_matrix_batched_matches_scalar(self, monkeypatch):
        configs = {
            "base": fast(),
            "small_ftq": fast().with_frontend(ftq_entries=4),
            "djolt": fast(prefetcher="djolt"),
        }
        workloads = ["srv_web", "srv_db"]

        def flatten(results):
            return {
                (label, wl): (r.instructions, r.cycles, r.stats.as_dict())
                for label, row in results.items()
                for wl, r in row.items()
            }

        monkeypatch.setenv("REPRO_BATCH", "0")
        scalar = flatten(run_matrix(configs, workloads, jobs=1))
        clear_cache()
        monkeypatch.setenv("REPRO_CACHE_DIR", "")  # keep caches apart
        monkeypatch.setenv("REPRO_CACHE", "0")
        monkeypatch.setenv("REPRO_BATCH", "1")
        monkeypatch.setenv("REPRO_BATCH_WIDTH", "2")
        batched = flatten(run_matrix(configs, workloads, jobs=1))
        assert batched == scalar


class TestCheckIntegration:
    def test_check_workload_batched_clean(self):
        from repro.check import check_workload_batched

        report = check_workload_batched(WORKLOAD, fast())
        assert report.workload == WORKLOAD
        assert report.branches_checked > 0
        assert report.committed_instructions >= 2_500

    def test_check_cli_batched(self, capsys):
        from repro.cli import main

        rc = main([
            "check", "--batched",
            "--workloads", WORKLOAD,
            "--warmup", "500",
            "--instructions", "2000",
        ])
        assert rc == 0
        assert "(batched)" in capsys.readouterr().out
