"""Tests for the persistent content-addressed result cache."""

import dataclasses
import pickle

import pytest

from repro.common.params import SimParams
from repro.common.stats import StatSet
from repro.core.metrics import RunResult
from repro.experiments.cache import (
    SIM_SCHEMA_VERSION,
    ResultCache,
    cache_enabled,
    default_cache_dir,
    params_fingerprint,
    run_key,
    workload_fingerprint,
)
from repro.trace.workloads import workload_by_name


def fast():
    return SimParams(warmup_instructions=1_000, sim_instructions=2_500)


def make_result(params=None) -> RunResult:
    stats = StatSet()
    stats.bump("l1i_miss", 42)
    return RunResult(
        workload="spc_fp",
        label="test",
        params=params or fast(),
        instructions=2_500,
        cycles=1_000,
        stats=stats,
    )


class TestFingerprints:
    def test_rebuilt_params_share_key(self):
        p = fast()
        q = dataclasses.replace(p, frontend=dataclasses.replace(p.frontend))
        assert p is not q
        assert params_fingerprint(p) == params_fingerprint(q)
        assert run_key("spc_fp", p) == run_key("spc_fp", q)

    def test_param_content_changes_key(self):
        p = fast()
        q = p.with_branch(btb_entries=1024)
        assert params_fingerprint(p) != params_fingerprint(q)
        assert run_key("spc_fp", p) != run_key("spc_fp", q)

    def test_workload_changes_key(self):
        p = fast()
        assert run_key("spc_fp", p) != run_key("srv_web", p)

    def test_name_and_spec_agree(self):
        spec = workload_by_name("srv_web")
        assert workload_fingerprint("srv_web") == workload_fingerprint(spec)
        assert run_key("srv_web", fast()) == run_key(spec, fast())

    def test_key_is_hex_digest(self):
        key = run_key("spc_fp", fast())
        assert len(key) == 64
        int(key, 16)


class TestResultCache:
    def test_round_trip(self, tmp_path):
        stats = StatSet()
        cache = ResultCache(tmp_path, stats=stats)
        key = run_key("spc_fp", fast())
        assert cache.get(key) is None
        assert stats.get("cache_disk_miss") == 1

        result = make_result()
        cache.put(key, result)
        assert stats.get("cache_store") == 1

        loaded = cache.get(key)
        assert stats.get("cache_disk_hit") == 1
        assert loaded is not None
        assert loaded.instructions == result.instructions
        assert loaded.cycles == result.cycles
        assert loaded.stats.as_dict() == result.stats.as_dict()
        assert loaded.params == result.params

    def test_schema_mismatch_is_stale(self, tmp_path):
        stats = StatSet()
        cache = ResultCache(tmp_path, stats=stats)
        key = run_key("spc_fp", fast())
        path = tmp_path / f"{key}.pkl"
        payload = {"schema": SIM_SCHEMA_VERSION + 1, "key": key, "result": make_result()}
        with path.open("wb") as fh:
            pickle.dump(payload, fh)

        assert cache.get(key) is None
        assert stats.get("cache_stale") == 1
        assert not path.exists()  # stale entries are evicted on sight

    def test_corrupt_entry_is_stale(self, tmp_path):
        stats = StatSet()
        cache = ResultCache(tmp_path, stats=stats)
        key = run_key("spc_fp", fast())
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")

        assert cache.get(key) is None
        assert stats.get("cache_stale") == 1
        assert not (tmp_path / f"{key}.pkl").exists()

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path, stats=StatSet())
        for workload in ("spc_fp", "srv_web"):
            cache.put(run_key(workload, fast()), make_result())
        assert cache.info()["entries"] == 2
        assert cache.clear() == 2
        assert cache.info()["entries"] == 0

    def test_info_reports_size(self, tmp_path):
        cache = ResultCache(tmp_path, stats=StatSet())
        cache.put(run_key("spc_fp", fast()), make_result())
        info = cache.info()
        assert info["directory"] == str(tmp_path)
        assert info["schema"] == SIM_SCHEMA_VERSION
        assert info["entries"] == 1
        assert info["total_bytes"] > 0


class TestKnobs:
    def test_cache_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_cache_dir() == tmp_path

    def test_default_dir_is_results_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        d = default_cache_dir()
        assert d.parts[-2:] == ("results", ".cache")

    @pytest.mark.parametrize("value,expected", [
        ("1", True),
        ("0", False),
        ("off", False),
        ("no", False),
        ("false", False),
        ("yes", True),
    ])
    def test_cache_enabled_env(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_CACHE", value)
        assert cache_enabled() is expected

    def test_cache_enabled_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert cache_enabled() is True
