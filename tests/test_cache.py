"""Tests for the set-associative cache model (repro.memory.cache)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import Cache


def small_cache(n_lines=8, assoc=2, line_bytes=64):
    return Cache(n_lines, assoc, line_bytes, name="t")


class TestGeometry:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            Cache(0, 1, 64)
        with pytest.raises(ValueError):
            Cache(7, 2, 64)
        with pytest.raises(ValueError):
            Cache(8, 2, 48)

    def test_set_count(self):
        c = small_cache(16, 4)
        assert c.n_sets == 4

    def test_line_of(self):
        c = small_cache()
        assert c.line_of(0x10FF) == 0x10C0


class TestProbeFill:
    def test_miss_then_hit(self):
        c = small_cache()
        assert not c.probe(0x1000).hit
        c.fill(0x1000)
        access = c.probe(0x1000)
        assert access.hit
        assert c.hits == 1 and c.misses == 1

    def test_same_line_offsets_hit(self):
        c = small_cache()
        c.fill(0x1000)
        assert c.probe(0x103C).hit

    def test_tag_probe_counting(self):
        c = small_cache()
        c.probe(0x1000)
        c.probe(0x1000, count_tag_access=False)
        assert c.tag_probes == 1

    def test_contains_no_side_effects(self):
        c = small_cache()
        c.fill(0x1000)
        before = (c.hits, c.misses, c.tag_probes)
        assert c.contains(0x1000)
        assert not c.contains(0x9000)
        assert (c.hits, c.misses, c.tag_probes) == before

    def test_fill_is_idempotent_on_presence(self):
        c = small_cache()
        c.fill(0x1000)
        result = c.fill(0x1000)
        assert result.hit
        assert c.occupancy == 1


class TestLRU:
    def test_eviction_order(self):
        c = small_cache(n_lines=4, assoc=2)  # 2 sets
        # Same set: lines whose index maps to set 0.
        step = c.n_sets * 64
        a, b, d = 0x0, step, 2 * step
        c.fill(a)
        c.fill(b)
        access = c.fill(d)  # evicts LRU = a
        assert access.victim == a
        assert not c.contains(a)
        assert c.contains(b) and c.contains(d)

    def test_probe_refreshes_lru(self):
        c = small_cache(n_lines=4, assoc=2)
        step = c.n_sets * 64
        a, b, d = 0x0, step, 2 * step
        c.fill(a)
        c.fill(b)
        c.probe(a)  # a becomes MRU
        access = c.fill(d)
        assert access.victim == b

    def test_eviction_counter(self):
        c = small_cache(n_lines=4, assoc=1)
        step = c.n_sets * 64
        c.fill(0)
        c.fill(step)
        assert c.evictions == 1


class TestInvalidate:
    def test_invalidate_present(self):
        c = small_cache()
        c.fill(0x1000)
        assert c.invalidate(0x1000)
        assert not c.contains(0x1000)

    def test_invalidate_absent(self):
        assert not small_cache().invalidate(0x1000)


class TestStats:
    def test_reset(self):
        c = small_cache()
        c.probe(0x1000)
        c.reset_stats()
        assert c.tag_probes == 0 and c.misses == 0

    def test_resident_lines(self):
        c = small_cache()
        c.fill(0x1000)
        c.fill(0x2000)
        assert c.resident_lines() == {0x1000, 0x2000}


@settings(max_examples=30, deadline=None)
@given(
    addrs=st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=200)
)
def test_matches_reference_lru_model(addrs):
    """The cache must agree with a straightforward per-set LRU model."""
    cache = Cache(16, 4, 64)
    reference: dict[int, list[int]] = {i: [] for i in range(cache.n_sets)}

    for addr in addrs:
        line = addr & ~63
        set_idx = (line >> 6) % cache.n_sets
        ways = reference[set_idx]
        model_hit = line in ways
        got = cache.probe(addr)
        assert got.hit == model_hit
        if model_hit:
            ways.remove(line)
            ways.insert(0, line)
        else:
            cache.fill(addr)
            if len(ways) >= 4:
                ways.pop()
            ways.insert(0, line)

    assert cache.resident_lines() == {l for ways in reference.values() for l in ways}
