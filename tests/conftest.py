"""Shared fixtures and factories for the test suite."""

from __future__ import annotations

import tempfile

import pytest

from repro.common.params import SimParams
from repro.isa.instructions import BranchKind, Instruction
from repro.trace.cfg import Program, ProgramSpec, generate_program
from repro.trace.oracle import OracleStream, Segment, run_oracle


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_cache():
    """Keep test simulations out of the real ``results/.cache``."""
    import os

    with tempfile.TemporaryDirectory(prefix="repro-test-cache-") as tmp:
        old = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = tmp
        try:
            yield
        finally:
            if old is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = old


@pytest.fixture(autouse=True)
def _clean_repro_env(monkeypatch):
    """Shield every test from ambient ``REPRO_*`` behaviour knobs.

    A developer's shell (or a previous test that sets one directly) must
    not leak warmup-mode, job-count, invariant-check or logging
    configuration into tests; monkeypatch restores any value a test sets
    itself.  ``REPRO_CACHE_DIR`` stays: the session fixture above pins
    it to a per-run temporary directory.
    """
    for name in ("REPRO_WARMUP_MODE", "REPRO_JOBS", "REPRO_CHECK", "REPRO_CACHE",
                 "REPRO_LOG", "REPRO_WORKLOADS", "REPRO_WARMUP", "REPRO_SIM",
                 "REPRO_LEDGER", "REPRO_BATCH", "REPRO_BATCH_WIDTH",
                 "REPRO_KERNEL", "REPRO_TRACES"):
        monkeypatch.delenv(name, raising=False)


@pytest.fixture(autouse=True)
def _clean_workload_registry():
    """Drop trace sources a test registered so they cannot leak across
    tests (also re-arms the ``REPRO_TRACES`` scan).

    Clearing invalidates every name-keyed lookup cache, so it only runs
    when a test actually touched the registry -- tests that stay on the
    synthetic catalogue keep their warm trace memos.
    """
    from repro.trace import source

    yield
    if source._REGISTRY:
        source.clear_registered_workloads()
    else:
        source._ENV_SCANNED = False


def tiny_spec(**overrides) -> ProgramSpec:
    """A small, fast-to-generate program spec for structural tests."""
    base = dict(
        n_functions=12,
        blocks_per_function=(3, 6),
        instrs_per_block=(2, 6),
        n_phases=2,
        functions_per_phase=4,
        phase_repeats=2,
    )
    base.update(overrides)
    return ProgramSpec(**base)


@pytest.fixture
def tiny_program() -> Program:
    return generate_program(tiny_spec(), seed=7)


@pytest.fixture
def tiny_trace():
    program = generate_program(tiny_spec(), seed=7)
    stream = run_oracle(program, 5_000, seed=11)
    return program, stream


def fast_params(**overrides) -> SimParams:
    """Small simulation windows for quick end-to-end tests."""
    params = SimParams(warmup_instructions=2_000, sim_instructions=6_000)
    for method, kwargs in overrides.items():
        params = getattr(params, method)(**kwargs)
    return params


def make_program(branches: dict[int, Instruction], code_start: int = 0x1000, code_end: int = 0x100000) -> Program:
    """Fabricate a bare Program wrapper around an explicit branch map.

    Used by frontend unit tests that only need ``instruction_at``.
    """
    return Program(
        spec=tiny_spec(),
        entry=code_start,
        blocks={},
        branches=branches,
        behaviours=[],
        functions=[],
        code_start=code_start,
        code_end=code_end,
    )


def make_stream(segments: list[Segment]) -> OracleStream:
    """Fabricate an OracleStream from explicit segments."""
    total = sum(s.n_instrs for s in segments)
    branches = sum(len(s.branches) for s in segments)
    taken = sum(1 for s in segments for b in s.branches if b[2])
    return OracleStream(
        segments=segments,
        total_instructions=total,
        total_branches=branches,
        total_taken=taken,
    )


def seg(start: int, n: int, next_start: int = 0, branches=None) -> Segment:
    return Segment(start=start, n_instrs=n, next_start=next_start, branches=list(branches or []))


def cond(addr: int, taken: bool, target: int):
    return (addr, BranchKind.COND_DIRECT, taken, target)


def jump(addr: int, target: int):
    return (addr, BranchKind.UNCOND_DIRECT, True, target)
