"""Tests for the TAGE direction predictor (repro.branch.tage)."""

import itertools

import pytest

from repro.branch.history import HistoryManager
from repro.branch.tage import TAGE, TageConfig
from repro.common.params import HistoryPolicy


def make_tage(kib=18, hist=260):
    return TAGE(TageConfig.for_budget_kib(kib, hist))


class TestConfig:
    def test_history_lengths_geometric(self):
        cfg = TageConfig.for_budget_kib(18)
        lengths = cfg.history_lengths()
        assert lengths[0] == cfg.min_history
        assert lengths[-1] == cfg.max_history
        assert all(a < b for a, b in zip(lengths, lengths[1:]))

    def test_budget_scaling(self):
        assert (
            TageConfig.for_budget_kib(9).storage_bits()
            < TageConfig.for_budget_kib(18).storage_bits()
            < TageConfig.for_budget_kib(36).storage_bits()
        )

    def test_storage_near_budget(self):
        bits = TageConfig.for_budget_kib(18).storage_bits()
        assert 14 * 1024 * 8 <= bits <= 24 * 1024 * 8

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            TageConfig(0, 1024, 8192, 10, 4, 260)
        with pytest.raises(ValueError):
            TageConfig(4, 1000, 8192, 10, 4, 260)
        with pytest.raises(ValueError):
            TageConfig(4, 1024, 8192, 10, 100, 50)

    def test_single_table_lengths(self):
        cfg = TageConfig(1, 1024, 8192, 10, 4, 64)
        assert cfg.history_lengths() == [64]


class TestLearning:
    def test_unseen_branch_defaults_not_taken(self):
        assert make_tage().predict(0x4000, 0) is False

    def test_learns_always_taken(self):
        tage = make_tage()
        for _ in range(8):
            tage.update(0x4000, 0, True)
        assert tage.predict(0x4000, 0) is True

    def test_learns_always_not_taken(self):
        tage = make_tage()
        for _ in range(8):
            tage.update(0x4000, 0, False)
        assert tage.predict(0x4000, 0) is False

    def test_learns_history_correlated_pattern(self):
        """Deterministically interleaved patterned branches: >90% accuracy."""
        tage = make_tage()
        mgr = HistoryManager(HistoryPolicy.THR, 260)
        branches = []
        for i in range(20):
            pattern = itertools.cycle([(j % (2 + i % 4)) != 0 for j in range(2 + i % 4)])
            branches.append((0x4000 + 32 * i, pattern))
        hist = 0
        correct = total = 0
        for it in range(8000):
            pc, cyc = branches[it % len(branches)]
            taken = next(cyc)
            pred = tage.predict(pc, hist)
            tage.update(pc, hist, taken)
            if it > 2000:
                total += 1
                correct += pred == taken
            if taken:
                hist = mgr.push_taken(hist, pc, pc + 64)
        assert correct / total > 0.9

    def test_allocation_happens_on_mispredict(self):
        tage = make_tage()
        # alternate outcomes under distinct histories
        tage.update(0x4000, 0, True)
        tage.update(0x4000, 0, False)
        assert tage.allocations > 0

    def test_counters_track(self):
        tage = make_tage()
        tage.predict(0x4000, 0)
        tage.update(0x4000, 0, True)
        assert tage.predictions >= 1 and tage.updates == 1


class TestHistorySensitivity:
    def test_same_pc_different_history_can_differ(self):
        tage = make_tage()
        h1, h2 = 0b1010, 0b0101
        for _ in range(12):
            tage.update(0x4000, h1, True)
            tage.update(0x4000, h2, False)
        assert tage.predict(0x4000, h1) is True
        assert tage.predict(0x4000, h2) is False

    def test_fold_cache_bounded(self):
        tage = make_tage()
        for h in range(10_000):
            tage.predict(0x4000, h)
        assert len(tage._fold_cache) <= 8192
