"""Functional fast-forward warmup and precompiled fetch-block metadata.

Pins the two invariants the fast-warmup design leans on:

* the measurement boundary is exact -- warmup counters are stashed in
  ``warmup_stats`` and every measured counter starts from zero;
* functional warmup is a faithful stand-in for cycle-accurate warmup --
  measured IPC agrees within 2% on every catalogue workload.

Plus the block-metadata compilation: the flat arrays must encode
exactly what a brute-force walk over the program image finds.
"""

import pytest

from repro.common.params import SimParams
from repro.common.telemetry import Telemetry, TelemetryConfig
from repro.core.simulator import Simulator, simulate
from repro.experiments.runner import resolve_warmup_mode
from repro.trace.fbmeta import (
    PD_COND,
    PD_INDIRECT,
    PD_PCREL_UNCOND,
    PD_RETURN,
    FetchBlockMeta,
)
from repro.trace.workloads import default_workloads, make_trace

ALL_WORKLOADS = [w.name for w in default_workloads()]


def fast(**overrides):
    return SimParams(warmup_instructions=2_000, sim_instructions=5_000, **overrides)


class TestWarmupModeParam:
    def test_default_is_auto(self):
        assert SimParams().warmup_mode == "auto"

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            SimParams(warmup_mode="fast")

    def test_explicit_modes_accepted(self):
        for mode in ("auto", "cycle", "functional"):
            assert SimParams(warmup_mode=mode).warmup_mode == mode


class TestResolveWarmupMode:
    def test_auto_resolves_to_functional(self, monkeypatch):
        monkeypatch.delenv("REPRO_WARMUP_MODE", raising=False)
        assert resolve_warmup_mode(fast()).warmup_mode == "functional"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WARMUP_MODE", "cycle")
        assert resolve_warmup_mode(fast()).warmup_mode == "cycle"

    def test_explicit_mode_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WARMUP_MODE", "functional")
        p = fast(warmup_mode="cycle")
        assert resolve_warmup_mode(p) is p

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WARMUP_MODE", "warp")
        with pytest.raises(ValueError):
            resolve_warmup_mode(fast())

    def test_modes_get_distinct_cache_keys(self):
        from repro.experiments.cache import run_key

        cyc = run_key("srv_web", fast(warmup_mode="cycle"))
        fun = run_key("srv_web", fast(warmup_mode="functional"))
        assert cyc != fun


class TestMeasurementBoundary:
    def _run(self, workload="srv_web", telemetry=None):
        params = fast(warmup_mode="functional")
        n = params.warmup_instructions + params.sim_instructions
        program, stream = make_trace(workload, n)
        sim = Simulator(params, program, stream, telemetry=telemetry)
        result = sim.run(workload_name=workload)
        return params, sim, result

    def test_warmup_stats_stashed(self):
        params, sim, _ = self._run()
        assert sim.warmup_stats is not None
        assert (
            sim.warmup_stats.get("committed_instructions")
            == params.warmup_instructions
        )

    def test_measured_counters_start_from_zero(self):
        # Retirement is chunk-granular, so the measured window can only
        # overshoot the target by less than one retire-width.
        params, sim, result = self._run()
        retire = params.core.retire_width
        assert (
            params.sim_instructions
            <= result.instructions
            < params.sim_instructions + retire
        )
        assert result.stats.get("committed_instructions") == result.instructions

    def test_measured_cycles_start_from_zero(self):
        _, sim, result = self._run()
        assert sim._measure_start_cycle == 0
        assert result.cycles == sim.cycle

    def test_telemetry_buckets_sum_to_cycles(self):
        # Every measured cycle lands in exactly one cyc_* bucket, even
        # when the cycle loop starts at the measurement boundary.
        tel = Telemetry(TelemetryConfig())
        _, _, result = self._run(telemetry=tel)
        accounting = tel.accounting()
        assert sum(accounting.values()) == result.cycles


class TestFetchBlockMeta:
    def test_matches_brute_force_walk(self):
        program, _ = make_trace("srv_web", 7_000)
        meta = program.fetch_meta()
        walked = []
        for addr in range(program.code_start, program.code_end, 4):
            instr = program.instruction_at(addr)
            if instr is not None:
                walked.append((instr.addr, instr.kind, instr.target))
        assert list(meta.triples) == walked
        assert list(meta.addrs) == [a for a, _, _ in walked]
        assert list(meta.kinds) == [k for _, k, _ in walked]
        assert list(meta.targets) == [t for _, _, t in walked]
        assert list(meta.addrs) == sorted(meta.addrs)

    def test_predecode_classes(self):
        program, _ = make_trace("srv_web", 7_000)
        meta = program.fetch_meta()
        for kind, cls in zip(meta.kinds, meta.pd_class):
            if kind.is_conditional:
                assert cls == PD_COND
            elif kind.is_pc_relative:
                assert cls == PD_PCREL_UNCOND
            elif kind.is_return:
                assert cls == PD_RETURN
            else:
                assert cls == PD_INDIRECT

    def test_memoised_per_program(self):
        program, _ = make_trace("srv_web", 7_000)
        assert program.fetch_meta() is program.fetch_meta()
        assert isinstance(program.fetch_meta(), FetchBlockMeta)


class TestFunctionalMatchesCycleWarmup:
    @pytest.mark.parametrize("workload", ALL_WORKLOADS)
    def test_measured_ipc_within_2_percent(self, workload):
        params = SimParams(warmup_instructions=10_000, sim_instructions=25_000)
        cycle = simulate(workload, params.replace(warmup_mode="cycle"))
        func = simulate(workload, params.replace(warmup_mode="functional"))
        assert func.ipc == pytest.approx(cycle.ipc, rel=0.02)
