"""Run-ledger tests: lifecycle validity, reconciliation, determinism.

Covers the sweep observability contract (docs/OBSERVABILITY.md):

* every job's ledger lifecycle is one of the valid sequences;
* totals reconcile exactly (queued == finished + failed + cache_hits);
* a parallel sweep's ledger matches a serial one modulo timing fields;
* a ledgered sweep's *results* are bit-identical to an unledgered one;
* provenance manifests land beside cached results and survive reads.
"""

import json

import pytest

from repro.common.ledger import (
    TIMING_FIELDS,
    SweepLedger,
    invalid_sequences,
    job_sequences,
    latest_ledger,
    new_sweep_id,
    read_ledger,
    render_progress,
    render_summary_md,
    summarize_ledger,
)
from repro.common.params import SimParams
from repro.experiments.cache import MANIFEST_SCHEMA_VERSION, ResultCache, run_key
from repro.experiments.runner import clear_cache, run_config, run_points

WORKLOADS = ["spc_fp", "srv_web"]


def fast():
    return SimParams(warmup_instructions=1_000, sim_instructions=2_500)


def points():
    return [
        (wl, params)
        for wl in WORKLOADS
        for params in (fast(), fast().with_branch(btb_entries=1024))
    ]


@pytest.fixture(autouse=True)
def isolated(monkeypatch, tmp_path):
    """Fresh memo + private disk cache + private ledger dir per test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "ledger"))
    clear_cache()
    yield
    clear_cache()


def one_ledger(tmp_path) -> list[dict]:
    """Read back the single ledger file the test's sweep produced."""
    files = sorted((tmp_path / "ledger").glob("*.jsonl"))
    assert len(files) == 1, files
    return read_ledger(files[0])


class TestSweepId:
    def test_ids_unique_within_a_second(self):
        ids = {new_sweep_id(clock=lambda: 1_700_000_000.0) for _ in range(5)}
        assert len(ids) == 5

    def test_sortable_stamp(self):
        a = new_sweep_id(clock=lambda: 1_700_000_000.0)
        b = new_sweep_id(clock=lambda: 1_700_000_060.0)
        assert a < b


class TestLifecycle:
    def test_cold_sweep_sequences_and_reconciliation(self, tmp_path):
        resolved = run_points(points(), jobs=1)
        events = one_ledger(tmp_path)

        assert invalid_sequences(events) == {}
        seqs = job_sequences(events)
        assert set(seqs) == set(resolved)
        assert all(seq[-1] == "finished" for seq in seqs.values())

        summary = summarize_ledger(events)
        assert summary["complete"]
        assert summary["reconciled"]
        totals = summary["totals"]
        assert totals["queued"] == len(resolved) == 4
        assert totals["queued"] == (
            totals["finished"] + totals["failed"] + totals["cache_hits"]
        )

    def test_warm_sweep_is_all_cache_hits(self, tmp_path, monkeypatch):
        run_points(points(), jobs=1)
        clear_cache()  # memo dropped; disk cache stays warm
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "ledger2"))
        run_points(points(), jobs=1)
        events = read_ledger(sorted((tmp_path / "ledger2").glob("*.jsonl"))[0])
        summary = summarize_ledger(events)
        assert summary["reconciled"]
        assert summary["totals"]["cache_hits"] == 4
        assert summary["totals"]["finished"] == 0
        assert summary["cache_hit_rate"] == 1.0
        assert summary["cache_hit_sources"]["disk"] == 4
        assert invalid_sequences(events) == {}

    def test_failed_units_reconcile_and_reraise(self, tmp_path, monkeypatch):
        import repro.experiments.runner as runner

        orig = runner._simulate_unit

        def boom(workload, params_list):
            if workload == "srv_web":
                raise RuntimeError("injected unit failure")
            return orig(workload, params_list)

        monkeypatch.setattr(runner, "_simulate_unit", boom)
        with pytest.raises(RuntimeError, match="injected unit failure"):
            run_points(points(), jobs=1)
        events = one_ledger(tmp_path)
        assert invalid_sequences(events) == {}
        summary = summarize_ledger(events)
        assert summary["reconciled"]  # failures still reconcile
        assert summary["totals"]["failed"] == 2  # both srv_web points
        assert summary["totals"]["finished"] == 2
        failed = [e for e in events if e["event"] == "failed"]
        assert all("injected unit failure" in e["error"] for e in failed)


def strip_timing(events: list[dict]) -> list[dict]:
    """Project ledger events onto their deterministic fields, sorted."""
    rows = []
    for record in events:
        row = {
            k: v
            for k, v in record.items()
            # "sweep" and "jobs" are identity/pool config, not job data
            if k not in TIMING_FIELDS and k not in ("sweep", "jobs")
        }
        rows.append(row)
    return sorted(rows, key=lambda r: (r.get("key", ""), r["event"]))


class TestDeterminism:
    def test_parallel_ledger_matches_serial_modulo_timing(
        self, tmp_path, monkeypatch
    ):
        serial = run_points(points(), jobs=1)
        serial_events = one_ledger(tmp_path)

        clear_cache()
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache2"))
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "ledger2"))
        parallel = run_points(points(), jobs=4)
        parallel_events = read_ledger(
            sorted((tmp_path / "ledger2").glob("*.jsonl"))[0]
        )

        assert strip_timing(serial_events) == strip_timing(parallel_events)
        assert {k: (r.instructions, r.cycles, r.stats.as_dict()) for k, r in serial.items()} == {
            k: (r.instructions, r.cycles, r.stats.as_dict()) for k, r in parallel.items()
        }

    def test_ledgered_results_bit_identical_to_plain(self, tmp_path, monkeypatch):
        ledgered = run_points(points(), jobs=1)
        clear_cache()
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache2"))
        monkeypatch.delenv("REPRO_LEDGER")
        plain = run_points(points(), jobs=1)
        assert not (tmp_path / "cache2" / "nonexistent").exists()
        for key in ledgered:
            a, b = ledgered[key], plain[key]
            assert (a.instructions, a.cycles) == (b.instructions, b.cycles)
            assert a.stats.as_dict() == b.stats.as_dict()


class TestOffSwitch:
    def test_unset_env_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER")
        run_points(points(), jobs=1)
        assert not (tmp_path / "ledger").exists()

    @pytest.mark.parametrize("value", ["0", "off", "false", "no", ""])
    def test_disabling_values(self, tmp_path, monkeypatch, value):
        monkeypatch.setenv("REPRO_LEDGER", value)
        run_points(points(), jobs=1)
        assert not (tmp_path / "ledger").exists()


class TestSummaries:
    def test_invalid_sequence_detected(self):
        events = [
            {"event": "queued", "key": "k1"},
            {"event": "finished", "key": "k1"},  # never started
        ]
        assert invalid_sequences(events) == {"k1": ["queued", "finished"]}

    def test_renderers_smoke(self, tmp_path):
        run_points(points(), jobs=1)
        summary = summarize_ledger(one_ledger(tmp_path))
        progress = render_progress(summary)
        assert "4/4 jobs" in progress
        md = render_summary_md(summary)
        assert "# Sweep report" in md
        assert "Slowest work units" in md
        assert "Per-worker utilization" in md

    def test_latest_ledger_picks_newest(self, tmp_path):
        directory = tmp_path / "ledger"
        run_points(points()[:1], jobs=1)
        first = latest_ledger(directory)
        run_points(points()[1:2], jobs=1)
        second = latest_ledger(directory)
        assert first is not None and second is not None
        assert second >= first
        assert len(list(directory.glob("*.jsonl"))) == 2

    def test_read_ledger_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "queued", "key": "k"}\n{broken\n\n')
        events = read_ledger(path)
        assert len(events) == 1

    def test_ledger_file_failure_is_silent(self, tmp_path):
        led = SweepLedger(path=tmp_path / "nodir" / "x" / "y.jsonl")
        led.queued("k", "wl", "cfg")  # must not raise
        led.end()


class TestManifests:
    def test_run_config_writes_manifest(self):
        params = fast()
        result = run_config("spc_fp", params)
        cache = ResultCache()
        manifests = cache.manifests()
        assert len(manifests) == 1
        m = manifests[0]
        assert m["manifest_schema"] == MANIFEST_SCHEMA_VERSION
        assert m["workload"] == "spc_fp"
        assert m["ipc"] == result.ipc
        assert m["warmup_mode"] == "functional"  # sweep default resolution
        assert m["batched"] is False and m["unit_size"] == 1
        assert m["wall_seconds"] > 0
        assert "worker_pid" in m and "host" in m and "repro_version" in m

    def test_get_manifest_by_key(self):
        import repro.experiments.runner as runner

        params = runner._resolve(fast())
        run_config("spc_fp", fast())
        key = run_key("spc_fp", params)
        m = ResultCache().get_manifest(key)
        assert m is not None and m["key"] == key

    def test_batched_sweep_manifest_marks_unit(self, tmp_path, monkeypatch):
        # Pin the interpreted kernel: under "auto" these typed-eligible
        # points skip batching (the typed scalar path is preferred) and
        # no batched manifests would be written.
        monkeypatch.setenv("REPRO_KERNEL", "interp")
        run_points(points(), jobs=1)
        cache = ResultCache()
        batched = [m for m in cache.manifests() if m["batched"]]
        # the two same-length spc_fp/srv_web pairs batch per workload
        assert batched, "expected at least one lockstep-batched manifest"
        assert all(m["unit_size"] > 1 for m in batched)

    def test_clear_removes_manifests(self):
        run_config("spc_fp", fast())
        cache = ResultCache()
        assert cache.info()["manifests"] == 1
        cache.clear()
        assert cache.info()["manifests"] == 0
        assert cache.manifests() == []

    def test_info_counts_and_hit_rate(self):
        run_config("spc_fp", fast())
        run_config("spc_fp", fast())  # memo hit
        info = ResultCache().info()
        assert info["manifests"] == info["entries"] == 1
        assert 0.0 <= info["session_hit_rate"] <= 1.0


class TestWorkerLogPropagation:
    def test_initializer_applies_level(self):
        import logging

        from repro.common.log import current_level_name
        from repro.experiments.runner import _pool_worker_init

        _pool_worker_init("debug")
        try:
            assert current_level_name() == "debug"
            assert logging.getLogger("repro").level == logging.DEBUG
        finally:
            _pool_worker_init("warning")

    def test_current_level_name_roundtrip(self):
        from repro.common.log import configure, current_level_name

        for name in ("info", "warning"):
            configure(name)
            assert current_level_name() == name


class TestSweepReportCli:
    def test_progress_and_summary_outputs(self, tmp_path, capsys):
        from repro.cli import main

        run_points(points(), jobs=1)
        path = str(sorted((tmp_path / "ledger").glob("*.jsonl"))[0])

        assert main(["sweep-report", path]) == 0
        out = capsys.readouterr().out
        assert "4/4 jobs" in out and "complete" in out

        outdir = tmp_path / "reports"
        assert main(["sweep-report", path, "--format", "both", "--out", str(outdir)]) == 0
        files = sorted(p.name for p in outdir.iterdir())
        assert any(f.endswith(".sweep.md") for f in files)
        assert any(f.endswith(".sweep.json") for f in files)
        payload = json.loads(next(outdir.glob("*.sweep.json")).read_text())
        assert payload["reconciled"] is True

    def test_defaults_to_latest_ledger(self, tmp_path, capsys):
        from repro.cli import main

        run_points(points(), jobs=1)
        assert main(["sweep-report"]) == 0
        assert "4/4 jobs" in capsys.readouterr().out

    def test_missing_ledger_is_an_error(self, tmp_path):
        from repro.cli import main

        assert main(["sweep-report", str(tmp_path / "nope.jsonl")]) == 2
        assert main(["sweep-report"]) == 2  # empty ledger dir
