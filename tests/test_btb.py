"""Tests for the Branch Target Buffer (repro.branch.btb)."""

import pytest

from repro.branch.btb import BTB
from repro.isa.instructions import BranchKind


class TestGeometry:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BTB(100, 3)
        with pytest.raises(ValueError):
            BTB(0, 1)

    def test_set_count(self):
        assert BTB(1024, 4).n_sets == 256


class TestLookupInsert:
    def test_miss_then_hit(self):
        btb = BTB(64, 4)
        assert btb.lookup(0x4000) is None
        btb.insert(0x4000, BranchKind.UNCOND_DIRECT, 0x5000)
        entry = btb.lookup(0x4000)
        assert entry is not None and entry.target == 0x5000

    def test_update_in_place(self):
        btb = BTB(64, 4)
        btb.insert(0x4000, BranchKind.INDIRECT, 0x5000)
        btb.insert(0x4000, BranchKind.INDIRECT, 0x6000)
        assert btb.lookup(0x4000).target == 0x6000
        assert btb.occupancy == 1

    def test_rejects_non_branch(self):
        with pytest.raises(ValueError):
            BTB(64, 4).insert(0x4000, BranchKind.NONE, 0)

    def test_contains_is_silent(self):
        btb = BTB(64, 4)
        btb.insert(0x4000, BranchKind.RETURN, 0)
        lookups = btb.lookups
        assert btb.contains(0x4000)
        assert not btb.contains(0x4004)
        assert btb.lookups == lookups


class TestSetMapping:
    def test_same_16b_chunk_same_set(self):
        btb = BTB(64, 4)
        # Branches at 0x4000 and 0x400C share the 16B chunk -> same set.
        assert btb._set_index(0x4000) == btb._set_index(0x400C)
        assert btb._set_index(0x4000) != btb._set_index(0x4010)

    def test_lru_eviction_within_set(self):
        btb = BTB(8, 2)  # 4 sets
        span = btb.n_sets * 16
        a, b, c = 0x4000, 0x4000 + span, 0x4000 + 2 * span
        btb.insert(a, BranchKind.UNCOND_DIRECT, 0x100)
        btb.insert(b, BranchKind.UNCOND_DIRECT, 0x100)
        btb.lookup(a)  # a MRU
        btb.insert(c, BranchKind.UNCOND_DIRECT, 0x100)  # evicts b
        assert btb.contains(a) and btb.contains(c)
        assert not btb.contains(b)
        assert btb.evictions == 1


class TestScanBlock:
    def test_finds_branches_in_range_sorted(self):
        btb = BTB(256, 4)
        btb.insert(0x4008, BranchKind.COND_DIRECT, 0x100)
        btb.insert(0x4010, BranchKind.RETURN, 0)
        btb.insert(0x4030, BranchKind.CALL_DIRECT, 0x200)  # outside 32B block
        found = btb.scan_block(0x4000, 0x401C)
        assert [e.addr for e in found] == [0x4008, 0x4010]

    def test_respects_start_offset(self):
        btb = BTB(256, 4)
        btb.insert(0x4004, BranchKind.COND_DIRECT, 0x100)
        found = btb.scan_block(0x4008, 0x401C)
        assert found == []

    def test_scan_promotes_mru(self):
        btb = BTB(8, 2)
        span = btb.n_sets * 16
        a, b = 0x4000, 0x4000 + span
        btb.insert(a, BranchKind.UNCOND_DIRECT, 0x100)
        btb.insert(b, BranchKind.UNCOND_DIRECT, 0x100)
        btb.scan_block(a, a + 12)  # touches a
        btb.insert(0x4000 + 2 * span, BranchKind.UNCOND_DIRECT, 0x100)
        assert btb.contains(a)

    def test_empty_scan(self):
        assert BTB(64, 4).scan_block(0x4000, 0x401C) == []


class TestInvalidate:
    def test_invalidate(self):
        btb = BTB(64, 4)
        btb.insert(0x4000, BranchKind.RETURN, 0)
        assert btb.invalidate(0x4000)
        assert not btb.contains(0x4000)
        assert not btb.invalidate(0x4000)

    def test_reset_stats(self):
        btb = BTB(64, 4)
        btb.insert(0x4000, BranchKind.RETURN, 0)
        btb.lookup(0x4000)
        btb.reset_stats()
        assert btb.lookups == 0 and btb.insertions == 0
