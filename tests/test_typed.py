"""Typed flat cycle kernel: resolution, eligibility, and bit-identity.

The typed kernel (:mod:`repro.core.typedkern`) is a hand-flattened
lowering of the schedule-composed interpreted loop for the
uninstrumented feature set.  Its whole contract is *bit-identity*: a
typed run must reproduce the interpreted run counter-for-counter, so
these tests pin that claim across every registered prefetcher and
direction predictor, through the idle-skip drain extension, and for
both warmup modes -- plus the mode-resolution plumbing that records
which backend produced a number.
"""

import pytest

from repro.common.params import KERNEL_MODES, SimParams
from repro.core.simulator import Simulator, simulate
from repro.core.typed import (
    backend_name,
    kernel_backend_for_params,
    resolve_kernel_mode,
    supported,
    typed_eligible,
)
from repro.prefetch import prefetcher_names
from repro.trace.workloads import make_trace

WORKLOAD = "srv_web"


def fast(**kwargs):
    kwargs.setdefault("warmup_instructions", 500)
    kwargs.setdefault("sim_instructions", 2_000)
    return SimParams(**kwargs)


def identity(a, b):
    """Full bit-identity between two RunResults."""
    assert a.cycles == b.cycles
    assert a.instructions == b.instructions
    assert a.ipc == b.ipc
    assert a.stats.as_dict() == b.stats.as_dict()


def run_pair(params, workload=WORKLOAD):
    """(typed result, interp result, typed sim) on one shared trace."""
    n = params.warmup_instructions + params.sim_instructions
    program, stream = make_trace(workload, n)
    typed_sim = Simulator(params.replace(kernel="typed"), program, stream)
    typed = typed_sim.run(workload)
    interp_sim = Simulator(params.replace(kernel="interp"), program, stream)
    interp = interp_sim.run(workload)
    assert interp_sim.kernel_backend == "interp"
    return typed, interp, typed_sim


class TestResolution:
    def test_explicit_modes_pass_through(self):
        assert resolve_kernel_mode("typed") == "typed"
        assert resolve_kernel_mode("interp") == "interp"

    def test_auto_defaults_to_typed(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert resolve_kernel_mode("auto") == "typed"
        monkeypatch.setenv("REPRO_KERNEL", "auto")
        assert resolve_kernel_mode("auto") == "typed"

    def test_auto_follows_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "interp")
        assert resolve_kernel_mode("auto") == "interp"
        monkeypatch.setenv("REPRO_KERNEL", "typed")
        assert resolve_kernel_mode("auto") == "typed"

    def test_invalid_mode_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="kernel mode"):
            resolve_kernel_mode("jit")
        monkeypatch.setenv("REPRO_KERNEL", "fastest")
        with pytest.raises(ValueError, match="REPRO_KERNEL"):
            resolve_kernel_mode("auto")

    def test_params_validate_kernel(self):
        with pytest.raises(ValueError, match="kernel"):
            SimParams(kernel="jit")
        for mode in KERNEL_MODES:
            assert SimParams(kernel=mode).kernel == mode

    def test_backend_name_is_python_here(self):
        # The test container has no mypyc toolchain, so typedkern runs
        # from its .py source.  A compiled CI environment reports
        # typed-compiled instead; either way the name must be a typed-*.
        assert backend_name() in ("typed-python", "typed-compiled")


class TestEligibility:
    def test_plain_config_is_eligible(self):
        assert typed_eligible(fast())
        assert typed_eligible(fast(prefetcher="perfect"))

    def test_interp_mode_disables(self):
        assert not typed_eligible(fast(kernel="interp"))

    def test_checker_disables(self):
        assert not typed_eligible(fast(check_invariants=True))

    @pytest.mark.parametrize("prefetcher", prefetcher_names())
    def test_dedicated_prefetcher_disables(self, prefetcher):
        assert not typed_eligible(fast(prefetcher=prefetcher))

    def test_env_interp_disables_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "interp")
        assert not typed_eligible(fast())
        assert kernel_backend_for_params(fast()) == "interp"

    def test_backend_label_matches_eligibility(self):
        assert kernel_backend_for_params(fast()) == backend_name()
        assert kernel_backend_for_params(fast(check_invariants=True)) == "interp"

    def test_supported_mirrors_features(self):
        n = 2_500
        program, stream = make_trace(WORKLOAD, n)
        plain = Simulator(fast(), program, stream)
        ok, reason = supported(plain)
        assert ok and reason == ""
        checked = Simulator(fast(check_invariants=True), program, stream)
        ok, reason = supported(checked)
        assert not ok and "interpreted" in reason


class TestTypedInterpIdentity:
    def test_default_workload(self):
        typed, interp, sim = run_pair(fast())
        assert sim.kernel_backend == backend_name()
        identity(typed, interp)

    def test_simulate_uses_typed_by_default(self):
        # SimParams defaults kernel="auto" -> typed, so the public
        # entry point exercises the typed backend without opt-in.
        result = simulate(WORKLOAD, fast())
        identity(result, simulate(WORKLOAD, fast(kernel="interp")))

    @pytest.mark.parametrize("prefetcher", ["none", "perfect", *prefetcher_names()])
    def test_every_prefetcher(self, prefetcher):
        # Dedicated prefetchers compose a feature into the schedule, so
        # typed mode must *fall back* to interp (still bit-identical --
        # trivially, but the backend label must say so).
        typed, interp, sim = run_pair(fast(prefetcher=prefetcher))
        if prefetcher in ("none", "perfect"):
            assert sim.kernel_backend == backend_name()
        else:
            assert sim.kernel_backend == "interp"
        identity(typed, interp)

    @pytest.mark.parametrize("direction", ["tage", "gshare", "perceptron", "perfect"])
    def test_every_direction_predictor(self, direction):
        params = fast().with_branch(
            direction_kind=direction, perfect_direction=direction == "perfect"
        )
        typed, interp, sim = run_pair(params)
        assert sim.kernel_backend == backend_name()
        identity(typed, interp)

    def test_functional_warmup(self):
        typed, interp, _ = run_pair(fast(warmup_mode="functional"))
        identity(typed, interp)

    def test_perfect_btb_and_two_level(self):
        typed, interp, _ = run_pair(fast().with_branch(perfect_btb=True))
        identity(typed, interp)
        typed, interp, _ = run_pair(fast().with_branch(btb_l1_entries=256))
        identity(typed, interp)

    def test_pfc_and_history_variants(self):
        typed, interp, _ = run_pair(fast().with_frontend(pfc_enabled=True))
        identity(typed, interp)
        typed, interp, _ = run_pair(fast().with_frontend(wrong_path_fills=False))
        identity(typed, interp)

    def test_idle_skip_drain_stretch(self):
        # A tiny FTQ with a large mispredict penalty and few MSHRs
        # produces long stalled stretches where the decode queue drains
        # while fetch is blocked -- the bandwidth-bound drain extension
        # (Simulator._drain_to and its typedkern twin) is the hot path
        # here, and starvation accounting must match cycle-for-cycle.
        params = (
            fast()
            .with_frontend(ftq_entries=2, decode_queue_size=32)
            .replace(core=fast().core.__class__(retire_width=8, mispredict_penalty=20))
        )
        typed, interp, _ = run_pair(params)
        identity(typed, interp)
        assert typed.stats.get("starvation_cycles") > 0

    def test_small_mshr_pressure(self):
        params = fast().replace(
            memory=fast().memory.__class__(mshr_entries=2, l1i_kib=16)
        )
        typed, interp, _ = run_pair(params)
        identity(typed, interp)


class TestRunRecordsBackend:
    def test_interp_run_records_interp(self):
        n = 2_500
        program, stream = make_trace(WORKLOAD, n)
        sim = Simulator(fast(kernel="interp"), program, stream)
        sim.run(WORKLOAD)
        assert sim.kernel_backend == "interp"

    def test_featured_run_falls_back(self):
        n = 2_500
        program, stream = make_trace(WORKLOAD, n)
        sim = Simulator(fast(kernel="typed", check_invariants=True), program, stream)
        sim.run(WORKLOAD)
        assert sim.kernel_backend == "interp"
