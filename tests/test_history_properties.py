"""Property-based tests for history-policy coherence.

The pipeline's correctness depends on one invariant: for a stream of
branches that are all *detected*, the architectural history the commit
stage reconstructs must equal the speculative history the frontend
accumulated with correct predictions — that is what makes flush
recovery exact. These tests check it for every policy over random
branch streams.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.branch.history import HistoryManager
from repro.common.params import HistoryPolicy

branch_stream = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2**20),  # pc / 4
        st.booleans(),                              # taken
        st.integers(min_value=0, max_value=2**20),  # target / 4
    ),
    max_size=60,
)


@given(branches=branch_stream)
def test_spec_equals_commit_when_all_detected(branches):
    for policy in HistoryPolicy:
        mgr = HistoryManager(policy, 64)
        spec = 0
        arch = 0
        for pc4, taken, tgt4 in branches:
            pc, tgt = pc4 * 4, tgt4 * 4
            if policy is HistoryPolicy.IDEAL:
                spec = mgr.push_outcome(spec, pc, taken, tgt)
            else:
                spec = mgr.spec_push(spec, pc, taken, tgt)
            arch, fix = mgr.commit_push(arch, pc, taken, tgt, detected=True)
            assert not fix
        assert spec == arch, policy


@given(branches=branch_stream)
def test_thr_ignores_detection_entirely(branches):
    mgr = HistoryManager(HistoryPolicy.THR, 64)
    h_detected = 0
    h_undetected = 0
    for pc4, taken, tgt4 in branches:
        pc, tgt = pc4 * 4, tgt4 * 4
        h_detected, _ = mgr.commit_push(h_detected, pc, taken, tgt, detected=True)
        h_undetected, _ = mgr.commit_push(h_undetected, pc, taken, tgt, detected=False)
    assert h_detected == h_undetected


@given(branches=branch_stream)
def test_ghr0_loses_only_undetected_not_taken(branches):
    """GHR0's history equals the full direction history with undetected
    not-taken branches deleted."""
    mgr = HistoryManager(HistoryPolicy.GHR0, 256)
    h = 0
    reference_bits = []
    for i, (pc4, taken, tgt4) in enumerate(branches):
        detected = (i % 3) != 0  # every third branch undetected
        pc, tgt = pc4 * 4, tgt4 * 4
        h, _ = mgr.commit_push(h, pc, taken, tgt, detected)
        if detected or taken:
            reference_bits.append(1 if taken else 0)
    expected = 0
    for bit in reference_bits:
        expected = ((expected << 1) | bit) & mgr.mask
    assert h == expected


@given(branches=branch_stream, bits=st.integers(min_value=1, max_value=16))
def test_history_confined_to_mask(branches, bits):
    for policy in HistoryPolicy:
        mgr = HistoryManager(policy, bits)
        h = 0
        for pc4, taken, tgt4 in branches:
            h, _ = mgr.commit_push(h, pc4 * 4, taken, tgt4 * 4, detected=True)
            assert 0 <= h <= mgr.mask


@given(
    prefix=branch_stream,
    pc4=st.integers(min_value=0, max_value=2**20),
    tgt4=st.integers(min_value=0, max_value=2**20),
)
def test_taken_push_always_changes_low_bits_thr(prefix, pc4, tgt4):
    """Pushing a taken branch shifts THR history by TARGET_SHIFT bits."""
    mgr = HistoryManager(HistoryPolicy.THR, 64)
    h = 0
    for p, t, g in prefix:
        h = mgr.push_outcome(h, p * 4, t, g * 4)
    pushed = mgr.push_taken(h, pc4 * 4, tgt4 * 4)
    # Re-pushing with the same inputs is deterministic.
    assert pushed == mgr.push_taken(h, pc4 * 4, tgt4 * 4)
