"""Unit tests for repro.trace.behaviors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.rng import SplitMix64
from repro.trace.behaviors import (
    BiasedBehaviour,
    IndirectBehaviour,
    LoopBehaviour,
    PatternBehaviour,
)


class TestBiased:
    def test_extremes(self):
        rng = SplitMix64(1)
        always = BiasedBehaviour(1.0)
        never = BiasedBehaviour(0.0)
        assert all(always.outcome(rng) for _ in range(50))
        assert not any(never.outcome(rng) for _ in range(50))

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            BiasedBehaviour(1.5)

    def test_describe(self):
        assert "biased" in BiasedBehaviour(0.5).describe()

    def test_approximate_rate(self):
        rng = SplitMix64(42)
        b = BiasedBehaviour(0.8)
        rate = sum(b.outcome(rng) for _ in range(5000)) / 5000
        assert 0.75 < rate < 0.85


class TestPattern:
    def test_cycles_exactly(self):
        rng = SplitMix64(1)
        p = PatternBehaviour((True, False, True))
        out = [p.outcome(rng) for _ in range(6)]
        assert out == [True, False, True, True, False, True]

    def test_reset(self):
        rng = SplitMix64(1)
        p = PatternBehaviour((True, False))
        p.outcome(rng)
        p.reset()
        assert p.outcome(rng) is True

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PatternBehaviour(())

    def test_describe(self):
        assert PatternBehaviour((True, False)).describe() == "pattern(TN)"

    @given(st.lists(st.booleans(), min_size=1, max_size=12))
    def test_period_property(self, bits):
        rng = SplitMix64(1)
        p = PatternBehaviour(tuple(bits))
        first = [p.outcome(rng) for _ in range(len(bits))]
        second = [p.outcome(rng) for _ in range(len(bits))]
        assert first == second == [bool(b) for b in bits]


class TestLoop:
    def test_trip_count(self):
        rng = SplitMix64(1)
        loop = LoopBehaviour(4)
        out = [loop.outcome(rng) for _ in range(8)]
        # taken 3x then exit, repeating
        assert out == [True, True, True, False] * 2

    def test_trip_one_never_taken(self):
        rng = SplitMix64(1)
        loop = LoopBehaviour(1)
        assert not any(loop.outcome(rng) for _ in range(5))

    def test_reset(self):
        rng = SplitMix64(1)
        loop = LoopBehaviour(3)
        loop.outcome(rng)
        loop.reset()
        assert [loop.outcome(rng) for _ in range(3)] == [True, True, False]

    def test_rejects_zero_trip(self):
        with pytest.raises(ValueError):
            LoopBehaviour(0)

    @given(st.integers(min_value=1, max_value=50))
    def test_exits_every_trip(self, trip):
        rng = SplitMix64(1)
        loop = LoopBehaviour(trip)
        outcomes = [loop.outcome(rng) for _ in range(trip * 3)]
        # Exactly one not-taken per trip activations.
        assert outcomes.count(False) == 3


class TestIndirect:
    def test_roundrobin(self):
        rng = SplitMix64(1)
        b = IndirectBehaviour(3, mode="roundrobin")
        assert [b.select(rng) for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_random_in_range(self):
        rng = SplitMix64(5)
        b = IndirectBehaviour(4, mode="random")
        picks = {b.select(rng) for _ in range(200)}
        assert picks <= {0, 1, 2, 3}
        assert len(picks) > 1

    def test_weighted_respects_support(self):
        rng = SplitMix64(5)
        b = IndirectBehaviour(3, mode="random", weights=(1.0, 0.0, 0.0))
        assert all(b.select(rng) == 0 for _ in range(100))

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            IndirectBehaviour(2, mode="sideways")

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError):
            IndirectBehaviour(2, weights=(1.0,))

    def test_rejects_zero_targets(self):
        with pytest.raises(ValueError):
            IndirectBehaviour(0)

    def test_reset(self):
        rng = SplitMix64(1)
        b = IndirectBehaviour(3)
        b.select(rng)
        b.reset()
        assert b.select(rng) == 0
