"""Tests for the instruction TLB (repro.memory.tlb)."""

import pytest

from repro.memory.tlb import TLB


class TestTranslate:
    def test_first_access_misses(self):
        tlb = TLB(4, 4096, miss_latency=20)
        assert tlb.translate(0x1000) == 20
        assert tlb.misses == 1

    def test_same_page_hits(self):
        tlb = TLB(4, 4096, miss_latency=20)
        tlb.translate(0x1000)
        assert tlb.translate(0x1FFC) == 0
        assert tlb.hits == 1

    def test_different_page_misses(self):
        tlb = TLB(4, 4096, miss_latency=20)
        tlb.translate(0x1000)
        assert tlb.translate(0x2000) == 20

    def test_lru_eviction(self):
        tlb = TLB(2, 4096, miss_latency=5)
        tlb.translate(0x0000)
        tlb.translate(0x1000)
        tlb.translate(0x0000)  # refresh page 0
        tlb.translate(0x2000)  # evicts page 1
        assert tlb.contains(0x0000)
        assert not tlb.contains(0x1000)

    def test_contains_no_side_effects(self):
        tlb = TLB(2, 4096, miss_latency=5)
        assert not tlb.contains(0x1000)
        assert tlb.misses == 0

    def test_page_of(self):
        tlb = TLB(2, 4096, 5)
        assert tlb.page_of(0x1FFF) == 0x1000

    def test_reset_stats(self):
        tlb = TLB(2, 4096, 5)
        tlb.translate(0)
        tlb.reset_stats()
        assert tlb.misses == 0


class TestValidation:
    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            TLB(0, 4096, 5)

    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            TLB(4, 1000, 5)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            TLB(4, 4096, -1)
