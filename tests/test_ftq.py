"""Tests for the Fetch Target Queue (repro.frontend.ftq)."""

import pytest

from repro.branch.history import HistoryManager
from repro.common.params import HistoryPolicy
from repro.frontend.ftq import FTQ, STATE_AWAIT_PROBE, FTQEntry


def entry(uid=0, start=0x1000, term=0x101C, taken=False, target=0, **kw):
    return FTQEntry(
        uid=uid,
        start=start,
        term_addr=term,
        pred_taken=taken,
        pred_target=target,
        hist_snapshot=0,
        **kw,
    )


class TestEntry:
    def test_n_instrs(self):
        assert entry(start=0x1000, term=0x101C).n_instrs == 8
        assert entry(start=0x1008, term=0x1008).n_instrs == 1

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            entry(start=0x1010, term=0x1000)

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            entry(start=0x1000, term=0x1002)

    def test_next_fetch_addr_sequential(self):
        assert entry(start=0x1000, term=0x101C).next_fetch_addr == 0x1020

    def test_next_fetch_addr_taken(self):
        e = entry(taken=True, target=0x8000)
        assert e.next_fetch_addr == 0x8000

    def test_remaining_tracks_consumption(self):
        e = entry()
        assert e.remaining == 8
        e.consumed = 3
        assert e.remaining == 5

    def test_truncate(self):
        e = entry(start=0x1000, term=0x101C)
        e.truncate(0x1008, True, 0x9000)
        assert e.term_addr == 0x1008
        assert e.pred_taken and e.pred_target == 0x9000
        assert e.n_instrs == 3

    def test_truncate_outside_raises(self):
        with pytest.raises(ValueError):
            entry(start=0x1000, term=0x101C).truncate(0x1020, False, 0)

    def test_hist_before_thr_is_snapshot(self):
        mgr = HistoryManager(HistoryPolicy.THR, 64)
        e = entry()
        e.hist_snapshot = 0xABC
        assert e.hist_before(0x1010, mgr) == 0xABC

    def test_hist_before_replays_direction_pushes(self):
        mgr = HistoryManager(HistoryPolicy.GHR0, 64)
        e = entry(dir_pushes=((0x1004, False), (0x1008, True), (0x1010, False)))
        e.hist_snapshot = 0b1
        # Pushes strictly before 0x1010: NT at 0x1004, T at 0x1008.
        assert e.hist_before(0x1010, mgr) == 0b101
        # Before 0x1004: nothing replayed.
        assert e.hist_before(0x1004, mgr) == 0b1


class TestQueue:
    def test_push_pop_order(self):
        q = FTQ(4)
        a, b = entry(uid=1), entry(uid=2)
        q.push(a)
        q.push(b)
        assert q.head is a
        assert q.pop_head() is a
        assert q.head is b

    def test_full(self):
        q = FTQ(2)
        q.push(entry(uid=1))
        q.push(entry(uid=2))
        assert q.full
        with pytest.raises(RuntimeError):
            q.push(entry(uid=3))

    def test_flush_all(self):
        q = FTQ(4)
        q.push(entry(uid=1))
        q.push(entry(uid=2))
        assert q.flush_all() == 2
        assert len(q) == 0 and q.head is None

    def test_flush_younger_than(self):
        q = FTQ(8)
        entries = [entry(uid=i) for i in range(4)]
        for e in entries:
            q.push(e)
        dropped = q.flush_younger_than(entries[1])
        assert dropped == 2
        assert [e.uid for e in q] == [0, 1]

    def test_flush_younger_missing_entry_raises(self):
        q = FTQ(4)
        q.push(entry(uid=1))
        with pytest.raises(ValueError):
            q.flush_younger_than(entry(uid=99))

    def test_iteration_and_index(self):
        q = FTQ(4)
        q.push(entry(uid=5))
        assert q[0].uid == 5
        assert [e.uid for e in q] == [5]

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FTQ(0)

    def test_initial_state(self):
        assert entry().state == STATE_AWAIT_PROBE
