"""Tests for the Gshare predictor (repro.branch.gshare)."""

import pytest

from repro.branch.gshare import Gshare


class TestGshare:
    def test_rejects_bad_storage(self):
        with pytest.raises(ValueError):
            Gshare(storage_kib=0)

    def test_unseen_defaults_not_taken(self):
        assert Gshare().predict(0x4000, 0) is False

    def test_learns_bias(self):
        g = Gshare()
        for _ in range(4):
            g.update(0x4000, 0, True)
        assert g.predict(0x4000, 0) is True

    def test_hysteresis(self):
        g = Gshare()
        for _ in range(4):
            g.update(0x4000, 0, True)
        g.update(0x4000, 0, False)  # single flip shouldn't change it
        assert g.predict(0x4000, 0) is True

    def test_history_masking(self):
        g = Gshare(history_bits=4)
        # Histories equal modulo 2^4 index identically.
        h1 = 0b10101
        h2 = h1 & 0xF
        for _ in range(4):
            g.update(0x4000, h1, True)
        assert g.predict(0x4000, h2) is True

    def test_history_xor_distinguishes(self):
        g = Gshare()
        for _ in range(4):
            g.update(0x4000, 0b0001, True)
            g.update(0x4000, 0b0010, False)
        assert g.predict(0x4000, 0b0001) is True
        assert g.predict(0x4000, 0b0010) is False

    def test_storage_bits(self):
        assert Gshare(storage_kib=8).storage_bits() == 8 * 1024 * 8

    def test_counters(self):
        g = Gshare()
        g.predict(0, 0)
        g.update(0, 0, True)
        assert g.predictions == 1 and g.updates == 1
