"""Tests for the branch prediction unit and fault computation."""


from repro.branch.btb import BTB
from repro.branch.history import HistoryManager
from repro.branch.ittage import ITTAGE
from repro.common.params import HistoryPolicy, SimParams
from repro.common.stats import StatSet
from repro.frontend.bpu import WRONG_PATH, BranchPredictionUnit, compute_fault
from repro.frontend.ftq import FTQ
from repro.isa.instructions import BranchKind, Instruction
from tests.conftest import cond, jump, make_program, make_stream, seg


# ----------------------------------------------------------------------
# compute_fault: the prediction-vs-oracle divergence matrix
# ----------------------------------------------------------------------
class TestComputeFault:
    def make(self, segments, branches=None):
        return make_stream(segments), make_program(branches or {})

    def test_sequential_entry_no_fault(self):
        # Oracle run covers 0x1000..0x103C; entry covers the first block.
        stream, program = self.make([seg(0x1000, 16, 0x8000, [jump(0x103C, 0x8000)])])
        fault, cont = compute_fault(
            stream, 0, 0x1000, 0x101C, False, 0, frozenset(), program
        )
        assert fault is None and cont == 0

    def test_correct_taken_prediction_advances_segment(self):
        stream, program = self.make(
            [
                seg(0x1000, 8, 0x8000, [jump(0x101C, 0x8000)]),
                seg(0x8000, 8),
            ]
        )
        fault, cont = compute_fault(
            stream, 0, 0x1000, 0x101C, True, 0x8000, frozenset({0x101C}), program
        )
        assert fault is None and cont == 1

    def test_wrong_target(self):
        stream, program = self.make(
            [
                seg(0x1000, 8, 0x8000, [jump(0x101C, 0x8000)]),
                seg(0x8000, 8),
            ]
        )
        fault, cont = compute_fault(
            stream, 0, 0x1000, 0x101C, True, 0x9000, frozenset({0x101C}), program
        )
        assert fault is not None
        assert fault.kind_label == "wrong_target"
        assert fault.pc == 0x101C
        assert fault.correct_next == 0x8000
        assert fault.next_seg == 1
        assert fault.taken

    def test_missed_taken_at_terminator_detected(self):
        stream, program = self.make(
            [
                seg(0x1000, 8, 0x8000, [cond(0x101C, True, 0x8000)]),
                seg(0x8000, 8),
            ]
        )
        fault, _ = compute_fault(
            stream, 0, 0x1000, 0x101C, False, 0, frozenset({0x101C}), program
        )
        assert fault.kind_label == "dir_nt"
        assert fault.taken and fault.target == 0x8000

    def test_missed_taken_btb_miss(self):
        stream, program = self.make(
            [
                seg(0x1000, 8, 0x8000, [cond(0x101C, True, 0x8000)]),
                seg(0x8000, 8),
            ]
        )
        fault, _ = compute_fault(
            stream, 0, 0x1000, 0x101C, False, 0, frozenset(), program
        )
        assert fault.kind_label == "btb_miss"

    def test_missed_taken_inside_entry(self):
        stream, program = self.make(
            [
                seg(0x1000, 4, 0x8000, [jump(0x100C, 0x8000)]),
                seg(0x8000, 8),
            ]
        )
        # Prediction sails sequentially to 0x101C past the oracle jump.
        fault, _ = compute_fault(
            stream, 0, 0x1000, 0x101C, False, 0, frozenset(), program
        )
        assert fault.pc == 0x100C
        assert fault.kind_label == "btb_miss"
        assert fault.correct_next == 0x8000

    def test_predicted_taken_actually_not_taken(self):
        branches = {0x1008: Instruction(0x1008, BranchKind.COND_DIRECT, 0x9000, 0)}
        stream, program = self.make(
            [seg(0x1000, 16, 0x8000, [cond(0x1008, False, 0x9000), jump(0x103C, 0x8000)])],
            branches,
        )
        fault, _ = compute_fault(
            stream, 0, 0x1000, 0x1008, True, 0x9000, frozenset({0x1008}), program
        )
        assert fault.kind_label == "pred_taken_wrong"
        assert fault.pc == 0x1008
        assert not fault.taken
        assert fault.correct_next == 0x100C
        assert fault.next_seg == 0  # same segment continues

    def test_oracle_end_goes_wrong_path(self):
        stream, program = self.make([seg(0x1000, 8)])  # no next segment
        fault, cont = compute_fault(
            stream, 0, 0x1000, 0x101C, False, 0, frozenset(), program
        )
        assert fault is None and cont == WRONG_PATH


# ----------------------------------------------------------------------
# BranchPredictionUnit entry formation on a hand-made oracle
# ----------------------------------------------------------------------
def build_bpu(stream, program, params=None, policy=HistoryPolicy.THR):
    params = params or SimParams()
    params = params.with_frontend(history_policy=policy)
    btb = BTB(1024, 4)
    mgr = HistoryManager(policy, 64)
    ittage = ITTAGE(64)

    class StubDirection:
        """Always predicts a configured set of PCs taken."""

        def __init__(self):
            self.taken_pcs = set()

        def predict(self, pc, hist):
            return pc in self.taken_pcs

        def update(self, pc, hist, taken):
            pass

    direction = StubDirection()
    bpu = BranchPredictionUnit(params, program, stream, btb, direction, ittage, mgr, StatSet())
    return bpu, btb, direction


class TestPredictEntry:
    def test_sequential_block_when_btb_empty(self):
        stream = make_stream([seg(0x1000, 32, 0x8000, [jump(0x107C, 0x8000)]), seg(0x8000, 8)])
        program = make_program({0x107C: Instruction(0x107C, BranchKind.UNCOND_DIRECT, 0x8000)})
        bpu, btb, _ = build_bpu(stream, program)
        ftq = FTQ(8)
        bpu.cycle(0, ftq)
        first = ftq[0]
        assert first.start == 0x1000
        assert not first.pred_taken
        assert first.term_addr == 0x101C  # full aligned block
        assert first.fault is None

    def test_btb_hit_terminates_block(self):
        stream = make_stream(
            [seg(0x1000, 4, 0x8000, [jump(0x100C, 0x8000)]), seg(0x8000, 64)]
        )
        program = make_program({0x100C: Instruction(0x100C, BranchKind.UNCOND_DIRECT, 0x8000)})
        bpu, btb, _ = build_bpu(stream, program)
        btb.insert(0x100C, BranchKind.UNCOND_DIRECT, 0x8000)
        ftq = FTQ(8)
        bpu.cycle(0, ftq)
        first = ftq[0]
        assert first.pred_taken and first.pred_target == 0x8000
        assert first.term_addr == 0x100C
        assert first.fault is None
        # One taken prediction per cycle: the target entry arrives next cycle.
        bpu.cycle(1, ftq)
        assert ftq[1].start == 0x8000

    def test_conditional_needs_direction_predictor(self):
        stream = make_stream(
            [seg(0x1000, 4, 0x8000, [cond(0x100C, True, 0x8000)]), seg(0x8000, 64)]
        )
        program = make_program({0x100C: Instruction(0x100C, BranchKind.COND_DIRECT, 0x8000, 0)})
        bpu, btb, direction = build_bpu(stream, program)
        btb.insert(0x100C, BranchKind.COND_DIRECT, 0x8000)
        ftq = FTQ(8)
        bpu.cycle(0, ftq)
        # Direction predictor says not-taken -> sail past -> fault.
        assert ftq[0].fault is not None
        assert ftq[0].fault.kind_label == "dir_nt"

    def test_conditional_predicted_taken(self):
        stream = make_stream(
            [seg(0x1000, 4, 0x8000, [cond(0x100C, True, 0x8000)]), seg(0x8000, 64)]
        )
        program = make_program({0x100C: Instruction(0x100C, BranchKind.COND_DIRECT, 0x8000, 0)})
        bpu, btb, direction = build_bpu(stream, program)
        btb.insert(0x100C, BranchKind.COND_DIRECT, 0x8000)
        direction.taken_pcs.add(0x100C)
        ftq = FTQ(8)
        bpu.cycle(0, ftq)
        assert ftq[0].pred_taken
        assert ftq[0].fault is None

    def test_wrong_path_entries_marked(self):
        stream = make_stream(
            [seg(0x1000, 4, 0x8000, [jump(0x100C, 0x8000)]), seg(0x8000, 64)]
        )
        program = make_program({0x100C: Instruction(0x100C, BranchKind.UNCOND_DIRECT, 0x8000)})
        bpu, btb, _ = build_bpu(stream, program)  # empty BTB: jump missed
        ftq = FTQ(8)
        bpu.cycle(0, ftq)
        assert ftq[0].fault is not None
        assert ftq[0].fault.kind_label == "btb_miss"
        # Entries after the fault are wrong-path.
        assert all(e.cursor_seg == WRONG_PATH for e in list(ftq)[1:])

    def test_thr_history_updated_on_taken(self):
        stream = make_stream(
            [seg(0x1000, 4, 0x8000, [jump(0x100C, 0x8000)]), seg(0x8000, 64)]
        )
        program = make_program({0x100C: Instruction(0x100C, BranchKind.UNCOND_DIRECT, 0x8000)})
        bpu, btb, _ = build_bpu(stream, program)
        btb.insert(0x100C, BranchKind.UNCOND_DIRECT, 0x8000)
        ftq = FTQ(8)
        assert bpu.hist == 0
        bpu.cycle(0, ftq)
        assert bpu.hist != 0

    def test_calls_push_spec_ras(self):
        stream = make_stream(
            [seg(0x1000, 4, 0x8000, [(0x100C, BranchKind.CALL_DIRECT, True, 0x8000)]), seg(0x8000, 64)]
        )
        program = make_program({0x100C: Instruction(0x100C, BranchKind.CALL_DIRECT, 0x8000)})
        bpu, btb, _ = build_bpu(stream, program)
        btb.insert(0x100C, BranchKind.CALL_DIRECT, 0x8000)
        bpu.cycle(0, FTQ(8))
        assert bpu.ras.top() == 0x1010

    def test_resteer_applies_btb_latency(self):
        stream = make_stream([seg(0x1000, 64)])
        program = make_program({})
        bpu, _, _ = build_bpu(stream, program)
        bpu.resteer(0x2000, 0, WRONG_PATH, ready_cycle=10)
        assert bpu.stall_until == 10 + bpu.params.branch.btb_latency
        ftq = FTQ(4)
        bpu.cycle(10, ftq)
        assert len(ftq) == 0  # stalled
        bpu.cycle(bpu.stall_until, ftq)
        assert len(ftq) > 0 and ftq[0].start == 0x2000

    def test_ftq_full_stalls_without_losing_position(self):
        stream = make_stream([seg(0x1000, 640)])
        program = make_program({})
        bpu, _, _ = build_bpu(stream, program)
        ftq = FTQ(2)
        bpu.cycle(0, ftq)
        assert ftq.full
        pc_before = bpu.pc
        bpu.cycle(1, ftq)
        assert bpu.pc == pc_before
