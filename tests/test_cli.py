"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "srv_web"
        assert args.ftq == 24
        assert not args.no_pfc

    def test_run_flags(self):
        args = build_parser().parse_args(
            ["run", "--workload", "spc_fp", "--ftq", "2", "--no-pfc",
             "--btb", "1024", "--history", "GHR2", "--prefetcher", "nl1"]
        )
        assert args.workload == "spc_fp"
        assert args.btb == 1024
        assert args.history == "GHR2"

    def test_rejects_bad_history(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--history", "XYZ"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRunListFlags:
    def test_list_workloads(self, capsys):
        assert main(["run", "--list-workloads"]) == 0
        rows = [line.split() for line in capsys.readouterr().out.strip().splitlines()]
        assert ["srv_web", "synthetic", "server"] in rows
        assert all(len(row) == 3 for row in rows)

    def test_list_prefetchers(self, capsys):
        assert main(["run", "--list-prefetchers"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert "none" in lines
        assert "perfect" in lines
        assert "eip128" in lines
        assert all(" " not in line for line in lines)

    def test_list_predictors(self, capsys):
        assert main(["run", "--list-predictors"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines == sorted(["gshare", "perceptron", "perfect", "tage"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "srv_web" in out
        assert "eip128" in out
        assert "fig14" in out

    def test_run_small(self, capsys):
        code = main(
            ["run", "--workload", "spc_fp", "--warmup", "1000",
             "--instructions", "2500", "--stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC=" in out
        assert "l1i_tag_access" in out

    def test_run_with_gshare_and_prefetcher(self, capsys):
        code = main(
            ["run", "--workload", "spc_fp", "--warmup", "1000",
             "--instructions", "2500", "--direction", "gshare",
             "--prefetcher", "nl1", "--ftq", "2"]
        )
        assert code == 0

    def test_report_static_tables(self, capsys):
        assert main(["report", "table3", "table5"]) == 0
        out = capsys.readouterr().out
        assert "195 bytes" in out
        assert "Table V" in out

    def test_report_unknown_experiment(self, capsys):
        assert main(["report", "fig99"]) == 2


class TestCheckCommand:
    def test_catalogue_mode_clean(self, capsys):
        code = main(
            ["check", "--workloads", "spc_fp", "--warmup", "1000",
             "--instructions", "2500"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "spc_fp" in out and "ok" in out

    def test_rejects_unknown_workload(self):
        assert main(["check", "--workloads", "nope"]) == 2

    def test_rejects_nonpositive_fuzz_count(self):
        assert main(["check", "--fuzz", "0"]) == 2
        assert main(["check", "--fuzz", "-3"]) == 2

    def test_replay_missing_file(self):
        assert main(["check", "--replay", "/nonexistent/failure.json"]) == 2

    def test_replay_bad_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        assert main(["check", "--replay", str(path)]) == 2

    @pytest.mark.slow
    def test_fuzz_smoke(self, capsys):
        assert main(["check", "--fuzz", "2", "--seed", "0",
                     "--parallel-every", "0"]) == 0
        assert "clean" in capsys.readouterr().out
