"""Tests for RDIP and profile-guided software prefetching."""


from repro.common.params import SimParams
from repro.core.simulator import Simulator, simulate
from repro.isa.instructions import BranchKind
from repro.prefetch.profile_guided import ProfileGuidedPrefetcher, build_profile
from repro.prefetch.rdip import RDIPPrefetcher
from repro.trace.cfg import generate_program
from repro.trace.oracle import run_oracle
from tests.conftest import make_stream, seg, tiny_spec
from tests.test_prefetchers import build


class TestRDIP:
    def test_signature_tracks_call_stack(self):
        pf, *_ = build(RDIPPrefetcher)
        sig0 = pf.signature
        pf.on_commit_branch(0x4000, BranchKind.CALL_DIRECT, True, 0x8000)
        sig1 = pf.signature
        assert sig1 != sig0
        pf.on_commit_branch(0x8004, BranchKind.RETURN, True, 0x4004)
        assert pf.signature == sig0  # back to the original context

    def test_misses_recorded_per_context_and_replayed(self):
        pf, *_ = build(RDIPPrefetcher)
        pf.on_commit_branch(0x4000, BranchKind.CALL_DIRECT, True, 0x8000)
        pf.on_access(0xA000, hit=False, cycle=0)
        # Leave and re-enter the same context.
        pf.on_commit_branch(0x8004, BranchKind.RETURN, True, 0x4004)
        pf._queue.clear()
        pf._queued.clear()
        pf.on_commit_branch(0x4000, BranchKind.CALL_DIRECT, True, 0x8000)
        assert 0xA000 in pf._queue

    def test_not_taken_branches_ignored(self):
        pf, *_ = build(RDIPPrefetcher)
        sig0 = pf.signature
        pf.on_commit_branch(0x4000, BranchKind.COND_DIRECT, False, 0)
        assert pf.signature == sig0

    def test_table_bounded(self):
        pf, *_ = build(RDIPPrefetcher, table_entries=4)
        for i in range(20):
            pf.on_commit_branch(0x4000 + 16 * i, BranchKind.CALL_DIRECT, True, 0x8000)
            pf.on_access(0xA000 + 64 * i, hit=False, cycle=i)
        assert len(pf._table) <= 4

    def test_runs_end_to_end(self):
        p = SimParams(warmup_instructions=1_500, sim_instructions=4_000).replace(
            prefetcher="rdip"
        )
        assert simulate("spc_fp", p).instructions > 0


class TestBuildProfile:
    def test_attributes_misses_to_earlier_branch(self):
        # One jump at 0x1008, then a long run: the run's misses should be
        # attributed to that branch once 'distance' instructions passed.
        stream = make_stream(
            [
                seg(0x1000, 3, 0x8000, [(0x1008, BranchKind.UNCOND_DIRECT, True, 0x8000)]),
                seg(0x8000, 600),
            ]
        )
        profile = build_profile(stream, training_instructions=600, distance=10, l1i_lines=4, assoc=1)
        assert 0x1008 in profile
        assert profile[0x1008]

    def test_respects_training_window(self):
        stream = make_stream([seg(0x1000, 5_000)])
        profile = build_profile(stream, training_instructions=100)
        # No branches at all -> no triggers.
        assert profile == {}

    def test_lines_per_trigger_bounded(self):
        stream = make_stream(
            [
                seg(0x1000, 3, 0x8000, [(0x1008, BranchKind.UNCOND_DIRECT, True, 0x8000)]),
                seg(0x8000, 4_000),
            ]
        )
        profile = build_profile(stream, training_instructions=4_000, l1i_lines=4, assoc=1)
        assert all(len(lines) <= 8 for lines in profile.values())


class TestProfileGuided:
    def test_trigger_fires_prefetches(self):
        pf, *_ = build(ProfileGuidedPrefetcher)
        pf.profile = {0x4000: [0xA000, 0xB000]}
        pf.on_commit_branch(0x4000, BranchKind.COND_DIRECT, True, 0x5000)
        assert pf.triggers_fired == 1
        assert 0xA000 in pf._queue and 0xB000 in pf._queue

    def test_non_trigger_does_nothing(self):
        pf, *_ = build(ProfileGuidedPrefetcher)
        pf.profile = {0x4000: [0xA000]}
        pf.on_commit_branch(0x9999 & ~3, BranchKind.COND_DIRECT, True, 0)
        assert pf.pending == 0

    def test_simulator_builds_profile_from_warmup(self):
        program = generate_program(tiny_spec(), seed=61)
        stream = run_oracle(program, 8_000, seed=62)
        params = SimParams(warmup_instructions=2_000, sim_instructions=4_000).replace(
            prefetcher="profile_guided"
        )
        sim = Simulator(params, program, stream)
        assert isinstance(sim.prefetcher, ProfileGuidedPrefetcher)
        result = sim.run("t")
        assert result.instructions > 0

    def test_zero_storage_cost(self):
        pf, *_ = build(ProfileGuidedPrefetcher)
        assert pf.storage_bits() == 0
