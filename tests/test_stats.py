"""Unit tests for repro.common.stats."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.stats import StatSet, amean, geomean, speedup, summarize, weighted_mean


class TestStatSet:
    def test_bump_and_get(self):
        s = StatSet()
        s.bump("x")
        s.bump("x", 4)
        assert s.get("x") == 5
        assert s["x"] == 5

    def test_missing_is_zero(self):
        assert StatSet().get("nope") == 0

    def test_contains(self):
        s = StatSet()
        assert "a" not in s
        s.bump("a", 0)
        assert "a" in s

    def test_set_overwrites(self):
        s = StatSet()
        s.bump("a", 10)
        s.set("a", 3)
        assert s.get("a") == 3

    def test_names_sorted(self):
        s = StatSet()
        s.bump("b")
        s.bump("a")
        assert s.names() == ["a", "b"]

    def test_merge(self):
        a, b = StatSet(), StatSet()
        a.bump("x", 1)
        b.bump("x", 2)
        b.bump("y", 3)
        a.merge(b)
        assert a.get("x") == 3 and a.get("y") == 3

    def test_per_kilo(self):
        s = StatSet()
        s.set("miss", 5)
        s.set("instr", 1000)
        assert s.per_kilo("miss", "instr") == 5.0

    def test_per_kilo_zero_denominator(self):
        assert StatSet().per_kilo("a", "b") == 0.0

    def test_ratio(self):
        s = StatSet()
        s.set("a", 3)
        s.set("b", 4)
        assert s.ratio("a", "b") == 0.75

    def test_as_dict_is_copy(self):
        s = StatSet()
        s.bump("a")
        d = s.as_dict()
        d["a"] = 99
        assert s.get("a") == 1


class TestAggregates:
    def test_geomean_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geomean_identity(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_geomean_empty_raises(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_amean(self):
        assert amean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_amean_empty_raises(self):
        with pytest.raises(ValueError):
            amean([])

    def test_speedup(self):
        assert speedup(2.0, 1.0) == pytest.approx(2.0)

    def test_speedup_bad_baseline(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_weighted_mean(self):
        assert weighted_mean([(1.0, 1.0), (3.0, 3.0)]) == pytest.approx(2.5)

    def test_weighted_mean_zero_weights(self):
        with pytest.raises(ValueError):
            weighted_mean([(1.0, 0.0)])

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=1, max_size=30))
    def test_geomean_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=1, max_size=30))
    def test_geomean_le_amean(self, values):
        assert geomean(values) <= amean(values) + 1e-9


class TestSummarize:
    def test_extracts_subset(self):
        a, b = StatSet(), StatSet()
        a.set("x", 1)
        b.set("x", 2)
        out = summarize({"a": a, "b": b}, ["x", "y"])
        assert out == {"a": {"x": 1, "y": 0}, "b": {"x": 2, "y": 0}}
