"""Tests for the two-level BTB hierarchy (repro.branch.btb2l)."""

import pytest

from repro.branch.btb import BTB
from repro.branch.btb2l import TwoLevelBTB
from repro.isa.instructions import BranchKind


def make(l1=16, l2=64, extra=2):
    return TwoLevelBTB(l1, 4, l2, 4, extra)


class TestConstruction:
    def test_rejects_l1_not_smaller(self):
        with pytest.raises(ValueError):
            TwoLevelBTB(64, 4, 64, 4)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            TwoLevelBTB(16, 4, 64, 4, l2_extra_latency=-1)

    def test_capacity(self):
        assert make().n_entries == 80


class TestHierarchy:
    def test_insert_lands_in_both_levels(self):
        btb = make()
        btb.insert(0x4000, BranchKind.UNCOND_DIRECT, 0x8000)
        assert btb.l1.contains(0x4000)
        assert btb.l2.contains(0x4000)
        assert btb.contains(0x4000)

    def test_l1_hit_not_flagged(self):
        btb = make()
        btb.insert(0x4000, BranchKind.UNCOND_DIRECT, 0x8000)
        assert btb.lookup(0x4000) is not None
        assert not btb.was_l2_sourced(0x4000)

    def test_l2_hit_flagged_and_promoted(self):
        btb = make()
        btb.l2.insert(0x4000, BranchKind.UNCOND_DIRECT, 0x8000)
        entry = btb.lookup(0x4000)
        assert entry is not None
        assert btb.was_l2_sourced(0x4000)
        assert btb.l1.contains(0x4000)
        assert btb.promotions == 1

    def test_promotion_flag_cleared_on_l1_hit(self):
        btb = make()
        btb.l2.insert(0x4000, BranchKind.UNCOND_DIRECT, 0x8000)
        btb.lookup(0x4000)
        btb.lookup(0x4000)  # now an L1 hit
        assert not btb.was_l2_sourced(0x4000)

    def test_demotion_on_l1_eviction(self):
        btb = TwoLevelBTB(8, 2, 64, 4)  # 4 L1 sets x 2 ways
        span = btb.l1.n_sets * 16
        addrs = [0x4000 + i * span for i in range(2)]  # fill one L1 set
        for a in addrs:
            btb.l1.insert(a, BranchKind.UNCOND_DIRECT, 0x100)
        # Insert through the hierarchy: the L1 victim falls back to L2.
        btb.insert(0x4000 + 2 * span, BranchKind.UNCOND_DIRECT, 0x100)
        assert btb.demotions >= 1
        assert all(btb.contains(a) for a in addrs)

    def test_scan_block_merges_levels(self):
        btb = make()
        btb.l1.insert(0x4004, BranchKind.COND_DIRECT, 0x100)
        btb.l2.insert(0x4010, BranchKind.RETURN, 0)
        found = btb.scan_block(0x4000, 0x401C)
        assert [e.addr for e in found] == [0x4004, 0x4010]
        assert not btb.was_l2_sourced(0x4004)
        assert btb.was_l2_sourced(0x4010)

    def test_invalidate_both_levels(self):
        btb = make()
        btb.insert(0x4000, BranchKind.RETURN, 0)
        assert btb.invalidate(0x4000)
        assert not btb.contains(0x4000)

    def test_reset_stats(self):
        btb = make()
        btb.l2.insert(0x4000, BranchKind.RETURN, 0)
        btb.lookup(0x4000)
        btb.reset_stats()
        assert btb.promotions == 0


class TestSingleLevelInterface:
    def test_plain_btb_never_l2_sourced(self):
        btb = BTB(64, 4)
        btb.insert(0x4000, BranchKind.RETURN, 0)
        btb.lookup(0x4000)
        assert not btb.was_l2_sourced(0x4000)


class TestSimulatorIntegration:
    def test_two_level_runs_and_charges_latency(self):
        from repro.common.params import SimParams
        from repro.core.simulator import simulate

        p = SimParams(warmup_instructions=2_000, sim_instructions=6_000).with_branch(
            btb_l1_entries=64, btb_l2_extra_latency=3
        )
        r = simulate("srv_web", p)
        assert r.instructions > 0
        # A 64-entry L1 in front of a server branch footprint must spill.
        assert r.stats.get("btb_l2_taken_predictions") > 0
