"""Property-based tests for the memory substrate against reference models."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import MemoryParams
from repro.common.stats import StatSet
from repro.memory.hierarchy import InstructionMemory
from repro.memory.mshr import MSHRFile
from repro.memory.tlb import TLB

addr_stream = st.lists(st.integers(min_value=0, max_value=1 << 15), min_size=1, max_size=150)


@settings(max_examples=25, deadline=None)
@given(addrs=addr_stream)
def test_tlb_matches_reference_lru(addrs):
    tlb = TLB(4, 4096, miss_latency=9)
    reference: OrderedDict[int, None] = OrderedDict()
    for addr in addrs:
        page = addr & ~4095
        expect_hit = page in reference
        latency = tlb.translate(addr)
        assert (latency == 0) == expect_hit
        if expect_hit:
            reference.move_to_end(page)
        else:
            if len(reference) >= 4:
                reference.popitem(last=False)
            reference[page] = None


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=6), st.integers(min_value=0, max_value=60)),
        min_size=1,
        max_size=120,
    )
)
def test_mshr_occupancy_never_exceeds_capacity(ops):
    mshr = MSHRFile(4)
    cycle = 0
    for kind, line_idx in ops:
        line = line_idx * 64
        cycle += 1
        if kind == 0:
            mshr.pop_ready(cycle)
        else:
            mshr.allocate(line, cycle, cycle + kind * 3, is_prefetch=kind % 2 == 0)
        assert len(mshr) <= 4
        # Lines are unique keys.
        lines = [e.line for e in mshr._by_line.values()]
        assert len(lines) == len(set(lines))


@settings(max_examples=15, deadline=None)
@given(addrs=addr_stream)
def test_hierarchy_probe_fill_consistency(addrs):
    """After any demand sequence with periodic ticks: every completed
    demand line is L1-resident unless evicted; hit/miss counters add up."""
    stats = StatSet()
    mem = InstructionMemory(MemoryParams(l1i_kib=1, l1i_assoc=2, mshr_entries=4), stats)
    cycle = 0
    for addr in addrs:
        cycle += 3
        mem.demand_probe(addr, cycle)
        if cycle % 5 == 0:
            mem.tick(cycle + 10_000)
    mem.tick(cycle + 100_000)
    probes = stats.get("l1i_hit") + stats.get("l1i_tag_miss")
    assert probes == len(addrs)
    assert stats.get("l1i_miss") + stats.get("l1i_miss_secondary") <= stats.get("l1i_tag_miss")
    # Occupancy can never exceed capacity.
    assert mem.l1i.occupancy <= mem.l1i.n_sets * mem.l1i.assoc


@settings(max_examples=15, deadline=None)
@given(addrs=addr_stream)
def test_perfect_mode_always_hits(addrs):
    stats = StatSet()
    mem = InstructionMemory(MemoryParams(), stats)
    mem.perfect = True
    for i, addr in enumerate(addrs):
        result = mem.demand_probe(addr, i)
        assert result.hit
    assert stats.get("mshr_stall") == 0
