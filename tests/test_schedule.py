"""Tests for the declarative stage schedule and kernel builder."""

from pathlib import Path

import pytest

from repro.common.params import SimParams
from repro.core import schedule
from repro.core.schedule import (
    CYCLE_SCHEDULE,
    FEATURES,
    SchedulePoint,
    active_points,
    build_kernel,
    kernel_source,
    validate_stage_interfaces,
)
from repro.core.simulator import Simulator, simulate
from repro.trace.workloads import make_trace

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def small_sim(**kwargs) -> Simulator:
    params = SimParams(warmup_instructions=1_000, sim_instructions=2_000, **kwargs)
    program, stream = make_trace("spc_fp", 3_000)
    return Simulator(params, program, stream)


class TestSchedule:
    def test_stage_order_matches_docstring(self):
        names = [p.name for p in CYCLE_SCHEDULE]
        assert names == [
            "profile_prologue",
            "telemetry_clock",
            "memory_fill",
            "retire_count",
            "backend_retire",
            "measure_boundary",
            "telemetry_tick",
            "fetch",
            "predict",
            "probe",
            "prefetch",
            "invariant_sweep",
            "idle_skip",
            "livelock_guard",
        ]

    def test_six_stages(self):
        stages = [p for p in CYCLE_SCHEDULE if p.kind == "stage"]
        assert len(stages) == 6

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="stage|hook"):
            SchedulePoint("x", "thing", ())

    def test_bad_feature_rejected(self):
        with pytest.raises(ValueError, match="unknown feature"):
            SchedulePoint("x", "hook", (), requires="warp_drive")

    def test_active_points_unknown_feature(self):
        with pytest.raises(ValueError, match="unknown feature"):
            active_points(frozenset({"warp_drive"}))


class TestKernelSource:
    def test_plain_kernel_has_no_observer_hooks(self):
        src = kernel_source(frozenset())
        assert "tel" not in src
        assert "check_cycle" not in src
        assert "prefetcher_cycle" not in src

    def test_feature_composition(self):
        src = kernel_source(frozenset(FEATURES))
        assert "tel.now = cycle" in src
        assert "check_cycle(cycle)" in src
        assert "prefetcher_cycle(cycle)" in src

    def test_kernels_memoised(self):
        assert build_kernel(frozenset()) is build_kernel(frozenset())
        assert build_kernel(frozenset({"checker"})) is not build_kernel(frozenset())

    def test_exactly_one_cycle_loop_in_codebase(self):
        # The acceptance criterion: one loop body, generated from the
        # schedule, instead of hand-copied variants.
        hits = []
        for path in SRC.rglob("*.py"):
            for i, line in enumerate(path.read_text().splitlines(), 1):
                if "while backend.committed < target" in line:
                    hits.append(f"{path.name}:{i}")
        assert len(hits) == 1 and hits[0].startswith("schedule.py:"), hits


class TestKernelExecution:
    def test_bit_identity_across_observers(self):
        params = SimParams(warmup_instructions=1_000, sim_instructions=2_000)
        plain = simulate("spc_fp", params)
        checked = simulate("spc_fp", params.replace(check_invariants=True))
        assert checked.instructions == plain.instructions
        assert checked.cycles == plain.cycles
        assert checked.stats.as_dict() == plain.stats.as_dict()

    def test_active_features_reflect_wiring(self):
        assert small_sim().active_features() == frozenset()
        assert small_sim(prefetcher="nl1").active_features() == frozenset({"prefetcher"})
        assert small_sim(check_invariants=True).active_features() == frozenset({"checker"})

    def test_stage_interfaces_conform(self):
        assert validate_stage_interfaces(small_sim()) == []
        assert (
            validate_stage_interfaces(
                small_sim(prefetcher="nl1", check_invariants=True)
            )
            == []
        )

    def test_stage_interface_violation_detected(self):
        sim = small_sim()
        del sim.fetch  # break the fetch/probe/memory_fill bindings
        problems = validate_stage_interfaces(sim)
        assert problems
        assert any("fetch" in p for p in problems)


class TestLivelockError:
    def test_message_carries_attribution(self):
        sim = small_sim(prefetcher="nl1")
        sim.workload_name = "spc_fp"
        sim.cycle = 123_456
        err = sim._livelock_error(3_000)
        message = str(err)
        assert isinstance(err, RuntimeError)
        assert "livelock" in message
        assert "spc_fp" in message
        assert "/3000 instructions committed" in message
        assert "prefetcher='nl1'" in message
        assert "ftq_entries=24" in message
        assert "history='THR'" in message

    def test_guard_raises_through_kernel(self):
        sim = small_sim()
        sim.workload_name = "spc_fp"
        kernel = build_kernel(sim.active_features())
        with pytest.raises(RuntimeError, match="livelock.*spc_fp"):
            kernel(sim, target=3_000, warmup=1_000, guard=50)

    def test_schedule_module_exports(self):
        # The schedule is the single source of truth other layers import.
        for name in ("CYCLE_SCHEDULE", "FEATURES", "build_kernel", "kernel_source"):
            assert hasattr(schedule, name)
