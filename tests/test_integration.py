"""Cross-module integration and property tests.

Drives the full simulator over randomly generated tiny programs and
checks invariants that must hold for *any* program: committed stream
fidelity, stat consistency, determinism, and architectural orderings
(perfect structures never hurt, penalties never help).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.params import HistoryPolicy, SimParams
from repro.core.simulator import Simulator
from repro.trace.cfg import generate_program
from repro.trace.oracle import run_oracle
from tests.conftest import tiny_spec


def build(seed, **spec_overrides):
    program = generate_program(tiny_spec(**spec_overrides), seed=seed)
    stream = run_oracle(program, 6_000, seed=seed + 1)
    return program, stream


def fast(**kw):
    return SimParams(warmup_instructions=1_000, sim_instructions=3_500, **kw)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2_000))
def test_simulator_invariants_for_random_programs(seed):
    program, stream = build(seed)
    sim = Simulator(fast(), program, stream)
    result = sim.run("rand")

    # The backend committed exactly the oracle prefix.
    assert sim.backend.committed == sim.trainer.committed
    assert result.instructions > 0

    # Wrong-path work never commits.
    assert result.stats.get("wrong_path_consumed") == 0

    # Mispredict classification is exhaustive.
    total = result.stats.get("branch_mispredictions")
    parts = sum(
        result.stats.get(f"mispredict_{k}")
        for k in ("pred_taken_wrong", "wrong_target", "dir_nt", "btb_miss")
    )
    assert total == parts

    # Cycle accounting is sane.
    assert result.cycles >= result.instructions / (
        result.params.core.retire_width + 0.001
    ) - 2


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2_000))
def test_commit_stream_fidelity(seed):
    """Every committed instruction advances the oracle exactly in order."""
    program, stream = build(seed)
    sim = Simulator(fast(), program, stream)
    sim.run("rand")
    trainer = sim.trainer
    # The trainer's cursor sits within the stream and its committed count
    # equals the cumulative prefix it has walked.
    assert trainer.committed == stream.cumulative[trainer.seg_idx] + trainer.pos


@settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=1_000))
def test_perfect_structures_never_increase_mispredicts(seed):
    program, stream = build(seed)
    real = Simulator(fast(), program, stream).run("r")
    oracle = Simulator(
        fast().with_branch(perfect_btb=True, perfect_direction=True, perfect_indirect=True),
        program,
        stream,
    ).run("o")
    assert oracle.stats.get("branch_mispredictions") <= real.stats.get("branch_mispredictions")
    assert oracle.stats.get("branch_mispredictions") == 0


class TestCrossConfigOrderings:
    @pytest.fixture(scope="class")
    def trace(self):
        return build(99, n_functions=30, functions_per_phase=10)

    def test_deeper_ftq_not_slower(self, trace):
        program, stream = trace
        shallow = Simulator(fast().with_frontend(ftq_entries=4), program, stream).run("s")
        deep = Simulator(fast().with_frontend(ftq_entries=24), program, stream).run("d")
        assert deep.ipc >= shallow.ipc * 0.98  # allow tiny noise

    def test_wrong_path_ablation_reduces_traffic(self, trace):
        program, stream = trace
        on = Simulator(fast(), program, stream).run("on")
        off = Simulator(fast().with_frontend(wrong_path_fills=False), program, stream).run("off")
        assert off.stats.get("l1i_tag_access") <= on.stats.get("l1i_tag_access")

    def test_history_policies_all_commit_same_stream(self, trace):
        program, stream = trace
        counts = set()
        for policy in HistoryPolicy:
            sim = Simulator(fast().with_frontend(history_policy=policy), program, stream)
            sim.run("p")
            counts.add(sim.backend.committed)
        assert len(counts) == 1

    def test_prefetchers_do_not_change_commit_stream(self, trace):
        program, stream = trace
        counts = set()
        for pf in ("none", "nl1", "fnl_mma", "perfect"):
            sim = Simulator(fast().replace(prefetcher=pf), program, stream)
            sim.run("p")
            counts.add(sim.backend.committed)
        assert len(counts) == 1

    def test_slower_memory_never_faster(self, trace):
        program, stream = trace
        quick = Simulator(fast(), program, stream).run("q")
        slow = Simulator(
            fast().with_memory(l2_latency=40, dram_latency=400), program, stream
        ).run("s")
        assert slow.cycles >= quick.cycles

    def test_two_level_btb_commits_same_stream(self, trace):
        program, stream = trace
        flat = Simulator(fast(), program, stream)
        flat.run("f")
        two = Simulator(fast().with_branch(btb_l1_entries=128), program, stream)
        two.run("t")
        assert flat.backend.committed == two.backend.committed
