"""Tests for the perceptron direction predictor (repro.branch.perceptron)."""

import pytest

from repro.branch.perceptron import Perceptron


class TestConstruction:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            Perceptron(storage_kib=0)
        with pytest.raises(ValueError):
            Perceptron(history_bits=0)

    def test_threshold_formula(self):
        p = Perceptron(history_bits=31)
        assert p.threshold == int(1.93 * 31 + 14)

    def test_storage_bits(self):
        p = Perceptron(storage_kib=8, history_bits=31)
        assert p.storage_bits() == p.n_rows * 32 * 8


class TestLearning:
    def test_learns_bias(self):
        p = Perceptron()
        for _ in range(10):
            p.update(0x4000, 0, True)
        assert p.predict(0x4000, 0) is True
        for _ in range(30):
            p.update(0x4000, 0, False)
        assert p.predict(0x4000, 0) is False

    def test_learns_single_history_correlation(self):
        """Outcome equals history bit 3: linearly separable."""
        p = Perceptron()
        for i in range(400):
            hist = i & 0xFF
            taken = bool((hist >> 3) & 1)
            p.update(0x4000, hist, taken)
        correct = 0
        for hist in range(256):
            if p.predict(0x4000, hist) == bool((hist >> 3) & 1):
                correct += 1
        assert correct / 256 > 0.95

    def test_stops_training_beyond_threshold(self):
        p = Perceptron(history_bits=4)
        for _ in range(1000):
            p.update(0x4000, 0, True)
        # Bias saturates well below the hard clamp because training
        # stops once |output| > theta.
        assert p._row(0x4000)[0] <= p.threshold + 1

    def test_weights_clamped(self):
        p = Perceptron(history_bits=2)
        p.threshold = 10**9  # force continuous training
        for _ in range(1000):
            p.update(0x4000, 0b11, True)
        assert all(-128 <= w <= 127 for w in p._row(0x4000))

    def test_counters(self):
        p = Perceptron()
        p.predict(0, 0)
        p.update(0, 0, True)
        assert p.predictions == 1 and p.updates == 1


class TestSimulatorIntegration:
    def test_perceptron_runs_end_to_end(self):
        from repro.common.params import DirectionPredictorKind, SimParams
        from repro.core.simulator import simulate

        p = SimParams(warmup_instructions=1_500, sim_instructions=4_000).with_branch(
            direction_kind=DirectionPredictorKind.PERCEPTRON
        )
        r = simulate("spc_fp", p)
        assert r.instructions > 0
