"""Unit tests for repro.common.params."""

import pytest

from repro.common.params import (
    BranchPredictorParams,
    CoreParams,
    DirectionPredictorKind,
    FrontendParams,
    HistoryPolicy,
    MemoryParams,
    SimParams,
)


class TestHistoryPolicy:
    def test_thr_is_target_history(self):
        assert HistoryPolicy.THR.uses_target_history
        assert not HistoryPolicy.GHR0.uses_target_history

    def test_allocation_policies(self):
        assert not HistoryPolicy.THR.allocates_all_branches
        assert not HistoryPolicy.GHR0.allocates_all_branches
        assert HistoryPolicy.GHR1.allocates_all_branches
        assert not HistoryPolicy.GHR2.allocates_all_branches
        assert HistoryPolicy.GHR3.allocates_all_branches

    def test_fixup_policies(self):
        fixers = {p for p in HistoryPolicy if p.fixes_not_taken_history}
        assert fixers == {HistoryPolicy.GHR2, HistoryPolicy.GHR3}


class TestBranchPredictorParams:
    def test_defaults_valid(self):
        p = BranchPredictorParams()
        assert p.btb_entries % p.btb_assoc == 0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BranchPredictorParams(btb_entries=100, btb_assoc=3)

    def test_rejects_zero_latency(self):
        with pytest.raises(ValueError):
            BranchPredictorParams(btb_latency=0)

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError):
            BranchPredictorParams(btb_entries=-4)

    def test_direction_kind_string_coerced(self):
        p = BranchPredictorParams(direction_kind="gshare")
        assert p.direction_kind is DirectionPredictorKind.GSHARE

    def test_direction_kind_custom_string_kept(self):
        # Unknown names stay strings: resolved (or rejected) by the
        # registry at build time, so plugins can register new kinds.
        assert BranchPredictorParams(direction_kind="my_plugin").direction_kind == "my_plugin"

    def test_btb_variant_default_auto(self):
        assert BranchPredictorParams().btb_variant == "auto"

    def test_btb_variant_two_level_requires_l1(self):
        with pytest.raises(ValueError, match="btb_l1_entries"):
            BranchPredictorParams(btb_variant="two_level")
        p = BranchPredictorParams(btb_variant="two_level", btb_l1_entries=64)
        assert p.btb_variant == "two_level"

    def test_history_policy_string_coerced(self):
        f = FrontendParams(history_policy="GHR2")
        assert f.history_policy is HistoryPolicy.GHR2


class TestFrontendParams:
    def test_fdp_enabled_by_depth(self):
        assert FrontendParams(ftq_entries=24).fdp_enabled
        assert not FrontendParams(ftq_entries=2).fdp_enabled

    def test_instrs_per_block(self):
        assert FrontendParams(block_bytes=32).instrs_per_block == 8
        assert FrontendParams(block_bytes=16).instrs_per_block == 4

    def test_rejects_tiny_ftq(self):
        with pytest.raises(ValueError):
            FrontendParams(ftq_entries=1)

    def test_rejects_odd_block(self):
        with pytest.raises(ValueError):
            FrontendParams(block_bytes=24)

    def test_rejects_small_decode_queue(self):
        with pytest.raises(ValueError):
            FrontendParams(fetch_width=6, decode_queue_size=4)


class TestMemoryParams:
    def test_line_counts(self):
        m = MemoryParams(l1i_kib=32, line_bytes=64)
        assert m.l1i_lines == 512

    def test_rejects_bad_line_size(self):
        with pytest.raises(ValueError):
            MemoryParams(line_bytes=48)


class TestCoreParams:
    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            CoreParams(retire_width=0)

    def test_rejects_zero_penalty(self):
        with pytest.raises(ValueError):
            CoreParams(mispredict_penalty=0)


class TestSimParams:
    def test_hashable_for_caching(self):
        a = SimParams()
        b = SimParams()
        assert hash(a) == hash(b)
        assert a == b

    def test_with_helpers_do_not_mutate(self):
        base = SimParams()
        derived = base.with_branch(btb_entries=1024)
        assert base.branch.btb_entries == 8192
        assert derived.branch.btb_entries == 1024

    def test_with_frontend(self):
        p = SimParams().with_frontend(ftq_entries=4)
        assert p.frontend.ftq_entries == 4

    def test_with_memory(self):
        p = SimParams().with_memory(l1i_kib=64)
        assert p.memory.l1i_kib == 64

    def test_with_core(self):
        p = SimParams().with_core(mispredict_penalty=20)
        assert p.core.mispredict_penalty == 20

    def test_replace_prefetcher(self):
        p = SimParams().replace(prefetcher="nl1")
        assert p.prefetcher == "nl1"

    def test_label_contains_key_facts(self):
        p = SimParams()
        label = p.label()
        assert "fdp" in label and "THR" in label and "btb8k" in label
        assert "nofdp" in p.with_frontend(ftq_entries=2).label()

    def test_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            SimParams(sim_instructions=0)
        with pytest.raises(ValueError):
            SimParams(warmup_instructions=-1)

    def test_direction_kind_enum(self):
        p = SimParams().with_branch(direction_kind=DirectionPredictorKind.GSHARE)
        assert p.branch.direction_kind is DirectionPredictorKind.GSHARE

    def test_rejects_unknown_warmup_mode(self):
        with pytest.raises(ValueError):
            SimParams(warmup_mode="sideways")

    def test_check_invariants_defaults_off(self):
        assert not SimParams().check_invariants
        assert SimParams().replace(check_invariants=True).check_invariants


class TestMoreRejectionPaths:
    def test_rejects_l1_btb_not_smaller(self):
        with pytest.raises(ValueError):
            BranchPredictorParams(btb_entries=1024, btb_l1_entries=1024)

    def test_rejects_l1_btb_bad_geometry(self):
        with pytest.raises(ValueError):
            BranchPredictorParams(btb_entries=2048, btb_l1_entries=100, btb_l1_assoc=3)

    def test_rejects_negative_two_level_latency(self):
        with pytest.raises(ValueError):
            BranchPredictorParams(btb_l2_extra_latency=-1)

    def test_rejects_nonpositive_widths(self):
        with pytest.raises(ValueError):
            FrontendParams(fetch_width=0)
        with pytest.raises(ValueError):
            FrontendParams(predict_width=0)

    def test_rejects_nonpositive_cache_sizes(self):
        with pytest.raises(ValueError):
            MemoryParams(l1i_kib=0)
        with pytest.raises(ValueError):
            MemoryParams(l2_kib=-1)
