"""Tests for the loop predictor (repro.branch.loop)."""

import pytest

from repro.branch.loop import CONFIDENT, LoopPredictor


def train_loop(lp: LoopPredictor, pc: int, trip: int, repetitions: int) -> None:
    for _ in range(repetitions):
        for _ in range(trip - 1):
            lp.train(pc, True)
        lp.train(pc, False)


class TestTraining:
    def test_confidence_builds_on_stable_trip(self):
        lp = LoopPredictor(16)
        train_loop(lp, 0x100, trip=5, repetitions=CONFIDENT + 1)
        assert lp.confident(0x100)

    def test_unstable_trip_never_confident(self):
        lp = LoopPredictor(16)
        for trip in (4, 7, 5, 9, 6, 8):
            train_loop(lp, 0x100, trip=trip, repetitions=1)
        assert not lp.confident(0x100)

    def test_never_taken_branch_not_tracked(self):
        lp = LoopPredictor(16)
        for _ in range(10):
            lp.train(0x100, False)
        assert len(lp) == 0

    def test_runaway_loop_resets(self):
        lp = LoopPredictor(16)
        for _ in range(1 << 14):
            lp.train(0x100, True)
        assert not lp.confident(0x100)

    def test_capacity_bounded(self):
        lp = LoopPredictor(4)
        for i in range(16):
            train_loop(lp, 0x100 + 4 * i, trip=3, repetitions=1)
        assert len(lp) <= 4

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            LoopPredictor(0)


class TestPrediction:
    def test_defers_until_confident(self):
        lp = LoopPredictor(16)
        train_loop(lp, 0x100, trip=5, repetitions=1)
        assert lp.predict(0x100) is None

    def test_predicts_exact_exit(self):
        lp = LoopPredictor(16)
        train_loop(lp, 0x100, trip=4, repetitions=CONFIDENT + 1)
        lp.flush_spec()
        assert [lp.predict(0x100) for _ in range(4)] == [True, True, True, False]
        # And the next loop instance again.
        assert [lp.predict(0x100) for _ in range(4)] == [True, True, True, False]

    def test_unknown_pc_defers(self):
        assert LoopPredictor(16).predict(0x999) is None

    def test_flush_resyncs_speculative_count(self):
        lp = LoopPredictor(16)
        train_loop(lp, 0x100, trip=6, repetitions=CONFIDENT + 1)
        lp.flush_spec()
        lp.predict(0x100)
        lp.predict(0x100)  # speculated 2 iterations
        lp.flush_spec()    # none of them committed
        preds = [lp.predict(0x100) for _ in range(6)]
        assert preds == [True] * 5 + [False]

    def test_storage_bits(self):
        assert LoopPredictor(256).storage_bits() == 256 * 60


class TestSimulatorIntegration:
    def test_loop_predictor_runs_end_to_end(self):
        from repro.common.params import SimParams
        from repro.core.simulator import simulate

        p = SimParams(warmup_instructions=2_000, sim_instructions=6_000).with_branch(
            loop_predictor_entries=256
        )
        r = simulate("spc_fp", p)
        assert r.instructions > 0
