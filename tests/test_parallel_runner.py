"""Parallel sweep execution: determinism, caching, and the jobs knob."""

import pytest

from repro.common.params import SimParams
from repro.experiments.cache import CACHE_STATS
from repro.experiments.configs import repro_jobs
from repro.experiments.runner import clear_cache, run_config, run_matrix

WORKLOADS = ["spc_fp", "srv_web"]


def fast():
    return SimParams(warmup_instructions=1_000, sim_instructions=2_500)


def configs():
    # perfect_btb exercises the precompiled-metadata candidate scan and
    # (with PFC on by default) the bisect-based pre-decoder, so the
    # determinism check below also pins those rewrites bit-identical.
    return {
        "base": fast(),
        "big_btb": fast().with_branch(btb_entries=1024),
        "perfect_btb": fast().with_branch(perfect_btb=True),
    }


def flatten(results):
    """Reduce a run_matrix result to comparable (numbers, counters) rows."""
    return {
        (label, wl): (r.instructions, r.cycles, r.stats.as_dict())
        for label, row in results.items()
        for wl, r in row.items()
    }


@pytest.fixture(autouse=True)
def isolated(monkeypatch, tmp_path):
    """Fresh memo + private disk cache directory per test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_cache()
    yield
    clear_cache()


class TestJobsKnob:
    def test_default_is_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert repro_jobs() == (os.cpu_count() or 1)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert repro_jobs() == 4

    @pytest.mark.parametrize("bad", ["0", "-2", "many"])
    def test_invalid_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_JOBS", bad)
        with pytest.raises(ValueError):
            repro_jobs()


class TestParallelDeterminism:
    def test_parallel_matches_serial(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
        serial = flatten(run_matrix(configs(), WORKLOADS, jobs=1))

        clear_cache()
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
        parallel = flatten(run_matrix(configs(), WORKLOADS, jobs=4))

        assert serial == parallel

    def test_jobs_env_drives_run_matrix(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        results = run_matrix(configs(), ["spc_fp"])
        assert set(results) == {"base", "big_btb", "perfect_btb"}


class TestWarmCache:
    def test_second_run_simulates_nothing(self):
        before = CACHE_STATS.get("sim_runs")
        first = flatten(run_matrix(configs(), WORKLOADS, jobs=1))
        cold_sims = CACHE_STATS.get("sim_runs") - before
        assert cold_sims == len(first)

        clear_cache()  # drop the memo; only the disk cache stays warm
        mid = CACHE_STATS.get("sim_runs")
        second = flatten(run_matrix(configs(), WORKLOADS, jobs=1))
        assert CACHE_STATS.get("sim_runs") == mid  # zero new simulations
        assert second == first

    def test_memo_hits_skip_disk(self):
        p = fast()
        a = run_config("spc_fp", p)
        hits = CACHE_STATS.get("cache_memo_hit")
        b = run_config("spc_fp", p)
        assert a is b
        assert CACHE_STATS.get("cache_memo_hit") == hits + 1

    def test_disk_disabled_still_runs(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        before = CACHE_STATS.get("sim_runs")
        run_config("spc_fp", fast())
        clear_cache()
        run_config("spc_fp", fast())
        assert CACHE_STATS.get("sim_runs") == before + 2  # no disk to warm from
