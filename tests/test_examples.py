"""Smoke tests: every example script must run to completion.

Marked slow: each example simulates tens of thousands of instructions.
Windows are shrunk via the scripts' own defaults where possible; the
point is end-to-end executability of the documented entry points.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None):
    script = EXAMPLES / name
    old_argv = sys.argv
    sys.argv = [str(script)] + (argv or [])
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py", ["spc_fp"])
        out = capsys.readouterr().out
        assert "speedup over baseline" in out

    def test_frontend_sizing(self, capsys):
        run_example("frontend_sizing.py", ["spc_fp"])
        out = capsys.readouterr().out
        assert "FTQ depth" in out and "BTB capacity" in out

    def test_custom_workload(self, capsys):
        run_example("custom_workload.py")
        out = capsys.readouterr().out
        assert "round-tripped" in out

    def test_history_policies(self, capsys):
        run_example("history_policies.py", ["spc_fp"])
        out = capsys.readouterr().out
        assert "THR" in out and "branch MPKI" in out

    def test_prefetcher_shootout(self, capsys):
        run_example("prefetcher_shootout.py")
        out = capsys.readouterr().out
        assert "FDP (24-entry FTQ)" in out
