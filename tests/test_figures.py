"""Structural tests for the per-figure experiment functions.

These run with a tiny window and a single workload, checking the shape
of each function's output and a few monotonicity properties that must
hold even at miniature scale.  Full-scale values live in results/ and
EXPERIMENTS.md.
"""

import pytest

from repro.experiments import figures
from repro.experiments.runner import clear_cache


@pytest.fixture(autouse=True)
def small_runs(monkeypatch):
    monkeypatch.setenv("REPRO_WORKLOADS", "clt_browser")
    monkeypatch.setenv("REPRO_WARMUP", "1500")
    monkeypatch.setenv("REPRO_SIM", "4000")
    clear_cache()
    yield
    clear_cache()


class TestFig1:
    def test_rows_and_fdp_presence(self):
        data = figures.fig1()
        labels = [r[0] for r in data["rows"]]
        assert "fdp" in labels and "perfect" in labels
        assert all(len(r) == 2 for r in data["rows"])


class TestFig6:
    def test_fig6a_fdp_beats_baseline(self):
        data = figures.fig6a()
        rows = {r[0]: r[1] for r in data["rows"]}
        assert rows["fdp"] > 0
        assert rows["perfect"] > 0

    def test_fig6b_one_row_per_workload(self):
        data = figures.fig6b()
        assert [r[0] for r in data["rows"]] == ["clt_browser"]
        assert len(data["rows"][0]) == 4


class TestFig7:
    def test_sweep_covers_btb_sizes(self):
        data = figures.fig7()
        assert [r[0] for r in data["rows"]] == figures.BTB_SWEEP

    def test_pfc_gain_larger_for_small_btb(self):
        data = figures.fig7()
        gains = {r[0]: r[1] for r in data["rows"]}
        assert gains[256] > gains[32768]

    def test_mpki_decreases_with_capacity(self):
        data = figures.fig7()
        mpki_off = [r[2] for r in data["rows"]]
        assert mpki_off[0] >= mpki_off[-1]


class TestFig8:
    def test_all_policies_and_pfc_states(self):
        data = figures.fig8()
        assert len(data["rows"]) == 12
        anchor = next(r for r in data["rows"] if r[0] == "THR" and r[1] == "on")
        assert anchor[2] == pytest.approx(0.0)

    def test_ghr2_worst(self):
        data = figures.fig8()
        perf = {(r[0], r[1]): r[2] for r in data["rows"]}
        assert perf[("GHR2", "on")] < perf[("THR", "on")]
        assert perf[("GHR2", "on")] < perf[("GHR0", "on")]


class TestFig9:
    def test_eip_config_has_more_tag_accesses(self):
        data = figures.fig9()
        rows = {r[0]: r for r in data["rows"]}
        assert rows["fdp/btb4k+eip27"][4] > rows["fdp/btb8k"][4]


class TestFig11:
    def test_fdp_beats_nofdp_at_every_capacity(self):
        data = figures.fig11()
        for _, nofdp, fdp, _ in data["rows"]:
            assert fdp >= nofdp


class TestFig12:
    def test_perfect_all_best(self):
        data = figures.fig12()
        rows = {r[0]: r for r in data["rows"]}
        assert rows["perfall"][2] >= rows["tage18k"][2]
        assert rows["perfall"][3] == pytest.approx(0.0)  # no mispredicts


class TestFig13:
    def test_anchor_is_zero(self):
        data = figures.fig13()
        rows = {r[0]: r[1] for r in data["rows"]}
        assert rows["B12"] == pytest.approx(0.0)
        assert rows["lat2"] == pytest.approx(0.0)

    def test_slower_btb_not_faster(self):
        data = figures.fig13()
        rows = {r[0]: r[1] for r in data["rows"]}
        assert rows["lat4"] <= rows["lat1"] + 0.5


class TestFig14:
    def test_speedup_monotone_up_to_noise(self):
        data = figures.fig14()
        speedups = [r[1] for r in data["rows"]]
        assert speedups[0] == pytest.approx(0.0)
        assert speedups[-1] >= speedups[1]

    def test_exposed_fraction_decreases(self):
        data = figures.fig14()
        exposed = [r[5] for r in data["rows"]]
        assert exposed[-1] <= exposed[0]

    def test_registry_complete(self):
        assert set(figures.ALL_EXPERIMENTS) == {
            "fig1", "table1", "table2", "table3", "table4", "table5",
            "fig6a", "fig6b", "fig7", "fig8", "fig9", "fig10",
            "fig11", "fig12", "fig13", "fig14",
        }
