"""Characterisation tests for the full workload catalogue.

These pin the properties the evaluation relies on: footprint ordering
across categories, taken-branch densities in a realistic band, phase
recurrence within the simulated window, and deterministic regeneration.
Run at reduced window sizes so the whole file stays fast.
"""

import pytest

from repro.trace import default_workloads, make_trace

WINDOW = 40_000


@pytest.fixture(scope="module")
def traces():
    return {wl.name: (wl, *make_trace(wl.name, WINDOW)) for wl in default_workloads()}


def _touched_lines(stream, limit=WINDOW):
    lines = set()
    n = 0
    for seg in stream.segments:
        addr = seg.start
        for i in range(seg.n_instrs):
            lines.add((addr + 4 * i) & ~63)
        n += seg.n_instrs
        if n >= limit:
            break
    return lines


class TestFootprints:
    def test_server_biggest_spec_smallest(self, traces):
        sizes = {}
        for name, (wl, program, stream) in traces.items():
            sizes[wl.category] = sizes.get(wl.category, 0) + len(_touched_lines(stream))
        assert sizes["server"] / 3 > sizes["spec"] / 3

    def test_every_workload_exceeds_half_l1i(self, traces):
        for name, (wl, program, stream) in traces.items():
            touched = len(_touched_lines(stream)) * 64
            assert touched > 16 * 1024, f"{name} touches only {touched} bytes"


class TestBranchCharacter:
    def test_taken_density_in_band(self, traces):
        for name, (wl, program, stream) in traces.items():
            per_ki = 1000.0 * stream.total_taken / stream.total_instructions
            assert 40 <= per_ki <= 160, f"{name}: {per_ki:.0f} taken/KI"

    def test_branch_density_in_band(self, traces):
        for name, (wl, program, stream) in traces.items():
            per_ki = 1000.0 * stream.total_branches / stream.total_instructions
            assert 60 <= per_ki <= 220, f"{name}: {per_ki:.0f} branches/KI"

    def test_spec_most_predictable_mix(self, traces):
        """SPEC-like programs carry the smallest random fraction."""
        fractions = {}
        for name, (wl, program, stream) in traces.items():
            fractions.setdefault(wl.category, []).append(wl.program_spec.frac_random)
        assert max(fractions["spec"]) <= min(fractions["server"])


class TestRecurrence:
    def test_phase_tour_recurs_within_default_run(self):
        """Temporal prefetchers need the tour to repeat inside the
        default 85K-instruction evaluation window."""
        run_length = 85_000
        for wl in default_workloads():
            program, stream = make_trace(wl.name, run_length)
            visits = 0
            n = 0
            for seg in stream.segments:
                if seg.start == program.entry:
                    visits += 1
                n += seg.n_instrs
                if n >= run_length:
                    break
            assert visits >= 2, f"{wl.name}: tour never recurs in {run_length} instructions"


class TestDeterminism:
    def test_regeneration_is_stable(self):
        for wl in default_workloads()[:3]:
            a_prog, a_stream = make_trace(wl.name, 10_000)
            make_trace.__wrapped__ if hasattr(make_trace, "__wrapped__") else None
            # Bypass the cache by regenerating from the spec directly.
            from repro.trace.cfg import generate_program
            from repro.trace.oracle import run_oracle

            b_prog = generate_program(wl.program_spec, wl.program_seed)
            b_stream = run_oracle(b_prog, 10_000 + 4_000, wl.oracle_seed)
            assert a_prog.code_end == b_prog.code_end
            n = min(len(a_stream.segments), 200)
            assert [(s.start, s.n_instrs) for s in a_stream.segments[:n]] == [
                (s.start, s.n_instrs) for s in b_stream.segments[:n]
            ]
