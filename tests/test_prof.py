"""Stage-profiler and trend-report tests.

Pins the observability contract for the ``profile`` kernel feature: a
profiled run is bit-identical to a plain one (the timers only observe),
every composed stage/hook gets wrapped, and the CLI surfaces exit
cleanly.  Also covers ``repro bench --trend`` over synthetic history.
"""

import json

import pytest

from repro.common.params import SimParams
from repro.core.batch import batchable
from repro.core.prof import StageProfiler
from repro.core.schedule import kernel_source, profiled_points
from repro.core.simulator import simulate
from repro.experiments.bench import load_history, machine_key, trend_report

WORKLOAD = "srv_web"


def fast(**overrides):
    params = SimParams(warmup_instructions=2_000, sim_instructions=6_000)
    for method, kwargs in overrides.items():
        params = getattr(params, method)(**kwargs)
    return params


def comparable(result):
    return (result.instructions, result.cycles, result.stats.as_dict())


class TestBitIdentity:
    def test_profiled_run_matches_plain(self):
        params = fast()
        plain = simulate(WORKLOAD, params)
        profiled = simulate(WORKLOAD, params, profiler=StageProfiler())
        assert comparable(plain) == comparable(profiled)

    def test_profiled_run_matches_plain_with_prefetcher(self):
        params = fast().replace(prefetcher="nl1")
        plain = simulate(WORKLOAD, params)
        profiled = simulate(WORKLOAD, params, profiler=StageProfiler())
        assert comparable(plain) == comparable(profiled)


class TestAccumulation:
    def test_every_composed_stage_accumulates(self):
        profiler = StageProfiler()
        simulate(WORKLOAD, fast(), profiler=profiler)
        assert profiler.point_names  # bound by the Simulator constructor
        assert len(profiler.acc) == len(profiler.point_names)
        assert profiler.total_self_ns > 0
        # core stages must have run every cycle and cost something
        by_name = dict(zip(profiler.point_names, profiler.acc))
        for stage in ("fetch", "predict", "backend_retire"):
            assert by_name[stage] > 0

    def test_rows_sorted_and_shares_sum(self):
        profiler = StageProfiler()
        simulate(WORKLOAD, fast(), profiler=profiler)
        rows = profiler.rows()
        costs = [r["self_ns"] for r in rows]
        assert costs == sorted(costs, reverse=True)
        assert sum(r["share"] for r in rows) == pytest.approx(1.0)
        assert all(r["ns_per_cycle"] >= 0 for r in rows)

    def test_report_shape(self):
        profiler = StageProfiler()
        result = simulate(WORKLOAD, fast(), profiler=profiler)
        report = profiler.report()
        assert report["cycles"] >= result.cycles
        assert report["total_self_ns"] == profiler.total_self_ns
        assert {r["stage"] for r in report["stages"]} == set(profiler.point_names)

    def test_deterministic_clock_attribution(self):
        ticks = iter(range(0, 10_000_000, 1))
        profiler = StageProfiler(clock=lambda: next(ticks))
        simulate(WORKLOAD, fast(), profiler=profiler)
        # every wrapped body costs exactly 1 fake tick per execution, so
        # per-cycle stages accumulate exactly `cycles` ticks
        by_name = dict(zip(profiler.point_names, profiler.acc))
        assert by_name["fetch"] == profiler.cycles
        assert by_name["predict"] == profiler.cycles


class TestKernelComposition:
    def test_profile_kernel_wraps_bodies(self):
        src = kernel_source(frozenset({"profile"}))
        assert "_pt = _clk()" in src
        assert "_pacc[" in src
        # one accumulator slot per profiled point
        points = profiled_points(frozenset({"profile"}))
        assert all(f"_pacc[{i}]" in src for i in range(len(points)))

    def test_plain_kernel_has_no_profiling(self):
        src = kernel_source(frozenset())
        assert "_clk" not in src and "_pacc" not in src

    def test_profile_excludes_idle_skip(self):
        src = kernel_source(frozenset({"profile"}))
        assert "idle_for" not in src  # fast-forward stands aside

    def test_profiler_not_batchable(self):
        ok, reason = batchable(fast(), profiler=StageProfiler())
        assert not ok
        assert "profiler" in reason


class TestProfileCli:
    def test_profile_exit_zero_and_table(self, capsys, tmp_path):
        from repro.cli import main

        out_json = tmp_path / "prof.json"
        code = main(
            ["profile", "--workload", WORKLOAD, "--warmup", "2000",
             "--instructions", "6000", "--json", str(out_json)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Stage self-time" in out
        payload = json.loads(out_json.read_text())
        assert payload["workload"] == WORKLOAD
        assert payload["stages"] and payload["total_self_ns"] > 0


def history_record(ts, machine, mode, geo, workloads):
    return {
        "timestamp": ts,
        "schema": 2,
        "platform": {"machine": machine, "implementation": "CPython", "python": "3.11"},
        "mode": mode,
        "aggregate": {"geomean_instructions_per_second": geo},
        "workloads": workloads,
    }


class TestTrend:
    def test_load_history_skips_garbage(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        good = history_record("2026-01-01", "x86_64", "scalar", 100.0, {"a": 100.0})
        path.write_text(json.dumps(good) + "\n{nope\n[1,2]\n")
        records = load_history(path)
        assert len(records) == 1

    def test_load_history_missing_file(self, tmp_path):
        assert load_history(tmp_path / "none.jsonl") == []

    def test_groups_by_machine_and_mode(self):
        records = [
            history_record("t1", "x86_64", "scalar", 100.0, {"a": 100.0}),
            history_record("t2", "x86_64", "batched", 200.0, {"a": 200.0}),
            history_record("t3", "arm64", "scalar", 300.0, {"a": 300.0}),
        ]
        trend = trend_report(records)
        assert len(trend) == 3
        assert len({machine_key(r) for r in records}) == 3

    def test_deltas_vs_previous_and_window(self):
        records = [
            history_record("t1", "x86_64", "scalar", 100.0, {"a": 100.0, "b": 50.0}),
            history_record("t2", "x86_64", "scalar", 110.0, {"a": 121.0, "b": 50.0}),
            history_record("t3", "x86_64", "scalar", 99.0, {"a": 121.0, "b": 40.0}),
        ]
        (group,) = trend_report(records).values()
        deltas = [r["delta_vs_prev"] for r in group["rows"]]
        assert deltas[0] is None
        assert deltas[1] == pytest.approx(0.10)
        assert deltas[2] == pytest.approx(-0.10)
        assert group["geomean_delta_window"] == pytest.approx(-0.01)
        assert group["workload_delta_window"]["a"] == pytest.approx(0.21)
        assert group["workload_delta_window"]["b"] == pytest.approx(-0.20)

    def test_window_limits_rows(self):
        records = [
            history_record(f"t{i}", "x86_64", "scalar", 100.0 + i, {"a": 1.0})
            for i in range(15)
        ]
        (group,) = trend_report(records, last=5).values()
        assert group["entries"] == 15
        assert group["window"] == len(group["rows"]) == 5
        assert group["rows"][0]["timestamp"] == "t10"

    def test_trend_cli_exit_zero(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "hist.jsonl"
        with path.open("w") as fh:
            for i in range(3):
                fh.write(
                    json.dumps(
                        history_record(
                            f"2026-01-0{i + 1}", "x86_64", "scalar",
                            100.0 + 10 * i, {"a": 100.0 + 10 * i},
                        )
                    )
                    + "\n"
                )
        assert main(["bench", "--trend", "--history", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Bench trend" in out and "+10.0%" in out

        assert main(["bench", "--trend", "--history", str(tmp_path / "none")]) == 0
        assert "no benchmark history" in capsys.readouterr().out
