"""Unit tests for repro.common.bits."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common.bits import (
    INSTR_BYTES,
    align_down,
    block_addr,
    block_offset,
    fold,
    line_addr,
    mix64,
    target_hash,
)


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_distinct_inputs_differ(self):
        assert mix64(1) != mix64(2)

    def test_fits_64_bits(self):
        assert 0 <= mix64(2**200) < 2**64

    @given(st.integers(min_value=0, max_value=2**256))
    def test_range_property(self, x):
        assert 0 <= mix64(x) < 2**64

    def test_zero(self):
        assert mix64(0) == 0


class TestFold:
    def test_zero_bits(self):
        assert fold(12345, 0) == 0

    def test_within_range(self):
        for bits in (1, 5, 10, 16):
            assert 0 <= fold(2**300 - 1, bits) < 2**bits

    def test_deterministic(self):
        assert fold(999, 10) == fold(999, 10)

    @given(st.integers(min_value=0, max_value=2**400), st.integers(min_value=1, max_value=32))
    def test_range(self, value, bits):
        assert 0 <= fold(value, bits) < 2**bits

    def test_long_values_spread(self):
        # Folding consecutive long histories should not collapse to a
        # single bucket.
        outs = {fold((1 << 200) + i, 10) for i in range(64)}
        assert len(outs) > 16


class TestAlignment:
    def test_align_down(self):
        assert align_down(0x1234, 16) == 0x1230
        assert align_down(0x1230, 16) == 0x1230

    def test_block_addr_default_32(self):
        assert block_addr(0x103C) == 0x1020

    def test_block_offset(self):
        assert block_offset(0x1020) == 0
        assert block_offset(0x1024) == 1
        assert block_offset(0x103C) == 7

    def test_line_addr(self):
        assert line_addr(0x10FF) == 0x10C0

    @given(st.integers(min_value=0, max_value=2**48))
    def test_block_contains_addr(self, addr):
        addr &= ~3
        base = block_addr(addr)
        assert base <= addr < base + 32
        assert block_offset(addr) == (addr - base) // INSTR_BYTES


class TestTargetHash:
    def test_matches_paper_equation(self):
        pc, target = 0x4000, 0x5008
        assert target_hash(pc, target) == (pc >> 2) ^ (target >> 3)

    def test_differs_by_target(self):
        assert target_hash(0x4000, 0x5000) != target_hash(0x4000, 0x6000)
