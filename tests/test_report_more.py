"""Additional rendering tests: wide cells, mixed types, real figures."""

from repro.experiments.report import render_table


class TestRenderEdgeCases:
    def test_wide_cells_extend_columns(self):
        text = render_table("T", ["a"], [["a-very-long-cell-value"]])
        header, sep, row = text.splitlines()[1:]
        assert len(sep) >= len("a-very-long-cell-value")

    def test_mixed_numeric_types(self):
        text = render_table("T", ["x", "y"], [[1, 1.5], [2, 2.0]])
        assert "1.50" in text and "2.00" in text

    def test_no_rows(self):
        text = render_table("T", ["x"], [])
        assert text.splitlines()[0] == "== T =="

    def test_bool_and_none_cells(self):
        text = render_table("T", ["x", "y"], [[True, None]])
        assert "True" in text and "None" in text

    def test_alignment_consistent(self):
        text = render_table("T", ["aa", "b"], [["x", "yyyy"], ["zzz", "w"]])
        lines = text.splitlines()[1:]
        # Column boundary at the same offset on every line.
        boundary = {line.index("|" if "|" in line else "+") for line in lines}
        assert len(boundary) == 1
