"""Tests for the workload catalogue (repro.trace.workloads)."""

import pytest

from repro.trace.workloads import (
    TRACE_SLACK,
    WorkloadSpec,
    default_workloads,
    make_trace,
    workload_by_name,
)
from tests.conftest import tiny_spec


class TestCatalogue:
    def test_eight_workloads_three_categories(self):
        workloads = default_workloads()
        assert len(workloads) == 8
        assert {w.category for w in workloads} == {"server", "client", "spec"}

    def test_names_unique(self):
        names = [w.name for w in default_workloads()]
        assert len(names) == len(set(names))

    def test_lookup_by_name(self):
        assert workload_by_name("srv_web").category == "server"

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            workload_by_name("srv_missing")

    def test_rejects_bad_category(self):
        with pytest.raises(ValueError):
            WorkloadSpec("x", "desktop", tiny_spec(), 1, 2)


class TestMakeTrace:
    def test_includes_slack(self):
        _, stream = make_trace("spc_fp", 5_000)
        assert stream.total_instructions >= 5_000 + TRACE_SLACK

    def test_cached_identity(self):
        a = make_trace("spc_fp", 5_000)
        b = make_trace("spc_fp", 5_000)
        assert a[0] is b[0] and a[1] is b[1]

    def test_accepts_spec_object(self):
        wl = workload_by_name("spc_fp")
        program, stream = make_trace(wl, 5_000)
        assert program.footprint_bytes > 0

    def test_deterministic_across_lengths(self):
        """A longer trace extends, not perturbs, a shorter one."""
        _, short = make_trace("spc_fp", 3_000)
        _, long = make_trace("spc_fp", 6_000)
        n = min(200, len(short.segments) - 1)
        assert [(s.start, s.n_instrs) for s in short.segments[:n]] == [
            (s.start, s.n_instrs) for s in long.segments[:n]
        ]


class TestCategoryCharacter:
    def test_server_footprint_exceeds_l1i(self):
        for name in ("srv_web", "srv_db", "srv_cache"):
            program, stream = make_trace(name, 60_000)
            lines = set()
            for seg in stream.segments:
                addr = seg.start
                for i in range(seg.n_instrs):
                    lines.add((addr + 4 * i) & ~63)
            assert len(lines) * 64 > 32 * 1024, name

    def test_spec_smaller_than_server(self):
        srv, _ = make_trace("srv_web", 20_000)
        spc, _ = make_trace("spc_int_a", 20_000)
        assert spc.footprint_bytes < srv.footprint_bytes


@pytest.mark.slow
class TestSelectionRule:
    def test_perfect_icache_uplift_exceeds_5_percent(self):
        """The paper only keeps workloads whose perfect-I-cache uplift
        exceeds 5% (Section V); our catalogue must satisfy the same."""
        from repro.common.params import SimParams
        from repro.core.simulator import simulate

        base = SimParams(warmup_instructions=10_000, sim_instructions=25_000).with_frontend(
            ftq_entries=2, pfc_enabled=False
        )
        perfect = base.replace(prefetcher="perfect")
        for wl in default_workloads():
            r0 = simulate(wl.name, base)
            r1 = simulate(wl.name, perfect)
            assert r1.ipc / r0.ipc > 1.05, wl.name
