"""Tests for the oracle interpreter (repro.trace.oracle)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instructions import BranchKind
from repro.trace.cfg import generate_program
from repro.trace.oracle import run_oracle
from tests.conftest import tiny_spec


@pytest.fixture(scope="module")
def trace():
    program = generate_program(tiny_spec(), seed=7)
    return program, run_oracle(program, 5_000, seed=11)


class TestSegments:
    def test_instruction_count_reaches_target(self, trace):
        _, stream = trace
        assert stream.total_instructions >= 5_000
        assert stream.total_instructions == sum(s.n_instrs for s in stream.segments)

    def test_segments_link(self, trace):
        _, stream = trace
        for a, b in zip(stream.segments, stream.segments[1:]):
            assert a.next_start == b.start

    def test_taken_terminators(self, trace):
        _, stream = trace
        for seg in stream.segments[:-1]:
            taken = seg.taken_branch
            assert taken is not None
            addr, kind, is_taken, target = taken
            assert is_taken
            assert addr == seg.end
            assert target == seg.next_start

    def test_branch_addresses_inside_segment(self, trace):
        _, stream = trace
        for seg in stream.segments:
            for addr, _, _, _ in seg.branches:
                assert seg.start <= addr <= seg.end
                assert (addr - seg.start) % 4 == 0

    def test_intermediate_branches_not_taken(self, trace):
        _, stream = trace
        for seg in stream.segments:
            for addr, kind, taken, _ in seg.branches[:-1]:
                assert not taken
                assert kind is BranchKind.COND_DIRECT

    def test_branches_match_static_image(self, trace):
        program, stream = trace
        for seg in stream.segments:
            for addr, kind, _, _ in seg.branches:
                instr = program.instruction_at(addr)
                assert instr is not None and instr.kind == kind

    def test_non_branch_slots_have_no_branch_instances(self, trace):
        program, stream = trace
        for seg in stream.segments[:50]:
            recorded = {a for a, _, _, _ in seg.branches}
            addr = seg.start
            while addr <= seg.end:
                if program.instruction_at(addr) is not None:
                    assert addr in recorded
                else:
                    assert addr not in recorded
                addr += 4

    def test_call_return_balance(self, trace):
        """Returns never outnumber calls at any prefix (explicit stack)."""
        _, stream = trace
        depth = 0
        for seg in stream.segments:
            for _, kind, taken, _ in seg.branches:
                if not taken:
                    continue
                if kind.is_call:
                    depth += 1
                elif kind.is_return:
                    depth -= 1
                assert depth >= 0

    def test_counts_consistent(self, trace):
        _, stream = trace
        branches = sum(len(s.branches) for s in stream.segments)
        taken = sum(1 for s in stream.segments for b in s.branches if b[2])
        assert stream.total_branches == branches
        assert stream.total_taken == taken


class TestCumulativeIndex:
    def test_cumulative_monotone(self, trace):
        _, stream = trace
        cum = stream.cumulative
        assert cum[0] == 0
        assert all(a < b for a, b in zip(cum, cum[1:]))

    def test_segment_at_instruction(self, trace):
        _, stream = trace
        for n in (0, 1, 100, 2_500, stream.total_instructions - 1):
            idx = stream.segment_at_instruction(n)
            assert stream.cumulative[idx] <= n
            assert n < stream.cumulative[idx] + stream.segments[idx].n_instrs


class TestDeterminism:
    def test_same_seed_identical(self):
        program = generate_program(tiny_spec(), seed=9)
        a = run_oracle(program, 3_000, seed=5)
        b = run_oracle(program, 3_000, seed=5)
        assert [(s.start, s.n_instrs, s.next_start) for s in a.segments] == [
            (s.start, s.n_instrs, s.next_start) for s in b.segments
        ]

    def test_different_oracle_seed_differs(self):
        program = generate_program(tiny_spec(), seed=9)
        a = run_oracle(program, 3_000, seed=5)
        b = run_oracle(program, 3_000, seed=6)
        assert [(s.start, s.n_instrs) for s in a.segments] != [
            (s.start, s.n_instrs) for s in b.segments
        ]

    def test_rerun_resets_behaviours(self):
        program = generate_program(tiny_spec(), seed=9)
        a = run_oracle(program, 3_000, seed=5)
        # Second run on the same program object must match (behaviour
        # state is reset internally).
        b = run_oracle(program, 3_000, seed=5)
        assert a.total_taken == b.total_taken


class TestValidation:
    def test_rejects_nonpositive_window(self):
        program = generate_program(tiny_spec(), seed=1)
        with pytest.raises(ValueError):
            run_oracle(program, 0)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_oracle_terminates_and_links_for_any_seed(seed):
    program = generate_program(tiny_spec(), seed=seed)
    stream = run_oracle(program, 2_000, seed=seed + 1)
    assert stream.total_instructions >= 2_000
    for a, b in zip(stream.segments, stream.segments[1:]):
        assert a.next_start == b.start
