"""API-surface tests: exports, docstrings, and module hygiene."""

import importlib
import inspect

import pytest

import repro

MODULES = [
    "repro",
    "repro.common.bits",
    "repro.common.log",
    "repro.common.params",
    "repro.common.rng",
    "repro.common.stats",
    "repro.common.telemetry",
    "repro.isa.instructions",
    "repro.trace.behaviors",
    "repro.trace.cfg",
    "repro.trace.fbmeta",
    "repro.trace.oracle",
    "repro.trace.reader",
    "repro.trace.workloads",
    "repro.memory.cache",
    "repro.memory.hierarchy",
    "repro.memory.mshr",
    "repro.memory.tlb",
    "repro.branch.btb",
    "repro.branch.btb2l",
    "repro.branch.gshare",
    "repro.branch.history",
    "repro.branch.ittage",
    "repro.branch.loop",
    "repro.branch.perceptron",
    "repro.branch.ras",
    "repro.branch.tage",
    "repro.frontend.bpu",
    "repro.frontend.fetch",
    "repro.frontend.ftq",
    "repro.prefetch.base",
    "repro.prefetch.djolt",
    "repro.prefetch.eip",
    "repro.prefetch.fnl_mma",
    "repro.prefetch.next_line",
    "repro.prefetch.profile_guided",
    "repro.prefetch.rdip",
    "repro.prefetch.sn4l_dis_btb",
    "repro.common.registry",
    "repro.core.backend",
    "repro.core.batch",
    "repro.core.build",
    "repro.core.metrics",
    "repro.core.schedule",
    "repro.core.simulator",
    "repro.experiments.analysis",
    "repro.experiments.bench",
    "repro.experiments.cache",
    "repro.experiments.configs",
    "repro.experiments.figures",
    "repro.experiments.report",
    "repro.experiments.runner",
    "repro.experiments.viz",
    "repro.cli",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_importable_and_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", MODULES)
def test_public_classes_and_functions_documented(name):
    module = importlib.import_module(name)
    for attr_name, attr in vars(module).items():
        if attr_name.startswith("_"):
            continue
        if inspect.getmodule(attr) is not module:
            continue  # re-exports documented at their home
        if inspect.isclass(attr) or inspect.isfunction(attr):
            assert attr.__doc__, f"{name}.{attr_name} lacks a docstring"


class TestTopLevelExports:
    def test_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_quickstart_symbols(self):
        # The README quickstart must keep working.
        from repro import SimParams, simulate  # noqa: F401

        params = SimParams()
        assert params.frontend.ftq_entries == 24
