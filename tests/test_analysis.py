"""Tests for the ablation analyses (repro.experiments.analysis)."""

import pytest

from repro.experiments.analysis import (
    ALL_ABLATIONS,
    fdp_attribution,
    loop_predictor_ablation,
    prefetcher_quality,
    two_level_btb,
)
from repro.experiments.runner import clear_cache


@pytest.fixture(autouse=True)
def small_runs(monkeypatch):
    monkeypatch.setenv("REPRO_WORKLOADS", "spc_fp")
    monkeypatch.setenv("REPRO_WARMUP", "1200")
    monkeypatch.setenv("REPRO_SIM", "3000")
    clear_cache()
    yield
    clear_cache()


class TestFdpAttribution:
    def test_structure(self):
        data = fdp_attribution()
        assert data["headers"][0] == "step"
        assert len(data["rows"]) == 5

    def test_baseline_row_is_zero(self):
        data = fdp_attribution()
        assert data["rows"][0][1] == pytest.approx(0.0)

    def test_marginals_sum_to_total(self):
        data = fdp_attribution()
        # marginal contributions accumulate into each row's total
        running = 0.0
        for row in data["rows"]:
            running += row[2]
            assert row[1] == pytest.approx(running, abs=1e-6)

    def test_full_fdp_beats_baseline(self):
        data = fdp_attribution()
        full = next(r for r in data["rows"] if r[0] == "+PFC (full FDP)")
        assert full[1] > 0


class TestPrefetcherQuality:
    def test_metrics_bounded(self):
        data = prefetcher_quality()
        for name, speedup, accuracy, coverage, late in data["rows"]:
            assert 0.0 <= accuracy <= 100.0
            assert coverage <= 100.0
            assert late >= 0

    def test_covers_all_prefetchers(self):
        names = {row[0] for row in prefetcher_quality()["rows"]}
        assert {"nl1", "eip27", "eip128", "fnl_mma", "djolt", "rdip", "sn4l_dis", "profile_guided"} == names


class TestTwoLevelBTB:
    def test_flat_8k_beats_flat_512(self):
        data = two_level_btb()
        rows = {r[0]: r for r in data["rows"]}
        assert rows["flat 8K"][1] >= rows["flat 512"][1]

    def test_l2_sourced_counts_present_for_hierarchy(self):
        data = two_level_btb()
        rows = {r[0]: r for r in data["rows"]}
        assert rows["flat 8K"][3] == 0  # flat BTBs never report L2 sources


class TestLoopAblation:
    def test_row_per_workload(self):
        data = loop_predictor_ablation()
        assert [r[0] for r in data["rows"]] == ["spc_fp"]


class TestRegistry:
    def test_all_ablations_named(self):
        assert set(ALL_ABLATIONS) == {
            "abl_fdp_components",
            "abl_prefetcher_quality",
            "abl_two_level_btb",
            "abl_loop_predictor",
            "abl_direction_zoo",
        }
