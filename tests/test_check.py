"""Tests for the correctness harness (repro.check)."""

import json
import random

import pytest

from repro.check import (
    CommitRecorder,
    DifferentialDivergence,
    InvariantViolation,
    build_trial,
    check_workload,
    load_reproducer,
    replay,
    run_differential,
    write_reproducer,
)
from repro.check.differential import flatten_branches
from repro.check.fuzz import FuzzTrial, fuzz, random_params, random_spec, run_trial
from repro.check.reproducer import (
    failure_to_dict,
    params_from_dict,
    params_to_dict,
    spec_from_dict,
    spec_to_dict,
)
from repro.core.simulator import Simulator
from repro.trace.oracle import run_oracle
from tests.conftest import fast_params, tiny_spec
from repro.trace.cfg import generate_program


def checked_params(**overrides):
    params = fast_params(**overrides)
    return params.replace(check_invariants=True, warmup_mode="cycle")


@pytest.fixture
def trace9k():
    program = generate_program(tiny_spec(), seed=7)
    return program, run_oracle(program, 9_000, seed=11)


@pytest.fixture
def tiny_sim(trace9k):
    program, stream = trace9k
    return Simulator(checked_params(), program, stream)


class TestInvariantChecker:
    def test_attached_only_when_requested(self, trace9k):
        program, stream = trace9k
        assert Simulator(checked_params(), program, stream).checker is not None
        assert Simulator(fast_params(), program, stream).checker is None

    def test_clean_run_sweeps_every_cycle(self, trace9k):
        program, stream = trace9k
        sim = Simulator(checked_params(), program, stream)
        result = sim.run()
        assert result.instructions >= 6_000
        assert sim.checker.cycles_checked >= result.cycles

    def test_checked_run_is_bit_identical(self, trace9k):
        program, stream = trace9k
        checked = Simulator(checked_params(), program, stream).run()
        plain = Simulator(
            fast_params().replace(warmup_mode="cycle"), program, stream
        ).run()
        assert checked.cycles == plain.cycles
        assert checked.instructions == plain.instructions
        assert checked.stats.as_dict() == plain.stats.as_dict()

    def test_detects_corrupt_cache_set(self, tiny_sim):
        tiny_sim.memory.l1i._sets[0].append(12345)  # misaligned, wrong set
        with pytest.raises(InvariantViolation) as exc:
            tiny_sim.checker.check_cycle(2048)  # heavy sweep includes caches
        assert "misaligned" in str(exc.value)
        assert exc.value.cycle == 2048

    def test_detects_corrupt_decode_queue(self, tiny_sim):
        tiny_sim.decode_queue.total_instrs += 3
        with pytest.raises(InvariantViolation) as exc:
            tiny_sim.checker.check_cycle(0)
        assert "decode-queue" in str(exc.value)

    def test_detects_trainer_divergence(self, tiny_sim):
        tiny_sim.trainer.committed += 1
        with pytest.raises(InvariantViolation) as exc:
            tiny_sim.checker.check_cycle(0)
        assert "trainer" in str(exc.value)


class TestDifferential:
    def test_catalogue_workload_clean(self):
        report = check_workload("srv_web", checked_params())
        assert report.branches_checked > 100
        assert report.committed_instructions >= 8_000

    def test_run_differential_clean(self, trace9k):
        program, stream = trace9k
        expected = run_oracle(program, 9_000, seed=11)  # independent regen
        result, report = run_differential(checked_params(), program, stream, expected)
        assert report.branches_checked > 0
        assert result.instructions >= 6_000

    def test_detects_tampered_direction(self, trace9k):
        program, stream = trace9k
        sim = Simulator(fast_params().replace(warmup_mode="cycle"), program, stream)
        expected = flatten_branches(run_oracle(program, 9_000, seed=11))
        addr, kind, taken, target = expected[5]
        expected[5] = (addr, kind, not taken, target)
        CommitRecorder(sim.trainer, expected)
        with pytest.raises(DifferentialDivergence) as exc:
            sim.run()
        assert "branch #5" in str(exc.value)

    def test_detects_truncated_oracle(self, trace9k):
        program, stream = trace9k
        sim = Simulator(fast_params().replace(warmup_mode="cycle"), program, stream)
        expected = flatten_branches(run_oracle(program, 9_000, seed=11))[:10]
        CommitRecorder(sim.trainer, expected)
        with pytest.raises(DifferentialDivergence) as exc:
            sim.run()
        assert "longer than the oracle" in str(exc.value)

    def test_recorder_chains_existing_listener(self, trace9k):
        program, stream = trace9k
        sim = Simulator(fast_params().replace(warmup_mode="cycle"), program, stream)
        seen = []
        sim.trainer.branch_listener = lambda pc, kind, taken, target: seen.append(pc)
        expected = flatten_branches(run_oracle(program, 9_000, seed=11))
        recorder = CommitRecorder(sim.trainer, expected)
        sim.run()
        assert len(seen) == recorder.index > 0


class TestFuzz:
    def test_generators_respect_validation(self):
        rng = random.Random(1234)
        for _ in range(50):
            random_spec(rng)  # ProgramSpec.__post_init__ validates
            random_params(rng)  # SimParams and children validate

    def test_trials_are_seed_deterministic(self):
        assert build_trial(17) == build_trial(17)
        assert build_trial(17) != build_trial(18)

    @pytest.mark.slow
    def test_small_campaign_clean(self):
        report = fuzz(3, seed=0, parallel_every=0)
        assert report.ok
        assert report.trials_run == 3

    def test_run_trial_flags_violation(self):
        # A trial whose program cannot be generated must fail cleanly,
        # exercising the failure path without a (slow) real divergence.
        trial = build_trial(0)
        broken = FuzzTrial(
            seed=trial.seed,
            spec=None,
            program_seed=trial.program_seed,
            oracle_seed=trial.oracle_seed,
            params=trial.params,
        )
        failure = run_trial(broken)
        assert failure is not None
        assert failure.prop == "generation"


class TestReproducer:
    def test_params_round_trip(self):
        rng = random.Random(7)
        for _ in range(10):
            params = random_params(rng)
            assert params_from_dict(params_to_dict(params)) == params

    def test_spec_round_trip(self):
        rng = random.Random(7)
        for _ in range(10):
            spec = random_spec(rng)
            assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_file_round_trip(self, tmp_path):
        trial = build_trial(3)
        record = failure_to_dict(
            trial.seed, "demo", "msg", trial.spec, trial.program_seed,
            trial.oracle_seed, trial.params,
        )
        path = write_reproducer(tmp_path / "f.json", record)
        loaded = load_reproducer(path)
        assert loaded == record
        assert params_from_dict(loaded["params"]) == trial.params
        assert spec_from_dict(loaded["program_spec"]) == trial.spec

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(ValueError):
            load_reproducer(path)

    @pytest.mark.slow
    def test_replay_of_passing_trial_is_clean(self):
        trial = build_trial(1)
        record = failure_to_dict(
            trial.seed, "demo", "msg", trial.spec, trial.program_seed,
            trial.oracle_seed, trial.params,
        )
        assert replay(record) is None


class TestReproCheckEnv:
    def test_repro_check_forces_invariants(self, monkeypatch):
        from repro.experiments.runner import resolve_check_mode

        params = fast_params()
        assert resolve_check_mode(params) is params
        monkeypatch.setenv("REPRO_CHECK", "1")
        assert resolve_check_mode(params).check_invariants

    def test_repro_check_rejects_garbage(self, monkeypatch):
        from repro.experiments.runner import resolve_check_mode

        monkeypatch.setenv("REPRO_CHECK", "sideways")
        with pytest.raises(ValueError):
            resolve_check_mode(fast_params())

    def test_check_mode_changes_cache_key(self):
        from repro.experiments.cache import run_key

        params = fast_params().replace(warmup_mode="cycle")
        checked = params.replace(check_invariants=True)
        assert run_key("srv_web", params) != run_key("srv_web", checked)
