"""Tests for the fetch pipeline and Post-Fetch Correction."""


from repro.branch.btb import BTB
from repro.branch.history import HistoryManager
from repro.branch.ittage import ITTAGE
from repro.common.params import HistoryPolicy, SimParams
from repro.common.stats import StatSet
from repro.core.backend import DecodeQueue
from repro.frontend.bpu import BranchPredictionUnit
from repro.frontend.fetch import FetchUnit
from repro.frontend.ftq import FTQ, STATE_AWAIT_FILL, STATE_READY
from repro.isa.instructions import BranchKind, Instruction
from repro.memory.hierarchy import InstructionMemory
from tests.conftest import cond, jump, make_program, make_stream, seg


class Harness:
    """Real frontend components over a hand-made program/oracle."""

    def __init__(self, stream, program, params=None, policy=HistoryPolicy.THR, taken_pcs=()):
        params = (params or SimParams()).with_frontend(history_policy=policy)
        self.params = params
        self.stats = StatSet()
        self.memory = InstructionMemory(params.memory, self.stats)
        self.btb = BTB(1024, 4)
        self.mgr = HistoryManager(policy, 64)

        class StubDirection:
            def __init__(self, pcs):
                self.taken_pcs = set(pcs)

            def predict(self, pc, hist):
                return pc in self.taken_pcs

            def update(self, pc, hist, taken):
                pass

        self.direction = StubDirection(taken_pcs)
        self.bpu = BranchPredictionUnit(
            params, program, stream, self.btb, self.direction, ITTAGE(64), self.mgr, self.stats
        )
        self.ftq = FTQ(params.frontend.ftq_entries)
        self.dq = DecodeQueue(params.frontend.decode_queue_size)
        self.fetch = FetchUnit(
            params=params,
            program=program,
            stream=stream,
            ftq=self.ftq,
            memory=self.memory,
            bpu=self.bpu,
            hist_mgr=self.mgr,
            direction=self.direction,
            decode_queue=self.dq,
            stats=self.stats,
        )

    def run_cycles(self, n, start=0):
        for cycle in range(start, start + n):
            fills = self.memory.tick(cycle)
            if fills:
                self.fetch.complete_fills(fills, cycle)
            self.fetch.fetch_stage(cycle)
            self.fetch.probe_stage(cycle)
            self.bpu.cycle(cycle, self.ftq)


class TestProbeStage:
    def test_miss_starts_fill_before_head(self):
        stream = make_stream([seg(0x1000, 256)])
        program = make_program({})
        h = Harness(stream, program)
        h.run_cycles(3)
        # Multiple FTQ entries; at least the first two were probed.
        states = [e.state for e in h.ftq]
        assert STATE_AWAIT_FILL in states or STATE_READY in states

    def test_fill_wakes_entries(self):
        stream = make_stream([seg(0x1000, 256)])
        h = Harness(stream, make_program({}))
        h.run_cycles(400)
        assert h.stats.get("l1i_miss") > 0
        assert h.dq.total_instrs > 0 or h.stats.get("committed_instructions") == 0


class TestPFC:
    def make_undetected_jump(self):
        """Oracle jumps at 0x1008 (undetected by the empty BTB)."""
        stream = make_stream(
            [seg(0x1000, 3, 0x8000, [jump(0x1008, 0x8000)]), seg(0x8000, 256)]
        )
        program = make_program(
            {0x1008: Instruction(0x1008, BranchKind.UNCOND_DIRECT, 0x8000)}
        )
        return stream, program

    def test_case1_fires_for_undetected_unconditional(self):
        stream, program = self.make_undetected_jump()
        h = Harness(stream, program)
        h.run_cycles(400)
        assert h.stats.get("pfc_case1") >= 1
        assert h.stats.get("pfc_corrected_mispredict") >= 1
        assert h.stats.get("frontend_resteer") >= 1

    def test_case1_resteers_bpu_to_target(self):
        stream, program = self.make_undetected_jump()
        h = Harness(stream, program)
        h.run_cycles(400)
        # After PFC the stream continued on the correct path: entries at
        # 0x8000 exist and the head entry was truncated at the branch.
        starts = {e.start for e in h.ftq} | {0x8000 if h.bpu.pc >= 0x8000 else 0}
        assert any(s >= 0x8000 for s in starts)

    def test_case1_disabled_without_pfc(self):
        stream, program = self.make_undetected_jump()
        h = Harness(stream, program, params=SimParams().with_frontend(pfc_enabled=False))
        h.run_cycles(400)
        assert h.stats.get("pfc_case1") == 0

    def test_case2_fires_for_hinted_conditional(self):
        stream = make_stream(
            [seg(0x1000, 3, 0x8000, [cond(0x1008, True, 0x8000)]), seg(0x8000, 256)]
        )
        program = make_program(
            {0x1008: Instruction(0x1008, BranchKind.COND_DIRECT, 0x8000, 0)}
        )
        h = Harness(stream, program, taken_pcs=[0x1008])
        h.run_cycles(400)
        assert h.stats.get("pfc_case2") >= 1
        assert h.stats.get("pfc_corrected_mispredict") >= 1

    def test_case2_skipped_when_hint_not_taken(self):
        stream = make_stream(
            [seg(0x1000, 3, 0x8000, [cond(0x1008, True, 0x8000)]), seg(0x8000, 256)]
        )
        program = make_program(
            {0x1008: Instruction(0x1008, BranchKind.COND_DIRECT, 0x8000, 0)}
        )
        h = Harness(stream, program, taken_pcs=[])
        h.run_cycles(400)
        assert h.stats.get("pfc_case2") == 0

    def test_pfc_false_positive_detected(self):
        """Hint says taken but the branch is actually never taken."""
        stream = make_stream(
            [
                seg(0x1000, 64, 0x9000, [cond(0x1008, False, 0x8000), jump(0x10FC, 0x9000)]),
                seg(0x9000, 256),
            ]
        )
        program = make_program(
            {0x1008: Instruction(0x1008, BranchKind.COND_DIRECT, 0x8000, 0)}
        )
        h = Harness(stream, program, taken_pcs=[0x1008])
        h.run_cycles(400)
        assert h.stats.get("pfc_case2") >= 1
        assert h.stats.get("pfc_false_positive") >= 1

    def test_undetected_indirect_not_correctable(self):
        stream = make_stream(
            [seg(0x1000, 3, 0x8000, [(0x1008, BranchKind.INDIRECT, True, 0x8000)]), seg(0x8000, 256)]
        )
        program = make_program(
            {0x1008: Instruction(0x1008, BranchKind.INDIRECT)}
        )
        h = Harness(stream, program)
        h.run_cycles(400)
        assert h.stats.get("pfc_uncorrectable_indirect") >= 1
        assert h.stats.get("pfc_case1") == 0


class TestHistoryFixup:
    def test_ghr2_fixup_flush_on_undetected_not_taken(self):
        # A not-taken conditional at 0x1008, never in the BTB.
        stream = make_stream(
            [seg(0x1000, 256, 0, [cond(0x1008, False, 0x8000)])]
        )
        program = make_program(
            {0x1008: Instruction(0x1008, BranchKind.COND_DIRECT, 0x8000, 0)}
        )
        h = Harness(stream, program, policy=HistoryPolicy.GHR2)
        h.run_cycles(200)
        assert h.stats.get("ghr_fixup_flush") >= 1

    def test_ghr0_no_fixup(self):
        stream = make_stream(
            [seg(0x1000, 256, 0, [cond(0x1008, False, 0x8000)])]
        )
        program = make_program(
            {0x1008: Instruction(0x1008, BranchKind.COND_DIRECT, 0x8000, 0)}
        )
        h = Harness(stream, program, policy=HistoryPolicy.GHR0)
        h.run_cycles(200)
        assert h.stats.get("ghr_fixup_flush") == 0


class TestMissClassification:
    def test_shallow_ftq_misses_fully_exposed(self):
        stream = make_stream([seg(0x1000, 4096)])
        params = SimParams().with_frontend(ftq_entries=2, pfc_enabled=False)
        h = Harness(stream, make_program({}), params=params)
        h.run_cycles(3000)
        exposure = h.stats
        assert exposure.get("miss_fully_exposed") > 0
        assert exposure.get("miss_covered") == 0

    def test_deep_ftq_covers_misses(self):
        stream = make_stream([seg(0x1000, 4096)])
        h = Harness(stream, make_program({}), params=SimParams().with_frontend(ftq_entries=32))
        h.run_cycles(3000)
        assert h.stats.get("miss_covered") > 0
