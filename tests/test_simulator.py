"""End-to-end simulator tests (repro.core.simulator)."""

import pytest

from repro.common.params import DirectionPredictorKind, HistoryPolicy, SimParams
from repro.core.simulator import Simulator, simulate
from repro.trace.cfg import generate_program
from repro.trace.oracle import run_oracle
from tests.conftest import tiny_spec


def fast(**kw):
    return SimParams(warmup_instructions=1_500, sim_instructions=4_000, **kw)


@pytest.fixture(scope="module")
def trace():
    program = generate_program(tiny_spec(n_functions=40, functions_per_phase=12), seed=21)
    stream = run_oracle(program, 10_000, seed=22)
    return program, stream


def run(trace, params):
    program, stream = trace
    return Simulator(params, program, stream).run("tiny")


class TestBasicRun:
    def test_commits_requested_window(self, trace):
        # The window boundary lands on a retire group, so the measured
        # count can undershoot by at most one retire width.
        r = run(trace, fast())
        assert r.instructions >= 4_000 - r.params.core.retire_width
        assert r.cycles > 0
        assert 0 < r.ipc <= 6.0

    def test_deterministic(self, trace):
        a = run(trace, fast())
        b = run(trace, fast())
        assert a.cycles == b.cycles
        assert a.stats.as_dict() == b.stats.as_dict()

    def test_rejects_short_stream(self):
        program = generate_program(tiny_spec(), seed=3)
        stream = run_oracle(program, 500, seed=3)
        with pytest.raises(ValueError):
            Simulator(SimParams(warmup_instructions=10_000, sim_instructions=10_000), program, stream)

    def test_stats_windowed(self, trace):
        """Measured stats must exclude warmup activity."""
        short = run(trace, fast())
        # committed_instructions in the window ~ sim_instructions.
        committed = short.stats.get("committed_instructions")
        assert abs(committed - short.instructions) <= 8


class TestArchitecturalEffects:
    def test_fdp_beats_no_fdp(self, trace):
        fdp = run(trace, fast())
        base = run(trace, fast().with_frontend(ftq_entries=2, pfc_enabled=False))
        assert fdp.ipc > base.ipc

    def test_perfect_prefetch_at_least_as_good(self, trace):
        base = run(trace, fast().with_frontend(ftq_entries=2, pfc_enabled=False))
        perfect = run(
            trace,
            fast().with_frontend(ftq_entries=2, pfc_enabled=False).replace(prefetcher="perfect"),
        )
        assert perfect.ipc >= base.ipc

    def test_perfect_all_has_no_mispredicts(self, trace):
        r = run(
            trace,
            fast().with_branch(perfect_btb=True, perfect_direction=True, perfect_indirect=True),
        )
        assert r.stats.get("branch_mispredictions") == 0

    def test_mispredict_penalty_hurts(self, trace):
        small = run(trace, fast().with_core(mispredict_penalty=5))
        big = run(trace, fast().with_core(mispredict_penalty=40))
        assert small.ipc > big.ipc

    def test_pfc_reduces_mispredicts_with_small_btb(self, trace):
        base = fast().with_branch(btb_entries=256)
        off = run(trace, base.with_frontend(pfc_enabled=False))
        on = run(trace, base.with_frontend(pfc_enabled=True))
        assert on.stats.get("branch_mispredictions") < off.stats.get("branch_mispredictions")

    def test_bigger_l1i_fewer_misses(self, trace):
        small = run(trace, fast().with_memory(l1i_kib=4))
        big = run(trace, fast().with_memory(l1i_kib=64))
        assert big.stats.get("l1i_miss") <= small.stats.get("l1i_miss")


class TestConfigurations:
    @pytest.mark.parametrize("policy", list(HistoryPolicy))
    def test_all_history_policies_run(self, trace, policy):
        r = run(trace, fast().with_frontend(history_policy=policy))
        assert r.instructions > 0

    @pytest.mark.parametrize(
        "prefetcher",
        [
            "none", "nl1", "eip27", "eip128", "fnl_mma", "djolt", "rdip",
            "sn4l_dis", "sn4l_dis_btb", "profile_guided", "perfect",
        ],
    )
    def test_all_prefetchers_run(self, trace, prefetcher):
        r = run(trace, fast().replace(prefetcher=prefetcher))
        assert r.instructions > 0

    def test_gshare_runs(self, trace):
        r = run(trace, fast().with_branch(direction_kind=DirectionPredictorKind.GSHARE))
        assert r.instructions > 0

    def test_unknown_prefetcher_rejected(self, trace):
        with pytest.raises(ValueError):
            run(trace, fast().replace(prefetcher="warp_drive"))

    def test_bandwidth_variants_run(self, trace):
        for width, taken in ((6, 1), (18, 1), (18, 2)):
            r = run(trace, fast().with_frontend(predict_width=width, max_taken_per_cycle=taken))
            assert r.instructions > 0


class TestStatInvariants:
    def test_mispredict_breakdown_sums(self, trace):
        r = run(trace, fast())
        total = r.stats.get("branch_mispredictions")
        parts = sum(
            r.stats.get(f"mispredict_{k}")
            for k in ("pred_taken_wrong", "wrong_target", "dir_nt", "btb_miss")
        )
        assert total == parts

    def test_tag_accesses_at_least_misses(self, trace):
        r = run(trace, fast())
        assert r.stats.get("l1i_tag_access") >= r.stats.get("l1i_miss")

    def test_miss_exposure_only_counts_misses(self, trace):
        r = run(trace, fast())
        classified = sum(r.miss_exposure().values())
        assert classified <= r.stats.get("l1i_miss") + r.stats.get("mshr_stall")

    def test_no_wrong_path_commits(self, trace):
        """Wrong-path chunks must be flushed before reaching commit."""
        r = run(trace, fast())
        assert r.stats.get("wrong_path_consumed") == 0


class TestSimulateHelper:
    def test_simulate_by_name(self):
        r = simulate("spc_fp", SimParams(warmup_instructions=1_000, sim_instructions=2_000))
        assert r.workload == "spc_fp"
        assert r.instructions >= 2_000 - r.params.core.retire_width
