"""Throughput benchmark (``repro bench``) smoke tests."""

import json

import pytest

from repro.cli import main
from repro.common.params import SimParams
from repro.experiments.bench import (
    BENCH_SCHEMA_VERSION,
    append_history,
    bench_workload,
    bench_workload_batched,
    compare_bench,
    run_bench,
    write_bench,
)

#: A deliberately conservative floor -- the optimised cycle loop runs at
#: tens of thousands of instructions/sec even on loaded CI machines.
MIN_INSTRS_PER_SEC = 2_000


def fast():
    return SimParams(warmup_instructions=1_000, sim_instructions=2_500)


class TestBenchLibrary:
    def test_schema_version_bumped_for_geomean_and_mode(self):
        # Schema 2: geomean headline, config.mode, optional batch_width.
        assert BENCH_SCHEMA_VERSION == 2

    def test_bench_workload_fields(self):
        row = bench_workload("spc_fp", fast(), repeats=1)
        assert row["instructions"] == 3_500
        # Retirement is chunk-granular, so the window can overshoot by
        # up to a retire-width of instructions.
        assert 2_500 <= row["measured_instructions"] <= 2_500 + 16
        assert row["cycles"] > 0
        assert row["ipc"] > 0
        assert row["wall_seconds"] > 0
        assert row["instructions_per_second"] > MIN_INSTRS_PER_SEC

    def test_bench_workload_batched_fields(self):
        scalar = bench_workload("spc_fp", fast(), repeats=1)
        row = bench_workload_batched("spc_fp", fast(), repeats=1, width=3)
        # The rate counts every instance's instructions...
        assert row["instructions"] == 3 * 3_500
        assert row["batch_width"] == 3
        assert row["instructions_per_second"] > MIN_INSTRS_PER_SEC
        # ...and the reported run is bit-identical to a scalar run.
        assert row["cycles"] == scalar["cycles"]
        assert row["ipc"] == scalar["ipc"]
        assert row["measured_instructions"] == scalar["measured_instructions"]

    def test_run_bench_payload(self):
        payload = run_bench(workloads=["spc_fp", "srv_web"], params=fast(), repeats=1)
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert set(payload["workloads"]) == {"spc_fp", "srv_web"}
        assert payload["config"]["mode"] == "scalar"
        assert "batch_width" not in payload["config"]
        agg = payload["aggregate"]
        assert agg["total_instructions"] == 7_000
        assert agg["instructions_per_second"] > MIN_INSTRS_PER_SEC
        assert agg["geomean_instructions_per_second"] > MIN_INSTRS_PER_SEC

    def test_run_bench_batched_payload(self):
        payload = run_bench(
            workloads=["spc_fp"], params=fast(), repeats=1, batched=True, batch_width=2
        )
        assert payload["config"]["mode"] == "batched"
        assert payload["config"]["batch_width"] == 2
        assert payload["aggregate"]["total_instructions"] == 7_000
        assert payload["aggregate"]["geomean_instructions_per_second"] > MIN_INSTRS_PER_SEC

    def test_write_bench_round_trips(self, tmp_path):
        payload = run_bench(workloads=["spc_fp"], params=fast(), repeats=1)
        out = tmp_path / "BENCH_core.json"
        write_bench(payload, out)
        assert json.loads(out.read_text()) == payload

    def test_fast_warmup_mode_recorded_and_meets_floor(self):
        payload = run_bench(
            workloads=["spc_fp"], params=fast(), repeats=1, fast_warmup=True
        )
        assert payload["config"]["warmup_mode"] == "functional"
        assert payload["aggregate"]["instructions_per_second"] > MIN_INSTRS_PER_SEC


class TestBenchHistory:
    def test_append_history_record(self, tmp_path):
        payload = run_bench(workloads=["spc_fp"], params=fast(), repeats=1)
        path = tmp_path / "BENCH_history.jsonl"
        append_history(payload, path)
        append_history(payload, path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        record = json.loads(lines[0])
        assert record["schema"] == BENCH_SCHEMA_VERSION
        assert record["mode"] == "scalar"
        assert record["platform"] == payload["platform"]
        assert record["timestamp"].startswith("20")  # ISO UTC stamp
        assert record["aggregate"] == payload["aggregate"]
        assert record["workloads"]["spc_fp"] == (
            payload["workloads"]["spc_fp"]["instructions_per_second"]
        )

    def test_append_history_batched_records_width(self, tmp_path):
        payload = run_bench(
            workloads=["spc_fp"], params=fast(), repeats=1, batched=True, batch_width=2
        )
        path = append_history(payload, tmp_path / "h.jsonl")
        record = json.loads(path.read_text())
        assert record["mode"] == "batched"
        assert record["config"]["batch_width"] == 2


def _payload(rates: dict[str, float], aggregate: float) -> dict:
    return {
        "workloads": {
            name: {"instructions_per_second": rate} for name, rate in rates.items()
        },
        "aggregate": {"instructions_per_second": aggregate},
    }


class TestCompareBench:
    def test_deltas_and_aggregate(self):
        cur = _payload({"a": 110.0, "b": 90.0}, 100.0)
        base = _payload({"a": 100.0, "b": 100.0}, 100.0)
        cmp = compare_bench(cur, base)
        assert cmp["workloads"]["a"] == pytest.approx(0.10)
        assert cmp["workloads"]["b"] == pytest.approx(-0.10)
        assert cmp["aggregate"] == pytest.approx(0.0)
        assert not cmp["regressed"]

    def test_regression_flag_uses_threshold(self):
        base = _payload({"a": 100.0}, 100.0)
        assert not compare_bench(_payload({"a": 81.0}, 81.0), base)["regressed"]
        assert compare_bench(_payload({"a": 79.0}, 79.0), base)["regressed"]
        assert not compare_bench(
            _payload({"a": 50.0}, 50.0), base, threshold=0.60
        )["regressed"]

    def test_gate_is_per_workload_and_names_offenders(self):
        # One regressed workload trips the gate even when the aggregate
        # improves -- a gain elsewhere cannot hide it.
        cur = _payload({"a": 500.0, "b": 70.0}, 500.0)
        base = _payload({"a": 100.0, "b": 100.0}, 100.0)
        cmp = compare_bench(cur, base)
        assert cmp["aggregate"] > 0
        assert cmp["regressed"]
        assert cmp["regressed_workloads"] == ["b"]

    def test_geomean_aggregate_preferred_v1_fallback(self):
        # Schema-2 payloads compare geomean headline rates; a schema-1
        # baseline (no geomean field) falls back to the total rate.
        cur = _payload({"a": 100.0}, 999.0)
        cur["aggregate"]["geomean_instructions_per_second"] = 110.0
        base = _payload({"a": 100.0}, 100.0)
        assert compare_bench(cur, base)["aggregate"] == pytest.approx(0.10)

    def test_disjoint_workloads_not_compared(self):
        cmp = compare_bench(
            _payload({"a": 100.0, "new": 50.0}, 100.0),
            _payload({"a": 100.0, "old": 50.0}, 100.0),
        )
        assert cmp["workloads"]["new"] is None
        assert cmp["workloads"]["old"] is None
        assert cmp["workloads"]["a"] == pytest.approx(0.0)


class TestBenchCli:
    def test_bench_subcommand(self, tmp_path, capsys):
        out = tmp_path / "BENCH_core.json"
        rc = main([
            "bench",
            "--workloads", "spc_fp",
            "--warmup", "1000",
            "--instructions", "2500",
            "--repeats", "1",
            "--output", str(out),
            "--no-history",
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "spc_fp" in text and "TOTAL" in text and "GEOMEAN" in text

        payload = json.loads(out.read_text())
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert payload["config"]["warmup_instructions"] == 1_000
        assert payload["aggregate"]["instructions_per_second"] > MIN_INSTRS_PER_SEC

    def test_bench_unknown_workload(self, tmp_path):
        rc = main(["bench", "--workloads", "nope", "--output", str(tmp_path / "b.json")])
        assert rc == 2

    def _bench_args(self, out, *extra):
        return [
            "bench",
            "--workloads", "spc_fp",
            "--warmup", "1000",
            "--instructions", "2500",
            "--repeats", "1",
            "--output", str(out),
            "--no-history",
            *extra,
        ]

    def test_fast_warmup_flag(self, tmp_path, capsys):
        out = tmp_path / "b.json"
        assert main(self._bench_args(out, "--fast-warmup")) == 0
        assert json.loads(out.read_text())["config"]["warmup_mode"] == "functional"

    def test_batched_flag(self, tmp_path, capsys):
        out = tmp_path / "b.json"
        assert main(self._bench_args(out, "--batched", "--batch-width", "2")) == 0
        payload = json.loads(out.read_text())
        assert payload["config"]["mode"] == "batched"
        assert payload["config"]["batch_width"] == 2
        assert "(batched)" in capsys.readouterr().out

    def test_history_appended_by_default(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        args = self._bench_args(tmp_path / "b.json")
        args.remove("--no-history")
        assert main(args) == 0
        history = tmp_path / "BENCH_history.jsonl"
        assert history.exists()
        assert json.loads(history.read_text())["mode"] == "scalar"
        assert "BENCH_history.jsonl" in capsys.readouterr().out

    def test_baseline_comparison(self, tmp_path, capsys):
        out = tmp_path / "b.json"
        assert main(self._bench_args(out)) == 0
        capsys.readouterr()
        # Compare against the run itself: every delta is exactly 0%.
        rc = main(self._bench_args(tmp_path / "b2.json", "--baseline", str(out)))
        assert rc == 0
        text = capsys.readouterr().out
        assert "vs baseline" in text and "GEOMEAN" in text

    def test_baseline_regression_fails(self, tmp_path, capsys):
        out = tmp_path / "b.json"
        assert main(self._bench_args(out)) == 0
        inflated = json.loads(out.read_text())
        for row in inflated["workloads"].values():
            row["instructions_per_second"] *= 100.0
        inflated["aggregate"]["instructions_per_second"] *= 100.0
        inflated["aggregate"]["geomean_instructions_per_second"] *= 100.0
        fake = tmp_path / "fast_baseline.json"
        fake.write_text(json.dumps(inflated))
        rc = main(self._bench_args(tmp_path / "b3.json", "--baseline", str(fake)))
        assert rc == 1

    def test_baseline_unreadable(self, tmp_path):
        out = tmp_path / "b.json"
        rc = main(self._bench_args(out, "--baseline", str(tmp_path / "missing.json")))
        assert rc == 2

    def test_cache_cli(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache", "info"]) == 0
        info_text = capsys.readouterr().out
        assert str(tmp_path) in info_text
        assert main(["cache", "clear"]) == 0
        assert "removed" in capsys.readouterr().out
