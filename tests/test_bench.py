"""Throughput benchmark (``repro bench``) smoke tests."""

import json

from repro.cli import main
from repro.common.params import SimParams
from repro.experiments.bench import (
    BENCH_SCHEMA_VERSION,
    bench_workload,
    run_bench,
    write_bench,
)

#: A deliberately conservative floor -- the optimised cycle loop runs at
#: tens of thousands of instructions/sec even on loaded CI machines.
MIN_INSTRS_PER_SEC = 2_000


def fast():
    return SimParams(warmup_instructions=1_000, sim_instructions=2_500)


class TestBenchLibrary:
    def test_bench_workload_fields(self):
        row = bench_workload("spc_fp", fast(), repeats=1)
        assert row["instructions"] == 3_500
        # Retirement is chunk-granular, so the window can overshoot by
        # up to a retire-width of instructions.
        assert 2_500 <= row["measured_instructions"] <= 2_500 + 16
        assert row["cycles"] > 0
        assert row["ipc"] > 0
        assert row["wall_seconds"] > 0
        assert row["instructions_per_second"] > MIN_INSTRS_PER_SEC

    def test_run_bench_payload(self):
        payload = run_bench(workloads=["spc_fp", "srv_web"], params=fast(), repeats=1)
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert set(payload["workloads"]) == {"spc_fp", "srv_web"}
        agg = payload["aggregate"]
        assert agg["total_instructions"] == 7_000
        assert agg["instructions_per_second"] > MIN_INSTRS_PER_SEC
        assert agg["geomean_instructions_per_second"] > MIN_INSTRS_PER_SEC

    def test_write_bench_round_trips(self, tmp_path):
        payload = run_bench(workloads=["spc_fp"], params=fast(), repeats=1)
        out = tmp_path / "BENCH_core.json"
        write_bench(payload, out)
        assert json.loads(out.read_text()) == payload


class TestBenchCli:
    def test_bench_subcommand(self, tmp_path, capsys):
        out = tmp_path / "BENCH_core.json"
        rc = main([
            "bench",
            "--workloads", "spc_fp",
            "--warmup", "1000",
            "--instructions", "2500",
            "--repeats", "1",
            "--output", str(out),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "spc_fp" in text and "TOTAL" in text

        payload = json.loads(out.read_text())
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert payload["config"]["warmup_instructions"] == 1_000
        assert payload["aggregate"]["instructions_per_second"] > MIN_INSTRS_PER_SEC

    def test_bench_unknown_workload(self, tmp_path):
        rc = main(["bench", "--workloads", "nope", "--output", str(tmp_path / "b.json")])
        assert rc == 2

    def test_cache_cli(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache", "info"]) == 0
        info_text = capsys.readouterr().out
        assert str(tmp_path) in info_text
        assert main(["cache", "clear"]) == 0
        assert "removed" in capsys.readouterr().out
