"""Tests for the registry-driven build layer (repro.core.build)."""

import pytest

from repro.branch.btb import BTB
from repro.branch.btb2l import TwoLevelBTB
from repro.branch.gshare import Gshare
from repro.branch.perceptron import Perceptron
from repro.branch.tage import TAGE
from repro.common.params import (
    BranchPredictorParams,
    DirectionPredictorKind,
    HistoryPolicy,
    SimParams,
)
from repro.common.registry import Registry
from repro.core.build import (
    SimBuilder,
    btb_variants,
    direction_predictors,
    history_policies,
    resolve_btb_variant,
    resolve_components,
)
from repro.prefetch import prefetchers
from repro.trace.workloads import make_trace


class TestRegistry:
    def test_register_and_create(self):
        reg = Registry("widget")
        reg.register("a", lambda x: x + 1)
        assert reg.create("a", 1) == 2
        assert "a" in reg
        assert reg.names() == ["a"]

    def test_decorator_registration(self):
        reg = Registry("widget")

        @reg.register("dec")
        def factory():
            return 7

        assert factory() == 7  # decorator returns the object unchanged
        assert reg.create("dec") == 7

    def test_unknown_name_lists_known(self):
        reg = Registry("widget")
        reg.register("a", object())
        reg.register("b", object())
        with pytest.raises(ValueError, match=r"unknown widget 'zzz'; known: a, b"):
            reg.get("zzz")

    def test_duplicate_name_rejected(self):
        reg = Registry("widget")
        reg.register("a", object())
        with pytest.raises(ValueError, match="already registered"):
            reg.register("a", object())

    def test_unregister_roundtrip(self):
        reg = Registry("widget")
        sentinel = object()
        reg.register("a", sentinel)
        assert reg.unregister("a") is sentinel
        assert "a" not in reg
        reg.register("a", sentinel)  # name is reusable after unregister
        assert reg.get("a") is sentinel

    def test_create_rejects_non_factory(self):
        reg = Registry("widget")
        reg.register("raw", object())
        with pytest.raises(TypeError, match="not a factory"):
            reg.create("raw")

    def test_iteration_and_len(self):
        reg = Registry("widget")
        reg.register("b", object())
        reg.register("a", object())
        assert list(reg) == ["a", "b"]
        assert len(reg) == 2


class TestDirectionPredictorRegistry:
    def test_builtin_names_registered(self):
        for kind in DirectionPredictorKind:
            assert kind.value in direction_predictors

    def test_roundtrip_types(self):
        branch = BranchPredictorParams()
        assert isinstance(direction_predictors.create("tage", branch, 64), TAGE)
        assert isinstance(direction_predictors.create("gshare", branch, 64), Gshare)
        assert isinstance(direction_predictors.create("perceptron", branch, 64), Perceptron)
        assert direction_predictors.create("perfect", branch, 64) is None

    def test_unknown_name_error_path(self):
        with pytest.raises(ValueError, match="unknown direction predictor 'nope'"):
            direction_predictors.get("nope")


class TestHistoryPolicyRegistry:
    def test_all_policies_registered_by_value(self):
        for policy in HistoryPolicy:
            assert history_policies.get(policy.value) is policy

    def test_unknown_name_error_path(self):
        with pytest.raises(ValueError, match="unknown history policy 'nope'"):
            history_policies.get("nope")


class TestBtbVariantRegistry:
    def test_single_roundtrip(self):
        btb = btb_variants.create("single", BranchPredictorParams())
        assert isinstance(btb, BTB)

    def test_two_level_roundtrip(self):
        branch = BranchPredictorParams(btb_l1_entries=64)
        btb = btb_variants.create("two_level", branch)
        assert isinstance(btb, TwoLevelBTB)

    def test_two_level_requires_l1(self):
        with pytest.raises(ValueError, match="btb_l1_entries"):
            btb_variants.create("two_level", BranchPredictorParams())

    def test_unknown_name_error_path(self):
        with pytest.raises(ValueError, match="unknown BTB variant 'nope'"):
            btb_variants.get("nope")

    def test_auto_resolution(self):
        assert resolve_btb_variant(BranchPredictorParams()) == "single"
        assert resolve_btb_variant(BranchPredictorParams(btb_l1_entries=64)) == "two_level"


class TestPrefetcherRegistry:
    def test_known_names(self):
        for name in ("nl1", "eip128", "djolt", "rdip"):
            assert name in prefetchers

    def test_unknown_name_error_path(self):
        with pytest.raises(ValueError, match="unknown prefetcher 'nope'"):
            prefetchers.get("nope")


class TestResolveComponents:
    def test_default_params_resolve(self):
        names = resolve_components(SimParams())
        assert names == {
            "direction": "tage",
            "history": "THR",
            "btb": "single",
            "prefetcher": "none",
        }

    def test_special_prefetcher_names_pass(self):
        resolve_components(SimParams(prefetcher="perfect"))
        resolve_components(SimParams(prefetcher="nl1"))

    def test_unknown_prefetcher_fails_fast(self):
        with pytest.raises(ValueError, match="unknown prefetcher"):
            resolve_components(SimParams(prefetcher="bogus"))

    def test_unknown_direction_fails_fast(self):
        params = SimParams().with_branch(direction_kind="bogus")
        with pytest.raises(ValueError, match="unknown direction predictor"):
            resolve_components(params)


class TestSimBuilder:
    def test_build_matches_direct_construction(self):
        params = SimParams(warmup_instructions=1_000, sim_instructions=2_000)
        program, stream = make_trace("spc_fp", 3_000)
        sim = SimBuilder(params, program, stream).build()
        assert isinstance(sim.btb, BTB)
        assert sim.prefetcher is None
        assert sim.checker is None
        result = sim.run(workload_name="spc_fp")
        assert result.instructions > 0

    def test_two_level_btb_via_registry_path(self):
        params = SimParams(warmup_instructions=1_000, sim_instructions=2_000).with_branch(
            btb_l1_entries=64
        )
        program, stream = make_trace("spc_fp", 3_000)
        sim = SimBuilder(params, program, stream).build()
        assert isinstance(sim.btb, TwoLevelBTB)
        assert sim.run().instructions > 0

    def test_hooks_declared(self):
        params = SimParams(
            warmup_instructions=1_000, sim_instructions=2_000, prefetcher="nl1"
        ).with_branch(loop_predictor_entries=64)
        program, stream = make_trace("spc_fp", 3_000)
        sim = SimBuilder(params, program, stream).build()
        assert sim.loop.flush_spec in sim.hooks.spec_sync
        assert sim.prefetcher.reset_queue in sim.hooks.warmup_boundary
        assert "prefetcher" in sim.observables

    def test_observables_cover_core_components(self):
        params = SimParams(warmup_instructions=1_000, sim_instructions=2_000)
        program, stream = make_trace("spc_fp", 3_000)
        sim = SimBuilder(params, program, stream).build()
        assert set(sim.observables) == {"ftq", "bpu", "fetch", "backend", "memory"}


class TestBranchListenerHook:
    def _trainer(self):
        params = SimParams(warmup_instructions=1_000, sim_instructions=2_000)
        program, stream = make_trace("spc_fp", 3_000)
        return SimBuilder(params, program, stream).build().trainer

    def test_single_listener_stays_plain(self):
        trainer = self._trainer()
        fn = lambda pc, kind, taken, target: None  # noqa: E731
        trainer.add_branch_listener(fn)
        assert trainer.branch_listener is fn

    def test_listeners_compose_in_order(self):
        trainer = self._trainer()
        seen = []
        trainer.add_branch_listener(lambda *a: seen.append("first"))
        trainer.add_branch_listener(lambda *a: seen.append("second"))
        trainer.branch_listener(0x1000, None, True, 0x2000)
        assert seen == ["first", "second"]

    def test_first_flag_prepends(self):
        trainer = self._trainer()
        seen = []
        trainer.add_branch_listener(lambda *a: seen.append("old"))
        trainer.add_branch_listener(lambda *a: seen.append("new"), first=True)
        trainer.branch_listener(0x1000, None, True, 0x2000)
        assert seen == ["new", "old"]
