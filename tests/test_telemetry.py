"""Tests for the observability layer (repro.common.telemetry + log)."""

from __future__ import annotations

import json
import logging

import pytest

from repro.common import log as repro_log
from repro.common.params import SimParams
from repro.common.stats import StatSet
from repro.common.telemetry import (
    CYCLE_BUCKETS,
    EventRing,
    IntervalSampler,
    Telemetry,
    TelemetryConfig,
    _STATE_AWAIT_FILL,
)
from repro.core.simulator import simulate
from repro.frontend import ftq as ftq_mod
from repro.trace.workloads import default_workloads

from tests.conftest import fast_params

ALL_WORKLOADS = [w.name for w in default_workloads()]


def traced_run(workload: str, params: SimParams, **cfg):
    tel = Telemetry(TelemetryConfig(**cfg))
    result = simulate(workload, params, telemetry=tel)
    return tel, result


class TestCycleAccounting:
    @pytest.mark.parametrize("workload", ALL_WORKLOADS)
    def test_buckets_sum_to_cycles(self, workload):
        # The invariant: every measured cycle lands in exactly one bucket.
        tel, result = traced_run(workload, fast_params())
        accounting = tel.accounting()
        assert sum(accounting.values()) == result.cycles
        assert set(accounting) == set(CYCLE_BUCKETS)

    def test_result_carries_cyc_counters(self):
        _, result = traced_run("srv_web", fast_params())
        assert result.has_cycle_accounting
        buckets = result.cycle_accounting()
        assert sum(buckets.values()) == result.cycles
        fractions = result.cycle_accounting_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_untraced_result_has_no_accounting(self):
        result = simulate("srv_web", fast_params())
        assert not result.has_cycle_accounting
        assert sum(result.cycle_accounting().values()) == 0

    def test_sum_invariant_with_prefetcher_and_small_ftq(self):
        params = fast_params(replace=dict(prefetcher="nl1")).with_frontend(ftq_entries=4)
        tel, result = traced_run("srv_db", params)
        assert sum(tel.accounting().values()) == result.cycles

    def test_mirrored_ftq_state_constant(self):
        # telemetry mirrors this value to avoid an import cycle.
        assert _STATE_AWAIT_FILL == ftq_mod.STATE_AWAIT_FILL


class TestPrefetchPartition:
    def test_terminal_states_partition_issued(self):
        params = fast_params(replace=dict(prefetcher="nl1"))
        tel, _ = traced_run("srv_web", params)
        p = tel.prefetch_partition()
        assert p["issued"] > 0
        assert p["issued"] == (
            p["timely"]
            + p["late"]
            + p["unused_evicted"]
            + p["in_flight_at_end"]
            + p["resident_untouched_at_end"]
        )

    @pytest.mark.parametrize("workload", ["srv_db", "clt_browser", "spc_int_a"])
    def test_partition_holds_across_workloads(self, workload):
        params = fast_params(replace=dict(prefetcher="nl1"))
        tel, _ = traced_run(workload, params)
        p = tel.prefetch_partition()
        terminal = (
            p["timely"]
            + p["late"]
            + p["unused_evicted"]
            + p["in_flight_at_end"]
            + p["resident_untouched_at_end"]
        )
        assert p["issued"] == terminal

    def test_derived_metrics_bounded(self):
        params = fast_params(replace=dict(prefetcher="nl1"))
        tel, result = traced_run("srv_web", params)
        p = tel.prefetch_partition()
        for name in ("accuracy", "coverage", "timeliness"):
            assert 0.0 <= p[name] <= 1.0
        assert 0.0 <= result.prefetch_accuracy <= 1.0
        assert 0.0 <= result.prefetch_coverage <= 1.0
        assert 0.0 <= result.prefetch_timeliness <= 1.0

    def test_no_prefetcher_means_nothing_issued(self):
        tel, _ = traced_run("srv_web", fast_params())
        p = tel.prefetch_partition()
        assert p["issued"] == 0
        assert p["accuracy"] == 0.0


class TestBitIdentity:
    @pytest.mark.parametrize("workload", ["srv_web", "spc_fp"])
    def test_traced_run_matches_untraced(self, workload):
        params = fast_params(replace=dict(prefetcher="nl1"))
        base = simulate(workload, params)
        _, traced = traced_run(workload, params)
        assert traced.cycles == base.cycles
        assert traced.instructions == base.instructions
        assert traced.ipc == base.ipc
        telemetry_only = {"prefetch_inflight_end", "prefetch_resident_end"}
        traced_counters = {
            n: traced.stats.get(n)
            for n in traced.stats.names()
            if not n.startswith("cyc_") and n not in telemetry_only
        }
        base_counters = {n: base.stats.get(n) for n in base.stats.names()}
        assert traced_counters == base_counters


class TestEventRing:
    def test_bounded_and_counts_drops(self):
        ring = EventRing(capacity=4)
        for i in range(10):
            ring.emit({"cycle": i, "kind": "x"})
        assert ring.total == 10
        assert ring.dropped == 6
        kept = ring.events()
        assert len(kept) == 4
        assert [e["cycle"] for e in kept] == [6, 7, 8, 9]  # oldest first

    def test_partial_fill_keeps_order(self):
        ring = EventRing(capacity=8)
        for i in range(3):
            ring.emit({"cycle": i, "kind": "y"})
        assert ring.dropped == 0
        assert [e["cycle"] for e in ring.events()] == [0, 1, 2]

    def test_kind_histogram(self):
        ring = EventRing(capacity=2)
        ring.emit({"cycle": 0, "kind": "a"})
        ring.emit({"cycle": 1, "kind": "b"})
        ring.emit({"cycle": 2, "kind": "a"})
        assert ring.counts == {"a": 2, "b": 1}

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            EventRing(0)


class TestIntervalSampler:
    def test_stride_and_deltas(self):
        stats = StatSet()
        sampler = IntervalSampler(stride=100)
        stats.bump("l1i_miss", 5)
        sampler.sample(cycle=40, committed=100, stats=stats, measuring=False)
        stats.bump("l1i_miss", 7)
        sampler.sample(cycle=90, committed=200, stats=stats, measuring=True)
        assert sampler.next_at == 300
        first, second = sampler.rows
        assert first["counters"]["l1i_miss"] == 5
        assert second["counters"]["l1i_miss"] == 7  # delta, not cumulative
        assert second["interval_instructions"] == 100
        assert second["interval_cycles"] == 50
        assert second["phase"] == "measure"

    def test_statset_swap_resets_baseline(self):
        warm = StatSet()
        warm.bump("l1i_miss", 50)
        sampler = IntervalSampler(stride=10)
        sampler.sample(cycle=10, committed=10, stats=warm, measuring=False)
        fresh = StatSet()  # measurement boundary swaps in a new StatSet
        fresh.bump("l1i_miss", 3)
        sampler.sample(cycle=20, committed=20, stats=fresh, measuring=True)
        assert sampler.rows[1]["counters"]["l1i_miss"] == 3  # not 3 - 50

    def test_run_emits_samples_with_warmup_visible(self):
        tel, _ = traced_run("srv_web", fast_params(), interval_stride=1000)
        phases = [row["phase"] for row in tel.sampler.rows]
        assert "warmup" in phases
        assert "measure" in phases
        assert phases == sorted(phases, key=lambda p: p != "warmup")  # warmup first


class TestTelemetryLifecycle:
    def test_single_use(self):
        tel, _ = traced_run("srv_web", fast_params())
        with pytest.raises(RuntimeError):
            simulate("srv_web", fast_params(), telemetry=tel)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TelemetryConfig(interval_stride=0)
        with pytest.raises(ValueError):
            TelemetryConfig(ring_capacity=0)

    def test_disabled_pieces_stay_off(self):
        tel, result = traced_run(
            "srv_web", fast_params(), accounting=False, sampling=False, events=False
        )
        assert tel.ring is None
        assert tel.sampler is None
        assert sum(tel.accounting().values()) == 0
        assert not result.has_cycle_accounting

    def test_summary_is_json_able(self):
        params = fast_params(replace=dict(prefetcher="nl1"))
        tel, result = traced_run("srv_web", params)
        summary = tel.summary(result)
        round_tripped = json.loads(json.dumps(summary))
        assert round_tripped["cycles"] == result.cycles
        assert round_tripped["events"]["emitted"] > 0
        assert round_tripped["mshr"]["peak_occupancy"] >= 1

    def test_jsonl_round_trip(self, tmp_path):
        tel, _ = traced_run("srv_web", fast_params(), interval_stride=1000)
        events = tel.write_events_jsonl(tmp_path / "e.jsonl")
        series = tel.write_timeseries_jsonl(tmp_path / "t.jsonl")
        rows = [json.loads(line) for line in series.read_text().splitlines()]
        assert rows == tel.sampler.rows
        for line in events.read_text().splitlines():
            record = json.loads(line)
            assert "cycle" in record and "kind" in record


class TestCliObservability:
    def test_trace_writes_reports(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["trace", "--workload", "spc_fp", "--warmup", "1000",
             "--instructions", "2500", "--prefetcher", "nl1",
             "--stride", "1000", "--out", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Cycle accounting" in out
        trace = json.loads((tmp_path / "spc_fp.trace.json").read_text())
        assert sum(trace["cycle_accounting"].values()) == trace["cycles"]
        report = (tmp_path / "spc_fp.trace.md").read_text()
        assert "## Cycle accounting" in report
        assert (tmp_path / "spc_fp.events.jsonl").exists()
        assert (tmp_path / "spc_fp.timeseries.jsonl").exists()

    def test_run_stats_json(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "stats.json"
        code = main(
            ["run", "--workload", "spc_fp", "--warmup", "1000",
             "--instructions", "2500", "--stats-json", str(path)]
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["workload"] == "spc_fp"
        assert payload["cycles"] > 0
        assert "l1i_miss" in payload["counters"]

    def test_cache_info_reports_session_counters(self, capsys):
        from repro.cli import main

        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "cache dir:" in out
        assert "entries:" in out


class TestLogging:
    def test_get_logger_roots_names(self):
        assert repro_log.get_logger("cli").name == "repro.cli"
        assert repro_log.get_logger("repro.x").name == "repro.x"

    def test_resolve_level(self):
        assert repro_log.resolve_level("debug") == logging.DEBUG
        assert repro_log.resolve_level(None) >= logging.DEBUG  # env/default
        with pytest.raises(ValueError):
            repro_log.resolve_level("shout")

    def test_configure_idempotent(self):
        first = repro_log.configure("info")
        second = repro_log.configure("debug")
        assert first is second
        assert len(second.handlers) == 1
        assert second.level == logging.DEBUG
