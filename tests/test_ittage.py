"""Tests for the ITTAGE indirect predictor (repro.branch.ittage)."""

import pytest

from repro.branch.history import HistoryManager
from repro.branch.ittage import ITTAGE
from repro.common.params import HistoryPolicy


class TestBasics:
    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            ITTAGE(n_entries=1000)

    def test_unknown_pc_predicts_none(self):
        assert ITTAGE().predict(0x4000, 0) is None

    def test_base_table_learns_last_target(self):
        it = ITTAGE()
        it.update(0x4000, 0, 0x8000)
        assert it.predict(0x4000, 0) == 0x8000

    def test_base_table_tracks_change(self):
        it = ITTAGE()
        it.update(0x4000, 0, 0x8000)
        it.update(0x4000, 0, 0x9000)
        # Base table reflects the most recent target.
        assert it._base[0x4000] == 0x9000

    def test_storage_bits_positive(self):
        assert ITTAGE().storage_bits() > 0


class TestHistoryCorrelation:
    def test_learns_round_robin_with_history(self):
        """A round-robin indirect branch is predictable once the target
        sequence is reflected in the (taken-target) history."""
        it = ITTAGE(2048)
        mgr = HistoryManager(HistoryPolicy.THR, 260)
        pc = 0x4000
        targets = [0x8000, 0x9000, 0xA000]
        hist = 0
        correct = total = 0
        for i in range(3000):
            target = targets[i % 3]
            pred = it.predict(pc, hist)
            it.update(pc, hist, target)
            if i > 600:
                total += 1
                correct += pred == target
            hist = mgr.push_taken(hist, pc, target)
        assert correct / total > 0.95

    def test_conflicting_contexts_separate(self):
        it = ITTAGE(2048)
        h1, h2 = 0xAAAA, 0x5555
        for _ in range(10):
            it.update(0x4000, h1, 0x8000)
            it.update(0x4000, h2, 0x9000)
        assert it.predict(0x4000, h1) == 0x8000
        assert it.predict(0x4000, h2) == 0x9000

    def test_update_counts(self):
        it = ITTAGE()
        it.update(0x4000, 0, 0x8000)
        assert it.updates == 1

    def test_base_capacity_bounded(self):
        it = ITTAGE(512)
        for i in range(1000):
            it.update(0x4000 + 4 * i, 0, 0x8000)
        assert len(it._base) <= it._base_capacity
