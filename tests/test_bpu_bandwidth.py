"""Tests for BPU bandwidth semantics (Fig 13 mechanics)."""

from repro.common.params import SimParams
from repro.frontend.ftq import FTQ
from repro.isa.instructions import BranchKind, Instruction
from tests.conftest import jump, make_program, make_stream, seg
from tests.test_bpu import build_bpu


def taken_chain_setup(n_links=8, stride=0x100):
    """A chain of unconditional jumps, all in the BTB."""
    segments = []
    branches = {}
    for i in range(n_links):
        start = 0x1000 + i * stride
        target = 0x1000 + (i + 1) * stride
        segments.append(seg(start, 4, target, [jump(start + 12, target)]))
        branches[start + 12] = Instruction(start + 12, BranchKind.UNCOND_DIRECT, target)
    segments.append(seg(0x1000 + n_links * stride, 64))
    return make_stream(segments), make_program(branches)


class TestTakenBandwidth:
    def test_one_taken_per_cycle_default(self):
        stream, program = taken_chain_setup()
        bpu, btb, _ = build_bpu(stream, program)
        for instr in program.branches.values():
            btb.insert(instr.addr, instr.kind, instr.target)
        ftq = FTQ(16)
        bpu.cycle(0, ftq)
        taken_entries = [e for e in ftq if e.pred_taken]
        assert len(taken_entries) == 1

    def test_b18m_allows_two_takens_per_cycle(self):
        stream, program = taken_chain_setup()
        params = SimParams().with_frontend(predict_width=18, max_taken_per_cycle=2)
        bpu, btb, _ = build_bpu(stream, program, params=params)
        for instr in program.branches.values():
            btb.insert(instr.addr, instr.kind, instr.target)
        ftq = FTQ(16)
        bpu.cycle(0, ftq)
        taken_entries = [e for e in ftq if e.pred_taken]
        assert len(taken_entries) == 2

    def test_predict_width_caps_instructions(self):
        # Pure sequential stream: one cycle covers at most predict_width
        # instructions (within one block of overshoot).
        stream = make_stream([seg(0x1000, 4096)])
        params = SimParams().with_frontend(predict_width=6)
        bpu, _, _ = build_bpu(stream, params=params, program=make_program({}))
        ftq = FTQ(32)
        bpu.cycle(0, ftq)
        covered = sum(e.n_instrs for e in ftq)
        assert covered <= 6 + 8  # budget plus at most one block overshoot

    def test_wider_prediction_covers_more(self):
        stream = make_stream([seg(0x1000, 4096)])
        covered = {}
        for width in (6, 18):
            params = SimParams().with_frontend(predict_width=width)
            bpu, _, _ = build_bpu(stream, params=params, program=make_program({}))
            ftq = FTQ(32)
            bpu.cycle(0, ftq)
            covered[width] = sum(e.n_instrs for e in ftq)
        assert covered[18] > covered[6]
