"""Tests for metrics and hardware-cost accounting (repro.core.metrics)."""

import pytest

from repro.common.params import SimParams
from repro.common.stats import StatSet
from repro.core.metrics import (
    RunResult,
    ftq_entry_bits,
    ftq_storage_bits,
    ftq_storage_bytes,
)


class TestFTQStorage:
    def test_paper_total_195_bytes(self):
        """Table III: a 24-entry FTQ costs 195 bytes."""
        assert ftq_storage_bytes(24) == 195

    def test_pfc_hint_increment_24_bytes(self):
        """Table III: the PFC direction hints add only 24 bytes."""
        assert ftq_storage_bytes(24) - ftq_storage_bytes(24, with_pfc_hints=False) == 24

    def test_entry_bits(self):
        assert ftq_entry_bits() == 48 + 1 + 3 + 3 + 2 + 8
        assert ftq_entry_bits(with_pfc_hints=False) == 57

    def test_scales_linearly(self):
        assert ftq_storage_bits(48) == 2 * ftq_storage_bits(24)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ftq_storage_bits(0)


def make_result(**stat_values):
    stats = StatSet()
    for k, v in stat_values.items():
        stats.set(k, v)
    return RunResult(
        workload="w",
        label="l",
        params=SimParams(),
        instructions=10_000,
        cycles=5_000,
        stats=stats,
    )


class TestRunResult:
    def test_ipc(self):
        assert make_result().ipc == 2.0

    def test_zero_cycles(self):
        r = make_result()
        r.cycles = 0
        assert r.ipc == 0.0

    def test_branch_mpki(self):
        r = make_result(branch_mispredictions=50)
        assert r.branch_mpki == 5.0

    def test_l1i_mpki(self):
        assert make_result(l1i_miss=20).l1i_mpki == 2.0

    def test_starvation(self):
        assert make_result(starvation_cycles=100).starvation_per_kilo == 10.0

    def test_tag_accesses(self):
        assert make_result(l1i_tag_access=30_000).tag_accesses_per_kilo == 3_000.0

    def test_miss_exposure(self):
        r = make_result(miss_covered=5, miss_partially_exposed=3, miss_fully_exposed=2)
        assert r.miss_exposure() == {
            "covered": 5,
            "partially_exposed": 3,
            "fully_exposed": 2,
        }
        assert r.exposed_fraction() == pytest.approx(0.5)

    def test_exposed_fraction_empty(self):
        assert make_result().exposed_fraction() == 0.0

    def test_summary_contains_key_numbers(self):
        text = make_result(branch_mispredictions=50).summary()
        assert "IPC= 2.00" in text
        assert "brMPKI=" in text
