"""Unit tests for repro.common.rng."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.rng import SplitMix64


class TestSplitMix64:
    def test_deterministic_stream(self):
        a = SplitMix64(42)
        b = SplitMix64(42)
        assert [a.next_u64() for _ in range(20)] == [b.next_u64() for _ in range(20)]

    def test_different_seeds_differ(self):
        assert SplitMix64(1).next_u64() != SplitMix64(2).next_u64()

    def test_randint_bounds(self):
        rng = SplitMix64(7)
        values = [rng.randint(3, 9) for _ in range(500)]
        assert min(values) >= 3 and max(values) <= 9
        assert set(values) == set(range(3, 10))

    def test_randint_single_point(self):
        assert SplitMix64(1).randint(5, 5) == 5

    def test_randint_empty_range_raises(self):
        with pytest.raises(ValueError):
            SplitMix64(1).randint(5, 4)

    def test_random_unit_interval(self):
        rng = SplitMix64(3)
        for _ in range(200):
            assert 0.0 <= rng.random() < 1.0

    def test_chance_extremes(self):
        rng = SplitMix64(3)
        assert not any(rng.chance(0.0) for _ in range(50))
        assert all(rng.chance(1.0) for _ in range(50))

    def test_choice(self):
        rng = SplitMix64(5)
        seq = ["a", "b", "c"]
        assert {rng.choice(seq) for _ in range(100)} == set(seq)

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            SplitMix64(1).choice([])

    def test_shuffle_is_permutation(self):
        rng = SplitMix64(9)
        seq = list(range(30))
        shuffled = list(seq)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == seq
        assert shuffled != seq  # astronomically unlikely to be identity

    def test_fork_independence(self):
        parent = SplitMix64(11)
        child_a = parent.fork(1)
        # Drawing from child_a must not change what a fresh fork yields
        # from an identically advanced parent.
        parent2 = SplitMix64(11)
        _ = parent2.fork(1)
        for _ in range(100):
            child_a.next_u64()
        assert parent.next_u64() == parent2.next_u64()

    def test_fork_tags_differ(self):
        parent = SplitMix64(13)
        a = parent.fork(1)
        parent2 = SplitMix64(13)
        b = parent2.fork(2)
        assert a.next_u64() != b.next_u64()

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_next_u64_range(self, seed):
        assert 0 <= SplitMix64(seed).next_u64() < 2**64

    @given(
        st.integers(min_value=0, max_value=2**32),
        st.integers(min_value=-1000, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    )
    def test_randint_property(self, seed, lo, span):
        value = SplitMix64(seed).randint(lo, lo + span)
        assert lo <= value <= lo + span
