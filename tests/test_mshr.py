"""Tests for the MSHR file (repro.memory.mshr)."""

import pytest

from repro.memory.mshr import MSHRFile


class TestAllocate:
    def test_basic_allocation(self):
        m = MSHRFile(2)
        entry = m.allocate(0x1000, issue_cycle=1, ready_cycle=10, is_prefetch=False)
        assert entry is not None
        assert len(m) == 1
        assert m.allocations == 1

    def test_merge_same_line(self):
        m = MSHRFile(2)
        first = m.allocate(0x1000, 1, 10, False)
        second = m.allocate(0x1000, 2, 99, False, waiter="w")
        assert second is first
        assert len(m) == 1
        assert m.merges == 1
        assert second.ready_cycle == 10  # original timing preserved
        assert "w" in second.waiters

    def test_demand_merge_promotes_prefetch(self):
        m = MSHRFile(2)
        m.allocate(0x1000, 1, 10, is_prefetch=True)
        entry = m.allocate(0x1000, 2, 10, is_prefetch=False)
        assert not entry.is_prefetch

    def test_prefetch_merge_does_not_demote(self):
        m = MSHRFile(2)
        m.allocate(0x1000, 1, 10, is_prefetch=False)
        entry = m.allocate(0x1000, 2, 10, is_prefetch=True)
        assert not entry.is_prefetch

    def test_full_rejection(self):
        m = MSHRFile(1)
        m.allocate(0x1000, 1, 10, False)
        assert m.full
        assert m.allocate(0x2000, 1, 10, False) is None
        assert m.rejections == 1

    def test_full_still_merges(self):
        m = MSHRFile(1)
        m.allocate(0x1000, 1, 10, False)
        assert m.allocate(0x1000, 2, 10, False) is not None

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            MSHRFile(0)


class TestPopReady:
    def test_pops_due_entries_in_order(self):
        m = MSHRFile(4)
        m.allocate(0xA000, 0, 20, False)
        m.allocate(0xB000, 0, 10, False)
        m.allocate(0xC000, 0, 30, False)
        ready = m.pop_ready(25)
        assert [e.line for e in ready] == [0xB000, 0xA000]
        assert len(m) == 1

    def test_nothing_due(self):
        m = MSHRFile(2)
        m.allocate(0xA000, 0, 20, False)
        assert m.pop_ready(5) == []

    def test_lookup(self):
        m = MSHRFile(2)
        m.allocate(0xA000, 0, 20, False)
        assert m.lookup(0xA000) is not None
        assert m.lookup(0xB000) is None


class TestFlush:
    def test_flush_waiters_keeps_fills(self):
        m = MSHRFile(2)
        m.allocate(0xA000, 0, 20, False, waiter="x")
        m.flush_waiters()
        entry = m.lookup(0xA000)
        assert entry is not None and entry.waiters == []

    def test_reset_stats(self):
        m = MSHRFile(2)
        m.allocate(0xA000, 0, 20, False)
        m.allocate(0xA000, 0, 20, False)
        m.reset_stats()
        assert m.allocations == 0 and m.merges == 0
