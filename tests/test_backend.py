"""Tests for the decode queue, commit trainer and backend."""

import pytest

from repro.branch.btb import BTB
from repro.branch.history import HistoryManager
from repro.branch.ittage import ITTAGE
from repro.common.params import HistoryPolicy, SimParams
from repro.common.stats import StatSet
from repro.core.backend import Backend, CommitTrainer, DecodeQueue
from repro.frontend.bpu import Fault
from repro.isa.instructions import BranchKind
from tests.conftest import cond, jump, make_stream, seg


class TestDecodeQueue:
    def test_capacity_tracking(self):
        dq = DecodeQueue(16)
        dq.push(6, None, -1, False)
        assert dq.total_instrs == 6
        assert dq.free_slots == 10

    def test_overflow_raises(self):
        dq = DecodeQueue(8)
        dq.push(8, None, -1, False)
        with pytest.raises(RuntimeError):
            dq.push(1, None, -1, False)

    def test_rejects_empty_chunk(self):
        with pytest.raises(ValueError):
            DecodeQueue(8).push(0, None, -1, False)

    def test_consume_across_chunk(self):
        dq = DecodeQueue(16)
        dq.push(4, None, -1, False)
        dq.consume_from_head(4)
        assert dq.total_instrs == 0
        assert len(dq) == 0

    def test_partial_consume(self):
        dq = DecodeQueue(16)
        dq.push(6, None, -1, False)
        dq.consume_from_head(2)
        assert dq.total_instrs == 4
        assert len(dq) == 1

    def test_flush(self):
        dq = DecodeQueue(16)
        dq.push(6, None, -1, False)
        dq.flush()
        assert dq.total_instrs == 0 and dq.head() is None

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            DecodeQueue(0)


def make_trainer(stream, policy=HistoryPolicy.THR, direction=None):
    btb = BTB(1024, 4)
    mgr = HistoryManager(policy, 64)
    stats = StatSet()
    trainer = CommitTrainer(
        stream=stream,
        mgr=mgr,
        btb=btb,
        direction=direction,
        ittage=ITTAGE(64),
        stats=stats,
        train_direction=direction is not None,
    )
    return trainer, btb, stats


class TestCommitTrainer:
    def test_advance_counts(self):
        stream = make_stream([seg(0x1000, 8, 0x8000, [jump(0x101C, 0x8000)]), seg(0x8000, 8)])
        trainer, _, _ = make_trainer(stream)
        trainer.advance(10)
        assert trainer.committed == 10
        assert trainer.seg_idx == 1 and trainer.pos == 2

    def test_commit_pc_follows_stream(self):
        stream = make_stream([seg(0x1000, 8, 0x8000, [jump(0x101C, 0x8000)]), seg(0x8000, 8)])
        trainer, _, _ = make_trainer(stream)
        trainer.advance(8)
        assert trainer.commit_pc == 0x8000
        trainer.advance(3)
        assert trainer.commit_pc == 0x800C

    def test_btb_insert_on_taken(self):
        stream = make_stream([seg(0x1000, 8, 0x8000, [jump(0x101C, 0x8000)]), seg(0x8000, 8)])
        trainer, btb, _ = make_trainer(stream)
        trainer.advance(8)
        assert btb.contains(0x101C)

    def test_taken_only_policy_skips_not_taken(self):
        stream = make_stream(
            [seg(0x1000, 8, 0x8000, [cond(0x1008, False, 0x9000), jump(0x101C, 0x8000)]), seg(0x8000, 8)]
        )
        trainer, btb, _ = make_trainer(stream, policy=HistoryPolicy.THR)
        trainer.advance(8)
        assert not btb.contains(0x1008)
        assert btb.contains(0x101C)

    def test_alloc_all_policy_inserts_not_taken(self):
        stream = make_stream(
            [seg(0x1000, 8, 0x8000, [cond(0x1008, False, 0x9000), jump(0x101C, 0x8000)]), seg(0x8000, 8)]
        )
        trainer, btb, _ = make_trainer(stream, policy=HistoryPolicy.GHR3)
        trainer.advance(8)
        assert btb.contains(0x1008)

    def test_arch_ras_tracks_calls(self):
        stream = make_stream(
            [
                seg(0x1000, 4, 0x8000, [(0x100C, BranchKind.CALL_DIRECT, True, 0x8000)]),
                seg(0x8000, 2, 0x1010, [(0x8004, BranchKind.RETURN, True, 0x1010)]),
                seg(0x1010, 8),
            ]
        )
        trainer, _, _ = make_trainer(stream)
        trainer.advance(4)
        assert trainer.arch_ras.top() == 0x1010
        trainer.advance(2)
        assert trainer.arch_ras.top() is None

    def test_direction_training(self):
        calls = []

        class Recorder:
            def update(self, pc, hist, taken):
                calls.append((pc, taken))

        stream = make_stream(
            [seg(0x1000, 8, 0x8000, [cond(0x1008, False, 0x9000)]), seg(0x8000, 8)]
        )
        # Note: stream is inconsistent (no taken terminator) but trainer
        # only walks branch lists.
        trainer, _, _ = make_trainer(stream, direction=Recorder())
        trainer.advance(8)
        assert calls == [(0x1008, False)]

    def test_arch_history_updates(self):
        stream = make_stream([seg(0x1000, 8, 0x8000, [jump(0x101C, 0x8000)]), seg(0x8000, 8)])
        trainer, _, _ = make_trainer(stream)
        trainer.advance(8)
        assert trainer.arch_hist != 0

    def test_branch_listener_called(self):
        seen = []
        stream = make_stream([seg(0x1000, 8, 0x8000, [jump(0x101C, 0x8000)]), seg(0x8000, 8)])
        trainer, _, _ = make_trainer(stream)
        trainer.branch_listener = lambda pc, kind, taken, target: seen.append(pc)
        trainer.advance(8)
        assert seen == [0x101C]

    def test_running_past_stream_raises(self):
        stream = make_stream([seg(0x1000, 8)])
        trainer, _, _ = make_trainer(stream)
        with pytest.raises(RuntimeError):
            trainer.advance(9)


class TestBackend:
    def make_backend(self, stream, penalty=14):
        params = SimParams().with_core(mispredict_penalty=penalty)
        dq = DecodeQueue(64)
        trainer, btb, stats = make_trainer(stream)
        flushes = []
        backend = Backend(params, dq, trainer, stats, lambda fault, cycle: flushes.append((fault, cycle)))
        return backend, dq, stats, flushes

    def test_retires_up_to_width(self):
        stream = make_stream([seg(0x1000, 64)])
        backend, dq, stats, _ = self.make_backend(stream)
        dq.push(10, None, -1, False)
        backend.cycle(0)
        assert backend.committed == 6
        backend.cycle(1)
        assert backend.committed == 10

    def test_starvation_counted(self):
        stream = make_stream([seg(0x1000, 64)])
        backend, dq, stats, _ = self.make_backend(stream)
        dq.push(3, None, -1, False)
        backend.cycle(0)
        assert stats.get("starvation_cycles") == 1

    def test_wrong_path_consumed_not_committed(self):
        stream = make_stream([seg(0x1000, 64)])
        backend, dq, stats, _ = self.make_backend(stream)
        dq.push(5, None, -1, True)
        backend.cycle(0)
        assert backend.committed == 0
        assert stats.get("wrong_path_consumed") == 5

    def test_fault_triggers_flush_at_fault_instruction(self):
        stream = make_stream([seg(0x1000, 8, 0x8000, [jump(0x101C, 0x8000)]), seg(0x8000, 64)])
        backend, dq, stats, flushes = self.make_backend(stream)
        fault = Fault(
            pc=0x100C,
            kind_label="btb_miss",
            branch_kind=BranchKind.UNCOND_DIRECT,
            taken=True,
            target=0x8000,
            correct_next=0x8000,
            next_seg=1,
        )
        dq.push(8, fault, 3, False)
        backend.cycle(0)
        # Commits stop right after the faulting instruction (index 3).
        assert backend.committed == 4
        assert len(flushes) == 1
        assert stats.get("branch_mispredictions") == 1
        assert stats.get("mispredict_btb_miss") == 1

    def test_cond_mispredict_counted(self):
        stream = make_stream([seg(0x1000, 8, 0x8000, [cond(0x101C, True, 0x8000)]), seg(0x8000, 64)])
        backend, dq, stats, flushes = self.make_backend(stream)
        fault = Fault(
            pc=0x101C,
            kind_label="dir_nt",
            branch_kind=BranchKind.COND_DIRECT,
            taken=True,
            target=0x8000,
            correct_next=0x8000,
            next_seg=1,
        )
        dq.push(8, fault, 7, False)
        backend.cycle(0)
        backend.cycle(1)
        assert stats.get("cond_mispredictions") == 1
