"""Tests for the return address stack (repro.branch.ras)."""

import pytest

from repro.branch.ras import ReturnAddressStack


class TestRAS:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(8)
        ras.push(0x1000)
        ras.push(0x2000)
        assert ras.pop() == 0x2000
        assert ras.pop() == 0x1000

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(8)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.overflows == 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_top_peeks(self):
        ras = ReturnAddressStack(4)
        assert ras.top() is None
        ras.push(0x1000)
        assert ras.top() == 0x1000
        assert len(ras) == 1

    def test_copy_from(self):
        a = ReturnAddressStack(4)
        b = ReturnAddressStack(4)
        a.push(1)
        a.push(2)
        b.copy_from(a)
        assert b.pop() == 2
        # Copies are independent.
        assert a.top() == 2

    def test_snapshot_restore(self):
        ras = ReturnAddressStack(4)
        ras.push(1)
        snap = ras.snapshot()
        ras.push(2)
        ras.restore(snap)
        assert ras.top() == 1 and len(ras) == 1

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)

    def test_counters(self):
        ras = ReturnAddressStack(4)
        ras.push(1)
        ras.pop()
        assert ras.pushes == 1 and ras.pops == 1
