"""Tests for the instruction memory hierarchy (repro.memory.hierarchy)."""


from repro.common.params import MemoryParams
from repro.common.stats import StatSet
from repro.memory.hierarchy import InstructionMemory


def make_memory(**overrides):
    params = MemoryParams(**overrides)
    stats = StatSet()
    return InstructionMemory(params, stats), stats


class TestDemandPath:
    def test_cold_miss_issues_fill(self):
        mem, stats = make_memory()
        result = mem.demand_probe(0x1000, cycle=0)
        assert not result.hit and result.issued and result.primary
        assert stats.get("l1i_miss") == 1
        assert stats.get("l1i_tag_access") == 1

    def test_miss_latency_includes_l2(self):
        mem, _ = make_memory()
        r = mem.demand_probe(0x1000, cycle=0)
        # Cold line: L2 also misses -> DRAM latency.
        assert r.ready_cycle >= mem.params.dram_latency

    def test_l2_hit_after_eviction(self):
        mem, stats = make_memory(l1i_kib=1, l1i_assoc=1, l2_kib=64)
        mem.demand_probe(0x1000, 0)
        mem.tick(10_000)  # fill completes; L2 now holds it too
        # Evict from tiny L1 by filling the same set.
        step = mem.l1i.n_sets * 64
        mem.demand_probe(0x1000 + step, 0)
        mem.tick(20_000)
        r = mem.demand_probe(0x1000, 20_001)
        assert not r.hit
        # Refill should be an L2 hit now.
        assert r.ready_cycle - 20_001 <= mem.params.l2_latency + mem.params.itlb_miss_latency

    def test_hit_after_fill(self):
        mem, stats = make_memory()
        mem.demand_probe(0x1000, 0)
        mem.tick(10_000)
        r = mem.demand_probe(0x1000, 10_001)
        assert r.hit
        assert stats.get("l1i_hit") == 1

    def test_hit_is_pipelined_next_cycle(self):
        mem, _ = make_memory()
        mem.demand_probe(0x1000, 0)
        mem.tick(10_000)
        mem.demand_probe(0x1000, 10_001)  # warm the TLB path
        r = mem.demand_probe(0x1000, 10_002)
        assert r.ready_cycle == 10_003

    def test_secondary_miss_merges(self):
        mem, stats = make_memory()
        first = mem.demand_probe(0x1000, 0)
        second = mem.demand_probe(0x1020, 1)  # same 64B line as 0x1000
        assert not second.primary
        assert second.ready_cycle == first.ready_cycle
        assert stats.get("l1i_miss") == 1
        assert stats.get("l1i_miss_secondary") == 1

    def test_mshr_full_stalls(self):
        mem, stats = make_memory(mshr_entries=1)
        mem.demand_probe(0x1000, 0)
        r = mem.demand_probe(0x2000, 0)
        assert not r.hit and not r.issued
        assert stats.get("mshr_stall") == 1


class TestPerfectMode:
    def test_always_hits_but_counts_traffic(self):
        mem, stats = make_memory()
        mem.perfect = True
        r = mem.demand_probe(0x1000, 0)
        assert r.hit
        assert stats.get("memory_requests") == 1
        assert stats.get("l1i_miss") == 1  # the miss event is still recorded
        # And it is now resident for real.
        assert mem.l1i.contains(0x1000)


class TestPrefetchPath:
    def test_prefetch_counts_tag_probe(self):
        mem, stats = make_memory()
        assert mem.prefetch_line(0x1000, 0)
        assert stats.get("l1i_tag_access") == 1
        assert stats.get("prefetch_issued") == 1

    def test_redundant_prefetch(self):
        mem, stats = make_memory()
        mem.prefetch_line(0x1000, 0)
        mem.tick(10_000)
        assert not mem.prefetch_line(0x1000, 10_001)
        assert stats.get("prefetch_redundant") == 1

    def test_inflight_merge_not_reissued(self):
        mem, stats = make_memory()
        mem.prefetch_line(0x1000, 0)
        assert not mem.prefetch_line(0x1000, 1)
        assert stats.get("prefetch_inflight_merge") == 1

    def test_useful_prefetch_accounting(self):
        mem, stats = make_memory()
        mem.prefetch_line(0x1000, 0)
        mem.tick(10_000)
        r = mem.demand_probe(0x1000, 10_001)
        assert r.hit
        assert stats.get("prefetch_useful") == 1

    def test_late_prefetch_promotion(self):
        mem, stats = make_memory()
        mem.prefetch_line(0x1000, 0)
        r = mem.demand_probe(0x1000, 1)
        assert not r.hit and r.issued and r.primary
        assert stats.get("prefetch_late") == 1
        assert stats.get("l1i_miss") == 1

    def test_useless_prefetch_on_eviction(self):
        mem, stats = make_memory(l1i_kib=1, l1i_assoc=1)
        mem.prefetch_line(0x1000, 0)
        mem.tick(10_000)
        step = mem.l1i.n_sets * 64
        mem.demand_probe(0x1000 + step, 10_001)
        mem.tick(20_000)  # fills and evicts the prefetched line
        assert stats.get("prefetch_useless") == 1

    def test_prefetch_mshr_reject(self):
        mem, stats = make_memory(mshr_entries=1)
        mem.demand_probe(0x1000, 0)
        assert not mem.prefetch_line(0x2000, 0)
        assert stats.get("prefetch_mshr_reject") == 1


class TestTick:
    def test_fill_installs_line(self):
        mem, _ = make_memory()
        mem.demand_probe(0x1000, 0, waiter="entry")
        done = mem.tick(10_000)
        assert len(done) == 1
        assert done[0].waiters == ["entry"]
        assert mem.l1i.contains(0x1000)

    def test_flush_waiters(self):
        mem, _ = make_memory()
        mem.demand_probe(0x1000, 0, waiter="entry")
        mem.flush_waiters()
        done = mem.tick(10_000)
        assert done[0].waiters == []
        assert mem.l1i.contains(0x1000)  # the fill still lands

    def test_set_stats_swaps_sink(self):
        mem, old = make_memory()
        new = StatSet()
        mem.set_stats(new)
        mem.demand_probe(0x1000, 0)
        assert old.get("l1i_tag_access") == 0
        assert new.get("l1i_tag_access") == 1
