"""Structural tests for synthetic program generation (repro.trace.cfg)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instructions import BranchKind
from repro.trace.behaviors import LoopBehaviour
from repro.trace.cfg import generate_program
from tests.conftest import tiny_spec


@pytest.fixture(scope="module")
def program():
    return generate_program(tiny_spec(), seed=7)


class TestSpecValidation:
    def test_rejects_bad_fraction_sum(self):
        with pytest.raises(ValueError):
            tiny_spec(frac_never_taken=0.9, frac_mostly_taken=0.9)

    def test_rejects_terminator_overflow(self):
        with pytest.raises(ValueError):
            tiny_spec(cond_fraction=0.9, call_fraction=0.5)

    def test_rejects_too_few_functions(self):
        with pytest.raises(ValueError):
            tiny_spec(n_functions=1)

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            tiny_spec(instrs_per_block=(5, 3))

    def test_rejects_unaligned_base(self):
        with pytest.raises(ValueError):
            tiny_spec(base_addr=0x1010)


class TestLayout:
    def test_blocks_contiguous_within_function(self, program):
        for fn in program.functions:
            blocks = sorted(
                (b for b in program.blocks.values() if fn.start <= b.start < fn.end),
                key=lambda b: b.start,
            )
            for a, b in zip(blocks, blocks[1:]):
                assert a.fall_addr == b.start

    def test_function_alignment(self, program):
        for fn in program.functions:
            assert fn.start % 64 == 0

    def test_code_bounds(self, program):
        assert program.code_start == program.spec.base_addr
        assert all(
            program.code_start <= b.start < program.code_end
            for b in program.blocks.values()
        )

    def test_entry_is_main_start(self, program):
        assert program.entry == program.functions[0].start

    def test_footprint_positive(self, program):
        assert program.footprint_bytes > 0
        assert program.static_instructions * 4 <= program.footprint_bytes


class TestControlFlowTargets:
    def test_direct_targets_are_block_starts(self, program):
        for block in program.blocks.values():
            if block.kind in (BranchKind.COND_DIRECT, BranchKind.UNCOND_DIRECT, BranchKind.CALL_DIRECT):
                assert block.target in program.blocks

    def test_indirect_targets_are_block_starts(self, program):
        for block in program.blocks.values():
            if block.kind in (BranchKind.INDIRECT, BranchKind.INDIRECT_CALL):
                assert block.targets
                for t in block.targets:
                    assert t in program.blocks

    def test_calls_target_function_entries(self, program):
        entries = {fn.start for fn in program.functions}
        for block in program.blocks.values():
            if block.kind is BranchKind.CALL_DIRECT:
                assert block.target in entries

    def test_call_graph_is_dag(self, program):
        """Callees always have strictly higher function index."""
        start_to_index = {fn.start: fn.index for fn in program.functions}

        def owner(addr):
            for fn in program.functions:
                if fn.start <= addr < fn.end:
                    return fn.index
            raise AssertionError(f"address {addr:#x} outside all functions")

        for block in program.blocks.values():
            if block.kind is BranchKind.CALL_DIRECT:
                assert start_to_index[block.target] > owner(block.start)
            elif block.kind is BranchKind.INDIRECT_CALL:
                for t in block.targets:
                    assert start_to_index[t] > owner(block.start)


class TestBranchMap:
    def test_branch_map_matches_blocks(self, program):
        for block in program.blocks.values():
            instr = program.instruction_at(block.term_addr)
            if block.kind.is_branch:
                assert instr is not None
                assert instr.kind == block.kind
            else:
                assert instr is None

    def test_non_terminator_addresses_are_plain(self, program):
        for block in program.blocks.values():
            addr = block.start
            while addr < block.term_addr:
                assert program.instruction_at(addr) is None
                addr += 4

    def test_block_of_term_consistent(self, program):
        for term, start in program.block_of_term.items():
            assert program.blocks[start].term_addr == term


class TestLoops:
    def test_loop_back_edges_use_loop_behaviour(self, program):
        for block in program.blocks.values():
            if block.kind is BranchKind.COND_DIRECT and block.target < block.start:
                beh = program.behaviours[block.behaviour]
                assert isinstance(beh, LoopBehaviour)

    def test_loop_bodies_have_no_calls(self, program):
        # Applies to generated callee functions only: main's phase loops
        # intentionally wrap call blocks (bounded by phase_repeats).
        main_end = program.functions[0].end
        for block in program.blocks.values():
            if block.start < main_end:
                continue
            if block.kind is BranchKind.COND_DIRECT and block.target < block.start:
                addr = block.target
                while addr <= block.start:
                    body = program.blocks.get(addr)
                    assert body is not None
                    assert body.kind not in (BranchKind.CALL_DIRECT, BranchKind.INDIRECT_CALL)
                    addr = body.fall_addr


class TestDeterminism:
    def test_same_seed_same_program(self):
        a = generate_program(tiny_spec(), seed=3)
        b = generate_program(tiny_spec(), seed=3)
        assert a.code_end == b.code_end
        assert set(a.branches) == set(b.branches)
        assert [blk.kind for blk in a.blocks.values()] == [blk.kind for blk in b.blocks.values()]

    def test_different_seed_different_program(self):
        a = generate_program(tiny_spec(), seed=3)
        b = generate_program(tiny_spec(), seed=4)
        assert set(a.branches) != set(b.branches)


class TestCallBudget:
    def test_small_budget_limits_calls(self):
        tight = generate_program(tiny_spec(call_budget=10), seed=5)
        loose = generate_program(tiny_spec(call_budget=5000), seed=5)
        def n_calls(p):
            return sum(1 for b in p.blocks.values() if b.kind is BranchKind.CALL_DIRECT)
        # With a 10-instruction budget almost no callee qualifies.
        assert n_calls(tight) <= n_calls(loose)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_generation_invariants_hold_for_any_seed(seed):
    program = generate_program(tiny_spec(), seed=seed)
    # Every terminator branch lives in the branch map; every direct
    # target is a block start; the taken-candidate count is bounded.
    for block in program.blocks.values():
        if block.kind.is_branch:
            assert block.term_addr in program.branches
        if block.kind in (BranchKind.COND_DIRECT, BranchKind.UNCOND_DIRECT):
            assert block.target in program.blocks
    assert 0 < program.static_taken_candidates() <= program.static_branches
