"""Edge-case tests for the decoupled frontend.

Covers interactions the main test files don't: decode-queue
backpressure, MSHR exhaustion with retry, fetch groups spanning FTQ
entries, returns through the speculative RAS, ITTAGE-driven indirect
prediction, and IDEAL-history bookkeeping.
"""


from repro.common.params import HistoryPolicy, SimParams
from repro.core.simulator import Simulator
from repro.isa.instructions import BranchKind, Instruction
from repro.trace.cfg import generate_program
from repro.trace.oracle import run_oracle
from tests.conftest import make_program, make_stream, seg, tiny_spec
from tests.test_fetch import Harness


class TestDecodeQueueBackpressure:
    def test_tiny_decode_queue_throttles_but_progresses(self):
        program = generate_program(tiny_spec(), seed=31)
        stream = run_oracle(program, 5_000, seed=32)
        params = SimParams(
            warmup_instructions=500, sim_instructions=2_000
        ).with_frontend(decode_queue_size=6)
        result = Simulator(params, program, stream).run("t")
        assert result.instructions > 0

    def test_dq_never_overflows(self):
        stream = make_stream([seg(0x1000, 2048)])
        h = Harness(stream, make_program({}), params=SimParams().with_frontend(decode_queue_size=8))
        for cycle in range(600):
            fills = h.memory.tick(cycle)
            if fills:
                h.fetch.complete_fills(fills, cycle)
            h.fetch.fetch_stage(cycle)
            assert h.dq.total_instrs <= 8
            h.fetch.probe_stage(cycle)
            h.bpu.cycle(cycle, h.ftq)


class TestMSHRPressure:
    def test_mshr_full_retries_and_completes(self):
        program = generate_program(tiny_spec(), seed=41)
        stream = run_oracle(program, 5_000, seed=42)
        params = SimParams(warmup_instructions=500, sim_instructions=2_000).with_memory(
            mshr_entries=1
        )
        result = Simulator(params, program, stream).run("t")
        assert result.instructions > 0


class TestSpanningFetch:
    def test_one_cycle_consumes_multiple_ready_entries(self):
        # Pure sequential stream: entries are full 8-instr blocks; with
        # fetch width 6 a cycle must split across entries eventually.
        stream = make_stream([seg(0x1000, 2048)])
        h = Harness(stream, make_program({}))
        consumed_entries = set()
        for cycle in range(300):
            fills = h.memory.tick(cycle)
            if fills:
                h.fetch.complete_fills(fills, cycle)
            before = len(h.ftq)
            h.fetch.fetch_stage(cycle)
            after = len(h.ftq)
            if before - after >= 1 and h.dq.total_instrs >= 6:
                consumed_entries.add(cycle)
            h.fetch.probe_stage(cycle)
            h.bpu.cycle(cycle, h.ftq)
        assert consumed_entries  # fetch made progress across entries


class TestReturnsAndIndirects:
    def test_detected_return_uses_spec_ras(self):
        # call at 0x100C -> 0x8000; return at 0x8004 -> 0x1010.
        stream = make_stream(
            [
                seg(0x1000, 4, 0x8000, [(0x100C, BranchKind.CALL_DIRECT, True, 0x8000)]),
                seg(0x8000, 2, 0x1010, [(0x8004, BranchKind.RETURN, True, 0x1010)]),
                seg(0x1010, 512),
            ]
        )
        program = make_program(
            {
                0x100C: Instruction(0x100C, BranchKind.CALL_DIRECT, 0x8000),
                0x8004: Instruction(0x8004, BranchKind.RETURN),
            }
        )
        h = Harness(stream, program)
        h.btb.insert(0x100C, BranchKind.CALL_DIRECT, 0x8000)
        h.btb.insert(0x8004, BranchKind.RETURN, 0)
        for cycle in range(6):
            h.bpu.cycle(cycle, h.ftq)
        entries = list(h.ftq)
        ret_entry = next(e for e in entries if e.term_addr == 0x8004)
        assert ret_entry.pred_taken and ret_entry.pred_target == 0x1010
        assert ret_entry.fault is None

    def test_indirect_uses_ittage_over_btb_target(self):
        stream = make_stream(
            [
                seg(0x1000, 4, 0x9000, [(0x100C, BranchKind.INDIRECT, True, 0x9000)]),
                seg(0x9000, 512),
            ]
        )
        program = make_program({0x100C: Instruction(0x100C, BranchKind.INDIRECT)})
        h = Harness(stream, program)
        # BTB remembers a stale target; ITTAGE has the fresh one.
        h.btb.insert(0x100C, BranchKind.INDIRECT, 0x8000)
        h.bpu.ittage.update(0x100C, 0, 0x9000)
        h.bpu.cycle(0, h.ftq)
        entry = h.ftq[0]
        assert entry.pred_target == 0x9000
        assert entry.fault is None

    def test_indirect_falls_back_to_btb_target(self):
        stream = make_stream(
            [
                seg(0x1000, 4, 0x8000, [(0x100C, BranchKind.INDIRECT, True, 0x8000)]),
                seg(0x8000, 512),
            ]
        )
        program = make_program({0x100C: Instruction(0x100C, BranchKind.INDIRECT)})
        h = Harness(stream, program)
        h.btb.insert(0x100C, BranchKind.INDIRECT, 0x8000)
        h.bpu.cycle(0, h.ftq)
        assert h.ftq[0].pred_target == 0x8000


class TestIdealHistory:
    def test_ideal_pushes_every_oracle_branch(self):
        stream = make_stream(
            [
                seg(
                    0x1000,
                    8,
                    0x8000,
                    [
                        (0x1004, BranchKind.COND_DIRECT, False, 0x9000),
                        (0x101C, BranchKind.UNCOND_DIRECT, True, 0x8000),
                    ],
                ),
                seg(0x8000, 512),
            ]
        )
        program = make_program(
            {
                0x1004: Instruction(0x1004, BranchKind.COND_DIRECT, 0x9000, 0),
                0x101C: Instruction(0x101C, BranchKind.UNCOND_DIRECT, 0x8000),
            }
        )
        h = Harness(stream, program, policy=HistoryPolicy.IDEAL)
        h.btb.insert(0x101C, BranchKind.UNCOND_DIRECT, 0x8000)
        h.bpu.cycle(0, h.ftq)
        entry = h.ftq[0]
        # Both oracle branches contribute pushes (NT then T).
        assert entry.dir_pushes == ((0x1004, False), (0x101C, True))
        assert h.bpu.hist == 0b01


class TestTLBEffects:
    def test_tlb_misses_counted(self):
        program = generate_program(tiny_spec(), seed=51)
        stream = run_oracle(program, 5_000, seed=52)
        params = SimParams(warmup_instructions=500, sim_instructions=2_000).with_memory(
            itlb_entries=2, itlb_page_bytes=4096
        )
        sim = Simulator(params, program, stream)
        sim.run("t")
        assert sim.memory.itlb.misses > 0
