"""Tests for ChampSim trace ingestion and the workload-source layer.

Covers the decode pipeline (repro.trace.champsim), the source registry
(repro.trace.source), and the end-to-end contract: a trace-backed
workload runs through simulate/sweep/check exactly like a synthetic
one, bit-identically across kernels and execution strategies.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.common.params import SimParams
from repro.core.simulator import simulate
from repro.trace.champsim import (
    CHAMPSIM_DECODER_VERSION,
    RECORD_BYTES,
    RECORD_DTYPE,
    ChampSimTrace,
    TraceFormatError,
    build_workload,
    encode_stream,
    load_decoded_prefix,
    write_champsim_trace,
)
from repro.trace.cfg import generate_program
from repro.trace.oracle import run_oracle
from repro.trace.source import (
    clear_registered_workloads,
    known_workload_names,
    register_workload,
    registered_workloads,
    resolve_workload,
    trace_name_for_path,
    unregister_workload,
)
from tests.conftest import tiny_spec

GOLDEN = Path(__file__).parent / "data" / "golden.champsim.xz"


def small_stream(n: int = 4_000, seed: int = 7):
    program = generate_program(tiny_spec(), seed=seed)
    return run_oracle(program, n, seed=11)


def small_trace_file(tmp_path: Path, name: str = "web1.champsim.xz", n: int = 4_000):
    stream = small_stream(n)
    return write_champsim_trace(tmp_path / name, stream), stream


def fast() -> SimParams:
    return SimParams(warmup_instructions=1_000, sim_instructions=2_500)


def structure(stream):
    """Comparable structural identity of a committed stream."""
    return [
        (s.start, s.n_instrs, s.next_start, tuple(s.branches))
        for s in stream.segments
    ]


# ----------------------------------------------------------------------
# Naming and registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_trace_name_strips_known_suffixes(self):
        assert trace_name_for_path("/x/srv.web1.champsim.xz") == "srv.web1"
        assert trace_name_for_path("a/b/foo.trace.gz") == "foo"
        assert trace_name_for_path("bare.champsim") == "bare"
        assert trace_name_for_path("other.bin") == "other"

    def test_catalogue_names_are_reserved(self, tmp_path):
        path, _ = small_trace_file(tmp_path)
        with pytest.raises(ValueError, match="reserved"):
            register_workload(ChampSimTrace(str(path), name="srv_web"))

    def test_reregistering_identical_source_is_noop(self, tmp_path):
        path, _ = small_trace_file(tmp_path)
        first = register_workload(ChampSimTrace(str(path)))
        second = register_workload(ChampSimTrace(str(path)))
        assert second is first

    def test_rebinding_name_requires_replace(self, tmp_path):
        path_a, _ = small_trace_file(tmp_path, "w.champsim.xz", n=3_000)
        path_b, _ = small_trace_file(tmp_path, "other.champsim.xz", n=4_000)
        register_workload(ChampSimTrace(str(path_a), name="w"))
        with pytest.raises(ValueError, match="replace=True"):
            register_workload(ChampSimTrace(str(path_b), name="w"))
        rebound = register_workload(ChampSimTrace(str(path_b), name="w"), replace=True)
        assert resolve_workload("w") is rebound

    def test_path_lookup_autoregisters(self, tmp_path):
        path, _ = small_trace_file(tmp_path)
        source = resolve_workload(str(path))
        assert source.name == "web1"
        assert source.category == "trace"
        assert source.source_kind == "champsim"
        assert resolve_workload("web1") is source
        assert "web1" in known_workload_names()
        assert unregister_workload("web1")
        assert not unregister_workload("web1")

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="srv_web"):
            resolve_workload("no_such_workload")

    def test_env_traces_scan(self, tmp_path, monkeypatch):
        path, _ = small_trace_file(tmp_path, "envwl.champsim.xz")
        monkeypatch.setenv("REPRO_TRACES", str(path))
        clear_registered_workloads()
        assert [s.name for s in registered_workloads()] == ["envwl"]

    def test_env_traces_directory_scan(self, tmp_path, monkeypatch):
        small_trace_file(tmp_path, "aa.champsim.xz", n=3_000)
        small_trace_file(tmp_path, "bb.trace.gz", n=3_000)
        (tmp_path / "ignored.txt").write_text("not a trace")
        monkeypatch.setenv("REPRO_TRACES", str(tmp_path))
        clear_registered_workloads()
        assert [s.name for s in registered_workloads()] == ["aa", "bb"]

    def test_env_traces_missing_entry_raises(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACES", str(tmp_path / "nope.champsim.xz"))
        clear_registered_workloads()
        with pytest.raises(FileNotFoundError, match="REPRO_TRACES"):
            registered_workloads()


# ----------------------------------------------------------------------
# Decode errors (satellite: pinpoint messages)
# ----------------------------------------------------------------------
class TestDecodeErrors:
    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.champsim"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError, match="empty trace"):
            load_decoded_prefix(path, 100, use_cache=False)

    def test_truncated_file(self, tmp_path):
        records = encode_stream(small_stream(500))
        blob = records.tobytes()[:-7]  # shear 7 bytes off the last record
        path = tmp_path / "cut.champsim"
        path.write_bytes(blob)
        with pytest.raises(TraceFormatError, match=r"truncated trace: 57 trailing byte"):
            load_decoded_prefix(path, len(records), use_cache=False)

    def test_corrupt_record_is_pinpointed(self, tmp_path):
        records = encode_stream(small_stream(500)).copy()
        records[123]["is_branch"] = 7
        path = tmp_path / "bad.champsim"
        path.write_bytes(records.tobytes())
        with pytest.raises(TraceFormatError, match=r"corrupt record #123"):
            load_decoded_prefix(path, len(records), use_cache=False)

    def test_corrupt_record_index_is_absolute_across_chunks(self, tmp_path):
        records = encode_stream(small_stream(500)).copy()
        records[200]["ip"] = 0
        path = tmp_path / "bad2.champsim"
        path.write_bytes(records.tobytes())
        with pytest.raises(TraceFormatError, match=r"corrupt record #200"):
            load_decoded_prefix(path, len(records), chunk_records=64, use_cache=False)

    def test_corrupt_compressed_stream(self, tmp_path):
        path = tmp_path / "garbage.champsim.xz"
        path.write_bytes(b"\xfd7zXZ\x00" + b"\x00" * 64)
        with pytest.raises(TraceFormatError, match="compressed stream error"):
            load_decoded_prefix(path, 10, use_cache=False)

    def test_window_longer_than_trace(self, tmp_path):
        path, _ = small_trace_file(tmp_path, n=3_000)
        source = ChampSimTrace(str(path))
        with pytest.raises(TraceFormatError, match="usable instruction"):
            source.materialize(50_000)

    def test_too_short_for_any_stream(self, tmp_path):
        records = encode_stream(small_stream(500))[:1]
        path = tmp_path / "one.champsim"
        path.write_bytes(records.tobytes())
        prefix = load_decoded_prefix(path, 10, use_cache=False)
        with pytest.raises(TraceFormatError, match="at least 2 records"):
            build_workload(prefix, 1)


# ----------------------------------------------------------------------
# Chunked decode and the artifact cache
# ----------------------------------------------------------------------
class TestChunking:
    def test_chunk_boundary_branch_is_seamless(self, tmp_path):
        """A taken branch straddling a chunk boundary decodes identically."""
        path, _ = small_trace_file(tmp_path, n=2_000)
        whole = ChampSimTrace(str(path)).materialize(1_200)[1]
        chunked = ChampSimTrace(str(path), name="web1c", chunk_records=64).materialize(1_200)[1]
        assert structure(chunked) == structure(whole)

    def test_decode_artifacts_cache_hit_on_second_load(self, tmp_path):
        from repro.experiments.cache import CACHE_STATS

        path, _ = small_trace_file(tmp_path, n=2_000)
        before = CACHE_STATS.as_dict().get("trace_records_decoded", 0)
        ChampSimTrace(str(path)).materialize(1_200)
        decoded_once = CACHE_STATS.as_dict().get("trace_records_decoded", 0)
        assert decoded_once > before
        # A brand-new source object for the same file: chunks served
        # from the artifact store, zero records re-decoded.
        ChampSimTrace(str(path)).materialize(1_200)
        after = CACHE_STATS.as_dict()
        assert after.get("trace_records_decoded", 0) == decoded_once
        assert after.get("trace_chunk_hit", 0) >= 1

    def test_prefix_extension_redecodes(self, tmp_path):
        """Asking for a longer window than the cached prefix re-decodes."""
        path, _ = small_trace_file(tmp_path, n=3_500)
        short = load_decoded_prefix(path, 512, chunk_records=256)
        assert len(short) == 512 and not short.complete
        longer = load_decoded_prefix(path, 3_000, chunk_records=256)
        assert len(longer) >= 3_000
        assert np.array_equal(longer.ips[:512], short.ips)

    def test_cache_disabled_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        path, _ = small_trace_file(tmp_path, n=2_000)
        ChampSimTrace(str(path)).materialize(1_000)
        assert not (tmp_path / "cache" / "traces").exists()

    def test_cache_info_and_clear_cover_trace_artifacts(self, tmp_path, monkeypatch):
        from repro.experiments.cache import ResultCache

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        path, _ = small_trace_file(tmp_path, n=2_000)
        ChampSimTrace(str(path)).materialize(1_000)
        cache = ResultCache()
        info = cache.info()
        assert info["trace_files"] > 0
        assert info["trace_bytes"] > 0
        cache.clear()
        info = cache.info()
        assert info["trace_files"] == 0 and info["trace_bytes"] == 0


# ----------------------------------------------------------------------
# Round-trip and determinism
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize("suffix", ["champsim", "champsim.gz", "champsim.xz"])
    def test_encode_decode_preserves_structure(self, tmp_path, suffix):
        stream = small_stream(3_000)
        path = write_champsim_trace(tmp_path / f"rt.{suffix}", stream)
        n = stream.total_instructions - 1  # final record only carries a target
        prefix = load_decoded_prefix(path, n + 1, use_cache=False)
        _program, decoded, anomalies = build_workload(prefix, n)
        assert decoded.total_instructions == n
        # The synthetic encoder emits unambiguous patterns: a clean
        # round-trip reconstructs every branch without anomalies.
        assert anomalies == {
            "pseudo_branches": 0,
            "kind_conflicts": 0,
            "demoted_direct": 0,
            "not_taken_discontinuities": 0,
        }
        got = [
            (kind, taken) for s in decoded.segments for _a, kind, taken, _t in s.branches
        ]
        want = [
            (kind, taken) for s in stream.segments for _a, kind, taken, _t in s.branches
        ]
        assert got == want[: len(got)]
        assert len(want) - len(got) <= 1
        assert [s.n_instrs for s in decoded.segments][:-1] == [
            s.n_instrs for s in stream.segments
        ][: len(decoded.segments) - 1]

    def test_materialize_is_deterministic(self, tmp_path):
        path, _ = small_trace_file(tmp_path, n=3_000)
        first = ChampSimTrace(str(path)).materialize(1_500)[1]
        second = ChampSimTrace(str(path)).materialize(1_500)[1]
        assert structure(first) == structure(second)

    def test_expected_stream_matches_materialized(self, tmp_path):
        path, _ = small_trace_file(tmp_path, n=3_000)
        source = ChampSimTrace(str(path))
        _program, stream = source.materialize(1_500)
        assert structure(source.expected_stream(1_500)) == structure(stream)

    def test_record_layout_is_champsim(self):
        assert RECORD_DTYPE.itemsize == RECORD_BYTES == 64
        rec = encode_stream(small_stream(200))[0]
        assert int(rec["ip"]) != 0


# ----------------------------------------------------------------------
# The golden fixture end to end
# ----------------------------------------------------------------------
class TestGoldenFixture:
    def test_fixture_is_committed_and_small(self):
        assert GOLDEN.is_file()
        assert GOLDEN.stat().st_size < 100_000

    def test_resolves_by_path(self):
        source = resolve_workload(str(GOLDEN))
        assert source.name == "golden"
        assert source.source_kind == "champsim"
        info = source.info()
        assert info["decoder_version"] == CHAMPSIM_DECODER_VERSION
        assert info["bytes"] == GOLDEN.stat().st_size
        assert len(info["digest"]) == 64

    def test_runs_through_simulate(self):
        result = simulate(str(GOLDEN), fast())
        assert result.workload == "golden"
        assert result.instructions >= 2_500
        assert result.cycles > 0

    def test_interp_and_typed_kernels_bit_identical(self):
        interp = simulate(str(GOLDEN), fast().replace(kernel="interp"))
        typed = simulate(str(GOLDEN), fast().replace(kernel="typed"))
        assert typed.cycles == interp.cycles
        assert typed.instructions == interp.instructions
        assert typed.stats.as_dict() == interp.stats.as_dict()

    def test_differential_check_passes(self):
        from repro.check.differential import check_workload

        report = check_workload(str(GOLDEN.parent / GOLDEN.name), fast())
        assert report.branches_checked > 0
        assert report.committed_instructions >= 3_500

    def test_fingerprint_derives_from_content(self, tmp_path):
        from repro.experiments.cache import run_key, workload_fingerprint

        fp = workload_fingerprint(str(GOLDEN))
        assert fp == workload_fingerprint(ChampSimTrace(str(GOLDEN)))
        assert fp != workload_fingerprint("srv_web")
        # A byte-identical copy under another path keys the same runs.
        copy = tmp_path / "copy.champsim.xz"
        copy.write_bytes(GOLDEN.read_bytes())
        assert workload_fingerprint(ChampSimTrace(str(copy))) == fp
        assert run_key(str(GOLDEN), fast()) == run_key(ChampSimTrace(str(GOLDEN)), fast())

    def test_workload_info_cli(self, capsys):
        from repro.cli import main

        assert main(["workload", "info", str(GOLDEN)]) == 0
        out = capsys.readouterr().out
        assert "workload: golden" in out
        assert "source:   champsim" in out
        assert "footprint:" in out
        assert "COND_DIRECT" in out

    def test_workload_info_cli_synthetic(self, capsys):
        from repro.cli import main

        assert main(["workload", "info", "spc_fp", "--instructions", "2000"]) == 0
        out = capsys.readouterr().out
        assert "source:   synthetic" in out

    def test_workload_info_cli_unknown(self):
        from repro.cli import main

        assert main(["workload", "info", "nope"]) == 2

    def test_list_workloads_shows_trace_source(self, capsys):
        from repro.cli import main

        register_workload(ChampSimTrace(str(GOLDEN)))
        assert main(["run", "--list-workloads"]) == 0
        rows = [line.split() for line in capsys.readouterr().out.strip().splitlines()]
        assert ["golden", "champsim", "trace"] in rows


# ----------------------------------------------------------------------
# Sweeps: specs, serial/parallel identity
# ----------------------------------------------------------------------
class TestTraceSweeps:
    def spec_data(self):
        return {
            "sweep": "trace-smoke",
            "workloads": [{"name": "golden", "trace": str(GOLDEN)}],
            "base": {"warmup_instructions": 1_000, "sim_instructions": 2_500},
            "matrix": {"frontend.ftq_entries": [2, 24]},
            "output": {"metrics": ["ipc"]},
        }

    def test_spec_accepts_trace_entries_and_roundtrips(self):
        from repro.experiments.spec import expand, parse_spec

        spec = parse_spec(self.spec_data())
        assert spec.workloads == ("golden",)
        assert spec.traces == (("golden", str(GOLDEN)),)
        assert parse_spec(spec.to_dict()) == spec
        points = expand(spec)
        assert [p.workload for p in points] == ["golden", "golden"]

    def test_spec_accepts_bare_trace_paths(self):
        from repro.experiments.spec import parse_spec

        data = self.spec_data()
        data["workloads"] = [str(GOLDEN), "srv_web"]
        spec = parse_spec(data)
        assert spec.workloads == ("golden", "srv_web")

    def test_spec_rejects_missing_trace_file(self, tmp_path):
        from repro.experiments.spec import SweepSpecError, parse_spec

        data = self.spec_data()
        data["workloads"] = [{"name": "w", "trace": str(tmp_path / "gone.champsim.xz")}]
        with pytest.raises(SweepSpecError, match="does not exist"):
            parse_spec(data)

    def test_spec_rejects_unknown_entry_keys(self):
        from repro.experiments.spec import SweepSpecError, parse_spec

        data = self.spec_data()
        data["workloads"] = [{"trace": str(GOLDEN), "seed": 3}]
        with pytest.raises(SweepSpecError, match="unknown workload-entry"):
            parse_spec(data)

    def test_serial_and_parallel_runs_bit_identical(self, monkeypatch):
        from repro.experiments.runner import clear_cache, run_points

        monkeypatch.setenv("REPRO_CACHE", "0")  # force real simulations
        register_workload(ChampSimTrace(str(GOLDEN)))
        points = [
            ("golden", fast().with_frontend(ftq_entries=2)),
            ("golden", fast().with_frontend(ftq_entries=24)),
        ]
        clear_cache()
        serial = run_points(points, jobs=1)
        clear_cache()
        parallel = run_points(points, jobs=2)
        assert serial.keys() == parallel.keys()
        for key, result in serial.items():
            other = parallel[key]
            assert other.cycles == result.cycles
            assert other.instructions == result.instructions
            assert other.stats.as_dict() == result.stats.as_dict()

    def test_evaluation_workloads_accepts_trace_paths(self, monkeypatch):
        from repro.experiments.configs import evaluation_workloads

        monkeypatch.setenv("REPRO_WORKLOADS", f"srv_web,{GOLDEN}")
        assert evaluation_workloads() == ["srv_web", "golden"]

    def test_manifest_records_workload_source(self, monkeypatch, tmp_path):
        from repro.experiments.cache import ResultCache, build_manifest, run_key

        register_workload(ChampSimTrace(str(GOLDEN)))
        result = simulate("golden", fast())
        manifest = build_manifest(run_key("golden", fast()), result)
        assert manifest["workload_source"] == "champsim"
        assert manifest["workload_category"] == "trace"
        assert manifest["workload_fingerprint"]
