"""Declarative sweep specs: expansion, sharding, resume, equivalence.

Covers the guarantees docs/SWEEPS.md advertises:

* spec parsing/validation and the deterministic expansion (property
  tests plus a golden fixture under ``tests/data/``);
* stable point IDs across processes and hash seeds;
* shard partitions for several N: disjoint, complete, skew at most one;
* shard-arg validation (``--shard 3/2`` exits 2 with a clear message);
* resumable execution: a sweep interrupted after M points finishes
  from the cache, the ledger shows exactly the remaining points
  started, and the final table is byte-identical to an uninterrupted
  run;
* the differential sweep-equivalence harness (``repro check --sweep``)
  end to end, and fuzz property 9's generator.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.check.sweepdiff import (
    check_spec_expansion,
    check_sweep_equivalence,
    random_sweep_spec,
)
from repro.cli import main
from repro.common.ledger import read_ledger
from repro.common.params import SimParams
from repro.experiments import runner
from repro.experiments.spec import (
    SweepSpecError,
    apply_setting,
    expand,
    load_spec,
    parse_shard,
    parse_spec,
    shard_points,
    valid_setting_key,
)
from repro.experiments.sweep import MERGED_BASENAME, merge_sweep, run_sweep

DATA = Path(__file__).parent / "data"
GOLDEN = DATA / "golden_sweep.yaml"

SRC = Path(__file__).resolve().parents[1] / "src"


def spec_data(**overrides) -> dict:
    """A small two-workload, three-config spec (tiny windows)."""
    data = {
        "sweep": "tiny",
        "workloads": ["srv_web", "clt_browser"],
        "base": {"warmup_instructions": 300, "sim_instructions": 1500},
        "matrix": {
            "branch.btb_entries": [512, 8192],
            "frontend.pfc_enabled": [False, True],
        },
        "exclude": [{"branch.btb_entries": 512, "frontend.pfc_enabled": True}],
        "output": {"metrics": ["ipc", "branch_mpki"]},
    }
    data.update(overrides)
    return data


def write_spec(tmp_path: Path, data: dict, name: str = "spec.json") -> Path:
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return path


# ----------------------------------------------------------------------
# Parsing and validation
# ----------------------------------------------------------------------
class TestParse:
    def test_minimal_spec_parses(self):
        spec = parse_spec(spec_data())
        assert spec.name == "tiny"
        assert spec.axes == ("branch.btb_entries", "frontend.pfc_enabled")
        assert spec.metrics == ("ipc", "branch_mpki")

    @pytest.mark.parametrize(
        "mutation",
        [
            {"bogus_key": 1},
            {"matrix": {"branch.btb_entriez": [1, 2]}},
            {"matrix": {"branch.btb_entries": [512, 512]}},
            {"matrix": {"branch.btb_entries": []}},
            {"base": {"nonsense.field": 3}},
            {"workloads": ["no_such_workload"]},
            {"workloads": []},
            {"workloads": ["srv_web", "srv_web"]},
            {"output": {"metrics": ["not_a_metric"]}},
            {"output": {"metrics": []}},
            {"exclude": [{"core.retire_width": 4}]},  # not a matrix axis
            {"include": [{"branch.btb_entries": 1024}]},  # incomplete
        ],
    )
    def test_malformed_specs_rejected(self, mutation):
        with pytest.raises(SweepSpecError):
            parse_spec(spec_data(**mutation))

    def test_base_and_matrix_overlap_rejected(self):
        data = spec_data()
        data["base"]["branch.btb_entries"] = 1024
        with pytest.raises(SweepSpecError, match="both 'base' and 'matrix'"):
            parse_spec(data)

    def test_setting_key_addressing(self):
        assert valid_setting_key("frontend.ftq_entries")
        assert valid_setting_key("prefetcher")
        assert not valid_setting_key("frontend.nope")
        assert not valid_setting_key("nope.ftq_entries")
        assert not valid_setting_key("frontend.ftq.entries")
        params = apply_setting(SimParams(), "prefetcher", "nl1")
        assert params.prefetcher == "nl1"
        params = apply_setting(SimParams(), "frontend.ftq_entries", 8)
        assert params.frontend.ftq_entries == 8

    def test_invalid_value_carries_dataclass_message(self):
        with pytest.raises(SweepSpecError, match="frontend.ftq_entries"):
            expand(
                parse_spec(
                    spec_data(matrix={"frontend.ftq_entries": [-4, 8]}, exclude=[])
                )
            )

    def test_yaml_and_json_specs_are_equivalent(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        data = spec_data()
        json_path = write_spec(tmp_path, data)
        yaml_path = tmp_path / "spec.yaml"
        yaml_path.write_text(yaml.safe_dump(data))
        from_json, from_yaml = load_spec(json_path), load_spec(yaml_path)
        assert from_json.fingerprint() == from_yaml.fingerprint()
        assert [p.point_id for p in expand(from_json)] == [
            p.point_id for p in expand(from_yaml)
        ]

    def test_to_dict_roundtrip(self):
        spec = parse_spec(spec_data(include=[
            {"branch.btb_entries": 8192, "frontend.pfc_enabled": False},
        ]))
        # The include above duplicates a matrix combination -- expansion
        # must refuse rather than silently double-count the point.
        with pytest.raises(SweepSpecError, match="duplicate point"):
            expand(spec)
        spec = parse_spec(spec_data())
        assert parse_spec(spec.to_dict()).fingerprint() == spec.fingerprint()


# ----------------------------------------------------------------------
# Expansion
# ----------------------------------------------------------------------
class TestExpansion:
    def test_cartesian_count_without_rules(self):
        points = expand(parse_spec(spec_data(exclude=[])))
        assert len(points) == 2 * 2 * 2  # two axes of two values, two workloads

    def test_exclude_filters_and_include_appends(self):
        points = expand(parse_spec(spec_data()))
        assert len(points) == 3 * 2
        labels = {p.label for p in points}
        assert "branch.btb_entries=512,frontend.pfc_enabled=true" not in labels
        with_include = expand(
            parse_spec(
                spec_data(
                    include=[
                        {"branch.btb_entries": 2048, "frontend.pfc_enabled": True}
                    ]
                )
            )
        )
        assert len(with_include) == 4 * 2
        assert with_include[-1].label == (
            "branch.btb_entries=2048,frontend.pfc_enabled=true"
        )

    def test_base_settings_applied_to_every_point(self):
        for point in expand(parse_spec(spec_data())):
            assert point.params.warmup_instructions == 300
            assert point.params.sim_instructions == 1500

    def test_expansion_is_stable(self):
        spec = parse_spec(spec_data())
        first, second = expand(spec), expand(spec)
        assert [(p.index, p.point_id, p.label) for p in first] == [
            (p.index, p.point_id, p.label) for p in second
        ]
        assert len({p.point_id for p in first}) == len(first)

    def test_everything_excluded_raises(self):
        data = spec_data(
            matrix={"branch.btb_entries": [512]},
            exclude=[{"branch.btb_entries": 512}],
        )
        with pytest.raises(SweepSpecError, match="zero points"):
            expand(parse_spec(data))

    def test_golden_fixture_structure(self):
        expected = json.loads((DATA / "golden_sweep.expected.json").read_text())
        spec = load_spec(GOLDEN)
        points = expand(spec)
        assert spec.name == expected["name"]
        assert list(spec.axes) == expected["axes"]
        assert list(spec.metrics) == expected["metrics"]
        assert len(points) == expected["n_points"]
        for point, want in zip(points, expected["points"]):
            assert point.index == want["index"]
            assert point.workload == want["workload"]
            assert point.label == want["label"]
            assert point.settings_dict == want["settings"]

    def test_point_ids_stable_across_processes_and_hash_seeds(self):
        """The IDs sharding relies on cannot depend on process state."""
        code = (
            "import json, sys\n"
            "from repro.experiments.spec import expand, load_spec\n"
            "print(json.dumps([p.point_id for p in expand(load_spec(sys.argv[1]))]))\n"
        )
        outputs = []
        for hash_seed in ("0", "31337"):
            env = {**os.environ, "PYTHONPATH": str(SRC), "PYTHONHASHSEED": hash_seed}
            proc = subprocess.run(
                [sys.executable, "-c", code, str(GOLDEN)],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(json.loads(proc.stdout))
        in_process = [p.point_id for p in expand(load_spec(GOLDEN))]
        assert outputs[0] == outputs[1] == in_process


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------
class TestSharding:
    @pytest.mark.parametrize("total", [1, 2, 3, 5])
    def test_partition_disjoint_complete_balanced(self, total):
        points = expand(load_spec(GOLDEN))
        shards = [shard_points(points, k, total) for k in range(1, total + 1)]
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1
        union = [p.point_id for shard in shards for p in shard]
        assert len(union) == len(set(union)) == len(points)
        assert set(union) == {p.point_id for p in points}
        for shard in shards:  # expansion order is preserved within a shard
            assert [p.index for p in shard] == sorted(p.index for p in shard)

    def test_parse_shard_accepts_k_of_n(self):
        assert parse_shard("2/4") == (2, 4)
        assert parse_shard(" 1/1 ") == (1, 1)

    @pytest.mark.parametrize("text", ["3/2", "0/2", "a/b", "2", "1/0", "1/2/3", "-1/2"])
    def test_parse_shard_rejects_nonsense(self, text):
        with pytest.raises(SweepSpecError, match="invalid shard|out of range"):
            parse_shard(text)

    def test_cli_invalid_shard_exits_2(self, tmp_path):
        path = write_spec(tmp_path, spec_data())
        assert main(["sweep", str(path), "--shard", "3/2", "--dry-run"]) == 2

    def test_cli_unreadable_spec_exits_2(self, tmp_path):
        assert main(["sweep", str(tmp_path / "missing.json")]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["sweep", str(bad)]) == 2


# ----------------------------------------------------------------------
# Execution, merge, resume
# ----------------------------------------------------------------------
class TestRunSweep:
    def test_serial_run_writes_manifest_and_tables(self, tmp_path):
        spec = parse_spec(spec_data())
        points = expand(spec)
        out = tmp_path / "out"
        outcome = run_sweep(spec, points, jobs=1, out_dir=out)
        assert outcome.points_shard == outcome.points_total == len(points)
        assert outcome.shard_file is not None and outcome.shard_file.is_file()
        assert len(outcome.merged_files) == 3
        table = json.loads((out / f"{MERGED_BASENAME}.json").read_text())
        assert table["points"] == len(points)
        assert table["columns"] == [
            "point",
            "workload",
            "config",
            "branch.btb_entries",
            "frontend.pfc_enabled",
            "ipc",
            "branch_mpki",
        ]
        assert [r["point"] for r in table["rows"]] == sorted(
            r["point"] for r in table["rows"]
        )
        csv = (out / f"{MERGED_BASENAME}.csv").read_text().splitlines()
        assert csv[0] == ",".join(table["columns"])
        assert len(csv) == len(points) + 1

    def test_sharded_union_is_byte_identical_to_single_shot(self, tmp_path):
        spec = parse_spec(spec_data())
        points = expand(spec)
        single, sharded = tmp_path / "single", tmp_path / "sharded"
        run_sweep(spec, points, jobs=1, out_dir=single)
        for k in (1, 2):
            run_sweep(spec, points, shard=(k, 2), jobs=1, out_dir=sharded)
        for suffix in ("json", "csv", "md"):
            name = f"{MERGED_BASENAME}.{suffix}"
            assert (single / name).read_bytes() == (sharded / name).read_bytes()

    def test_merge_refuses_incomplete_and_duplicated_shards(self, tmp_path):
        spec = parse_spec(spec_data())
        points = expand(spec)
        out = tmp_path / "out"
        run_sweep(spec, points, shard=(1, 2), jobs=1, out_dir=out)
        with pytest.raises(SweepSpecError, match="missing shard"):
            merge_sweep(spec, points, out)
        # A duplicated manifest (same rows, different shard file) must be
        # caught as an overlap rather than silently double-counted.
        first = json.loads((out / "shard-1-of-2.json").read_text())
        forged = dict(first, shard=2)
        (out / "shard-2-of-2.json").write_text(json.dumps(forged))
        with pytest.raises(SweepSpecError, match="disjoint"):
            merge_sweep(spec, points, out)

    def test_stale_spec_fingerprint_rejected(self, tmp_path):
        spec = parse_spec(spec_data())
        points = expand(spec)
        out = tmp_path / "out"
        run_sweep(spec, points, jobs=1, out_dir=out)
        edited = parse_spec(spec_data(sweep="tiny-edited"))
        with pytest.raises(SweepSpecError, match="disagree with the spec"):
            merge_sweep(edited, expand(edited), out)

    def test_cli_dry_run_and_merge(self, tmp_path, capsys):
        path = write_spec(tmp_path, spec_data())
        out = tmp_path / "out"
        assert main(["sweep", str(path), "--dry-run"]) == 0
        shown = capsys.readouterr().out
        assert "6 point(s)" in shown
        assert main(["sweep", str(path), "--out", str(out)]) == 0
        assert main(["sweep", str(path), "--merge", "--out", str(out)]) == 0
        assert (out / f"{MERGED_BASENAME}.csv").is_file()
        assert main(["sweep", str(path), "--merge", "--out", str(tmp_path / "no")]) == 1

    def test_resume_after_interruption(self, tmp_path, monkeypatch):
        """Kill after M points; --resume finishes exactly the remainder."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "ledger"))
        runner.clear_cache()
        spec = parse_spec(spec_data())
        points = expand(spec)
        out = tmp_path / "out"

        interrupted = run_sweep(spec, points, jobs=1, out_dir=out, limit=2)
        assert interrupted.interrupted
        assert interrupted.executed == 2
        assert interrupted.shard_file is None
        assert not (out / f"{MERGED_BASENAME}.csv").exists()

        runner.clear_cache()  # the killed process's memo is gone
        resumed = run_sweep(spec, points, jobs=1, out_dir=out, resume=True)
        assert not resumed.interrupted
        assert resumed.cache_hits == 2
        assert resumed.executed == len(points) - 2
        assert len(resumed.merged_files) == 3

        ledgers = sorted((tmp_path / "ledger").glob("*.jsonl"))
        assert len(ledgers) == 2
        first, second = (read_ledger(p) for p in ledgers)
        started_first = {r["key"] for r in first if r["event"] == "started"}
        started_second = {r["key"] for r in second if r["event"] == "started"}
        assert len(started_first) == 2
        assert started_second == {p.point_id for p in points} - started_first
        for record in second:
            if record["event"] not in ("sweep_begin", "sweep_end"):
                assert record["shard"] == 1 and record["shard_total"] == 1
                assert record["spec"] == "tiny" and record["resumed"] is True

        # The resumed table must be byte-identical to an uninterrupted run.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache2"))
        runner.clear_cache()
        clean_out = tmp_path / "clean"
        run_sweep(spec, points, jobs=1, out_dir=clean_out)
        for suffix in ("json", "csv", "md"):
            name = f"{MERGED_BASENAME}.{suffix}"
            assert (out / name).read_bytes() == (clean_out / name).read_bytes()
        runner.clear_cache()


# ----------------------------------------------------------------------
# Differential sweep-equivalence harness
# ----------------------------------------------------------------------
class TestEquivalenceHarness:
    def test_harness_passes_on_multi_config_spec(self, tmp_path):
        spec = parse_spec(spec_data())
        report = check_sweep_equivalence(spec, workdir=tmp_path, jobs=2)
        assert report.ok, report.all_problems()
        assert report.n_points == 6
        assert [s.name for s in report.strategies] == [
            "serial",
            "parallel",
            "shard2",
            "shard3",
            "resume",
        ]
        digests = {frozenset(s.digests.items()) for s in report.strategies}
        assert len(digests) == 1  # all five strategies byte-identical
        for strategy in report.strategies:
            assert all(n <= 1 for n in strategy.started.values())

    def test_cli_check_sweep(self, tmp_path, capsys):
        data = spec_data(
            workloads=["srv_web"],
            base={"warmup_instructions": 200, "sim_instructions": 900},
            matrix={"branch.btb_entries": [512, 8192]},
            exclude=[],
        )
        path = write_spec(tmp_path, data)
        assert main(["check", "--sweep", str(path)]) == 0
        assert "bit-identical" in capsys.readouterr().out
        assert main(["check", "--sweep", str(tmp_path / "nope.json")]) == 2


class TestExampleSpecs:
    def test_shipped_specs_parse_and_expand(self):
        """Every spec under examples/sweeps/ stays valid (expansion only)."""
        root = Path(__file__).resolve().parents[1] / "examples" / "sweeps"
        specs = sorted(root.glob("*.yaml"))
        assert specs, "examples/sweeps/ should ship at least one spec"
        for path in specs:
            points = expand(load_spec(path))
            assert points
            assert len({p.point_id for p in points}) == len(points)


# ----------------------------------------------------------------------
# Fuzz property 9
# ----------------------------------------------------------------------
class TestFuzzProperty:
    def test_random_specs_satisfy_expansion_properties(self):
        for seed in range(25):
            spec = random_sweep_spec(random.Random(seed))
            assert check_spec_expansion(spec) is None, f"seed {seed}"

    def test_generator_is_seed_deterministic(self):
        a = random_sweep_spec(random.Random(42)).fingerprint()
        b = random_sweep_spec(random.Random(42)).fingerprint()
        assert a == b

    def test_run_trial_reports_property_nine(self, monkeypatch):
        """A spec-expansion violation surfaces as fuzz property 9."""
        from repro.check import build_trial
        from repro.check import sweepdiff
        from repro.check.fuzz import run_trial

        monkeypatch.setattr(
            sweepdiff, "check_spec_expansion", lambda spec: "injected violation"
        )
        failure = run_trial(build_trial(0))
        assert failure is not None
        assert failure.prop == "sweep_spec_roundtrip"
        assert "injected violation" in failure.message
