"""Tests for the experiments layer (configs, runner, report, figures)."""

import pytest

from repro.common.params import HistoryPolicy, SimParams
from repro.experiments.configs import (
    QUICK_WORKLOADS,
    baseline_params,
    default_params,
    evaluation_workloads,
    no_fdp,
)
from repro.experiments.figures import table1, table3, table4, table5
from repro.experiments.report import pct, render_table
from repro.experiments.runner import (
    cache_size,
    clear_cache,
    geomean_speedup,
    mean_metric,
    run_config,
    run_matrix,
)


class TestConfigs:
    def test_default_params_fdp_on(self):
        p = default_params()
        assert p.frontend.fdp_enabled and p.frontend.pfc_enabled

    def test_no_fdp(self):
        p = no_fdp(default_params())
        assert not p.frontend.fdp_enabled and not p.frontend.pfc_enabled

    def test_baseline_is_no_fdp(self):
        assert not baseline_params().frontend.fdp_enabled

    def test_env_windows(self, monkeypatch):
        monkeypatch.setenv("REPRO_WARMUP", "123")
        monkeypatch.setenv("REPRO_SIM", "456")
        p = default_params()
        assert p.warmup_instructions == 123
        assert p.sim_instructions == 456

    def test_env_bad_int_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM", "soon")
        with pytest.raises(ValueError):
            default_params()

    def test_workloads_all(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKLOADS", raising=False)
        assert len(evaluation_workloads()) == 8

    def test_workloads_quick(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS", "quick")
        assert evaluation_workloads() == QUICK_WORKLOADS

    def test_workloads_explicit(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS", "spc_fp, srv_web")
        assert evaluation_workloads() == ["spc_fp", "srv_web"]

    def test_workloads_unknown_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS", "srv_nope")
        with pytest.raises(ValueError):
            evaluation_workloads()


class TestRunner:
    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        clear_cache()
        yield
        clear_cache()

    def fast(self):
        return SimParams(warmup_instructions=1_000, sim_instructions=2_500)

    def test_run_config_caches(self):
        p = self.fast()
        a = run_config("spc_fp", p)
        size = cache_size()
        b = run_config("spc_fp", p)
        assert a is b
        assert cache_size() == size

    def test_distinct_params_not_conflated(self):
        a = run_config("spc_fp", self.fast())
        b = run_config("spc_fp", self.fast().with_branch(btb_entries=1024))
        assert a is not b

    def test_run_matrix_shape(self):
        results = run_matrix({"a": self.fast()}, ["spc_fp"])
        assert set(results) == {"a"}
        assert set(results["a"]) == {"spc_fp"}

    def test_geomean_speedup_identity(self):
        results = run_matrix({"a": self.fast()}, ["spc_fp"])
        assert geomean_speedup(results, "a", "a") == pytest.approx(1.0)

    def test_mean_metric(self):
        results = run_matrix({"a": self.fast()}, ["spc_fp"])
        assert mean_metric(results, "a", "ipc") == results["a"]["spc_fp"].ipc


class TestReport:
    def test_render_table(self):
        text = render_table("T", ["a", "b"], [[1, 2.5], ["x", "y"]])
        assert "== T ==" in text
        assert "2.50" in text
        lines = text.splitlines()
        assert len(lines) == 5

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table("T", ["a"], [[1, 2]])

    def test_pct(self):
        assert pct(1.41) == "+41.0%"
        assert pct(0.9) == "-10.0%"


class TestStaticTables:
    def test_table1_includes_paper_rows(self):
        t = table1()
        flat = str(t["rows"])
        assert "Shotgun" in flat and "Zen2" in flat

    def test_table3_totals_match_paper(self):
        t = table3()
        flat = str(t["rows"])
        assert "195 bytes" in flat
        assert "24 bytes" in flat

    def test_table4_lists_core_parameters(self):
        t = table4()
        flat = str(t["rows"])
        assert "TAGE" in flat and "FTQ" in flat

    def test_table5_covers_all_policies(self):
        t = table5()
        assert len(t["rows"]) == len(HistoryPolicy)
        flat = str(t["rows"])
        assert "taken-only" in flat and "direction" in flat
