"""Tests for the ASCII visualisation helpers (repro.experiments.viz)."""

import pytest

from repro.experiments.viz import bar_chart, chart_for_experiment, series


class TestBarChart:
    def test_renders_all_labels(self):
        out = bar_chart("T", [("alpha", 10.0), ("beta", -5.0)])
        assert "alpha" in out and "beta" in out
        assert "+10.0%" in out and "-5.0%" in out

    def test_negative_bars_use_dashes(self):
        out = bar_chart("T", [("a", -4.0), ("b", 4.0)])
        neg_line = next(l for l in out.splitlines() if l.startswith("a"))
        assert "-" in neg_line.split("|")[1]

    def test_scaling_to_peak(self):
        out = bar_chart("T", [("big", 100.0), ("small", 1.0)], width=10)
        big = next(l for l in out.splitlines() if l.startswith("big"))
        assert big.count("#") == 10

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bar_chart("T", [])

    def test_zero_values_ok(self):
        out = bar_chart("T", [("z", 0.0)])
        assert "+0.0%" in out


class TestSeries:
    def test_renders_axes_and_legend(self):
        out = series("S", [1, 2, 4], {"a": [0.0, 1.0, 2.0], "b": [2.0, 1.0, 0.0]})
        assert "legend:" in out
        assert "max 2.0" in out and "min 0.0" in out

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            series("S", [1, 2], {"a": [1.0]})

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            series("S", [1], {})

    def test_flat_series(self):
        out = series("S", [1, 2], {"a": [3.0, 3.0]})
        assert "min 3.0" in out


class TestChartForExperiment:
    def test_picks_first_numeric_column(self):
        data = {
            "title": "T",
            "headers": ["name", "speedup_%"],
            "rows": [["x", 5.0], ["y", 10.0]],
        }
        out = chart_for_experiment(data)
        assert out is not None and "x" in out and "%" in out

    def test_no_numeric_column(self):
        data = {"title": "T", "headers": ["a", "b"], "rows": [["x", "y"]]}
        assert chart_for_experiment(data) is None

    def test_empty_rows(self):
        assert chart_for_experiment({"title": "T", "headers": [], "rows": []}) is None
