"""Unit tests for the prefetcher zoo (repro.prefetch)."""

import pytest

from repro.branch.btb import BTB
from repro.common.params import SimParams
from repro.common.stats import StatSet
from repro.isa.instructions import BranchKind, Instruction
from repro.memory.hierarchy import InstructionMemory
from repro.prefetch import create_prefetcher, prefetcher_names
from repro.prefetch.base import MAX_ISSUE_PER_CYCLE, Prefetcher
from repro.prefetch.djolt import DJoltPrefetcher
from repro.prefetch.eip import EIP27, EIP128, EIPPrefetcher
from repro.prefetch.fnl_mma import FNLMMAPrefetcher
from repro.prefetch.next_line import NextLinePrefetcher
from repro.prefetch.sn4l_dis_btb import SN4LDisBTBPrefetcher, SN4LDisPrefetcher
from tests.conftest import make_program


def make_ctx(program=None):
    params = SimParams()
    stats = StatSet()
    memory = InstructionMemory(params.memory, stats)
    btb = BTB(256, 4)
    return params, memory, btb, program or make_program({}), stats


def build(cls, program=None, **kw):
    params, memory, btb, prog, stats = make_ctx(program)
    return cls(params, memory, btb, prog, stats, **kw), memory, btb, stats


class TestRegistry:
    def test_names(self):
        assert "nl1" in prefetcher_names()
        assert "eip128" in prefetcher_names()

    def test_create(self):
        params, memory, btb, prog, stats = make_ctx()
        pf = create_prefetcher("nl1", params=params, memory=memory, btb=btb, program=prog, stats=stats)
        assert isinstance(pf, NextLinePrefetcher)

    def test_unknown_raises(self):
        params, memory, btb, prog, stats = make_ctx()
        with pytest.raises(ValueError):
            create_prefetcher("nope", params=params, memory=memory, btb=btb, program=prog, stats=stats)


class TestBase:
    def test_enqueue_dedup(self):
        pf, memory, _, _ = build(Prefetcher)
        pf.enqueue(0x1000)
        pf.enqueue(0x1010)  # same line
        assert pf.pending == 1

    def test_cycle_issue_budget(self):
        pf, memory, _, stats = build(Prefetcher)
        for i in range(10):
            pf.enqueue(0x1000 + 64 * i)
        pf.cycle(0)
        assert stats.get("prefetch_issued") == MAX_ISSUE_PER_CYCLE
        assert pf.pending == 10 - MAX_ISSUE_PER_CYCLE

    def test_reenqueue_after_drain(self):
        pf, *_ = build(Prefetcher)
        pf.enqueue(0x1000)
        pf.cycle(0)
        pf.enqueue(0x1000)
        assert pf.pending == 1


class TestNextLine:
    def test_prefetches_next_on_miss(self):
        pf, *_ = build(NextLinePrefetcher)
        pf.on_access(0x1000, hit=False, cycle=0)
        assert pf.pending == 1
        assert pf._queue[0] == 0x1040

    def test_no_prefetch_on_hit(self):
        pf, *_ = build(NextLinePrefetcher)
        pf.on_access(0x1000, hit=True, cycle=0)
        assert pf.pending == 0


class TestEIP:
    def test_entangles_and_issues(self):
        pf, *_ = build(EIPPrefetcher)
        # Build an access pattern: source at 0x0, miss at 0xF000.
        for i in range(12):
            pf.on_access(0x0 + 64 * i, hit=True, cycle=i)
        pf.on_access(0xF000, hit=False, cycle=20)
        # On re-access of the entangled sources, 0xF000 is prefetched.
        pf._queue.clear()
        pf._queued.clear()
        pf.on_access(0x0, hit=True, cycle=30)
        assert 0xF000 in pf._queue

    def test_next_line_component(self):
        pf, *_ = build(EIPPrefetcher)
        pf.on_access(0x2000, hit=False, cycle=0)
        assert 0x2040 in pf._queue

    def test_capacity_bounded(self):
        pf, *_ = build(EIPPrefetcher, budget_kib=1)
        for i in range(10_000):
            pf.on_access(0x100000 + 64 * i, hit=False, cycle=i)
        assert len(pf._table) <= pf.capacity

    def test_budget_variants(self):
        e27, *_ = build(EIP27)
        e128, *_ = build(EIP128)
        assert e128.capacity > e27.capacity
        assert e128.storage_bits() > e27.storage_bits()

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            build(EIPPrefetcher, budget_kib=0)


class TestFNLMMA:
    def test_footprint_learned_and_issued(self):
        pf, *_ = build(FNLMMAPrefetcher)
        # Access line then its successor a few times -> footprint bit.
        for _ in range(2):
            pf.on_access(0x3000, hit=True, cycle=0)
            pf.on_access(0x3040, hit=True, cycle=1)
        pf._queue.clear()
        pf._queued.clear()
        pf.on_access(0x3000, hit=True, cycle=2)
        assert 0x3040 in pf._queue

    def test_mma_links_distant_misses(self):
        pf, *_ = build(FNLMMAPrefetcher, miss_distance=2)
        misses = [0x10000, 0x20000, 0x30000, 0x40000]
        for i, line in enumerate(misses):
            pf.on_access(line, hit=False, cycle=i)
        # Miss[0] should be linked to miss[2].
        assert pf._mma.get(0x10000) == 0x30000
        pf._queue.clear()
        pf._queued.clear()
        pf.on_access(0x10000, hit=False, cycle=10)
        assert 0x30000 in pf._queue

    def test_storage_bits(self):
        pf, *_ = build(FNLMMAPrefetcher)
        assert pf.storage_bits() > 0


class TestDJolt:
    def test_signature_changes_on_call(self):
        pf, *_ = build(DJoltPrefetcher)
        sig0 = pf.signature
        pf.on_commit_branch(0x4000, BranchKind.CALL_DIRECT, True, 0x8000)
        assert pf.signature != sig0

    def test_non_call_branches_ignored(self):
        pf, *_ = build(DJoltPrefetcher)
        sig0 = pf.signature
        pf.on_commit_branch(0x4000, BranchKind.COND_DIRECT, True, 0x8000)
        pf.on_commit_branch(0x4000, BranchKind.RETURN, True, 0x8000)
        assert pf.signature == sig0

    def test_misses_recorded_and_jolted(self):
        pf, *_ = build(DJoltPrefetcher)
        pf.on_commit_branch(0x4000, BranchKind.CALL_DIRECT, True, 0x8000)
        pf.on_access(0xA000, hit=False, cycle=0)
        pf.on_access(0xB000, hit=False, cycle=1)
        pf._queue.clear()
        pf._queued.clear()
        # Recreate the same call context.
        pf._call_fifo.clear()
        pf._sig_history.clear()
        pf._sig_history.append(0)
        pf.on_commit_branch(0x4000, BranchKind.CALL_DIRECT, True, 0x8000)
        assert 0xA000 in pf._queue and 0xB000 in pf._queue


class TestSN4LDis:
    def test_usefulness_filter_gates_next_lines(self):
        pf, *_ = build(SN4LDisPrefetcher)
        # Cold: nothing useful yet, no prefetches.
        pf.on_access(0x5000, hit=True, cycle=0)
        assert pf.pending == 0
        # A miss within 4 lines of a recent access trains usefulness.
        pf.on_access(0x5080, hit=False, cycle=1)
        pf._queue.clear()
        pf._queued.clear()
        pf.on_access(0x5000, hit=True, cycle=2)
        assert 0x5080 in pf._queue

    def test_discontinuity_recorded(self):
        pf, *_ = build(SN4LDisPrefetcher)
        pf.on_access(0x5000, hit=False, cycle=0)
        pf.on_access(0x9000, hit=False, cycle=1)  # non-sequential miss pair
        assert pf._dis.get(0x5000) == 0x9000
        pf._queue.clear()
        pf._queued.clear()
        pf.on_access(0x5000, hit=True, cycle=2)
        assert 0x9000 in pf._queue

    def test_sequential_miss_pair_not_discontinuity(self):
        pf, *_ = build(SN4LDisPrefetcher)
        pf.on_access(0x5000, hit=False, cycle=0)
        pf.on_access(0x5040, hit=False, cycle=1)
        assert 0x5000 not in pf._dis


class TestBTBPrefetch:
    def test_fill_installs_pc_relative_branches(self):
        program = make_program(
            {
                0x6000: Instruction(0x6000, BranchKind.COND_DIRECT, 0x7000, 0),
                0x6010: Instruction(0x6010, BranchKind.INDIRECT),
                0x6020: Instruction(0x6020, BranchKind.CALL_DIRECT, 0x9000),
            }
        )
        pf, memory, btb, stats = build(SN4LDisBTBPrefetcher, program=program)
        pf.on_fill(0x6000, cycle=0, was_prefetch=False)
        assert btb.contains(0x6000)
        assert btb.contains(0x6020)
        # Register-indirect branches cannot be prefetched (Section VI-E).
        assert not btb.contains(0x6010)
        assert stats.get("btb_prefetch_inserts") == 2

    def test_plain_variant_does_not_touch_btb(self):
        program = make_program(
            {0x6000: Instruction(0x6000, BranchKind.COND_DIRECT, 0x7000, 0)}
        )
        pf, memory, btb, _ = build(SN4LDisPrefetcher, program=program)
        pf.on_fill(0x6000, cycle=0, was_prefetch=False)
        assert not btb.contains(0x6000)
