"""Unit tests for repro.isa.instructions."""

import pytest

from repro.isa.instructions import BranchKind, Instruction, is_branch_kind


class TestBranchKind:
    def test_none_is_not_branch(self):
        assert not BranchKind.NONE.is_branch
        assert not is_branch_kind(BranchKind.NONE)

    def test_all_others_are_branches(self):
        for kind in BranchKind:
            if kind is not BranchKind.NONE:
                assert kind.is_branch

    def test_conditional(self):
        assert BranchKind.COND_DIRECT.is_conditional
        assert not BranchKind.UNCOND_DIRECT.is_conditional

    def test_unconditional_set(self):
        unconds = {k for k in BranchKind if k.is_unconditional}
        assert unconds == {
            BranchKind.UNCOND_DIRECT,
            BranchKind.CALL_DIRECT,
            BranchKind.RETURN,
            BranchKind.INDIRECT,
            BranchKind.INDIRECT_CALL,
        }

    def test_calls(self):
        assert BranchKind.CALL_DIRECT.is_call
        assert BranchKind.INDIRECT_CALL.is_call
        assert not BranchKind.RETURN.is_call

    def test_indirect(self):
        assert BranchKind.INDIRECT.is_indirect
        assert BranchKind.INDIRECT_CALL.is_indirect
        assert not BranchKind.RETURN.is_indirect

    def test_pc_relative(self):
        rel = {k for k in BranchKind if k.is_pc_relative}
        assert rel == {BranchKind.COND_DIRECT, BranchKind.UNCOND_DIRECT, BranchKind.CALL_DIRECT}

    def test_pfc_eligibility(self):
        # PFC covers PC-relative branches and returns (Section III-B).
        eligible = {k for k in BranchKind if k.pfc_eligible}
        assert eligible == {
            BranchKind.COND_DIRECT,
            BranchKind.UNCOND_DIRECT,
            BranchKind.CALL_DIRECT,
            BranchKind.RETURN,
        }


class TestInstruction:
    def test_requires_alignment(self):
        with pytest.raises(ValueError):
            Instruction(addr=0x1002)

    def test_target_alignment_for_direct(self):
        with pytest.raises(ValueError):
            Instruction(addr=0x1000, kind=BranchKind.UNCOND_DIRECT, target=0x2002)

    def test_fall_through(self):
        assert Instruction(addr=0x1000).fall_through == 0x1004

    def test_decode_target_direct(self):
        instr = Instruction(addr=0x1000, kind=BranchKind.CALL_DIRECT, target=0x4000)
        assert instr.decode_target() == 0x4000

    def test_decode_target_return_uses_ras(self):
        instr = Instruction(addr=0x1000, kind=BranchKind.RETURN)
        assert instr.decode_target(ras_top=0x2000) == 0x2000
        assert instr.decode_target(ras_top=None) is None

    def test_decode_target_indirect_unknown(self):
        instr = Instruction(addr=0x1000, kind=BranchKind.INDIRECT)
        assert instr.decode_target(ras_top=0x2000) is None

    def test_is_branch(self):
        assert Instruction(addr=0, kind=BranchKind.RETURN).is_branch
        assert not Instruction(addr=0).is_branch
