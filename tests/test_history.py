"""Tests for branch history management (repro.branch.history)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.branch.history import TARGET_SHIFT, HistoryManager
from repro.common.bits import target_hash
from repro.common.params import HistoryPolicy


def thr(bits=64):
    return HistoryManager(HistoryPolicy.THR, bits)


def mgr(policy, bits=64):
    return HistoryManager(policy, bits)


class TestTargetHistory:
    def test_push_taken_matches_paper_eq3(self):
        m = thr()
        h = m.push_taken(0, 0x4000, 0x5000)
        assert h == target_hash(0x4000, 0x5000) & m.mask
        h2 = m.push_taken(h, 0x6000, 0x7000)
        assert h2 == ((h << TARGET_SHIFT) ^ target_hash(0x6000, 0x7000)) & m.mask

    def test_not_taken_is_noop(self):
        m = thr()
        assert m.push_not_taken(0xABC) == 0xABC

    def test_mask_applied(self):
        m = thr(bits=8)
        h = 0
        for i in range(100):
            h = m.push_taken(h, 0x4000 + 4 * i, 0x5000)
        assert h < (1 << 8)

    def test_distinct_targets_distinct_history(self):
        m = thr()
        assert m.push_taken(0, 0x4000, 0x5000) != m.push_taken(0, 0x4000, 0x6000)


class TestDirectionHistory:
    def test_push_bits(self):
        m = mgr(HistoryPolicy.GHR0)
        h = m.push_taken(0, 0x4000, 0x5000)
        assert h == 1
        h = m.push_not_taken(h)
        assert h == 0b10

    def test_push_outcome(self):
        m = mgr(HistoryPolicy.GHR0)
        assert m.push_outcome(0, 0x4000, True, 0x5000) == 1
        assert m.push_outcome(0, 0x4000, False, 0x5000) == 0


class TestCommitPushMatrix:
    """commit_push must mirror the frontend's policy exactly (Table II/V)."""

    def test_thr_taken_only(self):
        m = thr()
        h, fix = m.commit_push(0, 0x4000, True, 0x5000, detected=False)
        assert h != 0 and not fix
        h, fix = m.commit_push(0, 0x4000, False, 0x5000, detected=False)
        assert h == 0 and not fix

    def test_ideal_pushes_everything(self):
        m = mgr(HistoryPolicy.IDEAL)
        h, fix = m.commit_push(0, 0x4000, False, 0, detected=False)
        assert h == 0 and not fix  # shifted-in 0 bit
        h2, _ = m.commit_push(1, 0x4000, False, 0, detected=False)
        assert h2 == 0b10

    def test_detected_branches_push_their_bit(self):
        for policy in (HistoryPolicy.GHR0, HistoryPolicy.GHR2):
            m = mgr(policy)
            h, fix = m.commit_push(0, 0x4000, False, 0, detected=True)
            assert h == 0 and not fix  # 0<<1 | 0

    def test_undetected_taken_always_fixed_by_flush(self):
        for policy in (HistoryPolicy.GHR0, HistoryPolicy.GHR1, HistoryPolicy.GHR2, HistoryPolicy.GHR3):
            m = mgr(policy)
            h, fix = m.commit_push(0, 0x4000, True, 0x5000, detected=False)
            assert h == 1 and not fix

    def test_undetected_not_taken_lost_without_fixup(self):
        m = mgr(HistoryPolicy.GHR0)
        h, fix = m.commit_push(0b101, 0x4000, False, 0, detected=False)
        assert h == 0b101 and not fix

    def test_undetected_not_taken_fixed_with_flush_cost(self):
        m = mgr(HistoryPolicy.GHR2)
        h, fix = m.commit_push(0b101, 0x4000, False, 0, detected=False)
        assert h == 0b1010 and fix


class TestPolicyFlags:
    def test_alloc_all(self):
        assert mgr(HistoryPolicy.GHR1).allocates_all_branches
        assert not mgr(HistoryPolicy.THR).allocates_all_branches

    def test_fixes(self):
        assert mgr(HistoryPolicy.GHR3).fixes_not_taken
        assert not mgr(HistoryPolicy.GHR1).fixes_not_taken

    def test_ideal_flag(self):
        assert mgr(HistoryPolicy.IDEAL).is_ideal

    def test_repr(self):
        assert "THR" in repr(thr())

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            HistoryManager(HistoryPolicy.THR, 0)


@given(
    pushes=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=2**20)),
        max_size=50,
    )
)
def test_history_always_within_mask(pushes):
    m = thr(bits=32)
    h = 0
    for taken, pc in pushes:
        h = m.push_outcome(h, pc * 4, taken, pc * 4 + 64)
        assert 0 <= h <= m.mask
