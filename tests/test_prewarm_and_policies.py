"""Tests for L2 pre-warming and BTB allocation-policy effects."""

import pytest

from repro.common.params import HistoryPolicy, SimParams
from repro.core.simulator import Simulator
from repro.trace.cfg import generate_program
from repro.trace.oracle import run_oracle
from tests.conftest import tiny_spec


@pytest.fixture(scope="module")
def trace():
    program = generate_program(tiny_spec(n_functions=30, functions_per_phase=10), seed=77)
    stream = run_oracle(program, 9_000, seed=78)
    return program, stream


def fast():
    return SimParams(warmup_instructions=1_500, sim_instructions=5_000)


class TestL2Prewarm:
    def test_code_image_resident_in_l2_at_init(self, trace):
        program, stream = trace
        sim = Simulator(fast(), program, stream)
        line = program.code_start
        while line < program.code_end:
            assert sim.memory.l2.contains(line)
            line += sim.params.memory.line_bytes

    def test_no_dram_fills_for_code(self, trace):
        """With the image L2-resident, demand fills are L2 hits."""
        program, stream = trace
        sim = Simulator(fast(), program, stream)
        result = sim.run("t")
        # Wrong-path fetches can stray past code_end into unmapped
        # space; those may go to DRAM, but correct-path code must not.
        assert result.stats.get("l2_hit") >= result.stats.get("l2_miss")

    def test_prewarm_respects_line_size(self, trace):
        program, stream = trace
        sim = Simulator(fast().with_memory(line_bytes=128), program, stream)
        assert sim.memory.l2.contains(program.code_start)


class TestAllocationPolicies:
    def test_alloc_all_fills_btb_with_more_branches(self, trace):
        program, stream = trace
        taken_only = Simulator(
            fast().with_frontend(history_policy=HistoryPolicy.GHR0), program, stream
        )
        taken_only.run("a")
        alloc_all = Simulator(
            fast().with_frontend(history_policy=HistoryPolicy.GHR1), program, stream
        )
        alloc_all.run("b")
        assert alloc_all.btb.occupancy >= taken_only.btb.occupancy

    def test_thr_btb_holds_taken_branches_only(self, trace):
        program, stream = trace
        sim = Simulator(fast(), program, stream)
        sim.run("t")
        # Collect branches that were ever taken in the committed stream.
        ever_taken = set()
        for seg in stream.segments:
            for addr, _, taken, _ in seg.branches:
                if taken:
                    ever_taken.add(addr)
        resident = set()
        for ways in sim.btb._sets:
            resident.update(e.addr for e in ways)
        assert resident <= ever_taken


class TestFixupPolicyCosts:
    def test_ghr2_pays_fixup_flushes(self, trace):
        program, stream = trace
        sim = Simulator(
            fast().with_frontend(history_policy=HistoryPolicy.GHR2), program, stream
        )
        r = sim.run("t")
        assert r.stats.get("ghr_fixup_flush") > 0

    def test_thr_never_needs_fixups(self, trace):
        program, stream = trace
        r = Simulator(fast(), program, stream).run("t")
        assert r.stats.get("ghr_fixup_flush") == 0
