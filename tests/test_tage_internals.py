"""Deeper tests of TAGE internals: usefulness bits, alternate
prediction, periodic aging, and allocation discipline."""


from repro.branch.tage import TAGE, TageConfig


def small_tage(**overrides):
    defaults = dict(
        n_tables=4,
        table_entries=64,
        bimodal_entries=256,
        tag_bits=8,
        min_history=2,
        max_history=32,
    )
    defaults.update(overrides)
    return TAGE(TageConfig(**defaults))


class TestAllocation:
    def test_allocates_in_longer_table_than_provider(self):
        tage = small_tage()
        hist = 0b1011
        # Create a bimodal-provided mispredict; allocation must land in a
        # tagged table.
        tage.update(0x4000, hist, True)  # bimodal says NT -> mispredict
        assert tage.allocations == 1
        found = any(
            tage._tag[t][tage._index_and_tag(t, 0x4000, tage._folds(hist))[0]]
            == tage._index_and_tag(t, 0x4000, tage._folds(hist))[1]
            for t in range(4)
        )
        assert found

    def test_no_allocation_when_correct_and_confident(self):
        tage = small_tage()
        for _ in range(6):
            tage.update(0x4000, 0, False)  # bimodal already says NT
        assert tage.allocations == 0

    def test_failed_allocation_ages_candidates(self):
        tage = small_tage(n_tables=2)
        hist = 0b11
        folds = tage._folds(hist)
        # Occupy both tagged slots with useful entries.
        for t in range(2):
            idx, tag = tage._index_and_tag(t, 0x4000, folds)
            tage._tag[t][idx] = tag + 1  # different tag (foreign entry)
            tage._u[t][idx] = 2
        tage.update(0x4000, hist, True)  # mispredict, all u>0 -> age
        for t in range(2):
            idx, _ = tage._index_and_tag(t, 0x4000, folds)
            assert tage._u[t][idx] == 1


class TestUsefulness:
    @staticmethod
    def _make_useful_entry(tage, pc, hist):
        """Train bimodal strongly NT, then a taken tagged entry: the
        provider (taken) beats the alternate (bimodal, NT)."""
        # Bimodal trains only while it provides; no tagged entry exists
        # for hist=0 until a mispredict, and NT predictions are correct.
        for _ in range(4):
            tage.update(pc, 0, False)
        tage.update(pc, hist, True)  # mispredict -> tagged allocation
        tage.update(pc, hist, True)  # provider right, alternate wrong -> u++

    def test_u_incremented_when_provider_beats_alt(self):
        tage = small_tage(n_tables=1)
        hist = 0b1
        self._make_useful_entry(tage, 0x4000, hist)
        folds = tage._folds(hist)
        idx, _ = tage._index_and_tag(0, 0x4000, folds)
        assert tage._u[0][idx] >= 1

    def test_periodic_u_reset_halves(self):
        tage = small_tage(n_tables=1, u_reset_period=8)
        hist = 0b1
        self._make_useful_entry(tage, 0x4000, hist)
        folds = tage._folds(hist)
        idx, _ = tage._index_and_tag(0, 0x4000, folds)
        before = tage._u[0][idx]
        assert before >= 1
        for i in range(8):
            tage.update(0x5000 + 16 * i, 0, False)
        assert tage._u[0][idx] == before >> 1


class TestAlternate:
    def test_weak_new_entry_can_defer_to_alt(self):
        tage = small_tage()
        # Drive use_alt_on_na positive by making new allocations wrong
        # while the alternate (bimodal) is right.
        assert -8 <= tage._use_alt_on_na <= 7

    def test_predict_is_pure(self):
        tage = small_tage()
        tage.update(0x4000, 0, True)
        before = [list(col) for col in tage._ctr]
        tage.predict(0x4000, 0)
        after = [list(col) for col in tage._ctr]
        assert before == after


class TestCounters:
    def test_bimodal_saturates_while_providing(self):
        """Bimodal trains only when it is the provider: NT updates never
        mispredict (init is weakly NT), so no tagged entry is allocated
        and the counter saturates at the floor."""
        tage = small_tage()
        idx = tage._bimodal_index(0x4000)
        for _ in range(20):
            tage.update(0x4000, 0, False)
        assert tage._bimodal[idx] == -4

    def test_tagged_ctr_saturates(self):
        tage = small_tage(n_tables=1)
        hist = 0b1
        tage.update(0x4000, hist, True)  # allocate
        for _ in range(20):
            tage.update(0x4000, hist, True)
        foldidx, _ = tage._index_and_tag(0, 0x4000, tage._folds(hist))
        assert tage._ctr[0][foldidx] == 3
        for _ in range(30):
            tage.update(0x4000, hist, False)
        assert tage._ctr[0][foldidx] == -4
