"""Shim for legacy editable installs (`pip install -e . --no-use-pep517`).

The environment has no `wheel` package, so the PEP 660 editable path is
unavailable; this keeps `pip install -e .` working offline.  All real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
