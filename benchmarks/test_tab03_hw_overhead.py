"""Benchmark: regenerate Table III FTQ hardware overhead (see DESIGN.md section 4)."""

from repro.experiments import figures

from benchmarks.conftest import run_experiment


def test_tab03_hw_overhead(benchmark):
    data = run_experiment(benchmark, figures.table3, "table3")
    assert data["rows"], "experiment produced no rows"
