"""Benchmark: regenerate Fig 8 history management (see DESIGN.md section 4)."""

from repro.experiments import figures

from benchmarks.conftest import run_experiment


def test_fig08_history(benchmark):
    data = run_experiment(benchmark, figures.fig8, "fig8")
    assert data["rows"], "experiment produced no rows"
