"""Benchmark: regenerate Fig 10 BTB prefetching (see DESIGN.md section 4)."""

from repro.experiments import figures

from benchmarks.conftest import run_experiment


def test_fig10_btb_prefetch(benchmark):
    data = run_experiment(benchmark, figures.fig10, "fig10")
    assert data["rows"], "experiment produced no rows"
