"""Benchmark: regenerate Fig 14 FTQ size sensitivity (see DESIGN.md section 4)."""

from repro.experiments import figures

from benchmarks.conftest import run_experiment


def test_fig14_ftq_size(benchmark):
    data = run_experiment(benchmark, figures.fig14, "fig14")
    assert data["rows"], "experiment produced no rows"
