"""Benchmark harness glue.

Each benchmark regenerates one table/figure of the paper via its
``repro.experiments.figures`` function, renders it as text, prints it,
and archives it under ``results/``.  Runs are memoised across benchmark
files (the baselines are shared), so the suite's total cost is far less
than the sum of its parts.

Environment knobs (see repro.experiments.configs):
  REPRO_WORKLOADS=quick|all|name,name   REPRO_WARMUP=N   REPRO_SIM=N
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.report import render_table

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ carries the ``benchmarks`` marker.

    Lets ``pytest -m "not benchmarks"`` exclude the expensive tree when
    running tests and benchmarks in one invocation.  (This conftest's
    hook sees the whole session's items, so filter by path.)
    """
    for item in items:
        if _BENCH_DIR in Path(item.fspath).parents:
            item.add_marker(pytest.mark.benchmarks)


def run_experiment(benchmark, experiment_fn, name: str):
    """Benchmark one experiment function and archive its table."""
    data = benchmark.pedantic(experiment_fn, rounds=1, iterations=1)
    text = render_table(data["title"], data["headers"], data["rows"])
    if "paper" in data:
        text += "\npaper reference: " + ", ".join(
            f"{k}={v}" for k, v in data["paper"].items()
        )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
    return data


@pytest.fixture
def experiment(benchmark):
    def _run(fn, name):
        return run_experiment(benchmark, fn, name)

    return _run
