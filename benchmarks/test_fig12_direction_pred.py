"""Benchmark: regenerate Fig 12 direction predictor sensitivity (see DESIGN.md section 4)."""

from repro.experiments import figures

from benchmarks.conftest import run_experiment


def test_fig12_direction_pred(benchmark):
    data = run_experiment(benchmark, figures.fig12, "fig12")
    assert data["rows"], "experiment produced no rows"
