"""Benchmark: regenerate Fig 7 PFC vs BTB size (see DESIGN.md section 4)."""

from repro.experiments import figures

from benchmarks.conftest import run_experiment


def test_fig07_pfc_btb(benchmark):
    data = run_experiment(benchmark, figures.fig7, "fig7")
    assert data["rows"], "experiment produced no rows"
