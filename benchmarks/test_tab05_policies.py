"""Benchmark: regenerate Table V history policies (see DESIGN.md section 4)."""

from repro.experiments import figures

from benchmarks.conftest import run_experiment


def test_tab05_policies(benchmark):
    data = run_experiment(benchmark, figures.table5, "table5")
    assert data["rows"], "experiment produced no rows"
