"""Ablation benchmark: direction_zoo (see repro.experiments.analysis)."""

from repro.experiments import analysis

from benchmarks.conftest import run_experiment


def test_abl_direction_zoo(benchmark):
    data = run_experiment(benchmark, analysis.direction_zoo, "abl_direction_zoo")
    assert data["rows"], "ablation produced no rows"
