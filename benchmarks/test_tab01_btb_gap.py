"""Benchmark: regenerate Table I BTB capacity gap (see DESIGN.md section 4)."""

from repro.experiments import figures

from benchmarks.conftest import run_experiment


def test_tab01_btb_gap(benchmark):
    data = run_experiment(benchmark, figures.table1, "table1")
    assert data["rows"], "experiment produced no rows"
