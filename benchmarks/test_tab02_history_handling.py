"""Benchmark: regenerate Table II BTB-miss not-taken handling (see DESIGN.md section 4)."""

from repro.experiments import figures

from benchmarks.conftest import run_experiment


def test_tab02_history_handling(benchmark):
    data = run_experiment(benchmark, figures.table2, "table2")
    assert data["rows"], "experiment produced no rows"
