"""Benchmark: regenerate Fig 6b per-trace EIP improvement (see DESIGN.md section 4)."""

from repro.experiments import figures

from benchmarks.conftest import run_experiment


def test_fig06b_per_trace(benchmark):
    data = run_experiment(benchmark, figures.fig6b, "fig6b")
    assert data["rows"], "experiment produced no rows"
