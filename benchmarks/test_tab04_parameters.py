"""Benchmark: regenerate Table IV common parameters (see DESIGN.md section 4)."""

from repro.experiments import figures

from benchmarks.conftest import run_experiment


def test_tab04_parameters(benchmark):
    data = run_experiment(benchmark, figures.table4, "table4")
    assert data["rows"], "experiment produced no rows"
