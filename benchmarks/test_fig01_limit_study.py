"""Benchmark: regenerate Fig 1 prefetching limit study (see DESIGN.md section 4)."""

from repro.experiments import figures

from benchmarks.conftest import run_experiment


def test_fig01_limit_study(benchmark):
    data = run_experiment(benchmark, figures.fig1, "fig1")
    assert data["rows"], "experiment produced no rows"
