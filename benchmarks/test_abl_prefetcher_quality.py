"""Ablation benchmark: prefetcher_quality (see repro.experiments.analysis)."""

from repro.experiments import analysis

from benchmarks.conftest import run_experiment


def test_abl_prefetcher_quality(benchmark):
    data = run_experiment(benchmark, analysis.prefetcher_quality, "abl_prefetcher_quality")
    assert data["rows"], "ablation produced no rows"
