"""Benchmark: regenerate Fig 6a prefetching speedups (see DESIGN.md section 4)."""

from repro.experiments import figures

from benchmarks.conftest import run_experiment


def test_fig06a_prefetch_speedup(benchmark):
    data = run_experiment(benchmark, figures.fig6a, "fig6a")
    assert data["rows"], "experiment produced no rows"
