"""Ablation benchmark: fdp_attribution (see repro.experiments.analysis)."""

from repro.experiments import analysis

from benchmarks.conftest import run_experiment


def test_abl_fdp_components(benchmark):
    data = run_experiment(benchmark, analysis.fdp_attribution, "abl_fdp_components")
    assert data["rows"], "ablation produced no rows"
