"""Ablation benchmark: loop_predictor_ablation (see repro.experiments.analysis)."""

from repro.experiments import analysis

from benchmarks.conftest import run_experiment


def test_abl_loop_predictor(benchmark):
    data = run_experiment(benchmark, analysis.loop_predictor_ablation, "abl_loop_predictor")
    assert data["rows"], "ablation produced no rows"
