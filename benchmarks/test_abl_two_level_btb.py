"""Ablation benchmark: two_level_btb (see repro.experiments.analysis)."""

from repro.experiments import analysis

from benchmarks.conftest import run_experiment


def test_abl_two_level_btb(benchmark):
    data = run_experiment(benchmark, analysis.two_level_btb, "abl_two_level_btb")
    assert data["rows"], "ablation produced no rows"
