"""Benchmark: regenerate Fig 11 BTB capacity sensitivity (see DESIGN.md section 4)."""

from repro.experiments import figures

from benchmarks.conftest import run_experiment


def test_fig11_btb_capacity(benchmark):
    data = run_experiment(benchmark, figures.fig11, "fig11")
    assert data["rows"], "experiment produced no rows"
