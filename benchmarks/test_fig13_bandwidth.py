"""Benchmark: regenerate Fig 13 bandwidth and latency (see DESIGN.md section 4)."""

from repro.experiments import figures

from benchmarks.conftest import run_experiment


def test_fig13_bandwidth(benchmark):
    data = run_experiment(benchmark, figures.fig13, "fig13")
    assert data["rows"], "experiment produced no rows"
