"""Benchmark: regenerate Fig 9 ISO-budget analysis (see DESIGN.md section 4)."""

from repro.experiments import figures

from benchmarks.conftest import run_experiment


def test_fig09_iso_budget(benchmark):
    data = run_experiment(benchmark, figures.fig9, "fig9")
    assert data["rows"], "experiment produced no rows"
