"""Command-line interface.

Twelve subcommands::

    python -m repro run   --workload srv_web --ftq 24 --btb 8192 ...
    python -m repro list                  # workloads and prefetchers
    python -m repro workload info NAME    # one workload: footprint, branch mix, provenance
    python -m repro report fig7 fig14     # regenerate paper experiments
    python -m repro bench [--trend]       # cycle-loop throughput -> BENCH_core.json
    python -m repro trace --workload ...  # telemetry run -> JSONL + report
    python -m repro profile --workload .. # per-stage self-time profile
    python -m repro check [--fuzz N]      # correctness harness (docs/TESTING.md)
    python -m repro kernel [--dump]       # cycle-kernel backend resolution/source
    python -m repro cache info|clear      # persistent result cache
    python -m repro sweep spec.yaml       # declarative sweep (--shard k/N, --resume)
    python -m repro sweep-report [LEDGER] # sweep progress/summary from a run ledger

``run`` simulates one (workload, configuration) pair and prints the
metric summary; every microarchitectural knob the evaluation sweeps is
exposed as a flag (``--stats-json`` dumps the full raw counter set).
``trace`` re-runs one point with the observability layer on and writes
the event/time-series JSONL plus a markdown/JSON report; ``profile``
re-runs one point with the schedule-stage profiler and prints where
the cycle loop's wall time goes (see docs/OBSERVABILITY.md).
``report`` honours ``REPRO_JOBS`` (parallel sweep workers), the
persistent result cache (``REPRO_CACHE_DIR``) and the run ledger
(``REPRO_LEDGER``, read back with ``sweep-report``); see
docs/PERFORMANCE.md.  The global ``--log-level`` flag (or the
``REPRO_LOG`` environment variable) controls diagnostic logging.

Every ``--workload``/``--workloads`` flag accepts catalogue names,
registered trace sources (``REPRO_TRACES``) and ChampSim trace file
paths interchangeably (see docs/TRACES.md).
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path

from repro.common.log import configure as configure_logging
from repro.common.log import get_logger, level_names
from repro.common.params import HistoryPolicy, SimParams
from repro.core.build import direction_predictors, history_policies
from repro.core.simulator import simulate
from repro.experiments.analysis import ALL_ABLATIONS
from repro.experiments.bench import DEFAULT_OUTPUT as _BENCH_OUTPUT
from repro.experiments.bench import run_bench, write_bench
from repro.experiments.cache import ResultCache, cache_stats
from repro.experiments.figures import ALL_EXPERIMENTS as _FIGURES
from repro.experiments.report import render_table, render_trace_report
from repro.prefetch import prefetcher_names
from repro.trace.workloads import default_workloads

ALL_EXPERIMENTS = {**_FIGURES, **ALL_ABLATIONS}

log = get_logger("cli")

DEFAULT_TRACE_DIR = "results/telemetry"
"""Where ``repro trace`` writes its JSONL and reports by default."""


def _add_sim_flags(cmd: argparse.ArgumentParser) -> None:
    """Add the shared (workload, configuration) flags to a subcommand."""
    cmd.add_argument("--workload", default="srv_web")
    cmd.add_argument("--warmup", type=int, default=25_000)
    cmd.add_argument("--instructions", type=int, default=60_000)
    cmd.add_argument("--ftq", type=int, default=24, help="FTQ entries (2 disables FDP)")
    cmd.add_argument("--no-pfc", action="store_true", help="disable post-fetch correction")
    cmd.add_argument("--btb", type=int, default=8192, help="BTB entries")
    cmd.add_argument("--btb-latency", type=int, default=2)
    cmd.add_argument(
        "--history",
        choices=history_policies.names(),
        default=HistoryPolicy.THR.value,
        help="history management policy (Table V)",
    )
    cmd.add_argument(
        "--direction",
        choices=direction_predictors.names(),
        default="tage",
        help="conditional direction predictor (Fig 12)",
    )
    cmd.add_argument("--tage-kib", type=int, default=18, choices=[9, 18, 36])
    cmd.add_argument("--prefetcher", default="none",
                     help=f"none|perfect|{'|'.join(prefetcher_names())}")
    cmd.add_argument("--predict-width", type=int, default=12)
    cmd.add_argument("--max-taken", type=int, default=1)
    cmd.add_argument("--perfect-btb", action="store_true")
    cmd.add_argument("--perfect-direction", action="store_true")
    cmd.add_argument(
        "--kernel",
        choices=["auto", "typed", "interp"],
        default="auto",
        help="cycle-kernel backend (mirrors REPRO_KERNEL; default auto)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FDP frontend simulator (ISPASS 2021 reproduction)",
    )
    parser.add_argument(
        "--log-level",
        choices=level_names(),
        default=None,
        help="diagnostic log verbosity (default: REPRO_LOG env var, else warning)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one workload/configuration")
    _add_sim_flags(run)
    run.add_argument(
        "--list-workloads",
        action="store_true",
        help="print the known workloads (name, source, category; one per "
        "line) and exit",
    )
    run.add_argument(
        "--list-prefetchers",
        action="store_true",
        help="print the registered prefetcher names (one per line) and exit",
    )
    run.add_argument(
        "--list-predictors",
        action="store_true",
        help="print the registered direction-predictor names (one per line) and exit",
    )
    run.add_argument("--stats", action="store_true", help="dump all raw counters")
    run.add_argument(
        "--stats-json",
        metavar="PATH",
        default=None,
        help="write the full raw counter set (sorted) as JSON to PATH",
    )

    sub.add_parser("list", help="list workloads and prefetchers")

    workload = sub.add_parser(
        "workload", help="inspect one workload: footprint, branch mix, provenance"
    )
    workload.add_argument("action", choices=["info"])
    workload.add_argument(
        "name", help="catalogue name, registered trace name, or trace file path"
    )
    workload.add_argument(
        "--instructions",
        type=int,
        default=20_000,
        help="committed-instruction window for the footprint/branch-mix "
        "measurement (default 20000)",
    )

    trace = sub.add_parser(
        "trace", help="simulate with full telemetry; write JSONL + trace report"
    )
    _add_sim_flags(trace)
    trace.add_argument(
        "--out", default=DEFAULT_TRACE_DIR, help=f"output directory (default {DEFAULT_TRACE_DIR})"
    )
    trace.add_argument(
        "--stride", type=int, default=10_000, help="interval sample stride in instructions"
    )
    trace.add_argument("--events", type=int, default=8192, help="event ring capacity")
    trace.add_argument(
        "--format", choices=["md", "json", "both"], default="both", help="report format(s)"
    )

    report = sub.add_parser("report", help="regenerate paper tables/figures")
    report.add_argument("experiments", nargs="*", help="subset (default: all)")
    report.add_argument("--plot", action="store_true", help="add ASCII bar charts")

    bench = sub.add_parser("bench", help="measure simulated instructions/sec")
    bench.add_argument(
        "--workloads",
        default="quick",
        help="'quick' (default), 'all', or comma-separated workload names "
        "or trace file paths",
    )
    bench.add_argument("--warmup", type=int, default=None, help="warmup instructions")
    bench.add_argument("--instructions", type=int, default=None, help="measured instructions")
    bench.add_argument("--repeats", type=int, default=1, help="best-of-N repeats per workload")
    bench.add_argument("--output", default=None, help=f"JSON path (default {_BENCH_OUTPUT})")
    bench.add_argument(
        "--fast-warmup",
        action="store_true",
        help="use functional fast-forward warmup (warmup_mode=functional)",
    )
    bench.add_argument(
        "--batched",
        action="store_true",
        help="benchmark the lockstep batch path (repro.core.batch) instead "
        "of one scalar instance per workload",
    )
    bench.add_argument(
        "--batch-width",
        type=int,
        default=None,
        metavar="N",
        help="instances per lockstep batch for --batched (default 4)",
    )
    bench.add_argument(
        "--kernel",
        choices=["auto", "typed", "interp"],
        default="auto",
        help="cycle-kernel backend to benchmark (mirrors REPRO_KERNEL)",
    )
    bench.add_argument(
        "--no-history",
        action="store_true",
        help="skip appending this run to BENCH_history.jsonl",
    )
    bench.add_argument(
        "--baseline",
        metavar="BENCH_JSON",
        default=None,
        help="compare against a previous BENCH_core.json; exit non-zero "
        "if any workload's rate regressed by more than 20%%",
    )
    bench.add_argument(
        "--trend",
        action="store_true",
        help="print the per-machine regression trend from BENCH_history.jsonl "
        "instead of running the benchmark",
    )
    bench.add_argument(
        "--last",
        type=int,
        default=10,
        metavar="N",
        help="trend window: last N history entries per machine/mode (default 10)",
    )
    bench.add_argument(
        "--history",
        metavar="PATH",
        default=None,
        help="history trail for --trend (default BENCH_history.jsonl)",
    )

    profile = sub.add_parser(
        "profile", help="simulate with the schedule-stage profiler; print self-time"
    )
    _add_sim_flags(profile)
    profile.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the profile report as JSON to PATH",
    )

    sweep = sub.add_parser(
        "sweep", help="run a declarative sweep spec (sharded, resumable; docs/SWEEPS.md)"
    )
    sweep.add_argument("spec", help="sweep spec file (.yaml/.yml via PyYAML, else JSON)")
    sweep.add_argument(
        "--shard",
        default="1/1",
        metavar="K/N",
        help="run only this shard of the expansion (e.g. 2/4; default 1/1)",
    )
    sweep.add_argument(
        "--jobs", type=int, default=None, help="parallel workers (default REPRO_JOBS)"
    )
    sweep.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="output directory (default: the spec's output.dir, else results/sweeps/<name>)",
    )
    sweep.add_argument(
        "--dry-run",
        action="store_true",
        help="print the expansion and this shard's points without simulating",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="report how many shard points the result cache already holds, then "
        "run only the remainder (any sweep is implicitly resumable; this "
        "flag adds the pre-scan and tags the ledger)",
    )
    sweep.add_argument(
        "--merge",
        action="store_true",
        help="merge existing per-shard manifests into the final table instead "
        "of running anything",
    )
    sweep.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="stop after the shard's first N points and skip the shard "
        "manifest (testing aid: models a sweep killed mid-flight)",
    )

    sweep_report = sub.add_parser(
        "sweep-report", help="render progress/summary from a sweep run ledger"
    )
    sweep_report.add_argument(
        "ledger",
        nargs="?",
        default=None,
        help="ledger JSONL path (default: newest file in the ledger directory)",
    )
    sweep_report.add_argument(
        "--format",
        choices=["progress", "md", "json", "both"],
        default="progress",
        help="progress view (default), markdown/JSON summary, or both files",
    )
    sweep_report.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write md/json summaries into DIR instead of printing",
    )
    sweep_report.add_argument(
        "--top", type=int, default=10, metavar="N", help="slowest work units to list"
    )
    sweep_report.add_argument(
        "--follow",
        action="store_true",
        help="poll the ledger and redraw the progress view until the sweep ends",
    )

    check = sub.add_parser(
        "check", help="correctness harness: differential + invariants + fuzzing"
    )
    check.add_argument(
        "--fuzz",
        type=int,
        metavar="N",
        default=None,
        help="run N seeded random trials instead of the workload catalogue",
    )
    check.add_argument("--seed", type=int, default=0, help="base fuzz seed (trial i uses seed+i)")
    check.add_argument(
        "--workloads",
        default="quick",
        help="'quick' (default), 'all', or comma-separated workload names "
        "or trace file paths (catalogue mode only)",
    )
    check.add_argument("--warmup", type=int, default=5_000, help="warmup instructions")
    check.add_argument(
        "--instructions", type=int, default=20_000, help="measured instructions"
    )
    check.add_argument(
        "--parallel-every",
        type=int,
        default=5,
        metavar="K",
        help="add the worker-process bit-identity property to every K-th "
        "fuzz trial (0 disables)",
    )
    check.add_argument(
        "--no-minimize",
        action="store_true",
        help="report the first fuzz failure without shrinking it",
    )
    check.add_argument(
        "--out",
        default="results/check",
        help="directory for failure reproducer JSON (default results/check)",
    )
    check.add_argument(
        "--replay",
        metavar="FILE",
        default=None,
        help="re-run a failure reproducer JSON instead of fuzzing",
    )
    check.add_argument(
        "--batched",
        action="store_true",
        help="catalogue mode only: check the lockstep batch path "
        "(differential + batched-vs-scalar bit-identity) instead of the "
        "scalar + invariant path",
    )
    check.add_argument(
        "--sweep",
        metavar="SPEC",
        default=None,
        help="differential sweep-equivalence harness: run SPEC serially, in "
        "parallel, sharded 2- and 3-way, and interrupted-then-resumed; all "
        "five merged tables must be bit-identical with every point run at "
        "most once (docs/SWEEPS.md)",
    )

    kernel = sub.add_parser(
        "kernel", help="show cycle-kernel backend resolution; dump generated source"
    )
    kernel.add_argument(
        "--dump",
        action="store_true",
        help="print the schedule-generated interpreted kernel source",
    )
    kernel.add_argument(
        "--features",
        default="",
        metavar="F1,F2",
        help="feature flags for --dump (subset of telemetry,checker,"
        "prefetcher,profile; default: the uninstrumented kernel)",
    )

    cache = sub.add_parser("cache", help="manage the persistent result cache")
    cache.add_argument("action", choices=["info", "clear"])
    cache.add_argument(
        "--manifests",
        action="store_true",
        help="info only: list the provenance manifest of each cached result",
    )
    cache.add_argument(
        "--limit",
        type=int,
        default=20,
        metavar="N",
        help="manifest rows to show, newest first (default 20; 0 = all)",
    )

    return parser


def _params_from_args(args: argparse.Namespace) -> SimParams:
    """Build a :class:`SimParams` bundle from parsed CLI flags.

    Component names are passed through as strings; the frozen
    dataclasses coerce built-in names to their enums and leave custom
    registered names for the build layer to resolve.
    """
    params = SimParams(
        warmup_instructions=args.warmup,
        sim_instructions=args.instructions,
        prefetcher=args.prefetcher,
        kernel=getattr(args, "kernel", "auto"),
    )
    params = params.with_frontend(
        ftq_entries=args.ftq,
        pfc_enabled=not args.no_pfc,
        history_policy=args.history,
        predict_width=args.predict_width,
        max_taken_per_cycle=args.max_taken,
    )
    params = params.with_branch(
        btb_entries=args.btb,
        btb_latency=args.btb_latency,
        direction_kind=args.direction,
        tage_storage_kib=args.tage_kib,
        perfect_btb=args.perfect_btb,
        perfect_direction=args.perfect_direction,
    )
    return params


def _resolve_workload_names(raw: str) -> list[str] | None:
    """Resolve a comma-separated ``--workloads`` value to registry names.

    Entries may be catalogue names, registered trace names or trace
    file paths (auto-registered).  Logs and returns ``None`` when any
    entry is unknown, so callers can exit 2.
    """
    from repro.trace.source import resolve_workload

    names: list[str] = []
    unknown: list[str] = []
    for entry in [n.strip() for n in raw.split(",") if n.strip()]:
        try:
            names.append(resolve_workload(entry).name)
        except KeyError:
            unknown.append(entry)
    if unknown:
        log.error("unknown workloads: %s", ", ".join(unknown))
        return None
    return names


def _run_list_flags(args: argparse.Namespace) -> int | None:
    """Handle ``repro run --list-*`` discovery flags (one name per line).

    Returns an exit code when a list flag was given, ``None`` otherwise.
    """
    if getattr(args, "list_workloads", False):
        from repro.trace.source import registered_workloads

        for wl in [*default_workloads(), *registered_workloads()]:
            print(f"{wl.name:14s} {wl.source_kind:10s} {wl.category}")
        return 0
    if getattr(args, "list_prefetchers", False):
        for name in ["none", "perfect", *prefetcher_names()]:
            print(name)
        return 0
    if getattr(args, "list_predictors", False):
        for name in direction_predictors.names():
            print(name)
        return 0
    return None


def cmd_run(args: argparse.Namespace) -> int:
    """Simulate one (workload, configuration) pair and print metrics."""
    listed = _run_list_flags(args)
    if listed is not None:
        return listed
    log.debug("simulating %s (%d+%d instructions)", args.workload, args.warmup, args.instructions)
    result = simulate(args.workload, _params_from_args(args))
    print(result.summary())
    exposure = result.miss_exposure()
    print(
        f"misses: covered={exposure['covered']} "
        f"partial={exposure['partially_exposed']} full={exposure['fully_exposed']}"
    )
    if args.stats:
        for name in result.stats.names():
            print(f"  {name} = {result.stats.get(name)}")
    if args.stats_json:
        path = _write_stats_json(result, args.stats_json)
        print(f"wrote {path}")
    return 0


def _write_stats_json(result, output: str) -> Path:
    """Dump a run's full raw counter set (sorted) as JSON.

    Besides the counters, the payload records which code produced them
    (``schema`` = :data:`repro.experiments.cache.SIM_SCHEMA_VERSION`)
    and the *resolved* run modes -- the ``run`` path resolves
    ``warmup_mode="auto"`` to cycle-accurate warmup and always runs the
    scalar kernel -- so a stats dump is comparable across PRs without
    guessing which defaults were in force.
    """
    from repro.core.typed import kernel_backend_for_params, resolve_kernel_mode
    from repro.experiments.cache import SIM_SCHEMA_VERSION

    path = Path(output)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    params = result.params
    warmup_mode = params.warmup_mode
    kernel = resolve_kernel_mode(params.kernel)
    payload = {
        "schema": SIM_SCHEMA_VERSION,
        "workload": result.workload,
        "label": result.label,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "modes": {
            "warmup_mode": "cycle" if warmup_mode == "auto" else warmup_mode,
            "check_invariants": params.check_invariants,
            "kernel": kernel,
            "kernel_backend": kernel_backend_for_params(params.replace(kernel=kernel)),
            "batch": "scalar",
        },
        "counters": {name: result.stats.get(name) for name in result.stats.names()},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def cmd_trace(args: argparse.Namespace) -> int:
    """Simulate one point with telemetry on; write JSONL + trace report."""
    from repro.common.telemetry import Telemetry, TelemetryConfig

    telemetry = Telemetry(
        TelemetryConfig(interval_stride=args.stride, ring_capacity=args.events)
    )
    log.debug("tracing %s (stride=%d, ring=%d)", args.workload, args.stride, args.events)
    result = simulate(args.workload, _params_from_args(args), telemetry=telemetry)
    outdir = Path(args.out)
    outdir.mkdir(parents=True, exist_ok=True)
    base = args.workload
    paths = [
        telemetry.write_events_jsonl(outdir / f"{base}.events.jsonl"),
        telemetry.write_timeseries_jsonl(outdir / f"{base}.timeseries.jsonl"),
    ]
    summary = telemetry.summary(result)
    if args.format in ("json", "both"):
        path = outdir / f"{base}.trace.json"
        path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
        paths.append(path)
    if args.format in ("md", "both"):
        path = outdir / f"{base}.trace.md"
        path.write_text(render_trace_report(summary))
        paths.append(path)

    print(result.summary())
    accounting = summary["cycle_accounting"]
    fractions = summary["cycle_accounting_fraction"]
    print(
        render_table(
            f"Cycle accounting: {result.workload} "
            f"({sum(accounting.values())} of {result.cycles} cycles)",
            ["bucket", "cycles", "share"],
            [
                (name, count, f"{100.0 * fractions[name]:.1f}%")
                for name, count in accounting.items()
            ],
        )
    )
    prefetch = summary["prefetch"]
    if prefetch["issued"]:
        print(
            f"prefetch: issued={prefetch['issued']} timely={prefetch['timely']} "
            f"late={prefetch['late']} evicted={prefetch['unused_evicted']} "
            f"accuracy={100.0 * prefetch['accuracy']:.1f}% "
            f"coverage={100.0 * prefetch['coverage']:.1f}% "
            f"timeliness={100.0 * prefetch['timeliness']:.1f}%"
        )
    for path in paths:
        print(f"wrote {path}")
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    """List workloads, prefetchers and experiments."""
    from repro.trace.source import registered_workloads

    print("workloads:")
    for wl in [*default_workloads(), *registered_workloads()]:
        print(f"  {wl.name:14s} {wl.source_kind:10s} ({wl.category})")
    print("prefetchers: none perfect " + " ".join(prefetcher_names()))
    print("experiments: " + " ".join(ALL_EXPERIMENTS))
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    """The ``repro workload info NAME`` detail view.

    Resolves the workload (catalogue name, registered trace, or trace
    file path), prints its source provenance, then materialises a
    window and measures static footprint and dynamic branch mix from
    the committed stream.
    """
    from repro.isa.instructions import BranchKind
    from repro.trace.source import resolve_workload
    from repro.trace.workloads import make_trace

    try:
        source = resolve_workload(args.name)
    except KeyError as exc:
        log.error("%s", exc.args[0])
        return 2
    print(f"workload: {source.name}")
    print(f"category: {source.category}")
    print(f"source:   {source.source_kind}")
    _program, stream = make_trace(source, args.instructions)
    for key, value in sorted(source.info().items()):
        print(f"  {key} = {value}")

    addrs: set[int] = set()
    kind_counts: dict[BranchKind, int] = {}
    taken_counts: dict[BranchKind, int] = {}
    for seg in stream.segments:
        addrs.update(range(seg.start, seg.limit, 4))
        for _addr, kind, taken, _target in seg.branches:
            kind_counts[kind] = kind_counts.get(kind, 0) + 1
            if taken:
                taken_counts[kind] = taken_counts.get(kind, 0) + 1
    lines = {addr >> 6 for addr in addrs}
    total = stream.total_instructions
    print(f"window:   {total} committed instructions (requested {args.instructions} + slack)")
    print(
        f"footprint: {len(addrs)} static instructions "
        f"({4 * len(addrs) / 1024:.1f} KiB), {len(lines)} x 64B lines "
        f"({64 * len(lines) / 1024:.1f} KiB)"
    )
    print(
        f"branches: {stream.total_branches} "
        f"({stream.total_taken} taken, "
        f"{stream.taken_per_kilo:.1f} taken/kilo-instruction)"
    )
    for kind in sorted(kind_counts, key=lambda k: k.value):
        count = kind_counts[kind]
        share = 100.0 * count / max(1, stream.total_branches)
        print(
            f"  {kind.name:14s} {count:8d} ({share:5.1f}%, "
            f"{taken_counts.get(kind, 0)} taken)"
        )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Regenerate the requested paper tables/figures."""
    names = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        log.error("unknown experiments: %s", ", ".join(unknown))
        return 2
    for name in names:
        data = ALL_EXPERIMENTS[name]()
        print(render_table(data["title"], data["headers"], data["rows"]))
        if getattr(args, "plot", False):
            from repro.experiments.viz import chart_for_experiment

            chart = chart_for_experiment(data)
            if chart:
                print()
                print(chart)
        print()
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Measure cycle-loop throughput and write BENCH_core.json."""
    from repro.experiments.configs import default_params

    if args.trend:
        return _bench_trend(args)
    if args.workloads == "quick":
        workloads = None  # bench default: the quick set
    elif args.workloads == "all":
        workloads = [w.name for w in default_workloads()]
    else:
        workloads = _resolve_workload_names(args.workloads)
        if workloads is None:
            return 2
    params = default_params()
    if args.warmup is not None:
        params = params.replace(warmup_instructions=args.warmup)
    if args.instructions is not None:
        params = params.replace(sim_instructions=args.instructions)
    from repro.experiments.bench import DEFAULT_BENCH_BATCH_WIDTH, append_history

    payload = run_bench(
        workloads=workloads,
        params=params,
        repeats=args.repeats,
        fast_warmup=args.fast_warmup,
        batched=args.batched,
        batch_width=args.batch_width or DEFAULT_BENCH_BATCH_WIDTH,
        kernel=args.kernel,
    )
    path = write_bench(payload, args.output or _BENCH_OUTPUT)
    for name, row in payload["workloads"].items():
        print(
            f"{name:14s} {row['instructions_per_second']:>12,.0f} instrs/sec "
            f"({row['wall_seconds']:.2f}s, IPC={row['ipc']:.2f})"
        )
    agg = payload["aggregate"]
    mode = payload["config"]["mode"]
    backend = payload["config"].get("kernel_backend", "interp")
    print(
        f"{'GEOMEAN':14s} {agg['geomean_instructions_per_second']:>12,.0f} "
        f"instrs/sec ({mode}) kernel={backend}"
    )
    print(f"{'TOTAL':14s} {agg['instructions_per_second']:>12,.0f} instrs/sec")
    print(f"wrote {path}")
    if not args.no_history:
        print(f"appended to {append_history(payload)}")
    if args.baseline:
        return _bench_compare(payload, args.baseline)
    return 0


def _bench_trend(args: argparse.Namespace) -> int:
    """Print the per-machine trend table from BENCH_history.jsonl.

    Sparse or absent history is not an error -- the trail grows one
    line per benched PR -- so this always exits 0 unless the file path
    was given explicitly and is unreadable garbage (still 0: trend is
    a reporting view, never a gate).
    """
    from repro.experiments.bench import HISTORY_FILE, load_history, trend_report

    history_path = args.history or HISTORY_FILE
    records = load_history(history_path)
    if not records:
        print(f"no benchmark history in {history_path}")
        return 0
    trend = trend_report(records, last=max(1, args.last))
    for machine, group in sorted(trend.items()):
        rows = []
        for row in group["rows"]:
            rate = row["geomean_instructions_per_second"]
            delta = row["delta_vs_prev"]
            rows.append(
                (
                    row["timestamp"] or "?",
                    f"{rate:,.0f}" if rate else "n/a",
                    f"{100.0 * delta:+.1f}%" if delta is not None else "",
                )
            )
        print(
            render_table(
                f"Bench trend: {machine} "
                f"(last {group['window']} of {group['entries']} entries)",
                ["timestamp", "geomean instrs/sec", "vs prev"],
                rows,
            )
        )
        window_delta = group["geomean_delta_window"]
        if window_delta is not None and group["window"] > 1:
            print(f"  geomean over window: {100.0 * window_delta:+.1f}%")
            drifted = [
                (name, d)
                for name, d in group["workload_delta_window"].items()
                if d is not None
            ]
            if drifted:
                shown = " ".join(f"{n}={100.0 * d:+.1f}%" for n, d in drifted)
                print(f"  per-workload over window: {shown}")
        print()
    return 0


def _bench_compare(payload: dict, baseline_path: str) -> int:
    """Print the --baseline comparison; non-zero exit on regression.

    A typed-kernel run is never compared against an interp baseline
    silently: when the two payloads ran different kernel backends the
    deltas are still printed (labelled), but the regression gate is
    skipped with a loud warning -- a backend switch is a deliberate
    change, not a regression, and gating across it would either mask
    real slowdowns or fail every run after the switch.
    """
    from repro.experiments.bench import compare_bench

    try:
        baseline = json.loads(Path(baseline_path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        log.error("cannot read baseline %s: %s", baseline_path, exc)
        return 2
    cmp = compare_bench(payload, baseline)
    backends = cmp["kernel_backend"]
    print(
        f"vs baseline {baseline_path} "
        f"(kernel: {backends['current']} vs {backends['baseline']}):"
    )
    for name, delta in cmp["workloads"].items():
        shown = f"{100.0 * delta:+.1f}%" if delta is not None else "n/a"
        print(f"  {name:14s} {shown}")
    agg = cmp["aggregate"]
    shown = f"{100.0 * agg:+.1f}%" if agg is not None else "n/a"
    print(f"  {'GEOMEAN':14s} {shown}")
    if cmp["backend_mismatch"]:
        log.warning(
            "comparison crosses kernel backends (%s vs %s) -- "
            "regression gate skipped; re-bench the baseline with the "
            "current backend for a gated comparison",
            backends["current"],
            backends["baseline"],
        )
        return 0
    if cmp["regressed"]:
        log.error(
            "throughput regressed more than %.0f%% vs baseline on: %s",
            100.0 * cmp["threshold"],
            ", ".join(cmp["regressed_workloads"]),
        )
        return 1
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Run the correctness harness; exit 0 clean, 1 on any violation."""
    if args.sweep is not None:
        return _check_sweep(args.sweep)
    if args.replay is not None:
        return _check_replay(args.replay)
    if args.fuzz is not None:
        return _check_fuzz(args)
    return _check_catalogue(args)


def _check_sweep(spec_path: str) -> int:
    """Differential sweep-equivalence harness on one spec file."""
    from repro.check.sweepdiff import check_sweep_equivalence
    from repro.experiments.spec import SweepSpecError, expand, load_spec

    try:
        spec = load_spec(spec_path)
        expand(spec)  # malformed specs exit 2 before any strategy runs
    except (OSError, SweepSpecError) as exc:
        log.error("%s", exc)
        return 2
    print(f"sweep-equivalence: {spec.name} ({spec_path})")
    report = check_sweep_equivalence(spec, log=print)
    for strategy in report.strategies:
        status = "ok" if not strategy.problems else "FAIL"
        print(f"  {strategy.name:10s} {status}")
    if report.ok:
        print(
            f"sweep-equivalence: {report.n_points} point(s) bit-identical "
            f"across {len(report.strategies)} strategies, no point run twice"
        )
        return 0
    for problem in report.all_problems():
        print(f"  {problem}")
    log.error("sweep-equivalence FAILED for %s", spec.name)
    return 1


def _check_catalogue(args: argparse.Namespace) -> int:
    """Differential + invariant check of catalogue workloads.

    ``--batched`` swaps each workload's check onto the lockstep batch
    path: differential oracle agreement for every batch member plus
    batched-vs-scalar bit-identity, with the (scalar-only) per-cycle
    invariant layer replaced by that identity check.
    """
    from repro.check import (
        DifferentialDivergence,
        check_workload,
        check_workload_batched,
    )
    from repro.check.invariants import InvariantViolation
    from repro.experiments.configs import QUICK_WORKLOADS, default_params

    if args.workloads == "quick":
        names = list(QUICK_WORKLOADS)
    elif args.workloads == "all":
        names = [w.name for w in default_workloads()]
    else:
        names = _resolve_workload_names(args.workloads)
        if names is None:
            return 2
    params = default_params().replace(
        warmup_instructions=args.warmup, sim_instructions=args.instructions
    )
    check = check_workload_batched if args.batched else check_workload
    mode = " (batched)" if args.batched else ""
    failures = 0
    for name in names:
        try:
            report = check(name, params)
        except (DifferentialDivergence, InvariantViolation) as exc:
            failures += 1
            print(f"{name:14s} FAIL{mode}\n{exc}")
            continue
        print(
            f"{name:14s} ok{mode}  ({report.branches_checked} branches, "
            f"{report.committed_instructions} instructions checked)"
        )
    if failures:
        log.error("%d of %d workloads failed the differential check", failures, len(names))
        return 1
    print(f"all {len(names)} workload(s) clean{mode}")
    return 0


def _check_fuzz(args: argparse.Namespace) -> int:
    """Seeded random fuzzing with reproducer dump on failure."""
    from repro.check import fuzz, write_reproducer

    if args.fuzz <= 0:
        log.error("--fuzz must be positive, got %d", args.fuzz)
        return 2
    report = fuzz(
        args.fuzz,
        seed=args.seed,
        parallel_every=args.parallel_every,
        log=print,
        do_minimize=not args.no_minimize,
    )
    if report.ok:
        print(f"fuzz: {report.trials_run} trial(s) clean (seeds {args.seed}.."
              f"{args.seed + args.fuzz - 1})")
        return 0
    failure = report.failure
    path = write_reproducer(
        Path(args.out) / f"failure-{failure.trial.seed}.json", failure.to_dict()
    )
    print(f"fuzz: FAIL at trial {report.trials_run} (seed {failure.trial.seed}, "
          f"property {failure.prop}, {report.minimize_attempts} shrink attempts)")
    print(failure.message)
    print(f"reproducer written to {path}")
    print(f"replay with: python -m repro check --replay {path}")
    return 1


def _check_replay(path: str) -> int:
    """Re-run a saved reproducer; exit 0 when it no longer fails."""
    from repro.check import load_reproducer, replay

    try:
        record = load_reproducer(path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        log.error("cannot load reproducer %s: %s", path, exc)
        return 2
    print(f"replaying seed {record['seed']} (original property: {record['property']})")
    failure = replay(record)
    if failure is None:
        print("replay: clean (failure no longer reproduces)")
        return 0
    print(f"replay: FAIL (property {failure.prop})")
    print(failure.message)
    return 1


def cmd_profile(args: argparse.Namespace) -> int:
    """Simulate one point with the stage profiler; print self-time."""
    from repro.core.prof import StageProfiler

    profiler = StageProfiler()
    log.debug(
        "profiling %s (%d+%d instructions)", args.workload, args.warmup, args.instructions
    )
    result = simulate(args.workload, _params_from_args(args), profiler=profiler)
    print(result.summary())
    report = profiler.report()
    print(
        render_table(
            f"Stage self-time: {result.workload} "
            f"({report['cycles']:,} cycles, {report['total_self_ns'] / 1e6:.1f} ms "
            f"in stages, {report['cycles_per_sec']:,.0f} cycles/sec)",
            ["stage", "kind", "self (ms)", "share", "ns/cycle", "cycles/sec alone"],
            [
                (
                    row["stage"],
                    row["kind"],
                    f"{row['self_ns'] / 1e6:.2f}",
                    f"{100.0 * row['share']:.1f}%",
                    f"{row['ns_per_cycle']:.0f}",
                    f"{row['cycles_per_sec']:,.0f}",
                )
                for row in report["stages"]
            ],
        )
    )
    if args.json:
        path = Path(args.json)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "workload": result.workload,
            "label": result.label,
            "instructions": result.instructions,
            "ipc": result.ipc,
            **report,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run (or merge) one shard of a declarative sweep spec."""
    from repro.experiments.spec import (
        SweepSpecError,
        expand,
        load_spec,
        parse_shard,
        shard_points,
    )
    from repro.experiments.sweep import default_sweep_dir, merge_sweep, run_sweep

    try:
        spec = load_spec(args.spec)
        shard = parse_shard(args.shard)
        points = expand(spec)
    except (OSError, SweepSpecError) as exc:
        log.error("%s", exc)
        return 2
    out_dir = Path(args.out) if args.out else default_sweep_dir(spec)
    k, total = shard

    if args.merge:
        try:
            written = merge_sweep(spec, points, out_dir)
        except SweepSpecError as exc:
            log.error("%s", exc)
            return 1
        for path in written:
            print(f"wrote {path}")
        return 0

    if args.dry_run:
        owned = shard_points(points, k, total)
        print(
            f"sweep {spec.name}: {len(points)} point(s) "
            f"({len(spec.workloads)} workload(s) x "
            f"{len(points) // max(1, len(spec.workloads))} config(s)); "
            f"shard {k}/{total} owns {len(owned)}"
        )
        for point in owned:
            print(f"  {point.point_id[:16]}  {point.workload:14s} {point.label}")
        return 0

    outcome = run_sweep(
        spec,
        points,
        shard=shard,
        jobs=args.jobs,
        out_dir=out_dir,
        resume=args.resume,
        limit=args.limit,
    )
    print(
        f"sweep {spec.name} shard {k}/{total}: {outcome.points_shard} of "
        f"{outcome.points_total} point(s), {outcome.executed} simulated, "
        f"{outcome.cache_hits} from cache"
    )
    if outcome.interrupted:
        print("interrupted before the shard completed; re-run with --resume")
        return 1
    if outcome.shard_file is not None:
        print(f"wrote {outcome.shard_file}")
    for path in outcome.merged_files:
        print(f"wrote {path}")
    if not outcome.merged_files and total > 1:
        print("merge deferred: run the sibling shards, then repro sweep ... --merge")
    return 0


def cmd_sweep_report(args: argparse.Namespace) -> int:
    """Render progress/summary views from a sweep run ledger."""
    import time as _time

    from repro.common.ledger import (
        latest_ledger,
        read_ledger,
        render_progress,
        render_summary_md,
        summarize_ledger,
    )

    path = Path(args.ledger) if args.ledger else latest_ledger()
    if path is None or not Path(path).is_file():
        log.error(
            "no ledger file %s; run a sweep with REPRO_LEDGER=1 first",
            f"at {path}" if path else "found",
        )
        return 2
    summary = summarize_ledger(read_ledger(path), top=max(0, args.top))
    if args.follow and not summary["complete"]:
        while not summary["complete"]:
            print(render_progress(summary))
            print()
            _time.sleep(0.5)
            summary = summarize_ledger(read_ledger(path), top=max(0, args.top))
    if args.format == "progress":
        print(render_progress(summary))
        if summary["invalid_sequences"]:
            log.error(
                "%d job(s) have invalid lifecycles", len(summary["invalid_sequences"])
            )
            return 1
        return 0
    outputs: list[tuple[str, str]] = []
    if args.format in ("md", "both"):
        outputs.append(("md", render_summary_md(summary)))
    if args.format in ("json", "both"):
        outputs.append(("json", json.dumps(summary, indent=2, sort_keys=True) + "\n"))
    if args.out:
        outdir = Path(args.out)
        outdir.mkdir(parents=True, exist_ok=True)
        base = summary.get("sweep") or Path(path).stem
        for suffix, text in outputs:
            target = outdir / f"{base}.sweep.{suffix}"
            target.write_text(text)
            print(f"wrote {target}")
    else:
        for _, text in outputs:
            print(text, end="")
    return 0


def _print_manifests(cache: ResultCache, limit: int) -> None:
    """The ``repro cache info --manifests`` provenance listing."""
    manifests = cache.manifests()
    if not manifests:
        print("no provenance manifests")
        return
    shown = manifests if limit <= 0 else manifests[:limit]
    print(
        render_table(
            f"Provenance manifests ({len(shown)} of {len(manifests)}, newest first)",
            ["key", "workload", "config", "warmup", "ipc", "wall (s)", "created (UTC)"],
            [
                (
                    (m.get("key") or "?")[:12],
                    m.get("workload", "?"),
                    m.get("label", "?"),
                    m.get("warmup_mode", "?"),
                    f"{m['ipc']:.3f}" if isinstance(m.get("ipc"), float) else "n/a",
                    (
                        f"{m['wall_seconds']:.2f}"
                        if isinstance(m.get("wall_seconds"), (int, float))
                        else "n/a"
                    ),
                    (m.get("created_utc") or "?").replace("+00:00", ""),
                )
                for m in shown
            ],
        )
    )


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or clear the persistent result cache."""
    cache = ResultCache()
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.directory}")
        return 0
    info = cache.info()
    print(f"cache dir: {info['directory']}")
    print(f"schema:    v{info['schema']}")
    print(f"entries:   {info['entries']} ({info['total_bytes']:,} bytes, "
          f"{info['manifests']} manifest(s))")
    if info["trace_files"]:
        print(f"traces:    {info['trace_files']} decode artifact(s) "
              f"({info['trace_bytes']:,} bytes)")
    session = cache_stats().as_dict()
    if session:
        print(f"this session (hit rate {100.0 * info['session_hit_rate']:.0f}%):")
        for name in sorted(session):
            print(f"  {name} = {session[name]}")
    if getattr(args, "manifests", False):
        _print_manifests(cache, args.limit)
    return 0


def cmd_kernel(args: argparse.Namespace) -> int:
    """Show cycle-kernel backend resolution; optionally dump source.

    The resolution summary answers "which kernel would a default run
    use on this host?" -- the ``auto`` mode resolved through
    ``REPRO_KERNEL``, the concrete typed backend (compiled ``.so``
    shadowing :mod:`repro.core.typedkern` vs its pure-Python form),
    and the module file that answer came from.  ``--dump`` prints the
    schedule-generated *interpreted* kernel source for a feature set;
    the typed kernel is hand-flattened (not generated), so its source
    is the :mod:`repro.core.typedkern` file itself.
    """
    from repro.core import typedkern
    from repro.core.schedule import FEATURES, kernel_source
    from repro.core.typed import backend_name, resolve_kernel_mode

    resolved = resolve_kernel_mode("auto")
    backend = backend_name() if resolved != "interp" else "interp"
    env = os.environ.get("REPRO_KERNEL", "")
    print(f"auto resolves to: {resolved} (REPRO_KERNEL={env!r})")
    print(f"typed backend:    {backend_name()}")
    print(f"typedkern module: {typedkern.__file__}")
    print(
        f"default run uses: {backend} "
        "(feature-empty configs only; featured configs fall back to interp)"
    )
    if args.dump:
        features = frozenset(
            f.strip() for f in args.features.split(",") if f.strip()
        )
        unknown = features.difference(FEATURES)
        if unknown:
            log.error(
                "unknown feature(s) %s; known: %s",
                ", ".join(sorted(unknown)),
                ", ".join(FEATURES),
            )
            return 2
        shown = ", ".join(sorted(features)) if features else "none"
        print(f"\n# interpreted kernel source (features: {shown})")
        print(kernel_source(features))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(args.log_level)
    handlers = {
        "run": cmd_run,
        "list": cmd_list,
        "workload": cmd_workload,
        "trace": cmd_trace,
        "report": cmd_report,
        "bench": cmd_bench,
        "profile": cmd_profile,
        "check": cmd_check,
        "cache": cmd_cache,
        "kernel": cmd_kernel,
        "sweep": cmd_sweep,
        "sweep-report": cmd_sweep_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
