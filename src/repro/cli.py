"""Command-line interface.

Five subcommands::

    python -m repro run  --workload srv_web --ftq 24 --btb 8192 ...
    python -m repro list                  # workloads and prefetchers
    python -m repro report fig7 fig14     # regenerate paper experiments
    python -m repro bench                 # cycle-loop throughput -> BENCH_core.json
    python -m repro cache info|clear      # persistent result cache

``run`` simulates one (workload, configuration) pair and prints the
metric summary; every microarchitectural knob the evaluation sweeps is
exposed as a flag.  ``report`` honours ``REPRO_JOBS`` (parallel sweep
workers) and the persistent result cache (``REPRO_CACHE_DIR``); see
docs/PERFORMANCE.md.
"""

from __future__ import annotations

import argparse
import sys

from repro.common.params import DirectionPredictorKind, HistoryPolicy, SimParams
from repro.core.simulator import simulate
from repro.experiments.analysis import ALL_ABLATIONS
from repro.experiments.figures import ALL_EXPERIMENTS as _FIGURES
from repro.experiments.report import render_table

ALL_EXPERIMENTS = {**_FIGURES, **ALL_ABLATIONS}
from repro.experiments.bench import DEFAULT_OUTPUT as _BENCH_OUTPUT
from repro.experiments.bench import run_bench, write_bench
from repro.experiments.cache import ResultCache, cache_stats
from repro.prefetch import prefetcher_names
from repro.trace.workloads import default_workloads


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FDP frontend simulator (ISPASS 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one workload/configuration")
    run.add_argument("--workload", default="srv_web")
    run.add_argument("--warmup", type=int, default=25_000)
    run.add_argument("--instructions", type=int, default=60_000)
    run.add_argument("--ftq", type=int, default=24, help="FTQ entries (2 disables FDP)")
    run.add_argument("--no-pfc", action="store_true", help="disable post-fetch correction")
    run.add_argument("--btb", type=int, default=8192, help="BTB entries")
    run.add_argument("--btb-latency", type=int, default=2)
    run.add_argument(
        "--history",
        choices=[p.value for p in HistoryPolicy],
        default=HistoryPolicy.THR.value,
        help="history management policy (Table V)",
    )
    run.add_argument(
        "--direction",
        choices=[k.value for k in DirectionPredictorKind],
        default=DirectionPredictorKind.TAGE.value,
    )
    run.add_argument("--tage-kib", type=int, default=18, choices=[9, 18, 36])
    run.add_argument("--prefetcher", default="none",
                     help=f"none|perfect|{'|'.join(prefetcher_names())}")
    run.add_argument("--predict-width", type=int, default=12)
    run.add_argument("--max-taken", type=int, default=1)
    run.add_argument("--perfect-btb", action="store_true")
    run.add_argument("--perfect-direction", action="store_true")
    run.add_argument("--stats", action="store_true", help="dump all raw counters")

    sub.add_parser("list", help="list workloads and prefetchers")

    report = sub.add_parser("report", help="regenerate paper tables/figures")
    report.add_argument("experiments", nargs="*", help="subset (default: all)")
    report.add_argument("--plot", action="store_true", help="add ASCII bar charts")

    bench = sub.add_parser("bench", help="measure simulated instructions/sec")
    bench.add_argument(
        "--workloads",
        default="quick",
        help="'quick' (default), 'all', or comma-separated catalogue names",
    )
    bench.add_argument("--warmup", type=int, default=None, help="warmup instructions")
    bench.add_argument("--instructions", type=int, default=None, help="measured instructions")
    bench.add_argument("--repeats", type=int, default=1, help="best-of-N repeats per workload")
    bench.add_argument("--output", default=None, help=f"JSON path (default {_BENCH_OUTPUT})")

    cache = sub.add_parser("cache", help="manage the persistent result cache")
    cache.add_argument("action", choices=["info", "clear"])

    return parser


def _params_from_args(args: argparse.Namespace) -> SimParams:
    params = SimParams(
        warmup_instructions=args.warmup,
        sim_instructions=args.instructions,
        prefetcher=args.prefetcher,
    )
    params = params.with_frontend(
        ftq_entries=args.ftq,
        pfc_enabled=not args.no_pfc,
        history_policy=HistoryPolicy(args.history),
        predict_width=args.predict_width,
        max_taken_per_cycle=args.max_taken,
    )
    params = params.with_branch(
        btb_entries=args.btb,
        btb_latency=args.btb_latency,
        direction_kind=DirectionPredictorKind(args.direction),
        tage_storage_kib=args.tage_kib,
        perfect_btb=args.perfect_btb,
        perfect_direction=args.perfect_direction,
    )
    return params


def cmd_run(args: argparse.Namespace) -> int:
    """Simulate one (workload, configuration) pair and print metrics."""
    result = simulate(args.workload, _params_from_args(args))
    print(result.summary())
    exposure = result.miss_exposure()
    print(
        f"misses: covered={exposure['covered']} "
        f"partial={exposure['partially_exposed']} full={exposure['fully_exposed']}"
    )
    if args.stats:
        for name in result.stats.names():
            print(f"  {name} = {result.stats.get(name)}")
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    """List workloads, prefetchers and experiments."""
    print("workloads:")
    for wl in default_workloads():
        print(f"  {wl.name:14s} ({wl.category})")
    print("prefetchers: none perfect " + " ".join(prefetcher_names()))
    print("experiments: " + " ".join(ALL_EXPERIMENTS))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Regenerate the requested paper tables/figures."""
    names = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    for name in names:
        data = ALL_EXPERIMENTS[name]()
        print(render_table(data["title"], data["headers"], data["rows"]))
        if getattr(args, "plot", False):
            from repro.experiments.viz import chart_for_experiment

            chart = chart_for_experiment(data)
            if chart:
                print()
                print(chart)
        print()
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Measure cycle-loop throughput and write BENCH_core.json."""
    from repro.experiments.configs import default_params, evaluation_workloads

    if args.workloads == "quick":
        workloads = None  # bench default: the quick set
    elif args.workloads == "all":
        workloads = [w.name for w in default_workloads()]
    else:
        workloads = [n.strip() for n in args.workloads.split(",") if n.strip()]
        known = {w.name for w in default_workloads()}
        unknown = [n for n in workloads if n not in known]
        if unknown:
            print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
            return 2
    params = default_params()
    if args.warmup is not None:
        params = params.replace(warmup_instructions=args.warmup)
    if args.instructions is not None:
        params = params.replace(sim_instructions=args.instructions)
    payload = run_bench(workloads=workloads, params=params, repeats=args.repeats)
    path = write_bench(payload, args.output or _BENCH_OUTPUT)
    for name, row in payload["workloads"].items():
        print(
            f"{name:14s} {row['instructions_per_second']:>12,.0f} instrs/sec "
            f"({row['wall_seconds']:.2f}s, IPC={row['ipc']:.2f})"
        )
    agg = payload["aggregate"]
    print(f"{'TOTAL':14s} {agg['instructions_per_second']:>12,.0f} instrs/sec")
    print(f"wrote {path}")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or clear the persistent result cache."""
    cache = ResultCache()
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.directory}")
        return 0
    info = cache.info()
    print(f"cache dir: {info['directory']}")
    print(f"schema:    v{info['schema']}")
    print(f"entries:   {info['entries']} ({info['total_bytes']:,} bytes)")
    session = cache_stats().as_dict()
    if session:
        print("this session:")
        for name in sorted(session):
            print(f"  {name} = {session[name]}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": cmd_run,
        "list": cmd_list,
        "report": cmd_report,
        "bench": cmd_bench,
        "cache": cmd_cache,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
