"""repro: reproduction of "Re-establishing Fetch-Directed Instruction
Prefetching: An Industry Perspective" (Ishii, Lee, Nathella, Sunwoo;
ISPASS 2021).

Public API quickstart::

    from repro import SimParams, simulate

    result = simulate("clt_browser", SimParams())
    print(result.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.common.params import (
    BranchPredictorParams,
    CoreParams,
    DirectionPredictorKind,
    FrontendParams,
    HistoryPolicy,
    MemoryParams,
    SimParams,
)
from repro.core.metrics import RunResult, ftq_storage_bytes
from repro.core.simulator import Simulator, simulate
from repro.trace.workloads import WorkloadSpec, default_workloads, make_trace, workload_by_name

__version__ = "1.0.0"

__all__ = [
    "BranchPredictorParams",
    "CoreParams",
    "DirectionPredictorKind",
    "FrontendParams",
    "HistoryPolicy",
    "MemoryParams",
    "SimParams",
    "RunResult",
    "ftq_storage_bytes",
    "Simulator",
    "simulate",
    "WorkloadSpec",
    "default_workloads",
    "make_trace",
    "workload_by_name",
    "__version__",
]
