"""FNL+MMA (Seznec, IPC-1): Footprint Next Line + Multiple Miss Ahead.

* **FNL** -- an aggressive next-line prefetcher gated by a learned
  *footprint*: per line, a small bitmask of which of the next few lines
  were historically used soon after it.  Only predicted-useful next
  lines are prefetched (this is the tag-probe filter footnote 3 of the
  paper refers to).
* **MMA** -- a temporal component: the global miss stream is recorded,
  and each miss is linked to the miss that occurred ``distance`` misses
  later, so that on a recurrence the prefetcher runs several misses
  ahead.
"""

from __future__ import annotations

from collections import OrderedDict, deque

from repro.prefetch.base import Prefetcher

_FOOTPRINT_SPAN = 4
_BYTES_PER_FNL_ENTRY = 2
_BYTES_PER_MMA_ENTRY = 8


class FNLMMAPrefetcher(Prefetcher):
    """Footprint Next Line + Multiple Miss Ahead."""

    name = "fnl_mma"

    def __init__(
        self,
        *args,
        fnl_entries: int = 8192,
        mma_entries: int = 8192,
        miss_distance: int = 3,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.fnl_entries = fnl_entries
        self.mma_entries = mma_entries
        self.miss_distance = miss_distance
        self._footprint: OrderedDict[int, int] = OrderedDict()
        self._mma: OrderedDict[int, int] = OrderedDict()
        self._recent_accesses: deque[int] = deque(maxlen=_FOOTPRINT_SPAN)
        self._recent_misses: deque[int] = deque(maxlen=miss_distance + 1)

    # ------------------------------------------------------------------
    def on_access(self, line: int, hit: bool, cycle: int) -> None:
        # FNL issue: prefetch the predicted-useful next lines.
        mask = self._footprint.get(line)
        if mask:
            self._footprint.move_to_end(line)
            for i in range(1, _FOOTPRINT_SPAN + 1):
                if mask & (1 << (i - 1)):
                    self.enqueue(line + i * self.line_bytes)

        # FNL train: if this access follows one of the previous few
        # lines, mark this line in that predecessor's footprint.
        for prev in self._recent_accesses:
            delta = (line - prev) // self.line_bytes
            if 1 <= delta <= _FOOTPRINT_SPAN:
                self._set_footprint_bit(prev, delta)
        if not self._recent_accesses or self._recent_accesses[-1] != line:
            self._recent_accesses.append(line)

        if not hit:
            # Aggressive next-line on a miss (the 'NL' in FNL) plus the
            # learned footprint issued above.
            self.enqueue(line + self.line_bytes)
            self._on_miss(line)

    def _set_footprint_bit(self, base_line: int, delta: int) -> None:
        mask = self._footprint.get(base_line, 0)
        if base_line not in self._footprint and len(self._footprint) >= self.fnl_entries:
            self._footprint.popitem(last=False)
        self._footprint[base_line] = mask | (1 << (delta - 1))
        self._footprint.move_to_end(base_line)

    # ------------------------------------------------------------------
    def _on_miss(self, line: int) -> None:
        # MMA issue: jump straight to the miss recorded N-ahead.
        ahead = self._mma.get(line)
        if ahead is not None:
            self._mma.move_to_end(line)
            self.enqueue(ahead)

        # MMA train: the miss 'distance' misses ago links to this one.
        self._recent_misses.append(line)
        if len(self._recent_misses) > self.miss_distance:
            trigger = self._recent_misses[0]
            if trigger != line:
                if trigger not in self._mma and len(self._mma) >= self.mma_entries:
                    self._mma.popitem(last=False)
                self._mma[trigger] = line
                self._mma.move_to_end(trigger)

    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        return 8 * (
            self.fnl_entries * _BYTES_PER_FNL_ENTRY + self.mma_entries * _BYTES_PER_MMA_ENTRY
        )
