"""RDIP: RAS-Directed Instruction Prefetching (Kolli et al., MICRO'13).

Discussed in the paper's related work (Section VII-A): program context
is captured as a hash of the return-address stack; I-cache misses are
recorded under the context in which they occur, and a recurrence of the
same context prefetches them.  D-JOLT (also implemented here) improves
on RDIP by replacing the stack hash with a FIFO of recent call sites;
having both makes the lineage measurable.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.common.bits import mix64
from repro.isa.instructions import BranchKind
from repro.prefetch.base import Prefetcher

_RAS_DEPTH = 4
_LINES_PER_ENTRY = 6
_BYTES_PER_ENTRY = 16


class RDIPPrefetcher(Prefetcher):
    """Signature = hash of the top of the call stack."""

    name = "rdip"

    def __init__(self, *args, table_entries: int = 4096, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.table_entries = table_entries
        self._stack: list[int] = []
        self._table: OrderedDict[int, list[int]] = OrderedDict()
        self._signature = 0

    # ------------------------------------------------------------------
    @property
    def signature(self) -> int:
        return self._signature

    def _recompute(self) -> None:
        sig = 0
        for i, addr in enumerate(self._stack[-_RAS_DEPTH:]):
            sig ^= mix64(addr + i)
        self._signature = sig & 0xFFFF_FFFF

    # ------------------------------------------------------------------
    def on_commit_branch(self, pc: int, kind: BranchKind, taken: bool, target: int) -> None:
        if not taken:
            return
        if kind.is_call:
            self._stack.append(pc)
            if len(self._stack) > 64:
                self._stack.pop(0)
        elif kind.is_return and self._stack:
            self._stack.pop()
        else:
            return
        self._recompute()
        # Context switch: prefetch the misses recorded for this context.
        lines = self._table.get(self._signature)
        if lines:
            self._table.move_to_end(self._signature)
            for line in lines:
                self.enqueue(line)

    def on_access(self, line: int, hit: bool, cycle: int) -> None:
        if hit:
            return
        entry = self._table.get(self._signature)
        if entry is None:
            if len(self._table) >= self.table_entries:
                self._table.popitem(last=False)
            self._table[self._signature] = [line]
            return
        self._table.move_to_end(self._signature)
        if line in entry:
            return
        if len(entry) >= _LINES_PER_ENTRY:
            entry.pop(0)
        entry.append(line)

    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        return 8 * self.table_entries * _BYTES_PER_ENTRY
