"""Divide-and-Conquer frontend prefetching (Ansari et al., ISCA'20).

Three cooperating predictors, evaluated in Section VI-E (Fig 10):

* **SN4L** -- selective next-4-line: of the four lines following an
  accessed line, prefetch only those a usefulness filter has seen pay
  off before.
* **Dis**  -- discontinuity prefetching: records jumps between
  consecutive I-cache *miss* lines in a DisTable; on an access that
  hits a recorded source, the discontinuous successor is prefetched.
* **BTB prefetching** -- on every I-cache fill, pre-decode the arriving
  line and install all PC-relative branches into the BTB
  *unconditionally*.  Register-indirect branches cannot be prefetched
  (their targets are not in the encoding), and blind insertion of
  never-taken branches pollutes large BTBs -- both effects the paper
  demonstrates.
"""

from __future__ import annotations

from collections import OrderedDict, deque

from repro.prefetch.base import Prefetcher

_SN4L_SPAN = 4
_USEFUL_MAX = 3


class SN4LDisPrefetcher(Prefetcher):
    """SN4L + discontinuity prefetching (BTB prefetching off)."""

    name = "sn4l_dis"

    def __init__(
        self,
        *args,
        useful_entries: int = 8192,
        dis_entries: int = 4096,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.useful_entries = useful_entries
        self.dis_entries = dis_entries
        self._useful: OrderedDict[int, int] = OrderedDict()
        self._dis: OrderedDict[int, int] = OrderedDict()
        self._recent_lines: deque[int] = deque(maxlen=8)
        self._prev_miss: int | None = None

    # ------------------------------------------------------------------
    def on_access(self, line: int, hit: bool, cycle: int) -> None:
        # SN4L issue: next four lines, gated by the usefulness filter.
        for i in range(1, _SN4L_SPAN + 1):
            cand = line + i * self.line_bytes
            if self._useful.get(cand, 0) > 0:
                self.enqueue(cand)

        # Dis issue: follow a recorded discontinuity from this line.
        dest = self._dis.get(line)
        if dest is not None:
            self._dis.move_to_end(line)
            self.enqueue(dest)

        if not hit:
            self._train_on_miss(line)

        if not self._recent_lines or self._recent_lines[-1] != line:
            self._recent_lines.append(line)

    def _train_on_miss(self, line: int) -> None:
        # SN4L train: the miss would have been covered by a next-4-line
        # prefetch from a recently accessed predecessor.
        for prev in self._recent_lines:
            delta = (line - prev) // self.line_bytes
            if 1 <= delta <= _SN4L_SPAN:
                self._bump_useful(line)
                break

        # Dis train: record the jump between consecutive miss lines when
        # it is not simply sequential.
        if self._prev_miss is not None and line != self._prev_miss + self.line_bytes:
            if self._prev_miss not in self._dis and len(self._dis) >= self.dis_entries:
                self._dis.popitem(last=False)
            self._dis[self._prev_miss] = line
            self._dis.move_to_end(self._prev_miss)
        self._prev_miss = line

    def _bump_useful(self, line: int) -> None:
        ctr = self._useful.get(line, 0)
        if line not in self._useful and len(self._useful) >= self.useful_entries:
            self._useful.popitem(last=False)
        self._useful[line] = min(_USEFUL_MAX, ctr + 1)
        self._useful.move_to_end(line)

    def storage_bits(self) -> int:
        return 2 * self.useful_entries + 8 * 8 * self.dis_entries


class SN4LDisBTBPrefetcher(SN4LDisPrefetcher):
    """SN4L + Dis + BTB prefetching (the full Divide-and-Conquer)."""

    name = "sn4l_dis_btb"

    def on_fill(self, line: int, cycle: int, was_prefetch: bool) -> None:
        """Pre-decode the arriving line; blindly install its branches."""
        addr = line
        end = line + self.line_bytes
        inserted = 0
        while addr < end:
            instr = self.program.instruction_at(addr)
            addr += 4
            if instr is None:
                continue
            if not instr.kind.is_pc_relative:
                continue  # register-indirect targets are not in the encoding
            self.btb.insert(instr.addr, instr.kind, instr.target)
            inserted += 1
        if inserted:
            self.stats.bump("btb_prefetch_inserts", inserted)
