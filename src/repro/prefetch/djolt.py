"""D-JOLT: distant jolt prefetcher (Nakamura et al., IPC-1).

Improves on RDIP by generating prefetches from a *FIFO of recent
function return addresses* rather than the RAS: the signature hashes
the last few call sites, and each I-cache miss is recorded under the
signature that was live a few calls *earlier*, so that when the same
call context recurs the misses are prefetched well in advance.

We keep D-JOLT's two-range structure: a short-range table keyed by the
current signature and a long-range table keyed by an older signature.
"""

from __future__ import annotations

from collections import OrderedDict, deque

from repro.common.bits import mix64
from repro.isa.instructions import BranchKind
from repro.prefetch.base import Prefetcher

_SIG_CALLS = 4
_LINES_PER_ENTRY = 6
_BYTES_PER_ENTRY = 16


class DJoltPrefetcher(Prefetcher):
    """Signature-driven temporal instruction prefetcher."""

    name = "djolt"

    def __init__(
        self,
        *args,
        table_entries: int = 4096,
        long_lag: int = 3,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.table_entries = table_entries
        self.long_lag = long_lag
        self._call_fifo: deque[int] = deque(maxlen=_SIG_CALLS)
        self._sig_history: deque[int] = deque(maxlen=long_lag + 1)
        self._sig_history.append(0)
        self._short: OrderedDict[int, list[int]] = OrderedDict()
        self._long: OrderedDict[int, list[int]] = OrderedDict()

    # ------------------------------------------------------------------
    @property
    def signature(self) -> int:
        return self._sig_history[-1]

    def _compute_signature(self) -> int:
        sig = 0
        for i, addr in enumerate(self._call_fifo):
            sig ^= mix64(addr + i * 0x9E3779B9)
        return sig & 0xFFFF_FFFF

    # ------------------------------------------------------------------
    def on_commit_branch(self, pc: int, kind: BranchKind, taken: bool, target: int) -> None:
        if not (taken and kind.is_call):
            return
        self._call_fifo.append(pc)
        sig = self._compute_signature()
        self._sig_history.append(sig)
        # A new context: jolt out the recorded miss lines.
        for table in (self._short, self._long):
            lines = table.get(sig)
            if lines:
                table.move_to_end(sig)
                for line in lines:
                    self.enqueue(line)

    def on_access(self, line: int, hit: bool, cycle: int) -> None:
        if hit:
            return
        # Short range: attribute to the live signature; long range: to
        # the signature several calls back, to run further ahead.
        self._record(self._short, self._sig_history[-1], line)
        self._record(self._long, self._sig_history[0], line)

    def _record(self, table: OrderedDict, sig: int, line: int) -> None:
        entry = table.get(sig)
        if entry is None:
            if len(table) >= self.table_entries:
                table.popitem(last=False)
            table[sig] = [line]
            return
        table.move_to_end(sig)
        if line in entry:
            return
        if len(entry) >= _LINES_PER_ENTRY:
            entry.pop(0)
        entry.append(line)

    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        return 8 * 2 * self.table_entries * _BYTES_PER_ENTRY
