"""Next-line prefetcher (NL1).

The simplest comparison point (Section V): on a demand I-cache miss,
prefetch the sequentially next line.  Covers straight-line code only;
discontinuous control flow defeats it, which is why it trails every
other mechanism in Fig 6a.
"""

from __future__ import annotations

from repro.prefetch.base import Prefetcher


class NextLinePrefetcher(Prefetcher):
    """NL1: prefetch line X+1 on a miss of line X."""

    name = "nl1"

    def on_access(self, line: int, hit: bool, cycle: int) -> None:
        if not hit:
            self.enqueue(line + self.line_bytes)
