"""Prefetcher interface.

Dedicated L1I prefetchers (the paper's comparison points, Section V)
observe three event streams and may issue line-fill requests:

* ``on_access``        -- every demand tag probe of the L1I (line, hit).
* ``on_fill``          -- every line installed into the L1I.
* ``on_commit_branch`` -- the committed branch stream (used by
  call-context prefetchers like D-JOLT).

Issued prefetches go through :meth:`enqueue`; a bounded number drain to
the memory hierarchy per cycle, where each one probes the I-cache tag
array first -- the redundant-probe energy cost Fig 9 quantifies.
"""

from __future__ import annotations

from collections import deque

from repro.branch.btb import BTB
from repro.common.params import SimParams
from repro.common.stats import StatSet
from repro.isa.instructions import BranchKind
from repro.memory.hierarchy import InstructionMemory
from repro.trace.cfg import Program

MAX_ISSUE_PER_CYCLE = 4


class Prefetcher:
    """Base class: subclasses override the ``on_*`` hooks."""

    name = "base"

    def __init__(
        self,
        params: SimParams,
        memory: InstructionMemory,
        btb: BTB,
        program: Program,
        stats: StatSet,
    ) -> None:
        self.params = params
        self.memory = memory
        self.btb = btb
        self.program = program
        self.stats = stats
        self.line_bytes = params.memory.line_bytes
        self._queue: deque[int] = deque()
        self._queued: set[int] = set()
        self.telemetry = None
        """Optional telemetry hub (set by Telemetry.attach on traced runs)."""
        self.peak_queue = 0
        """High-water mark of the issue queue (telemetry/introspection)."""

    # ------------------------------------------------------------------
    # Event hooks (no-ops by default)
    # ------------------------------------------------------------------
    def on_access(self, line: int, hit: bool, cycle: int) -> None:
        """A demand tag probe touched ``line``."""

    def on_fill(self, line: int, cycle: int, was_prefetch: bool) -> None:
        """``line`` was installed into the L1I."""

    def on_commit_branch(self, pc: int, kind: BranchKind, taken: bool, target: int) -> None:
        """A branch committed."""

    # ------------------------------------------------------------------
    # Issue path
    # ------------------------------------------------------------------
    def enqueue(self, addr: int) -> None:
        """Queue a prefetch for the line holding ``addr``."""
        line = self.memory.l1i.line_of(addr)
        if line in self._queued:
            return
        self._queue.append(line)
        self._queued.add(line)
        if len(self._queue) > self.peak_queue:
            self.peak_queue = len(self._queue)
        if self.telemetry is not None:
            self.telemetry.event("prefetch_enqueue", line=line, prefetcher=self.name)

    def reset_queue(self) -> None:
        """Drop queued (not yet issued) prefetches without issuing them.

        Used at the functional-warmup boundary: requests enqueued by
        warmup-window training must not drain into the measured window
        (enqueueing bumps no counters, so dropping them keeps the
        measured prefetch-usefulness partition exact).
        """
        self._queue.clear()
        self._queued.clear()

    def cycle(self, cycle: int) -> None:
        """Drain up to :data:`MAX_ISSUE_PER_CYCLE` queued prefetches."""
        budget = MAX_ISSUE_PER_CYCLE
        while budget > 0 and self._queue:
            line = self._queue.popleft()
            self._queued.discard(line)
            self.memory.prefetch_line(line, cycle)
            budget -= 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        """Approximate metadata budget of this prefetcher."""
        return 0

    @property
    def pending(self) -> int:
        return len(self._queue)
