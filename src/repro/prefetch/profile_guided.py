"""Profile-guided software instruction prefetching (AsmDB / I-SPY style).

Section VII-A of the paper discusses compiler/profile-driven software
prefetching (AsmDB, I-SPY) and criticises its usual evaluation against
frontends without FDP or realistic branch prediction.  This module lets
us re-run that comparison *with* a realistic frontend:

1. :func:`build_profile` performs the offline pass: it replays a
   training window of the oracle stream through a cache model, finds
   miss lines, and plants a prefetch hint ``distance`` committed
   instructions before each miss site (the compiler's code injection).
2. :class:`ProfileGuidedPrefetcher` consumes the profile at run time:
   whenever a hint's trigger instruction commits, the hinted line is
   prefetched -- the hardware cost is essentially zero, like a real
   software scheme.

The simulator wires the commit stream to ``on_commit_branch``; since
hints must fire on arbitrary instructions, triggers are anchored to the
closest *preceding branch* (every basic block ends in one, so anchor
granularity is a few instructions).
"""

from __future__ import annotations

from repro.isa.instructions import BranchKind
from repro.memory.cache import Cache
from repro.prefetch.base import Prefetcher
from repro.trace.oracle import OracleStream


def build_profile(
    stream: OracleStream,
    training_instructions: int,
    distance: int = 40,
    l1i_lines: int = 512,
    assoc: int = 8,
    line_bytes: int = 64,
) -> dict[int, list[int]]:
    """Offline profiling pass: map trigger branch pc -> miss lines.

    Replays up to ``training_instructions`` of the committed stream
    through an L1I model; each miss is attributed to the last branch
    committed at least ``distance`` instructions earlier.
    """
    cache = Cache(l1i_lines, assoc, line_bytes, name="profile")
    profile: dict[int, list[int]] = {}
    # Rolling window of (commit_index, branch_pc).
    recent_branches: list[tuple[int, int]] = []
    committed = 0
    for seg in stream.segments:
        addr = seg.start
        branches = {a: (a, k) for a, k, _, _ in seg.branches}
        for i in range(seg.n_instrs):
            pc = addr + 4 * i
            line = pc & ~(line_bytes - 1)
            if not cache.probe(pc, count_tag_access=False).hit:
                cache.fill(pc)
                trigger = _trigger_before(recent_branches, committed - distance)
                if trigger is not None:
                    profile.setdefault(trigger, [])
                    if line not in profile[trigger] and len(profile[trigger]) < 8:
                        profile[trigger].append(line)
            if pc in branches:
                recent_branches.append((committed, pc))
                if len(recent_branches) > 64:
                    recent_branches.pop(0)
            committed += 1
            if committed >= training_instructions:
                return profile
    return profile


def _trigger_before(recent: list[tuple[int, int]], target_index: int) -> int | None:
    """The most recent branch committed at or before ``target_index``."""
    best = None
    for idx, pc in recent:
        if idx <= target_index:
            best = pc
        else:
            break
    return best


class ProfileGuidedPrefetcher(Prefetcher):
    """Replays a software-prefetch profile against the commit stream."""

    name = "profile_guided"

    def __init__(self, *args, profile: dict[int, list[int]] | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.profile = profile if profile is not None else {}
        self.triggers_fired = 0

    def on_commit_branch(self, pc: int, kind: BranchKind, taken: bool, target: int) -> None:
        lines = self.profile.get(pc)
        if not lines:
            return
        self.triggers_fired += 1
        for line in lines:
            self.enqueue(line)

    def storage_bits(self) -> int:
        # Software scheme: the 'storage' is code bytes, not a table.
        return 0
