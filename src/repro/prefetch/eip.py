"""Entangling Instruction Prefetcher (EIP), Ros & Jimborean, IPC-1 winner.

Core idea: when line X misses, *entangle* it with a source line S that
was demand-accessed roughly one memory latency earlier -- so that the
next time S is accessed, prefetching X hides the whole miss.  The
entangled table maps source lines to a small set of destinations.

The paper evaluates the original 128KB configuration (EIP-128KB) and a
realistic 27KB one (EIP-27KB); both are the same algorithm with
different table capacities (Section V).
"""

from __future__ import annotations

from collections import OrderedDict, deque

from repro.prefetch.base import Prefetcher

_DESTS_PER_ENTRY = 4
_BYTES_PER_ENTRY = 8
"""Budget model: compressed source tag + up to 4 destination deltas."""


class EIPPrefetcher(Prefetcher):
    """Entangling prefetcher with an LRU-bounded entangled table."""

    name = "eip"

    def __init__(self, *args, budget_kib: int = 128, lookback: int = 12, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if budget_kib <= 0:
            raise ValueError("budget must be positive")
        self.budget_kib = budget_kib
        self.capacity = max((budget_kib * 1024) // _BYTES_PER_ENTRY, 16)
        self.lookback = lookback
        """How many recent accesses back the entangling source is chosen;
        approximates 'issue one memory latency ahead of the miss'."""
        self._table: OrderedDict[int, list[int]] = OrderedDict()
        self._recent: deque[int] = deque(maxlen=lookback)

    # ------------------------------------------------------------------
    def on_access(self, line: int, hit: bool, cycle: int) -> None:
        entry = self._table.get(line)
        if entry is not None:
            self._table.move_to_end(line)
            for dest in entry:
                self.enqueue(dest)
                # One level of chasing: destinations entangle onward, so
                # a trigger runs several misses ahead of the demand
                # stream (EIP's recursive-prefetch behaviour).
                chained = self._table.get(dest)
                if chained is not None:
                    for far in chained:
                        self.enqueue(far)
        if not hit:
            # Sequential component: EIP's destination entries compress
            # neighbouring lines together, which in effect prefetches the
            # sequential successor of a missing line; model it directly.
            self.enqueue(line + self.line_bytes)
            self._entangle(line)
        # Track the demand access stream (deduplicate immediate repeats).
        if not self._recent or self._recent[-1] != line:
            self._recent.append(line)

    def _entangle(self, missed_line: int) -> None:
        """Record missed_line as a destination of older source lines.

        Entangling at two depths (halfway and full lookback) tolerates
        path variation between recurrences: at least one of the sources
        tends to be on the recurring path.
        """
        if not self._recent:
            return
        sources = {self._recent[0], self._recent[len(self._recent) // 2]}
        for source in sources:
            if source == missed_line:
                continue
            entry = self._table.get(source)
            if entry is None:
                if len(self._table) >= self.capacity:
                    self._table.popitem(last=False)
                self._table[source] = [missed_line]
                continue
            self._table.move_to_end(source)
            if missed_line in entry:
                continue
            if len(entry) >= _DESTS_PER_ENTRY:
                entry.pop(0)
            entry.append(missed_line)

    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        return self.capacity * _BYTES_PER_ENTRY * 8


class EIP128(EIPPrefetcher):
    """The contest configuration: 128KB entangled table."""

    name = "eip128"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, budget_kib=128, **kwargs)


class EIP27(EIPPrefetcher):
    """The realistic configuration: 27KB entangled table (Section V)."""

    name = "eip27"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, budget_kib=27, **kwargs)
