"""Dedicated instruction prefetchers and the BTB prefetcher (Section V).

``create_prefetcher`` is the registry the simulator uses; the special
names ``"none"`` and ``"perfect"`` are handled by the simulator itself
(no prefetcher object / instant-fill memory).
"""

from repro.prefetch.base import Prefetcher
from repro.prefetch.djolt import DJoltPrefetcher
from repro.prefetch.eip import EIP27, EIP128, EIPPrefetcher
from repro.prefetch.fnl_mma import FNLMMAPrefetcher
from repro.prefetch.next_line import NextLinePrefetcher
from repro.prefetch.profile_guided import ProfileGuidedPrefetcher, build_profile
from repro.prefetch.rdip import RDIPPrefetcher
from repro.prefetch.sn4l_dis_btb import SN4LDisBTBPrefetcher, SN4LDisPrefetcher

_REGISTRY: dict[str, type[Prefetcher]] = {
    "nl1": NextLinePrefetcher,
    "eip128": EIP128,
    "eip27": EIP27,
    "fnl_mma": FNLMMAPrefetcher,
    "djolt": DJoltPrefetcher,
    "rdip": RDIPPrefetcher,
    "sn4l_dis": SN4LDisPrefetcher,
    "sn4l_dis_btb": SN4LDisBTBPrefetcher,
    "profile_guided": ProfileGuidedPrefetcher,
}


def prefetcher_names() -> list[str]:
    """All registered dedicated-prefetcher names."""
    return sorted(_REGISTRY)


def create_prefetcher(name: str, *, params, memory, btb, program, stats) -> Prefetcher:
    """Instantiate a registered prefetcher by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown prefetcher {name!r}; known: {', '.join(prefetcher_names())}"
        ) from None
    return cls(params, memory, btb, program, stats)


__all__ = [
    "Prefetcher",
    "NextLinePrefetcher",
    "EIPPrefetcher",
    "EIP128",
    "EIP27",
    "FNLMMAPrefetcher",
    "DJoltPrefetcher",
    "RDIPPrefetcher",
    "SN4LDisPrefetcher",
    "SN4LDisBTBPrefetcher",
    "ProfileGuidedPrefetcher",
    "build_profile",
    "create_prefetcher",
    "prefetcher_names",
]
