"""Dedicated instruction prefetchers and the BTB prefetcher (Section V).

The prefetcher zoo is published through :data:`prefetchers`, a
:class:`repro.common.registry.Registry` shared-shape with the builder
registries in :mod:`repro.core.build`.  ``create_prefetcher`` is the
constructor the builder uses; the special names ``"none"`` and
``"perfect"`` are handled by the build layer itself (no prefetcher
object / instant-fill memory).  New prefetchers register themselves
without touching core code::

    from repro.prefetch import prefetchers

    @prefetchers.register("my_pf")
    class MyPrefetcher(Prefetcher):
        ...
"""

from repro.common.registry import Registry
from repro.prefetch.base import Prefetcher
from repro.prefetch.djolt import DJoltPrefetcher
from repro.prefetch.eip import EIP27, EIP128, EIPPrefetcher
from repro.prefetch.fnl_mma import FNLMMAPrefetcher
from repro.prefetch.next_line import NextLinePrefetcher
from repro.prefetch.profile_guided import ProfileGuidedPrefetcher, build_profile
from repro.prefetch.rdip import RDIPPrefetcher
from repro.prefetch.sn4l_dis_btb import SN4LDisBTBPrefetcher, SN4LDisPrefetcher

prefetchers = Registry("prefetcher")
"""Registry of dedicated-prefetcher factories, keyed by CLI/params name.

Factories are called as ``factory(params, memory, btb, program, stats)``
(the :class:`~repro.prefetch.base.Prefetcher` constructor signature).
"""

prefetchers.register("nl1", NextLinePrefetcher)
prefetchers.register("eip128", EIP128)
prefetchers.register("eip27", EIP27)
prefetchers.register("fnl_mma", FNLMMAPrefetcher)
prefetchers.register("djolt", DJoltPrefetcher)
prefetchers.register("rdip", RDIPPrefetcher)
prefetchers.register("sn4l_dis", SN4LDisPrefetcher)
prefetchers.register("sn4l_dis_btb", SN4LDisBTBPrefetcher)
prefetchers.register("profile_guided", ProfileGuidedPrefetcher)


def prefetcher_names() -> list[str]:
    """All registered dedicated-prefetcher names."""
    return prefetchers.names()


def create_prefetcher(name: str, *, params, memory, btb, program, stats) -> Prefetcher:
    """Instantiate a registered prefetcher by name."""
    return prefetchers.create(name, params, memory, btb, program, stats)


__all__ = [
    "Prefetcher",
    "NextLinePrefetcher",
    "EIPPrefetcher",
    "EIP128",
    "EIP27",
    "FNLMMAPrefetcher",
    "DJoltPrefetcher",
    "RDIPPrefetcher",
    "SN4LDisPrefetcher",
    "SN4LDisBTBPrefetcher",
    "ProfileGuidedPrefetcher",
    "build_profile",
    "create_prefetcher",
    "prefetcher_names",
    "prefetchers",
]
