"""Gshare direction predictor (McFarling).

The weaker baseline of Fig 12: an 8KB table of 2-bit counters indexed
by PC XOR a 15-bit slice of the global history.  With it, PFC *hurts*
(Section VI-F2): wrong taken-hints on BTB-miss branches make PFC
re-steer onto wrong paths that a no-prediction frontend would have
survived.
"""

from __future__ import annotations

from repro.common.bits import mix64


class Gshare:
    """Classic gshare: counters indexed by pc ^ history."""

    def __init__(self, storage_kib: int = 8, history_bits: int = 15) -> None:
        if storage_kib <= 0:
            raise ValueError("storage must be positive")
        # 2-bit counters: 4 per byte.
        n_counters = storage_kib * 1024 * 4
        if n_counters & (n_counters - 1):
            raise ValueError("counter count must be a power of two")
        self.history_bits = history_bits
        self._hist_mask = (1 << history_bits) - 1
        # Weakly not-taken start (see TAGE): unseen branches fall through.
        self._counters = [-1] * n_counters  # in [-2, 1]
        self._index_mask = n_counters - 1
        self.predictions = 0
        self.updates = 0

    def _index(self, pc: int, hist: int) -> int:
        return (mix64(pc >> 2) ^ (hist & self._hist_mask)) & self._index_mask

    def predict(self, pc: int, hist: int) -> bool:
        self.predictions += 1
        return self._counters[self._index(pc, hist)] >= 0

    def update(self, pc: int, hist: int, taken: bool) -> None:
        self.updates += 1
        idx = self._index(pc, hist)
        ctr = self._counters[idx]
        if taken:
            self._counters[idx] = min(1, ctr + 1)
        else:
            self._counters[idx] = max(-2, ctr - 1)

    def storage_bits(self) -> int:
        return 2 * len(self._counters)
