"""Two-level BTB hierarchy.

Section II-B notes that commercial processors implement multi-level BTB
hierarchies, "similar to the multi-level cache hierarchy" (IBM z15,
Neoverse N1, Exynos M3).  This module provides a small, fast L1 BTB
backed by a large L2 BTB:

* scans consult L1 first; L2 hits are *promoted* into L1 (the demoted
  L1 victim falls back to L2);
* a taken prediction whose entry was served from L2 costs extra
  prediction-pipeline cycles (``l2_extra_latency``), modelling the
  slower second-level array;
* commit-side insertion installs into L1 (with demotion), so hot
  branches live in L1 and the cold tail in L2.

The class is interface-compatible with :class:`repro.branch.btb.BTB`;
the BPU asks :meth:`was_l2_sourced` after each scan to charge the extra
latency.  An ablation benchmark (``benchmarks/test_abl_two_level_btb``)
compares single-level and two-level provisioning at equal total
capacity.
"""

from __future__ import annotations

from repro.branch.btb import BTB, BTBEntry
from repro.isa.instructions import BranchKind


class TwoLevelBTB:
    """L1 + L2 BTB with promotion/demotion."""

    def __init__(
        self,
        l1_entries: int,
        l1_assoc: int,
        l2_entries: int,
        l2_assoc: int,
        l2_extra_latency: int = 2,
    ) -> None:
        if l1_entries >= l2_entries:
            raise ValueError("L1 BTB must be smaller than L2 BTB")
        if l2_extra_latency < 0:
            raise ValueError("extra latency cannot be negative")
        self.l1 = BTB(l1_entries, l1_assoc)
        self.l2 = BTB(l2_entries, l2_assoc)
        self.l2_extra_latency = l2_extra_latency
        self._l2_sourced: set[int] = set()
        self.promotions = 0
        self.demotions = 0

    # ------------------------------------------------------------------
    # Lookup interface (BTB-compatible)
    # ------------------------------------------------------------------
    def lookup(self, addr: int) -> BTBEntry | None:
        entry = self.l1.lookup(addr)
        if entry is not None:
            self._l2_sourced.discard(addr)
            return entry
        entry = self.l2.lookup(addr)
        if entry is not None:
            self._l2_sourced.add(addr)
            self._promote(entry)
        return entry

    def scan_block(self, start: int, end: int) -> list[BTBEntry]:
        """Merged two-level scan; L2-only hits are promoted and flagged."""
        found = {e.addr: e for e in self.l1.scan_block(start, end)}
        for addr in list(self._l2_sourced):
            if start <= addr <= end:
                self._l2_sourced.discard(addr)
        for entry in self.l2.scan_block(start, end):
            if entry.addr not in found:
                found[entry.addr] = entry
                self._l2_sourced.add(entry.addr)
                self._promote(entry)
        return sorted(found.values(), key=lambda e: e.addr)

    def was_l2_sourced(self, addr: int) -> bool:
        """True if the most recent scan served ``addr`` from the L2 BTB."""
        return addr in self._l2_sourced

    def contains(self, addr: int) -> bool:
        return self.l1.contains(addr) or self.l2.contains(addr)

    # ------------------------------------------------------------------
    # Update interface
    # ------------------------------------------------------------------
    def insert(self, addr: int, kind: BranchKind, target: int) -> None:
        self._install_l1(addr, kind, target)
        # Keep the L2 copy coherent (inclusive-ish; cheap functionally).
        self.l2.insert(addr, kind, target)

    def invalidate(self, addr: int) -> bool:
        a = self.l1.invalidate(addr)
        b = self.l2.invalidate(addr)
        return a or b

    def _promote(self, entry: BTBEntry) -> None:
        self.promotions += 1
        self._install_l1(entry.addr, entry.kind, entry.target)

    def _install_l1(self, addr: int, kind: BranchKind, target: int) -> None:
        # Capture the victim before insertion so it can demote to L2.
        ways = self.l1._sets[self.l1._set_index(addr)]
        victim = None
        if len(ways) >= self.l1.assoc and all(e.addr != addr for e in ways):
            victim = ways[-1]
        self.l1.insert(addr, kind, target)
        if victim is not None:
            self.demotions += 1
            self.l2.insert(victim.addr, victim.kind, victim.target)

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return self.l1.occupancy + self.l2.occupancy

    @property
    def n_entries(self) -> int:
        return self.l1.n_entries + self.l2.n_entries

    def reset_stats(self) -> None:
        self.l1.reset_stats()
        self.l2.reset_stats()
        self.promotions = 0
        self.demotions = 0
