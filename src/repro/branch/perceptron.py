"""Perceptron direction predictor (Jimenez & Lin, HPCA 2001).

Cited by the paper among the classic direction predictors (Section
II-A).  Each table row is a weight vector; the prediction is the sign
of the dot product between the weights and the recent history bits
(+1 taken / -1 not-taken, plus a bias weight).  Training bumps weights
on a misprediction or while the output magnitude is below the Jimenez
threshold theta = 1.93 * h + 14.

Included as an extra comparison point for the Fig 12 direction-predictor
sensitivity study; it slots in through
``DirectionPredictorKind.PERCEPTRON``.
"""

from __future__ import annotations

from repro.common.bits import mix64

_WEIGHT_MAX = 127
_WEIGHT_MIN = -128


class Perceptron:
    """Global-history perceptron predictor."""

    def __init__(self, storage_kib: int = 8, history_bits: int = 31) -> None:
        if storage_kib <= 0:
            raise ValueError("storage must be positive")
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self.history_bits = history_bits
        # One signed byte per weight, history_bits + bias weights per row.
        row_bytes = history_bits + 1
        self.n_rows = max((storage_kib * 1024) // row_bytes, 1)
        self._weights = [[0] * (history_bits + 1) for _ in range(self.n_rows)]
        self.threshold = int(1.93 * history_bits + 14)
        self.predictions = 0
        self.updates = 0

    def _row(self, pc: int) -> list[int]:
        return self._weights[mix64(pc >> 2) % self.n_rows]

    def _output(self, pc: int, hist: int) -> int:
        weights = self._row(pc)
        total = weights[0]  # bias
        for i in range(self.history_bits):
            bit = (hist >> i) & 1
            total += weights[i + 1] if bit else -weights[i + 1]
        return total

    def predict(self, pc: int, hist: int) -> bool:
        self.predictions += 1
        return self._output(pc, hist) >= 0

    def update(self, pc: int, hist: int, taken: bool) -> None:
        self.updates += 1
        output = self._output(pc, hist)
        predicted = output >= 0
        if predicted == taken and abs(output) > self.threshold:
            return
        weights = self._row(pc)
        t = 1 if taken else -1
        weights[0] = _clamp(weights[0] + t)
        for i in range(self.history_bits):
            bit = 1 if (hist >> i) & 1 else -1
            weights[i + 1] = _clamp(weights[i + 1] + t * bit)

    def storage_bits(self) -> int:
        return self.n_rows * (self.history_bits + 1) * 8


def _clamp(w: int) -> int:
    return max(_WEIGHT_MIN, min(_WEIGHT_MAX, w))
