"""Branch Target Buffer.

16B-indexed set-associative BTB (Section IV-B): every branch in the
same 16-byte chunk maps to the same set, so one fetch-block scan costs
at most ``block_bytes / 16`` set reads.  Entries store the full branch
address (functional tag), branch kind and target; LRU within a set.

The BTB is the FDP capacity lever the paper sweeps from 1K to 32K
entries (Figs 7/11) and the insertion policy (taken-only vs all
branches) is part of the Table V history policies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import BranchKind

_CHUNK_BYTES = 16


def _entry_addr(entry: "BTBEntry") -> int:
    """Sort key for scan results (module-level: no per-call closure)."""
    return entry.addr


@dataclass(slots=True)
class BTBEntry:
    """One BTB entry: a previously seen branch."""

    addr: int
    kind: BranchKind
    target: int
    """Last observed target; authoritative for direct branches, a hint
    (overridable by ITTAGE/RAS) for indirect branches and returns."""


class BTB:
    """Set-associative, 16B-indexed branch target buffer.

    ``scan_block`` runs for every FTQ entry the prediction pipeline
    forms, so set indexing uses a mask whenever ``n_sets`` is a power
    of two (all the Fig 7/11 sweep points) with a ``%`` fallback.
    """

    __slots__ = (
        "n_entries",
        "assoc",
        "n_sets",
        "_set_mask",
        "_sets",
        "lookups",
        "hit_count",
        "insertions",
        "evictions",
    )

    def __init__(self, n_entries: int, assoc: int) -> None:
        if n_entries <= 0 or assoc <= 0 or n_entries % assoc:
            raise ValueError("invalid BTB geometry")
        self.n_entries = n_entries
        self.assoc = assoc
        self.n_sets = n_entries // assoc
        self._set_mask = self.n_sets - 1 if self.n_sets & (self.n_sets - 1) == 0 else -1
        # Each set is MRU-ordered.
        self._sets: list[list[BTBEntry]] = [[] for _ in range(self.n_sets)]
        self.lookups = 0
        self.hit_count = 0
        self.insertions = 0
        self.evictions = 0

    def _set_index(self, addr: int) -> int:
        if self._set_mask >= 0:
            return (addr >> 4) & self._set_mask
        return (addr // _CHUNK_BYTES) % self.n_sets

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, addr: int) -> BTBEntry | None:
        """Single-branch probe with LRU update."""
        self.lookups += 1
        ways = self._sets[self._set_index(addr)]
        for i, entry in enumerate(ways):
            if entry.addr == addr:
                self.hit_count += 1
                if i:
                    ways.remove(entry)
                    ways.insert(0, entry)
                return entry
        return None

    def scan_block(self, start: int, end: int) -> list[BTBEntry]:
        """Return all held branches with ``start <= addr <= end``, in
        address order, promoting each to MRU.

        This is the fetch-block scan the prediction pipeline performs
        for every FTQ entry it forms.
        """
        self.lookups += 1
        found: list[BTBEntry] = []
        sets = self._sets
        set_index = self._set_index
        chunk = start & ~(_CHUNK_BYTES - 1)
        seen_sets: list[int] = []  # a fetch block spans at most a few chunks
        while chunk <= end:
            set_idx = set_index(chunk)
            if set_idx not in seen_sets:
                seen_sets.append(set_idx)
                for entry in sets[set_idx]:
                    if start <= entry.addr <= end:
                        found.append(entry)
            chunk += _CHUNK_BYTES
        if found:
            self.hit_count += 1
            found.sort(key=_entry_addr)
            for entry in found:
                ways = sets[set_index(entry.addr)]
                if ways[0] is not entry:
                    ways.remove(entry)
                    ways.insert(0, entry)
        return found

    def contains(self, addr: int) -> bool:
        """Presence probe with no LRU update and no stats (commit-side
        detection checks use this so they don't perturb replacement)."""
        return any(e.addr == addr for e in self._sets[self._set_index(addr)])

    def was_l2_sourced(self, addr: int) -> bool:
        """Single-level BTB: every hit is first-level (see btb2l)."""
        return False

    # ------------------------------------------------------------------
    # Update
    # ------------------------------------------------------------------
    def insert(self, addr: int, kind: BranchKind, target: int) -> None:
        """Install or update a branch; evicts LRU within the set."""
        if not kind.is_branch:
            raise ValueError("cannot insert a non-branch into the BTB")
        ways = self._sets[self._set_index(addr)]
        for i, entry in enumerate(ways):
            if entry.addr == addr:
                entry.kind = kind
                entry.target = target
                if i:
                    ways.remove(entry)
                    ways.insert(0, entry)
                return
        if len(ways) >= self.assoc:
            ways.pop()
            self.evictions += 1
        ways.insert(0, BTBEntry(addr=addr, kind=kind, target=target))
        self.insertions += 1

    def invalidate(self, addr: int) -> bool:
        ways = self._sets[self._set_index(addr)]
        for entry in ways:
            if entry.addr == addr:
                ways.remove(entry)
                return True
        return False

    @property
    def occupancy(self) -> int:
        return sum(len(ways) for ways in self._sets)

    def reset_stats(self) -> None:
        self.lookups = 0
        self.hit_count = 0
        self.insertions = 0
        self.evictions = 0
