"""Return Address Stack.

Two instances exist per simulated core: a speculative RAS in the
branch-prediction pipeline (pushed/popped by predicted calls/returns)
and an architectural RAS maintained at commit.  On a pipeline flush the
speculative RAS is restored by copying the architectural one -- the
standard recovery a real core approximates with checkpoints.
"""

from __future__ import annotations


class ReturnAddressStack:
    """Bounded circular return-address stack."""

    __slots__ = ("n_entries", "_stack", "pushes", "pops", "overflows", "underflows")

    def __init__(self, n_entries: int = 64) -> None:
        if n_entries <= 0:
            raise ValueError("RAS needs at least one entry")
        self.n_entries = n_entries
        self._stack: list[int] = []
        self.pushes = 0
        self.pops = 0
        self.overflows = 0
        self.underflows = 0

    def push(self, return_addr: int) -> None:
        """Push a call's return address; overflow drops the oldest."""
        self.pushes += 1
        if len(self._stack) >= self.n_entries:
            self._stack.pop(0)
            self.overflows += 1
        self._stack.append(return_addr)

    def pop(self) -> int | None:
        """Pop for a return; None on underflow (mispredicts downstream)."""
        self.pops += 1
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def top(self) -> int | None:
        """Peek without popping (used for PFC return targets)."""
        return self._stack[-1] if self._stack else None

    def copy_from(self, other: "ReturnAddressStack") -> None:
        """Restore contents from ``other`` (flush recovery)."""
        self._stack = list(other._stack)

    def snapshot(self) -> tuple[int, ...]:
        return tuple(self._stack)

    def restore(self, snap: tuple[int, ...]) -> None:
        self._stack = list(snap)

    def __len__(self) -> int:
        return len(self._stack)
