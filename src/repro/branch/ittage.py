"""ITTAGE-style indirect target predictor (Seznec, CBP-3).

Predicts the target of register-indirect branches and calls: a base
table keyed by PC holding the last target, plus tagged tables indexed
with increasing history lengths that capture correlated target
sequences (e.g. round-robin dispatch).  The BTB supplies a fallback
target when ITTAGE has nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bits import fold, mix64

_CONF_MAX = 3


@dataclass(slots=True)
class _Entry:
    tag: int
    target: int
    confidence: int
    useful: int


class ITTAGE:
    """Indirect target predictor with a base table + 3 tagged tables."""

    N_TAGGED = 3
    TAG_BITS = 11

    def __init__(self, n_entries: int = 2048, max_history: int = 260) -> None:
        if n_entries <= 0 or n_entries & (n_entries - 1):
            raise ValueError("n_entries must be a positive power of two")
        self.n_entries = n_entries
        per_table = max(n_entries // (self.N_TAGGED + 1), 1)
        self._table_size = per_table
        self._idx_bits = max(per_table.bit_length() - 1, 1)
        self._base: dict[int, int] = {}
        self._base_capacity = per_table
        self._tables: list[dict[int, _Entry]] = [dict() for _ in range(self.N_TAGGED)]
        lengths = [max_history // 16, max_history // 4, max_history]
        self._hist_masks = [(1 << length) - 1 for length in lengths]
        self._tag_mask = (1 << self.TAG_BITS) - 1
        self.predictions = 0
        self.updates = 0

    def _index_and_tag(self, table: int, pc: int, hist: int) -> tuple[int, int]:
        masked = hist & self._hist_masks[table]
        hfold = fold(masked, self._idx_bits)
        tfold = fold(masked * 3, self.TAG_BITS)
        pc_mix = mix64(pc >> 2) ^ (table * 0x85EBCA6B)
        idx = (hfold ^ pc_mix) & (self._table_size - 1)
        tag = (tfold ^ (pc_mix >> 17)) & self._tag_mask
        return idx, tag

    def predict(self, pc: int, hist: int) -> int | None:
        """Return the predicted target, or None if nothing is known."""
        self.predictions += 1
        for table in range(self.N_TAGGED - 1, -1, -1):
            idx, tag = self._index_and_tag(table, pc, hist)
            entry = self._tables[table].get(idx)
            if entry is not None and entry.tag == tag:
                return entry.target
        return self._base.get(pc)

    def update(self, pc: int, hist: int, target: int) -> None:
        """Train with the resolved indirect target."""
        self.updates += 1
        predicted = self.predict(pc, hist)
        self.predictions -= 1  # internal re-predict is not a real lookup
        # Base table: always track the last target (bounded FIFO-ish).
        if pc not in self._base and len(self._base) >= self._base_capacity:
            self._base.pop(next(iter(self._base)))
        self._base[pc] = target

        # Find the provider and strengthen/correct it.
        provider_table = -1
        for table in range(self.N_TAGGED - 1, -1, -1):
            idx, tag = self._index_and_tag(table, pc, hist)
            entry = self._tables[table].get(idx)
            if entry is not None and entry.tag == tag:
                provider_table = table
                if entry.target == target:
                    entry.confidence = min(_CONF_MAX, entry.confidence + 1)
                    entry.useful = min(_CONF_MAX, entry.useful + 1)
                else:
                    if entry.confidence > 0:
                        entry.confidence -= 1
                    else:
                        entry.target = target
                        entry.confidence = 1
                break

        if predicted != target and provider_table < self.N_TAGGED - 1:
            self._allocate(pc, hist, target, provider_table + 1)

    def _allocate(self, pc: int, hist: int, target: int, start_table: int) -> None:
        for table in range(start_table, self.N_TAGGED):
            idx, tag = self._index_and_tag(table, pc, hist)
            entry = self._tables[table].get(idx)
            if entry is None or entry.useful == 0:
                self._tables[table][idx] = _Entry(tag=tag, target=target, confidence=1, useful=0)
                return
            entry.useful -= 1

    def storage_bits(self) -> int:
        """Approximate budget: 48b target + tag + 4b state per entry."""
        per_entry = 48 + self.TAG_BITS + 4
        return (self._base_capacity + self.N_TAGGED * self._table_size) * per_entry
