"""Global branch history management (Section III-A, Table V).

The history is a plain Python int bit-vector, so speculative snapshots
(stored per FTQ entry) and flush restores are O(1) copies.  A
:class:`HistoryManager` encodes *policy*: what the frontend pushes at
prediction time, what the commit stage replays architecturally, and
whether BTB-miss not-taken branches require a corrective frontend flush.

Policies (Table V):

========  ==============  =========  ==================
name      history type    fixup      BTB allocation
========  ==============  =========  ==================
THR       taken targets   not needed taken only
GHR0      directions      no         taken only
GHR1      directions      no         all branches
GHR2      directions      yes        taken only
GHR3      directions      yes        all branches
Ideal     directions      oracle     all (detection is moot)
========  ==============  =========  ==================

With direction history, a branch only contributes its bit when the
frontend *detects* it -- i.e. when it hits in the BTB.  Undetected
not-taken branches silently drop out of the history (GHR0/1) or cost a
corrective flush (GHR2/3).  Undetected *taken* branches always get
fixed, because the ensuing pipeline flush unrolls and repairs the
history (Section III-A).  Taken-only target history side-steps the
whole problem: not-taken branches never contribute, so nothing is ever
missing.
"""

from __future__ import annotations

from repro.common.params import HistoryPolicy

#: Bits shifted in per taken branch under target history (paper Eq. 3).
TARGET_SHIFT = 2


class HistoryManager:
    """Stateless policy object: all methods map history -> history."""

    __slots__ = ("policy", "bits", "mask", "_target_history", "_ideal", "_fixes_nt", "_alloc_all")

    def __init__(self, policy: HistoryPolicy, bits: int) -> None:
        if bits <= 0:
            raise ValueError("history length must be positive")
        self.policy = policy
        self.bits = bits
        self.mask = (1 << bits) - 1
        # Policy predicates resolve to enum-membership tests; the push
        # primitives run per predicted branch, so cache them as plain
        # bools once.
        self._target_history = policy.uses_target_history
        self._ideal = policy is HistoryPolicy.IDEAL
        self._fixes_nt = policy.fixes_not_taken_history
        self._alloc_all = policy.allocates_all_branches

    # ------------------------------------------------------------------
    # Primitive pushes
    # ------------------------------------------------------------------
    def push_taken(self, hist: int, pc: int, target: int) -> int:
        """Record a taken branch.

        Target history folds in a hash of (pc, target) -- Eq. 2/3;
        direction history shifts in a 1 bit -- Eq. 1.
        """
        if self._target_history:
            return ((hist << TARGET_SHIFT) ^ (pc >> 2) ^ (target >> 3)) & self.mask
        return ((hist << 1) | 1) & self.mask

    def push_not_taken(self, hist: int) -> int:
        """Record a not-taken branch (no-op under target history)."""
        if self._target_history:
            return hist
        return (hist << 1) & self.mask

    def push_outcome(self, hist: int, pc: int, taken: bool, target: int) -> int:
        if taken:
            return self.push_taken(hist, pc, target)
        return self.push_not_taken(hist)

    # ------------------------------------------------------------------
    # Frontend (speculative) semantics
    # ------------------------------------------------------------------
    def spec_push(self, hist: int, pc: int, predicted_taken: bool, target: int) -> int:
        """History contribution of a *detected* branch at prediction time."""
        return self.push_outcome(hist, pc, predicted_taken, target)

    # ------------------------------------------------------------------
    # Commit (architectural) semantics
    # ------------------------------------------------------------------
    def commit_push(
        self, hist: int, pc: int, taken: bool, target: int, detected: bool
    ) -> tuple[int, bool]:
        """Replay one committed branch into the architectural history.

        Returns ``(new_history, fixup_flush)`` where ``fixup_flush`` is
        True when this branch's contribution only exists because a
        GHR2/GHR3 corrective frontend flush inserted it.

        The architectural history must equal what the frontend's policy
        would have accumulated on the correct path, because it is copied
        back into the frontend on every pipeline flush.
        """
        if self._target_history:
            if taken:
                return self.push_taken(hist, pc, target), False
            return hist, False

        if self._ideal:
            return self.push_outcome(hist, pc, taken, target), False

        if detected:
            return self.push_outcome(hist, pc, taken, target), False

        # Undetected (BTB-miss) branch.
        if taken:
            # The misprediction flush unrolls and repairs the history.
            return self.push_taken(hist, pc, target), False
        if self._fixes_nt:
            return self.push_not_taken(hist), True
        # GHR0/GHR1: the bit is simply lost.
        return hist, False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def allocates_all_branches(self) -> bool:
        return self._alloc_all

    @property
    def fixes_not_taken(self) -> bool:
        return self._fixes_nt

    @property
    def is_ideal(self) -> bool:
        return self._ideal

    def __repr__(self) -> str:
        return f"HistoryManager({self.policy.value}, bits={self.bits})"
