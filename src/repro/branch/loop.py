"""Loop predictor.

Fig 2 of the paper lists loop predictors among the standard branch
prediction components: they "identify loops with their loop iteration
counts".  A counted loop's back-edge is taken ``trip - 1`` times and
then falls through once -- a pattern global-history predictors struggle
with when the loop body's history is periodic (every iteration looks
identical beyond the history length).

This implementation mirrors the classic Seznec loop predictor: per
branch it tracks the current iteration count and the last observed trip
count; after ``CONFIDENT`` consecutive confirmations it *overrides* the
direction predictor, predicting not-taken exactly on the exit
iteration.

Speculative state: the predictor keeps separate speculative and
architectural iteration counters.  The BPU advances the speculative
side; pipeline flushes resynchronise it from the architectural side
(:meth:`flush_spec`), mirroring how the simulator recovers every other
speculative structure.
"""

from __future__ import annotations

from dataclasses import dataclass

CONFIDENT = 3
_MAX_TRIP = 1 << 14


@dataclass(slots=True)
class _LoopEntry:
    trip: int = 0
    """Last learned trip count (taken iterations + 1)."""
    confidence: int = 0
    arch_count: int = 0
    spec_count: int = 0


class LoopPredictor:
    """Trip-count predictor with speculative/architectural counters."""

    def __init__(self, n_entries: int = 256) -> None:
        if n_entries <= 0:
            raise ValueError("need at least one entry")
        self.n_entries = n_entries
        self._entries: dict[int, _LoopEntry] = {}
        self.overrides = 0

    def _entry(self, pc: int) -> _LoopEntry:
        entry = self._entries.get(pc)
        if entry is None:
            if len(self._entries) >= self.n_entries:
                # Evict the least-confident entry.
                victim = min(self._entries, key=lambda k: self._entries[k].confidence)
                del self._entries[victim]
            entry = _LoopEntry()
            self._entries[pc] = entry
        return entry

    # ------------------------------------------------------------------
    # Prediction (speculative side)
    # ------------------------------------------------------------------
    def predict(self, pc: int) -> bool | None:
        """Return an override direction for ``pc``, or None to defer.

        Advances the speculative iteration count as if the prediction is
        followed, exactly like the global history update.
        """
        entry = self._entries.get(pc)
        if entry is None or entry.confidence < CONFIDENT:
            if entry is not None:
                entry.spec_count += 1
            return None
        entry.spec_count += 1
        self.overrides += 1
        if entry.spec_count >= entry.trip:
            entry.spec_count = 0
            return False
        return True

    def flush_spec(self) -> None:
        """Pipeline flush: speculative counters resync to committed state."""
        for entry in self._entries.values():
            entry.spec_count = entry.arch_count

    # ------------------------------------------------------------------
    # Training (commit side)
    # ------------------------------------------------------------------
    def train(self, pc: int, taken: bool) -> None:
        if not taken and pc not in self._entries:
            # Never observed taken: not a loop back-edge, don't pollute
            # the table with trip-1 entries for never-taken branches.
            return
        entry = self._entry(pc)
        if taken:
            entry.arch_count += 1
            if entry.arch_count >= _MAX_TRIP:
                # Not a counted loop at a learnable scale.
                entry.arch_count = 0
                entry.confidence = 0
                entry.trip = 0
            return
        # Exit observed: the trip count is arch_count + 1.
        trip = entry.arch_count + 1
        if trip == entry.trip:
            entry.confidence = min(CONFIDENT, entry.confidence + 1)
        else:
            entry.trip = trip
            entry.confidence = 0
        entry.arch_count = 0

    # ------------------------------------------------------------------
    def confident(self, pc: int) -> bool:
        entry = self._entries.get(pc)
        return entry is not None and entry.confidence >= CONFIDENT

    def __len__(self) -> int:
        return len(self._entries)

    def storage_bits(self) -> int:
        """~ (tag 16 + trip 14 + conf 2 + 2x count 14) per entry."""
        return self.n_entries * 60
