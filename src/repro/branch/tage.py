"""TAGE conditional direction predictor (Seznec, CBP).

A bimodal base table plus ``n_tables`` partially-tagged tables indexed
with geometrically increasing history lengths.  The paper's baseline is
an 18KB TAGE with 260-bit taken-only target history; Fig 12 sweeps
9/18/36KB.

Simulation notes:

* History is the :mod:`repro.branch.history` int; per-table indices and
  tags are hashes of (pc, masked history).  The masked-history folds are
  cached per history value because between taken branches every slot
  shares the same history (paper footnote 1), so consecutive lookups
  hit the cache.
* ``predict`` is pure; ``update`` recomputes the provider from the
  history captured at prediction time (the caller passes the same
  history value), which keeps speculative prediction and commit-time
  training decoupled, as in the simulated machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bits import fold, mix64

_CTR_MAX = 3  # 3-bit signed counter in [-4, 3]
_CTR_MIN = -4
_U_MAX = 3


@dataclass(frozen=True)
class TageConfig:
    """Geometry of a TAGE instance."""

    n_tables: int
    table_entries: int
    bimodal_entries: int
    tag_bits: int
    min_history: int
    max_history: int
    u_reset_period: int = 512 * 1024

    def __post_init__(self) -> None:
        if self.n_tables < 1:
            raise ValueError("need at least one tagged table")
        for n in (self.table_entries, self.bimodal_entries):
            if n <= 0 or n & (n - 1):
                raise ValueError("table sizes must be powers of two")
        if not 1 <= self.min_history < self.max_history:
            raise ValueError("history lengths must satisfy 1 <= min < max")

    def history_lengths(self) -> list[int]:
        """Geometric series from min_history to max_history."""
        if self.n_tables == 1:
            return [self.max_history]
        ratio = (self.max_history / self.min_history) ** (1.0 / (self.n_tables - 1))
        lengths = []
        for i in range(self.n_tables):
            length = int(round(self.min_history * ratio**i))
            if lengths and length <= lengths[-1]:
                length = lengths[-1] + 1
            lengths.append(length)
        lengths[-1] = self.max_history
        return lengths

    def storage_bits(self) -> int:
        """Approximate storage: ctr(3)+u(2)+tag per tagged entry, 2b bimodal."""
        tagged = self.n_tables * self.table_entries * (3 + 2 + self.tag_bits)
        return tagged + 2 * self.bimodal_entries

    @classmethod
    def for_budget_kib(cls, kib: int, max_history: int = 260) -> "TageConfig":
        """Standard sizings used in the evaluation (Fig 12)."""
        if kib <= 9:
            return cls(8, 512, 4096, 10, 4, max_history)
        if kib <= 18:
            return cls(8, 1024, 8192, 10, 4, max_history)
        return cls(8, 2048, 16384, 11, 4, max_history)


class TAGE:
    """The predictor proper."""

    __slots__ = (
        "config",
        "lengths",
        "_hist_masks",
        "_idx_bits",
        "_idx_mask",
        "_tag_bits",
        "_tag_mask",
        "_ctr",
        "_tag",
        "_u",
        "_bimodal",
        "_bimodal_mask",
        "_use_alt_on_na",
        "_tick",
        "_fold_cache",
        "_pc_mix_cache",
        "_table_salts",
        "predictions",
        "updates",
        "allocations",
    )

    def __init__(self, config: TageConfig) -> None:
        self.config = config
        self.lengths = config.history_lengths()
        self._hist_masks = [(1 << length) - 1 for length in self.lengths]
        self._idx_bits = config.table_entries.bit_length() - 1
        self._idx_mask = config.table_entries - 1
        self._tag_bits = config.tag_bits
        self._tag_mask = (1 << config.tag_bits) - 1
        n = config.n_tables
        size = config.table_entries
        self._ctr = [[0] * size for _ in range(n)]
        self._tag = [[-1] * size for _ in range(n)]
        self._u = [[0] * size for _ in range(n)]
        # Weakly not-taken start: an unseen branch predicts not-taken,
        # matching the sequential-fetch default of a real frontend.
        self._bimodal = [-1] * config.bimodal_entries
        self._bimodal_mask = config.bimodal_entries - 1
        self._use_alt_on_na = 0  # in [-8, 7]
        self._tick = 0
        self._fold_cache: dict[int, list[tuple[int, int]]] = {}
        self._pc_mix_cache: dict[int, list[int]] = {}
        self._table_salts = [(t * 0x9E3779B1) for t in range(n)]
        self.predictions = 0
        self.updates = 0
        self.allocations = 0

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def _folds(self, hist: int) -> list[tuple[int, int]]:
        """Per-table (index_fold, tag_fold) of the masked history."""
        cached = self._fold_cache.get(hist)
        if cached is not None:
            return cached
        folds = [
            (fold(hist & mask, self._idx_bits), fold((hist & mask) * 3, self._tag_bits))
            for mask in self._hist_masks
        ]
        if len(self._fold_cache) >= 8192:
            self._fold_cache.clear()
        self._fold_cache[hist] = folds
        return folds

    def _pc_mixes(self, pc: int) -> list[int]:
        """Per-table PC hash; the branch PC working set is small, so
        one dict lookup replaces ``n_tables`` mix64 evaluations."""
        mixes = self._pc_mix_cache.get(pc)
        if mixes is None:
            base = mix64(pc >> 2)
            mixes = [base ^ salt for salt in self._table_salts]
            if len(self._pc_mix_cache) >= 65536:
                self._pc_mix_cache.clear()
            self._pc_mix_cache[pc] = mixes
        return mixes

    def _index_and_tag(self, table: int, pc: int, folds) -> tuple[int, int]:
        hfold, tfold = folds[table]
        pc_mix = self._pc_mixes(pc)[table]
        idx = (hfold ^ pc_mix) & self._idx_mask
        tag = (tfold ^ (pc_mix >> 13)) & self._tag_mask
        return idx, tag

    def _bimodal_index(self, pc: int) -> int:
        return (pc >> 2) & self._bimodal_mask

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, pc: int, hist: int) -> bool:
        """Return the predicted direction for ``pc`` under ``hist``."""
        self.predictions += 1
        taken, _ = self._predict_full(pc, hist)
        return taken

    def _predict_full(self, pc: int, hist: int):
        folds = self._folds(hist)
        mixes = self._pc_mixes(pc)
        idx_mask = self._idx_mask
        tag_mask = self._tag_mask
        tags = self._tag
        provider = -1
        provider_idx = -1
        alt = -1
        alt_idx = -1
        for table in range(self.config.n_tables - 1, -1, -1):
            hfold, tfold = folds[table]
            pc_mix = mixes[table]
            idx = (hfold ^ pc_mix) & idx_mask
            if tags[table][idx] == (tfold ^ (pc_mix >> 13)) & tag_mask:
                if provider < 0:
                    provider, provider_idx = table, idx
                else:
                    alt, alt_idx = table, idx
                    break
        bimodal_taken = self._bimodal[(pc >> 2) & self._bimodal_mask] >= 0
        if provider < 0:
            return bimodal_taken, (provider, provider_idx, alt, alt_idx, bimodal_taken)
        ctr = self._ctr[provider][provider_idx]
        provider_taken = ctr >= 0
        weak = ctr in (-1, 0)
        if alt >= 0:
            alt_taken = self._ctr[alt][alt_idx] >= 0
        else:
            alt_taken = bimodal_taken
        if weak and self._use_alt_on_na >= 0 and self._u[provider][provider_idx] == 0:
            return alt_taken, (provider, provider_idx, alt, alt_idx, bimodal_taken)
        return provider_taken, (provider, provider_idx, alt, alt_idx, bimodal_taken)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def update(self, pc: int, hist: int, taken: bool) -> None:
        """Train with the resolved outcome; ``hist`` must be the history
        that prediction used (the architectural history before this
        branch)."""
        self.updates += 1
        folds = self._folds(hist)
        predicted, meta = self._predict_full(pc, hist)
        provider, provider_idx, alt, alt_idx, bimodal_taken = meta

        mispredicted = predicted != taken

        if provider >= 0:
            ctr = self._ctr[provider][provider_idx]
            provider_taken = ctr >= 0
            alt_taken = self._ctr[alt][alt_idx] >= 0 if alt >= 0 else bimodal_taken
            # Track whether the alternate would have done better on
            # newly-allocated (weak, u=0) entries.
            if ctr in (-1, 0) and self._u[provider][provider_idx] == 0 and provider_taken != alt_taken:
                if alt_taken == taken:
                    self._use_alt_on_na = min(7, self._use_alt_on_na + 1)
                else:
                    self._use_alt_on_na = max(-8, self._use_alt_on_na - 1)
            # Useful bit: provider was right where the alternate was wrong.
            if provider_taken == taken and alt_taken != taken:
                self._u[provider][provider_idx] = min(_U_MAX, self._u[provider][provider_idx] + 1)
            elif provider_taken != taken and alt_taken == taken:
                self._u[provider][provider_idx] = max(0, self._u[provider][provider_idx] - 1)
            self._ctr[provider][provider_idx] = self._saturate(ctr, taken)
            if provider == 0 or self._ctr[provider][provider_idx] not in (-1, 0):
                pass
        else:
            idx = self._bimodal_index(pc)
            self._bimodal[idx] = self._saturate(self._bimodal[idx], taken)

        if mispredicted and provider < self.config.n_tables - 1:
            self._allocate(pc, folds, taken, provider)

        self._tick += 1
        if self._tick >= self.config.u_reset_period:
            self._tick = 0
            for table in range(self.config.n_tables):
                u_col = self._u[table]
                for i in range(len(u_col)):
                    u_col[i] >>= 1

    def _saturate(self, ctr: int, taken: bool) -> int:
        if taken:
            return min(_CTR_MAX, ctr + 1)
        return max(_CTR_MIN, ctr - 1)

    def _allocate(self, pc: int, folds, taken: bool, provider: int) -> None:
        """Allocate up to one entry in a longer-history table."""
        start = provider + 1
        for table in range(start, self.config.n_tables):
            idx, tag = self._index_and_tag(table, pc, folds)
            if self._u[table][idx] == 0:
                self._tag[table][idx] = tag
                self._ctr[table][idx] = 0 if taken else -1
                self.allocations += 1
                return
        # No free entry: age the candidates so future allocations succeed.
        for table in range(start, self.config.n_tables):
            idx, _ = self._index_and_tag(table, pc, folds)
            self._u[table][idx] = max(0, self._u[table][idx] - 1)

    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        return self.config.storage_bits()
