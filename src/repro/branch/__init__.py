"""Branch prediction substrate: history managers, BTB, TAGE, ITTAGE, RAS."""

from repro.branch.btb import BTB, BTBEntry
from repro.branch.gshare import Gshare
from repro.branch.history import HistoryManager
from repro.branch.ittage import ITTAGE
from repro.branch.ras import ReturnAddressStack
from repro.branch.tage import TAGE, TageConfig

__all__ = [
    "BTB",
    "BTBEntry",
    "Gshare",
    "HistoryManager",
    "ITTAGE",
    "ReturnAddressStack",
    "TAGE",
    "TageConfig",
]
