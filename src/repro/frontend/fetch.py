"""Instruction fetch pipeline (Section IV-C) with Post-Fetch Correction.

Two decoupled jobs, exactly as the paper describes:

1. **I-cache fills** -- the oldest ``fetch_probe_width`` FTQ entries
   awaiting translation probe the I-TLB and the I-cache tag array;
   misses start fills immediately, long before the entry reaches the
   FTQ head.  This run-ahead probing *is* the FDP prefetch.
2. **Instruction fetch** -- the head entry, once its line is resident,
   feeds up to ``fetch_width`` instructions per cycle into the decode
   queue.  The first time an entry is fetched it is pre-decoded, which
   is where PFC (Section III-B) and GHR2/GHR3 history fixups
   (Section III-A) fire.

PFC cases (Fig 5):

* **Case 1** -- an *unconditional* branch lies before the entry's
  termination offset: it was either predicted not-taken (impossible for
  a detected unconditional here) or missed in the BTB.  Its target is
  recoverable for PC-relative branches (from the encoding) and returns
  (from the RAS); register-indirect branches cannot be corrected.
* **Case 2** -- a *conditional* PC-relative branch before the end whose
  direction hint says taken: always a BTB miss.

Either way the FTQ is flushed behind the entry, the history is fixed,
and prediction re-steers from the branch target immediately instead of
waiting for the backend to flush the pipeline.

Stage interface: :data:`repro.core.schedule.CYCLE_SCHEDULE` binds
``complete_fills(fills, cycle)`` (the ``memory_fill`` stage),
``fetch_stage(cycle)`` and ``probe_stage(cycle)`` once before the loop
starts (conformance pinned by ``validate_stage_interfaces``).
"""

from __future__ import annotations

from bisect import bisect_left

from repro.branch.history import HistoryManager
from repro.common.params import SimParams
from repro.common.stats import StatSet
from repro.frontend.bpu import WRONG_PATH, BranchPredictionUnit, compute_fault
from repro.frontend.ftq import (
    FTQ,
    STATE_AWAIT_FILL,
    STATE_AWAIT_PROBE,
    STATE_READY,
    FTQEntry,
)
from repro.isa.instructions import BranchKind
from repro.memory.hierarchy import InstructionMemory
from repro.trace.cfg import Program
from repro.trace.fbmeta import PD_COND, PD_INDIRECT, PD_RETURN
from repro.trace.oracle import OracleStream


class FetchUnit:
    """Probe + fetch stages of the decoupled frontend."""

    def __init__(
        self,
        params: SimParams,
        program: Program,
        stream: OracleStream,
        ftq: FTQ,
        memory: InstructionMemory,
        bpu: BranchPredictionUnit,
        hist_mgr: HistoryManager,
        direction,
        decode_queue,
        stats: StatSet,
        prefetcher=None,
    ) -> None:
        self.params = params
        self.program = program
        self.stream = stream
        self.ftq = ftq
        self.memory = memory
        self.bpu = bpu
        self.mgr = hist_mgr
        self.direction = direction
        self.decode_queue = decode_queue
        self.stats = stats
        self.prefetcher = prefetcher
        self.telemetry = None
        """Optional telemetry hub (set by Telemetry.attach on traced runs)."""
        # Per-cycle loop constants, bound once (hot path).
        self._fetch_width = params.frontend.fetch_width
        self._probe_width = params.frontend.fetch_probe_width
        self._wrong_path_fills = params.frontend.wrong_path_fills
        # Precompiled static-image branch arrays (repro.trace.fbmeta):
        # the PFC pre-decoder bisects these instead of walking the block
        # through the image dictionary 4 bytes at a time.
        meta = program.fetch_meta()
        self._meta_addrs = meta.addrs
        self._meta_kinds = meta.kinds
        self._meta_targets = meta.targets
        self._meta_pd = meta.pd_class

    # ------------------------------------------------------------------
    # Fill wakeups
    # ------------------------------------------------------------------
    def complete_fills(self, fills, cycle: int) -> None:
        """Wake FTQ entries whose lines arrived this cycle."""
        for mshr in fills:
            for waiter in mshr.waiters:
                entry = waiter
                if entry.state == STATE_AWAIT_FILL:
                    entry.state = STATE_READY
                    entry.way = 0
                    entry.ready_cycle = cycle
            if self.prefetcher is not None:
                self.prefetcher.on_fill(mshr.line, cycle, mshr.is_prefetch)

    # ------------------------------------------------------------------
    # Probe stage
    # ------------------------------------------------------------------
    def probe_stage(self, cycle: int) -> None:
        """Oldest awaiting entries probe I-TLB + I-cache tags."""
        ftq = self.ftq
        entries = ftq._entries
        n = len(entries)
        # Skip the settled prefix (states only move forward); amortised
        # O(1) per entry instead of a full re-scan every cycle.
        start = ftq.probe_ptr
        while start < n and entries[start].state != STATE_AWAIT_PROBE:
            start += 1
        ftq.probe_ptr = start
        if start >= n:
            return
        probes = self._probe_width
        wrong_path_fills = self._wrong_path_fills
        demand_probe = self.memory.demand_probe
        prefetcher = self.prefetcher
        for idx in range(start, n):
            if probes <= 0:
                break
            entry = entries[idx]
            if entry.state != STATE_AWAIT_PROBE:
                continue
            if not wrong_path_fills and entry.cursor_seg == WRONG_PATH:
                # Ablation mode: wrong-path entries consume no memory
                # bandwidth; they become trivially 'ready' and are
                # discarded by the flush before mattering.
                entry.state = STATE_READY
                entry.ready_cycle = cycle + 1
                entry.way = 0
                continue
            probes -= 1
            result = demand_probe(entry.start, cycle, waiter=entry)
            if result.hit:
                entry.state = STATE_READY
                entry.way = result.way
                entry.ready_cycle = result.ready_cycle
            elif result.issued:
                entry.state = STATE_AWAIT_FILL
                # Fig 14 classifies miss *transactions*: a secondary miss
                # merging into an in-flight demand fill is not one.
                entry.missed = result.primary
                entry.miss_issued_at_head = result.primary and idx == 0
            else:
                # MSHR full; retry next cycle.
                self.stats.bump("probe_retry")
                entry.missed = True
            if prefetcher is not None:
                # Secondary misses merge into an in-flight transaction;
                # the prefetcher sees one miss event per transaction.
                line = self.memory.l1i.line_of(entry.start)
                prefetcher.on_access(line, result.hit or not result.primary, cycle)

    # ------------------------------------------------------------------
    # Fetch stage
    # ------------------------------------------------------------------
    def fetch_stage(self, cycle: int) -> None:
        """Move instructions from ready head entries to the decode queue."""
        fetch_width = self._fetch_width
        ftq = self.ftq
        dq = self.decode_queue
        budget = min(fetch_width, dq.free_slots)
        while budget > 0:
            head = ftq.head
            if head is None:
                break
            if head.state != STATE_READY or head.ready_cycle > cycle:
                if dq.total_instrs < fetch_width:
                    head.starved_while_head = True
                break
            if not head.pfc_checked:
                head.pfc_checked = True
                self._predecode_checks(head, cycle)
            if head.consumed == 0:
                self._classify_miss(head)
            take = min(budget, head.remaining)
            self._push_chunk(head, take)
            head.consumed += take
            budget -= take
            if head.remaining == 0:
                ftq.pop_head()

    def _push_chunk(self, entry: FTQEntry, take: int) -> None:
        """Hand ``take`` instructions of ``entry`` to the decode queue."""
        fault = None
        fault_index = -1
        wrong_path = entry.cursor_seg == WRONG_PATH
        if entry.fault is not None:
            rel = (entry.fault.pc - entry.start) >> 2
            if entry.consumed <= rel < entry.consumed + take:
                fault = entry.fault
                fault_index = rel - entry.consumed
            elif entry.consumed > rel:
                # Instructions past the divergence point are wrong-path;
                # normally the fault's flush clears them first, but be
                # explicit so they can never train or commit.
                wrong_path = True
        self.decode_queue.push(
            n_instrs=take,
            fault=fault,
            fault_index=fault_index,
            wrong_path=wrong_path,
        )

    def _classify_miss(self, entry: FTQEntry) -> None:
        """Fig 14 classification, at first consumption of the entry."""
        if not entry.missed:
            return
        if entry.miss_issued_at_head:
            self.stats.bump("miss_fully_exposed")
        elif entry.starved_while_head:
            self.stats.bump("miss_partially_exposed")
        else:
            self.stats.bump("miss_covered")

    # ------------------------------------------------------------------
    # Pre-decode: PFC and history fixups
    # ------------------------------------------------------------------
    def _predecode_checks(self, entry: FTQEntry, cycle: int) -> None:
        """Scan pre-decoded branches before the termination offset."""
        pfc_on = self.params.frontend.pfc_enabled
        fixup_on = self.mgr.fixes_not_taken
        if not pfc_on and not fixup_on:
            return
        detected = entry.detected
        addrs = self._meta_addrs
        kinds = self._meta_kinds
        targets = self._meta_targets
        pd = self._meta_pd
        lo = bisect_left(addrs, entry.start)
        hi = bisect_left(addrs, entry.term_addr)
        for i in range(lo, hi):
            p = addrs[i]
            if p in detected:
                continue
            kind = kinds[i]
            cls = pd[i]
            if cls != PD_COND:
                # Unconditional branch before the terminator (PFC case 1).
                if not pfc_on:
                    continue
                if cls == PD_RETURN:
                    target = entry.ras_top
                elif cls == PD_INDIRECT:
                    target = None
                else:
                    target = targets[i]
                if target is None:
                    self.stats.bump("pfc_uncorrectable_indirect")
                    continue
                self.stats.bump("pfc_case1")
                if self.telemetry is not None:
                    self.telemetry.event("pfc", case=1, pc=p, target=target)
                self._resteer(entry, p, True, target, kind, cycle, self.params.core.pfc_resteer_penalty)
                return
            # Conditional, undetected.
            hint = self._hint(entry, p)
            if hint and pfc_on:
                self.stats.bump("pfc_case2")
                if self.telemetry is not None:
                    self.telemetry.event("pfc", case=2, pc=p, target=targets[i])
                self._resteer(entry, p, True, targets[i], kind, cycle, self.params.core.pfc_resteer_penalty)
                return
            if not hint and fixup_on:
                self.stats.bump("ghr_fixup_flush")
                if self.telemetry is not None:
                    self.telemetry.event("fixup", pc=p)
                self._resteer(
                    entry, p, False, 0, kind, cycle,
                    self.params.core.history_fixup_penalty, reason="fixup",
                )
                return

    def _hint(self, entry: FTQEntry, addr: int) -> bool:
        """The EV8-style per-slot direction hint bit (lazily evaluated
        with the history the prediction pipeline held for this slot)."""
        hist = entry.hist_before(addr, self.mgr)
        if self.params.branch.perfect_direction:
            if entry.cursor_seg == WRONG_PATH:
                return False
            seg = self.stream.segments[entry.cursor_seg]
            return seg.next_start != 0 and seg.end == addr
        return self.direction.predict(addr, hist)

    def _resteer(
        self,
        entry: FTQEntry,
        p: int,
        taken: bool,
        target: int,
        kind: BranchKind,
        cycle: int,
        penalty: int,
        reason: str = "pfc",
    ) -> None:
        """Truncate ``entry`` at ``p``, flush younger work, restart the BPU."""
        old_fault = entry.fault
        next_pc = target if taken else p + 4
        entry.truncate(p, taken, target)
        self.ftq.flush_younger_than(entry)

        # Fix the global history up to and including the branch.
        hist = entry.hist_before(p, self.mgr)
        if taken:
            hist = self.mgr.push_taken(hist, p, target)
        else:
            hist = self.mgr.push_not_taken(hist)

        # Recompute the entry's divergence with the corrected terminator.
        cursor = WRONG_PATH
        if entry.cursor_seg != WRONG_PATH:
            detected = frozenset(entry.detected) | {p}
            fault, cont = compute_fault(
                self.stream,
                entry.cursor_seg,
                entry.start,
                p,
                taken,
                target,
                detected,
                self.program,
            )
            entry.fault = fault
            if fault is None:
                cursor = cont
                if old_fault is not None and old_fault.pc == p:
                    self.stats.bump("pfc_corrected_mispredict")
            else:
                if fault.kind_label == "pred_taken_wrong" and taken:
                    self.stats.bump("pfc_false_positive")
        else:
            # Entry was already wrong-path; the re-steer stays wrong-path.
            entry.fault = old_fault

        # Apply the branch's RAS effect to the speculative RAS.  (Pushes
        # and pops from flushed younger entries are not unwound -- real
        # checkpointing recovers them; ours self-heals at the next
        # backend flush.  See DESIGN.md deviations.)
        if taken and kind.is_call:
            self.bpu.ras.push(p + 4)
        elif taken and kind.is_return:
            self.bpu.ras.pop()

        self.bpu.resteer(next_pc, hist, cursor, cycle + penalty, reason=reason)
        self.stats.bump("frontend_resteer")
