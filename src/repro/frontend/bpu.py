"""Branch prediction pipeline (Section IV-B).

The BPU runs ahead of instruction fetch, walking the *predicted* path:
each step scans one fetch block against the BTB, asks the direction
predictor about detected conditionals, resolves taken targets (BTB /
ITTAGE / RAS), pushes the result into the FTQ, and updates the
speculative global history according to the active policy.

The simulator tracks, per FTQ entry, where the predicted path first
diverges from the oracle stream (:func:`compute_fault`).  The machine
does not see this annotation -- it learns about the divergence when the
backend consumes the faulting instruction (pipeline flush) or when PFC
catches it at pre-decode.

Perfect-predictor modes (Figs 1/6a/12) consult the oracle directly
while the BPU is on the correct path; on the wrong path they fall back
to 'not taken' / no target, which is the only meaningful semantics for
an oracle.

Stage interface: the ``predict`` stage of
:data:`repro.core.schedule.CYCLE_SCHEDULE` binds ``cycle(cycle, ftq)``
once before the loop starts (conformance pinned by
``validate_stage_interfaces``).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass

from repro.branch.btb import BTB
from repro.branch.history import HistoryManager
from repro.branch.ittage import ITTAGE
from repro.branch.ras import ReturnAddressStack
from repro.common.params import SimParams
from repro.common.stats import StatSet
from repro.frontend.ftq import FTQ, FTQEntry
from repro.isa.instructions import BranchKind
from repro.trace.cfg import Program
from repro.trace.oracle import OracleStream

WRONG_PATH = -1
"""Cursor value meaning the predicted stream has left the oracle path."""


@dataclass(slots=True)
class Fault:
    """First divergence between an FTQ entry's prediction and the oracle."""

    pc: int
    kind_label: str
    """'pred_taken_wrong' | 'wrong_target' | 'dir_nt' | 'btb_miss' | 'oracle_end'"""
    branch_kind: BranchKind
    taken: bool
    """Actual (oracle) outcome of the faulting branch."""
    target: int
    """Actual target when taken."""
    correct_next: int
    next_seg: int
    """Oracle segment index at ``correct_next``."""


def compute_fault(
    stream: OracleStream,
    seg_idx: int,
    start: int,
    term_addr: int,
    pred_taken: bool,
    pred_target: int,
    detected: tuple[int, ...] | frozenset | set,
    program: Program,
) -> tuple[Fault | None, int]:
    """Compare a predicted entry [start..term_addr] against the oracle.

    Returns ``(fault, cont_seg)``: the first divergence (or None) and
    the oracle segment index the *predicted* stream continues in when
    there is no fault.  ``cont_seg`` is :data:`WRONG_PATH` when the
    oracle stream is exhausted.

    Precondition: ``start`` lies on the oracle path inside segment
    ``seg_idx`` (the BPU maintains this invariant).
    """
    segments = stream.segments
    seg = segments[seg_idx]
    transfer = seg.taken_branch
    if transfer is None or seg.next_start == 0:
        # Stream end inside the run-ahead window; with the generation
        # slack this only happens at the very end of a simulation.
        return None, WRONG_PATH

    t_addr = seg.end  # address of the oracle's next taken transfer

    def missed_kind(addr: int) -> str:
        return "dir_nt" if addr in detected else "btb_miss"

    if t_addr > term_addr:
        # Oracle continues sequentially past this entry.
        if pred_taken:
            instr = program.instruction_at(term_addr)
            return (
                Fault(
                    pc=term_addr,
                    kind_label="pred_taken_wrong",
                    branch_kind=instr.kind if instr else BranchKind.NONE,
                    taken=False,
                    target=0,
                    correct_next=term_addr + 4,
                    next_seg=seg_idx,
                ),
                seg_idx,
            )
        return None, seg_idx

    if t_addr == term_addr:
        _, kind, _, target = transfer
        if pred_taken:
            if pred_target == seg.next_start:
                return None, seg_idx + 1
            return (
                Fault(
                    pc=term_addr,
                    kind_label="wrong_target",
                    branch_kind=kind,
                    taken=True,
                    target=seg.next_start,
                    correct_next=seg.next_start,
                    next_seg=seg_idx + 1,
                ),
                seg_idx + 1,
            )
        return (
            Fault(
                pc=term_addr,
                kind_label=missed_kind(term_addr),
                branch_kind=kind,
                taken=True,
                target=seg.next_start,
                correct_next=seg.next_start,
                next_seg=seg_idx + 1,
            ),
            seg_idx + 1,
        )

    # t_addr < term_addr: the oracle takes a branch inside the entry
    # that the prediction sailed past.
    _, kind, _, target = transfer
    return (
        Fault(
            pc=t_addr,
            kind_label=missed_kind(t_addr),
            branch_kind=kind,
            taken=True,
            target=seg.next_start,
            correct_next=seg.next_start,
            next_seg=seg_idx + 1,
        ),
        seg_idx + 1,
    )


class BranchPredictionUnit:
    """The run-ahead prediction pipeline feeding the FTQ."""

    def __init__(
        self,
        params: SimParams,
        program: Program,
        stream: OracleStream,
        btb: BTB,
        direction,
        ittage: ITTAGE,
        hist_mgr: HistoryManager,
        stats: StatSet,
    ) -> None:
        self.params = params
        self.program = program
        self.stream = stream
        self.btb = btb
        self.direction = direction
        self.ittage = ittage
        self.mgr = hist_mgr
        self.stats = stats
        self.ras = ReturnAddressStack(params.branch.ras_entries)
        self.loop = None
        """Optional LoopPredictor; attached by the simulator when enabled."""
        self.telemetry = None
        """Optional telemetry hub (set by Telemetry.attach on traced runs)."""
        self.last_resteer_reason = ""
        """Cause label of the most recent re-steer (cycle accounting)."""
        self.last_resteer_until = 0
        """Cycle at which the most recent re-steer stall expires."""

        self.pc = stream.segments[0].start if stream.segments else program.entry
        self.hist = 0
        self.cursor_seg = 0 if stream.segments else WRONG_PATH
        self.stall_until = 0
        self._uid = 0
        self._block_mask = ~(params.frontend.block_bytes - 1)
        self._block_last = params.frontend.block_bytes - 4
        # Per-cycle loop constants, bound once (hot path).
        self._predict_width = params.frontend.predict_width
        self._max_taken = params.frontend.max_taken_per_cycle
        self._two_level_btb = bool(params.branch.btb_l1_entries)
        self._perfect_btb = params.branch.perfect_btb
        self._perfect_direction = params.branch.perfect_direction
        self._perfect_indirect = params.branch.perfect_indirect
        self._segments = stream.segments
        # Precompiled static-image branch arrays (repro.trace.fbmeta):
        # the perfect-BTB candidate scan slices these instead of probing
        # the image dictionary 4 bytes at a time.
        meta = program.fetch_meta()
        self._meta_addrs = meta.addrs
        self._meta_triples = meta.triples

    # ------------------------------------------------------------------
    # Per-cycle operation
    # ------------------------------------------------------------------
    def cycle(self, cycle: int, ftq: FTQ) -> None:
        """Produce up to ``predict_width`` instructions of fetch targets."""
        if cycle < self.stall_until:
            return
        budget = self._predict_width
        taken_budget = self._max_taken
        while budget > 0 and not ftq.full:
            entry = self._predict_entry()
            ftq.push(entry)
            self.stats.bump("ftq_entries_created")
            budget -= entry.n_instrs
            if entry.pred_taken:
                # A taken prediction served by the second-level BTB
                # bubbles the prediction pipeline (two-level hierarchy,
                # Section II-B).
                if self._two_level_btb and self.btb.was_l2_sourced(entry.term_addr):
                    self.stats.bump("btb_l2_taken_predictions")
                    self.stall_until = max(
                        self.stall_until,
                        cycle + 1 + self.params.branch.btb_l2_extra_latency,
                    )
                    break
                taken_budget -= 1
                if taken_budget <= 0:
                    break

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def validate_state(self) -> list[str]:
        """On-path cursor invariants (:mod:`repro.check`); side-effect free.

        Whenever the BPU believes it is on the oracle path, its PC must
        actually lie inside the segment its cursor points at -- this is
        the precondition :func:`compute_fault` documents, maintained by
        every re-steer and entry-continuation path.
        """
        problems: list[str] = []
        if self.cursor_seg == WRONG_PATH:
            return problems
        segs = self._segments
        if not 0 <= self.cursor_seg < len(segs):
            problems.append(f"BPU cursor segment {self.cursor_seg} outside [0, {len(segs)})")
            return problems
        if self.pc % 4:
            problems.append(f"BPU pc {self.pc:#x} not instruction aligned")
        seg = segs[self.cursor_seg]
        if not seg.start <= self.pc <= seg.end:
            problems.append(
                f"BPU on-path pc {self.pc:#x} outside segment {self.cursor_seg} "
                f"[{seg.start:#x}..{seg.end:#x}]"
            )
        return problems

    # ------------------------------------------------------------------
    # Re-steer (backend flush, PFC, history fixup)
    # ------------------------------------------------------------------
    def resteer(
        self, pc: int, hist: int, cursor_seg: int, ready_cycle: int, reason: str = ""
    ) -> None:
        """Restart prediction at ``pc``; the caller restores the RAS.

        ``reason`` labels the cause (``flush:<fault>`` from a backend
        flush, ``pfc``/``fixup`` from pre-decode) so cycle accounting
        can attribute the refill stall that follows; it has no
        architectural effect.
        """
        self.pc = pc
        self.hist = hist
        self.cursor_seg = cursor_seg
        # The prediction pipeline must refill through the BTB.
        until = ready_cycle + self.params.branch.btb_latency
        self.stall_until = max(self.stall_until, until)
        self.last_resteer_reason = reason
        self.last_resteer_until = until
        tel = self.telemetry
        if tel is not None:
            tel.event("resteer", pc=pc, reason=reason or "unspecified", until=until)

    # ------------------------------------------------------------------
    # Entry formation
    # ------------------------------------------------------------------
    def _predict_entry(self) -> FTQEntry:
        start = self.pc
        on_path = self.cursor_seg != WRONG_PATH
        seg = self._segments[self.cursor_seg] if on_path else None
        block_last = (start & self._block_mask) + self._block_last
        mgr = self.mgr
        target_history = mgr._target_history
        ideal = mgr._ideal

        hist = self.hist
        hist_snapshot = hist
        detected: list[int] = []
        dir_pushes: list[tuple[int, bool]] = []
        ras_top = self.ras.top()

        pred_taken = False
        pred_target = 0
        term_addr = block_last

        candidates = self._candidates(start, block_last)
        for addr, kind, btb_target in candidates:
            if kind is BranchKind.COND_DIRECT:
                override = self.loop.predict(addr) if self.loop is not None else None
                if override is None:
                    taken = self._predict_direction(addr, hist, seg)
                else:
                    taken = override
                detected.append(addr)
                if not taken:
                    if not target_history and not ideal:
                        hist = mgr.push_not_taken(hist)
                        dir_pushes.append((addr, False))
                    continue
                target = btb_target
            else:
                taken = True
                detected.append(addr)
                target = self._resolve_target(addr, kind, btb_target, hist, seg)
            # Taken branch terminates the entry.
            if kind.is_call:
                self.ras.push(addr + 4)
            elif kind.is_return:
                popped = self.ras.pop()
                if popped is not None:
                    target = popped
            if not ideal:
                hist = mgr.spec_push(hist, addr, True, target)
                if not target_history:
                    dir_pushes.append((addr, True))
            pred_taken = True
            pred_target = target
            term_addr = addr
            self.stats.bump("bpu_taken_predictions")
            break

        # Ideal history: push precise oracle outcomes for every branch
        # in the covered range while on the correct path.
        if ideal:
            if on_path:
                hist = self._ideal_pushes(seg, start, term_addr, hist, dir_pushes)
            else:
                for addr in detected:
                    bit = addr == term_addr and pred_taken
                    hist = mgr.push_outcome(hist, addr, bit, pred_target)
                    dir_pushes.append((addr, bit))

        # Candidates arrive in address order (BTB.scan_block sorts; the
        # precompiled metadata is sorted), so everything appended to
        # ``detected`` before the taken-branch break is <= term_addr.
        detected_upto = tuple(detected)
        fault = None
        cont_seg = WRONG_PATH
        if on_path:
            fault, cont_seg = compute_fault(
                self.stream,
                self.cursor_seg,
                start,
                term_addr,
                pred_taken,
                pred_target,
                detected_upto,
                self.program,
            )

        entry = FTQEntry(
            uid=self._uid,
            start=start,
            term_addr=term_addr,
            pred_taken=pred_taken,
            pred_target=pred_target,
            hist_snapshot=hist_snapshot,
            detected=detected_upto,
            dir_pushes=tuple(dir_pushes),
            ras_top=ras_top,
            cursor_seg=self.cursor_seg if on_path else WRONG_PATH,
            fault=fault,
        )
        self._uid += 1

        self.hist = hist
        self.pc = entry.next_fetch_addr
        if not on_path or fault is not None:
            self.cursor_seg = WRONG_PATH
        else:
            self.cursor_seg = cont_seg
        return entry

    # ------------------------------------------------------------------
    # Branch discovery and prediction helpers
    # ------------------------------------------------------------------
    def _candidates(self, start: int, block_last: int):
        """Branches visible to the prediction pipeline in [start..block_last].

        With a real BTB this is the 16B-set scan; with a perfect BTB
        (Figs 6a/10/11) every branch in the static image is visible.
        """
        if self._perfect_btb:
            addrs = self._meta_addrs
            lo = bisect_left(addrs, start)
            hi = bisect_right(addrs, block_last)
            return self._meta_triples[lo:hi]
        # scan_block already bounds start <= addr <= block_last, sorted.
        return [(e.addr, e.kind, e.target) for e in self.btb.scan_block(start, block_last)]

    def _predict_direction(self, addr: int, hist: int, seg) -> bool:
        if self._perfect_direction:
            if seg is not None:
                return seg.next_start != 0 and seg.end == addr and seg.taken_branch is not None
            return False
        return self.direction.predict(addr, hist)

    def _resolve_target(self, addr: int, kind: BranchKind, btb_target: int, hist: int, seg) -> int:
        """Target of a predicted-taken non-conditional branch."""
        if kind.is_pc_relative:
            return btb_target
        if kind.is_return:
            # Resolved by the RAS pop in the caller; BTB target is the
            # fallback when the RAS underflows.
            return btb_target
        # Register-indirect.
        if self._perfect_indirect and seg is not None:
            if seg.end == addr and seg.next_start:
                return seg.next_start
        predicted = self.ittage.predict(addr, hist)
        return predicted if predicted is not None else btb_target

    def _ideal_pushes(self, seg, start: int, term_addr: int, hist: int, dir_pushes: list) -> int:
        """Push precise oracle outcomes for all branches in [start..term_addr]."""
        for addr, kind, taken, target in seg.branches:
            if addr < start or addr > term_addr:
                continue
            hist = self.mgr.push_outcome(hist, addr, taken, target)
            dir_pushes.append((addr, taken))
        return hist
