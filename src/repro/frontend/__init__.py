"""Decoupled frontend: FTQ, branch-prediction pipeline, fetch pipeline, PFC."""

from repro.frontend.bpu import BranchPredictionUnit, Fault, compute_fault
from repro.frontend.fetch import FetchUnit
from repro.frontend.ftq import FTQ, FTQEntry

__all__ = [
    "BranchPredictionUnit",
    "Fault",
    "compute_fault",
    "FetchUnit",
    "FTQ",
    "FTQEntry",
]
