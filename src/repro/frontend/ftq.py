"""Fetch Target Queue.

The FTQ is the only structure FDP adds to a decoupled frontend
(Section IV-A).  Each entry covers (part of) one aligned fetch block;
its architectural fields follow Table III exactly -- start address,
predicted-taken bit, block-termination offset, I-cache way, 2-bit
state, and the per-instruction direction-hint bits that our extended
PFC adds.  The remaining attributes are simulator bookkeeping (history
snapshots, oracle cursor, miss-classification flags), not hardware
state; :func:`entry_storage_bits` in :mod:`repro.core.metrics` computes
the real 195-byte cost from the architectural fields alone.

Stage interface: the ``predict`` stage of
:data:`repro.core.schedule.CYCLE_SCHEDULE` binds the FTQ object itself
(it is passed to ``bpu.cycle`` every cycle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.frontend.bpu import Fault

# FTQ entry states (Table III / Section IV-C).
STATE_AWAIT_PROBE = 1
"""Branch prediction completed; waiting for I-TLB/I-cache tag lookup."""
STATE_AWAIT_FILL = 2
"""Tag lookup missed; an I-cache fill is in flight."""
STATE_READY = 3
"""Line resident; instructions can be sent to the decode queue."""


@dataclass(slots=True)
class FTQEntry:
    """One FTQ entry plus simulator-side annotations."""

    uid: int
    start: int
    term_addr: int
    pred_taken: bool
    pred_target: int
    hist_snapshot: int
    detected: tuple[int, ...] = ()
    dir_pushes: tuple[tuple[int, bool], ...] = ()
    """(branch addr, pushed bit) for detected branches, in address order;
    empty under target history (nothing is pushed before the terminator)."""
    ras_top: int | None = None
    cursor_seg: int = -1
    """Oracle segment index at ``start``; -1 = entry begins on the wrong path."""
    fault: "Fault | None" = None

    # Fetch-pipeline state.
    state: int = STATE_AWAIT_PROBE
    way: int = -1
    ready_cycle: int = -1
    consumed: int = 0
    """Instructions already moved to the decode queue."""

    # Miss-classification bookkeeping (Fig 14).
    missed: bool = False
    miss_issued_at_head: bool = False
    starved_while_head: bool = False
    pfc_checked: bool = False

    def __post_init__(self) -> None:
        if self.term_addr < self.start:
            raise ValueError("entry must cover at least one instruction")
        if (self.term_addr - self.start) % 4:
            raise ValueError("entry bounds must be instruction aligned")

    @property
    def n_instrs(self) -> int:
        return ((self.term_addr - self.start) >> 2) + 1

    @property
    def remaining(self) -> int:
        return self.n_instrs - self.consumed

    @property
    def next_fetch_addr(self) -> int:
        """Address the stream continues at after this entry."""
        if self.pred_taken:
            return self.pred_target
        return self.term_addr + 4

    def truncate(self, new_term: int, taken: bool, target: int) -> None:
        """Shrink the entry (PFC / history-fixup re-steer at ``new_term``)."""
        if not self.start <= new_term <= self.term_addr:
            raise ValueError("truncation point outside entry")
        self.term_addr = new_term
        self.pred_taken = taken
        self.pred_target = target

    def hist_before(self, addr: int, mgr) -> int:
        """History the frontend held just before slot ``addr``.

        Replays this entry's recorded pushes for detected branches older
        than ``addr`` on top of the entry-start snapshot.  Under target
        history there are no intra-entry pushes (footnote 1 of the
        paper), so this returns the snapshot unchanged.
        """
        hist = self.hist_snapshot
        for push_addr, bit in self.dir_pushes:
            if push_addr >= addr:
                break
            if bit:
                hist = mgr.push_taken(hist, push_addr, 0)
            else:
                hist = mgr.push_not_taken(hist)
        return hist


class FTQ:
    """Bounded in-order queue of fetch targets."""

    __slots__ = ("n_entries", "_entries", "telemetry", "probe_ptr")

    def __init__(self, n_entries: int) -> None:
        if n_entries < 1:
            raise ValueError("FTQ needs at least one entry")
        self.n_entries = n_entries
        # A list, not a deque: the probe stage indexes entries randomly
        # (probe_ptr prefix skip), which is O(1) on a list but O(n) on a
        # deque, and at <= a few dozen entries pop(0) is a trivial memmove.
        self._entries: list[FTQEntry] = []
        self.telemetry = None
        """Optional telemetry hub (set by Telemetry.attach on traced runs)."""
        self.probe_ptr = 0
        """Index of the oldest entry that may still be awaiting its
        I-TLB/I-cache probe.  Entry states only move forward, so the
        probe stage can skip the settled prefix instead of re-scanning
        it every cycle; the pointer is purely an iteration hint (it may
        lag, never lead) and has no architectural meaning."""

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __getitem__(self, idx: int) -> FTQEntry:
        return self._entries[idx]

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.n_entries

    @property
    def head(self) -> FTQEntry | None:
        return self._entries[0] if self._entries else None

    def push(self, entry: FTQEntry) -> None:
        if self.full:
            raise RuntimeError("push into a full FTQ")
        self._entries.append(entry)
        tel = self.telemetry
        if tel is not None:
            tel.event(
                "ftq_push",
                uid=entry.uid,
                start=entry.start,
                n=entry.n_instrs,
                taken=entry.pred_taken,
            )

    def pop_head(self) -> FTQEntry:
        entry = self._entries.pop(0)
        if self.probe_ptr > 0:
            self.probe_ptr -= 1
        tel = self.telemetry
        if tel is not None:
            tel.event("ftq_pop", uid=entry.uid, start=entry.start, missed=entry.missed)
        return entry

    def flush_all(self) -> int:
        """Backend flush: discard everything."""
        n = len(self._entries)
        self._entries.clear()
        self.probe_ptr = 0
        tel = self.telemetry
        if tel is not None and n:
            tel.event("ftq_flush", n=n)
        return n

    def validate(self, block_bytes: int = 0) -> list[str]:
        """Structural invariants (:mod:`repro.check`); side-effect free.

        Returns human-readable descriptions of every violated invariant:
        occupancy bound, legal entry states, instruction-aligned bounds
        within one fetch block (when ``block_bytes`` is given), head-only
        partial consumption, the probe-pointer prefix property (entries
        behind ``probe_ptr`` are past their probe), and stream
        contiguity -- each entry starts where its older neighbour's
        predicted path continues.
        """
        problems: list[str] = []
        entries = self._entries
        if len(entries) > self.n_entries:
            problems.append(f"FTQ holds {len(entries)} entries, capacity {self.n_entries}")
        if not 0 <= self.probe_ptr <= len(entries):
            problems.append(f"probe_ptr {self.probe_ptr} outside [0, {len(entries)}]")
        block_mask = ~(block_bytes - 1) if block_bytes else 0
        for i, e in enumerate(entries):
            tag = f"FTQ[{i}] uid={e.uid}"
            if e.state not in (STATE_AWAIT_PROBE, STATE_AWAIT_FILL, STATE_READY):
                problems.append(f"{tag}: invalid state {e.state}")
            if e.term_addr < e.start or (e.term_addr - e.start) % 4:
                problems.append(
                    f"{tag}: bounds [{e.start:#x}..{e.term_addr:#x}] not instruction aligned"
                )
            if block_bytes and (e.start & block_mask) != (e.term_addr & block_mask):
                problems.append(f"{tag}: spans a {block_bytes}-byte fetch-block boundary")
            if not 0 <= e.consumed < e.n_instrs:
                problems.append(f"{tag}: consumed {e.consumed} outside [0, {e.n_instrs})")
            if i > 0 and e.consumed:
                problems.append(f"{tag}: non-head entry partially consumed")
            if i < self.probe_ptr and e.state == STATE_AWAIT_PROBE:
                problems.append(f"{tag}: awaiting probe behind probe_ptr {self.probe_ptr}")
            if i + 1 < len(entries) and entries[i + 1].start != e.next_fetch_addr:
                problems.append(
                    f"{tag}: stream discontinuity (next entry starts at "
                    f"{entries[i + 1].start:#x}, expected {e.next_fetch_addr:#x})"
                )
        return problems

    def flush_younger_than(self, entry: FTQEntry) -> int:
        """PFC / fixup re-steer: discard entries younger than ``entry``."""
        count = 0
        while self._entries and self._entries[-1] is not entry:
            self._entries.pop()
            count += 1
        if not self._entries:
            raise ValueError("reference entry not in FTQ")
        if self.probe_ptr > len(self._entries):
            self.probe_ptr = len(self._entries)
        tel = self.telemetry
        if tel is not None and count:
            tel.event("ftq_trim", behind_uid=entry.uid, n=count)
        return count
