"""Generic set-associative cache model.

Holds line *presence* only (this is an instruction-side simulator; data
values come from the static program image).  LRU replacement, explicit
tag-probe accounting -- Fig 9's I-cache tag-access comparison is driven
by the ``tag_probes`` counter, so every lookup path is explicit about
whether it models a real tag-array access.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CacheAccess:
    """Result of a cache probe."""

    hit: bool
    way: int
    """Way holding the line on a hit (the FTQ records this, Table III)."""
    victim: int
    """Line address evicted by a fill (0 when no eviction happened)."""


_MISS = CacheAccess(hit=False, way=-1, victim=0)
"""Shared miss result: immutable, so one instance serves every miss."""


class Cache:
    """Set-associative, LRU, line-presence cache.

    Sets are lists ordered most-recent-first; a list is tiny (the
    associativity), so MRU reordering is cheap.

    ``probe`` sits on the per-cycle path (every FTQ entry's tag lookup
    plus every prefetcher probe), so the set index uses a mask when
    ``n_sets`` is a power of two and falls back to ``%`` otherwise.
    """

    __slots__ = (
        "name",
        "assoc",
        "line_bytes",
        "n_sets",
        "_line_shift",
        "_line_mask",
        "_set_mask",
        "_sets",
        "tag_probes",
        "hits",
        "misses",
        "evictions",
    )

    def __init__(self, n_lines: int, assoc: int, line_bytes: int, name: str = "cache") -> None:
        if n_lines <= 0 or assoc <= 0:
            raise ValueError("cache geometry must be positive")
        if n_lines % assoc:
            raise ValueError("n_lines must be a multiple of assoc")
        if line_bytes & (line_bytes - 1):
            raise ValueError("line_bytes must be a power of two")
        self.name = name
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.n_sets = n_lines // assoc
        self._line_shift = line_bytes.bit_length() - 1
        self._line_mask = ~(line_bytes - 1)
        # Power-of-two set counts (every catalogue geometry) index with
        # a mask; -1 selects the modulo fallback.
        self._set_mask = self.n_sets - 1 if self.n_sets & (self.n_sets - 1) == 0 else -1
        # Each set: list of line addresses, index 0 = MRU.
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]
        self.tag_probes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _set_index(self, addr: int) -> int:
        if self._set_mask >= 0:
            return (addr >> self._line_shift) & self._set_mask
        return (addr >> self._line_shift) % self.n_sets

    def line_of(self, addr: int) -> int:
        """Line address containing byte address ``addr``."""
        return addr & self._line_mask

    def probe(self, addr: int, count_tag_access: bool = True) -> CacheAccess:
        """Tag lookup without fill.  Promotes the line to MRU on a hit."""
        if count_tag_access:
            self.tag_probes += 1
        line = addr & self._line_mask
        idx = addr >> self._line_shift
        idx = idx & self._set_mask if self._set_mask >= 0 else idx % self.n_sets
        ways = self._sets[idx]
        if ways:
            if ways[0] == line:  # MRU fast path: the common streaming case
                self.hits += 1
                return CacheAccess(hit=True, way=0, victim=0)
            for way, held in enumerate(ways):
                if held == line:
                    self.hits += 1
                    ways.remove(line)
                    ways.insert(0, line)
                    return CacheAccess(hit=True, way=way, victim=0)
        self.misses += 1
        return _MISS

    def contains(self, addr: int) -> bool:
        """Presence check with no side effects (no LRU update, no stats)."""
        line = self.line_of(addr)
        return line in self._sets[self._set_index(addr)]

    def fill(self, addr: int) -> CacheAccess:
        """Install the line holding ``addr``; returns the way and any victim.

        Filling a line already present just refreshes its LRU position.
        """
        line = self.line_of(addr)
        ways = self._sets[self._set_index(addr)]
        if line in ways:
            ways.remove(line)
            ways.insert(0, line)
            return CacheAccess(hit=True, way=0, victim=0)
        victim = 0
        if len(ways) >= self.assoc:
            victim = ways.pop()
            self.evictions += 1
        ways.insert(0, line)
        return CacheAccess(hit=False, way=0, victim=victim)

    def invalidate(self, addr: int) -> bool:
        """Drop the line holding ``addr`` if present."""
        line = self.line_of(addr)
        ways = self._sets[self._set_index(addr)]
        if line in ways:
            ways.remove(line)
            return True
        return False

    def reset_stats(self) -> None:
        """Zero the counters (used at the warmup/measure boundary)."""
        self.tag_probes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def occupancy(self) -> int:
        """Number of lines currently resident."""
        return sum(len(ways) for ways in self._sets)

    def snapshot(self) -> dict[str, int | float]:
        """Point-in-time counter snapshot for telemetry (no side effects)."""
        probes = self.tag_probes
        return {
            "tag_probes": probes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "occupancy": self.occupancy,
            "capacity_lines": self.n_sets * self.assoc,
            "hit_rate": self.hits / (self.hits + self.misses) if self.hits + self.misses else 0.0,
        }

    def validate(self) -> list[str]:
        """Structural invariants (:mod:`repro.check`); side-effect free.

        Per-set occupancy bound, no duplicate lines, line-address
        alignment, and correct set indexing of every resident line.
        """
        problems: list[str] = []
        for idx, ways in enumerate(self._sets):
            if len(ways) > self.assoc:
                problems.append(
                    f"{self.name} set {idx}: {len(ways)} lines exceed associativity {self.assoc}"
                )
            if len(set(ways)) != len(ways):
                problems.append(f"{self.name} set {idx}: duplicate resident line")
            for line in ways:
                if line % self.line_bytes:
                    problems.append(f"{self.name} set {idx}: misaligned line {line:#x}")
                elif self._set_index(line) != idx:
                    problems.append(
                        f"{self.name}: line {line:#x} resident in set {idx}, "
                        f"indexes to set {self._set_index(line)}"
                    )
        return problems

    def resident_lines(self) -> set[int]:
        """All resident line addresses (for tests and invariants)."""
        out: set[int] = set()
        for ways in self._sets:
            out.update(ways)
        return out
