"""Miss Status Holding Registers.

Tracks outstanding line fills.  A second request to a line already in
flight *merges* -- it neither consumes a new entry nor issues new
traffic, which is how redundant FDP probes and prefetches of the same
line coalesce (Section VI-D's traffic discussion).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class MSHREntry:
    """One outstanding fill."""

    line: int
    issue_cycle: int
    ready_cycle: int
    is_prefetch: bool
    waiters: list[object] = field(default_factory=list)
    """Opaque tokens (e.g. FTQ entry ids) notified on fill."""


class MSHRFile:
    """A bounded set of outstanding line-fill requests."""

    __slots__ = ("n_entries", "_by_line", "allocations", "merges", "rejections", "peak_occupancy")

    def __init__(self, n_entries: int) -> None:
        if n_entries <= 0:
            raise ValueError("need at least one MSHR")
        self.n_entries = n_entries
        self._by_line: dict[int, MSHREntry] = {}
        self.allocations = 0
        self.merges = 0
        self.rejections = 0
        self.peak_occupancy = 0
        """High-water mark of simultaneously outstanding fills."""

    def __len__(self) -> int:
        return len(self._by_line)

    @property
    def full(self) -> bool:
        return len(self._by_line) >= self.n_entries

    def lookup(self, line: int) -> MSHREntry | None:
        """Return the in-flight entry for ``line``, if any."""
        return self._by_line.get(line)

    def allocate(
        self,
        line: int,
        issue_cycle: int,
        ready_cycle: int,
        is_prefetch: bool,
        waiter: object | None = None,
    ) -> MSHREntry | None:
        """Allocate (or merge into) an entry for ``line``.

        Returns the entry, or None if the file is full and the line is
        not already in flight.  A demand merge into a prefetch entry
        *promotes* it (clears ``is_prefetch``), so accuracy accounting
        credits the prefetch.
        """
        entry = self._by_line.get(line)
        if entry is not None:
            self.merges += 1
            if not is_prefetch:
                entry.is_prefetch = False
            if waiter is not None:
                entry.waiters.append(waiter)
            return entry
        if self.full:
            self.rejections += 1
            return None
        entry = MSHREntry(
            line=line,
            issue_cycle=issue_cycle,
            ready_cycle=ready_cycle,
            is_prefetch=is_prefetch,
        )
        if waiter is not None:
            entry.waiters.append(waiter)
        self._by_line[line] = entry
        self.allocations += 1
        if len(self._by_line) > self.peak_occupancy:
            self.peak_occupancy = len(self._by_line)
        return entry

    def next_ready_cycle(self) -> int | None:
        """Earliest completion cycle over all outstanding fills.

        Returns None when nothing is in flight.  The idle-skip schedule
        hook uses this as a wake-up bound: no fill can install (and so
        no waiting FTQ entry can wake) before this cycle.
        """
        by_line = self._by_line
        if not by_line:
            return None
        return min(e.ready_cycle for e in by_line.values())

    def inflight_prefetches(self) -> int:
        """Outstanding fills still marked as prefetches (not yet demanded)."""
        return sum(1 for e in self._by_line.values() if e.is_prefetch)

    def pop_ready(self, cycle: int) -> list[MSHREntry]:
        """Remove and return all entries whose fill completes by ``cycle``."""
        by_line = self._by_line
        if not by_line:  # fast path: this runs every simulated cycle
            return []
        ready = [e for e in by_line.values() if e.ready_cycle <= cycle]
        if not ready:
            return ready
        for entry in ready:
            del by_line[entry.line]
        if len(ready) > 1:
            ready.sort(key=lambda e: e.ready_cycle)
        return ready

    def validate(self) -> list[str]:
        """Structural invariants (:mod:`repro.check`); side-effect free.

        Occupancy bound, key/entry line agreement (no duplicate lines by
        construction of the dict, but a corrupted key would alias two),
        and causal fill timing.
        """
        problems: list[str] = []
        if len(self._by_line) > self.n_entries:
            problems.append(f"MSHR holds {len(self._by_line)} fills, capacity {self.n_entries}")
        for line, entry in self._by_line.items():
            if entry.line != line:
                problems.append(f"MSHR key {line:#x} maps to entry for line {entry.line:#x}")
            if entry.ready_cycle < entry.issue_cycle:
                problems.append(
                    f"MSHR line {line:#x}: ready cycle {entry.ready_cycle} "
                    f"before issue cycle {entry.issue_cycle}"
                )
        return problems

    def flush_waiters(self) -> None:
        """Detach all waiters (on pipeline flush); fills still complete.

        Hardware does not cancel an outstanding fill on a flush -- the
        line arrives and is installed, it simply no longer wakes anyone.
        """
        for entry in self._by_line.values():
            entry.waiters.clear()

    def reset_stats(self) -> None:
        self.allocations = 0
        self.merges = 0
        self.rejections = 0
