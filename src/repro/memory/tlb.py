"""Instruction TLB.

The FTQ stores virtual addresses only; the fetch pipeline translates
just before the I-cache tag lookup (Section IV-A/C).  Translation is
identity-mapped (synthetic programs have no paging structure), so the
TLB models *latency* of misses, not address remapping.
"""

from __future__ import annotations

from collections import OrderedDict


class TLB:
    """Fully-associative LRU translation cache over fixed-size pages."""

    __slots__ = ("n_entries", "page_bytes", "miss_latency", "_pages", "hits", "misses")

    def __init__(self, n_entries: int, page_bytes: int, miss_latency: int) -> None:
        if n_entries <= 0:
            raise ValueError("need at least one TLB entry")
        if page_bytes & (page_bytes - 1):
            raise ValueError("page size must be a power of two")
        if miss_latency < 0:
            raise ValueError("miss latency cannot be negative")
        self.n_entries = n_entries
        self.page_bytes = page_bytes
        self.miss_latency = miss_latency
        self._pages: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def page_of(self, addr: int) -> int:
        return addr & ~(self.page_bytes - 1)

    def translate(self, addr: int) -> int:
        """Translate ``addr``; returns the added latency in cycles.

        A miss installs the page (the walk itself is folded into the
        returned latency rather than modelled as separate requests).
        """
        page = self.page_of(addr)
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return 0
        self.misses += 1
        if len(self._pages) >= self.n_entries:
            self._pages.popitem(last=False)
        self._pages[page] = None
        return self.miss_latency

    def contains(self, addr: int) -> bool:
        """Presence check with no side effects."""
        return self.page_of(addr) in self._pages

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
