"""Instruction-side memory hierarchy substrate.

Implements what the paper's frontend sits on top of: a set-associative
L1 I-cache with LRU, a unified L2, a fixed-latency DRAM backstop,
MSHRs with request merging, and an I-TLB.  All latencies are counted
in core cycles; there is no bandwidth model beyond MSHR occupancy,
matching the level of detail the paper's experiments depend on.
"""

from repro.memory.cache import Cache, CacheAccess
from repro.memory.hierarchy import InstructionMemory
from repro.memory.mshr import MSHRFile
from repro.memory.tlb import TLB

__all__ = ["Cache", "CacheAccess", "InstructionMemory", "MSHRFile", "TLB"]
