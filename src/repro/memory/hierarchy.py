"""Two-level instruction memory hierarchy with a DRAM backstop.

:class:`InstructionMemory` is the single entry point the frontend and
the prefetchers use:

* ``demand_probe``  -- FTQ-initiated I-TLB + I-cache tag lookup
  (Section IV-C); on a miss, issues a fill through the MSHRs.
* ``prefetch_line`` -- prefetcher-initiated fill; probes the tag array
  first (this is the redundant-probe cost Fig 9 charges dedicated
  prefetchers with) and issues if absent.
* ``tick``          -- completes due fills, installing lines into L1I
  (and L2 for DRAM returns), and reports them so the frontend can wake
  waiting FTQ entries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.params import MemoryParams
from repro.common.stats import StatSet
from repro.memory.cache import Cache
from repro.memory.mshr import MSHREntry, MSHRFile
from repro.memory.tlb import TLB


@dataclass(frozen=True, slots=True)
class ProbeResult:
    """Outcome of a demand tag probe."""

    hit: bool
    issued: bool
    """On a miss: True if a fill is in flight (new or merged); False means
    the MSHR file was full and the caller must retry."""
    way: int
    ready_cycle: int
    """Cycle at which the line's data can be consumed."""
    primary: bool = True
    """False for secondary misses merging into an outstanding demand fill
    (same transaction, not another miss event)."""


class InstructionMemory:
    """L1I + L2 + DRAM with MSHRs and an I-TLB."""

    def __init__(self, params: MemoryParams, stats: StatSet) -> None:
        self.params = params
        self.stats = stats
        self.l1i = Cache(params.l1i_lines, params.l1i_assoc, params.line_bytes, name="L1I")
        self.l2 = Cache(params.l2_lines, params.l2_assoc, params.line_bytes, name="L2")
        self.mshrs = MSHRFile(params.mshr_entries)
        self.itlb = TLB(params.itlb_entries, params.itlb_page_bytes, params.itlb_miss_latency)
        self.perfect = False
        """When True every demand access hits (Fig 1 / Fig 6a 'Perfect'
        prefetching); requests still issue so traffic is accounted."""
        self._prefetched_untouched: set[int] = set()
        self.telemetry = None
        """Optional telemetry hub (set by Telemetry.attach on traced runs)."""

    @property
    def untouched_prefetched_lines(self) -> int:
        """Prefetched lines resident in the L1I that no demand has touched."""
        return len(self._prefetched_untouched)

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------
    def demand_probe(self, addr: int, cycle: int, waiter: object | None = None) -> ProbeResult:
        """I-TLB + L1I tag probe for the fetch block holding ``addr``."""
        tlb_lat = self.itlb.translate(addr)
        self.stats.bump("l1i_tag_access")
        line = self.l1i.line_of(addr)
        access = self.l1i.probe(addr)
        if access.hit:
            self.stats.bump("l1i_hit")
            if line in self._prefetched_untouched:
                self._prefetched_untouched.discard(line)
                self.stats.bump("prefetch_useful")
            # Hits stream through the pipelined tag+data path: the array
            # latency is overlapped across consecutive blocks, so a hit
            # is consumable the next cycle.  (The full pipeline depth is
            # charged once per flush via the misprediction penalty.)
            return ProbeResult(
                hit=True,
                issued=False,
                way=access.way,
                ready_cycle=cycle + tlb_lat + 1,
            )

        self.stats.bump("l1i_tag_miss")
        if self.perfect:
            # Perfect prefetching (Section V): the line appears instantly,
            # but the request still goes out to model traffic.
            self.stats.bump("l1i_miss")
            self.l1i.fill(addr)
            self.stats.bump("memory_requests")
            return ProbeResult(
                hit=True,
                issued=False,
                way=0,
                ready_cycle=cycle + tlb_lat + 1,
            )

        inflight = self.mshrs.lookup(line)
        if inflight is not None:
            # Secondary miss: merge into the outstanding fill.  A merge
            # into a prefetch promotes it to a (late-covered) demand
            # transaction; a merge into a demand fill is the same
            # transaction and is not another miss.
            primary = inflight.is_prefetch
            if primary:
                self.stats.bump("prefetch_late")
                self.stats.bump("l1i_miss")
            else:
                self.stats.bump("l1i_miss_secondary")
            self.mshrs.allocate(
                line,
                issue_cycle=cycle,
                ready_cycle=inflight.ready_cycle,
                is_prefetch=False,
                waiter=waiter,
            )
            return ProbeResult(
                hit=False,
                issued=True,
                way=-1,
                ready_cycle=inflight.ready_cycle,
                primary=primary,
            )

        if self.mshrs.full:
            self.stats.bump("mshr_stall")
            return ProbeResult(hit=False, issued=False, way=-1, ready_cycle=0)

        self.stats.bump("l1i_miss")
        entry = self.mshrs.allocate(
            line,
            issue_cycle=cycle,
            ready_cycle=cycle + tlb_lat + self._fill_latency(line),
            is_prefetch=False,
            waiter=waiter,
        )
        if self.telemetry is not None:
            self.telemetry.event("demand_miss", line=line, latency=entry.ready_cycle - cycle)
        return ProbeResult(hit=False, issued=True, way=-1, ready_cycle=entry.ready_cycle)

    # ------------------------------------------------------------------
    # Prefetch path
    # ------------------------------------------------------------------
    def prefetch_line(self, addr: int, cycle: int) -> bool:
        """Prefetcher-issued fill request for the line holding ``addr``.

        Probes the tag array (counted -- this is the Fig 9 overhead),
        and issues a prefetch fill on a miss.  Returns True if a new
        fill was issued.
        """
        self.stats.bump("l1i_tag_access")
        self.stats.bump("prefetch_probe")
        line = self.l1i.line_of(addr)
        if self.l1i.probe(addr, count_tag_access=False).hit:
            self.stats.bump("prefetch_redundant")
            return False
        if self.mshrs.lookup(line) is not None:
            self.stats.bump("prefetch_inflight_merge")
            return False
        if self.mshrs.full:
            self.stats.bump("prefetch_mshr_reject")
            return False
        entry = self.mshrs.allocate(
            line,
            issue_cycle=cycle,
            ready_cycle=cycle + self._fill_latency(line),
            is_prefetch=True,
        )
        if entry is None:
            self.stats.bump("prefetch_mshr_reject")
            return False
        self.stats.bump("prefetch_issued")
        if self.telemetry is not None:
            self.telemetry.event("prefetch_issue", line=line, latency=entry.ready_cycle - cycle)
        return True

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> list[MSHREntry]:
        """Complete all fills due by ``cycle``; returns them for wakeups."""
        completed = self.mshrs.pop_ready(cycle)
        for entry in completed:
            victim = self.l1i.fill(entry.line).victim
            if victim and victim in self._prefetched_untouched:
                self._prefetched_untouched.discard(victim)
                self.stats.bump("prefetch_useless")
            if entry.is_prefetch:
                self.stats.bump("prefetch_fill")
                self._prefetched_untouched.add(entry.line)
            if self.telemetry is not None:
                self.telemetry.event(
                    "fill",
                    line=entry.line,
                    prefetch=entry.is_prefetch,
                    wait=cycle - entry.issue_cycle,
                )
        return completed

    def _fill_latency(self, line: int) -> int:
        """Latency of a fill, probing (and filling) the L2 on the way."""
        self.stats.bump("memory_requests")
        self.stats.bump("l2_access")
        if self.l2.probe(line).hit:
            self.stats.bump("l2_hit")
            return self.params.l2_latency
        self.stats.bump("l2_miss")
        self.l2.fill(line)
        return self.params.dram_latency

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def validate(self) -> list[str]:
        """Cross-structure memory invariants (:mod:`repro.check`).

        Side-effect free (uses :meth:`Cache.resident_lines`, never
        ``probe``): both caches' structural checks, the MSHR checks, no
        line simultaneously in flight and resident in the L1I, and the
        untouched-prefetch accounting set being a subset of the resident
        L1I lines (every eviction/demand-touch path must maintain it).
        """
        problems = self.l1i.validate() + self.l2.validate() + self.mshrs.validate()
        resident = self.l1i.resident_lines()
        for line in self.mshrs._by_line:
            if line in resident:
                problems.append(f"line {line:#x} both in flight (MSHR) and resident in L1I")
        for line in self._prefetched_untouched:
            if line not in resident:
                problems.append(
                    f"untouched-prefetch accounting leak: line {line:#x} not resident in L1I"
                )
        return problems

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def flush_waiters(self) -> None:
        """Detach waiters from in-flight fills (pipeline flush)."""
        self.mshrs.flush_waiters()

    def set_stats(self, stats: StatSet) -> None:
        """Swap the stats sink (used at the warmup/measure boundary)."""
        self.stats = stats
