"""Correctness harness: differential checking, invariants, fuzzing.

Three composable layers (see ``docs/TESTING.md``):

* :mod:`repro.check.invariants` -- per-cycle structural invariant
  sweeps, enabled by ``SimParams.check_invariants`` (zero cost when
  off);
* :mod:`repro.check.differential` -- replays an independently
  regenerated functional-oracle stream against the cycle simulator's
  commit stream, branch by branch, plus architectural end-state
  agreement;
* :mod:`repro.check.fuzz` -- a seeded random config/program fuzzer
  running both layers plus metamorphic properties, with greedy failure
  minimisation and JSON reproducers (:mod:`repro.check.reproducer`);
* :mod:`repro.check.sweepdiff` -- the differential sweep-equivalence
  harness (``repro check --sweep``): serial, parallel, sharded and
  interrupted-then-resumed executions of one declarative sweep spec
  must produce bit-identical merged tables with no point run twice.

Everything is driven from the ``repro check`` CLI subcommand.
"""

from repro.check.differential import (
    CommitRecorder,
    DifferentialDivergence,
    DifferentialReport,
    check_workload,
    check_workload_batched,
    run_differential,
)
from repro.check.fuzz import FuzzFailure, FuzzReport, FuzzTrial, build_trial, fuzz, replay
from repro.check.invariants import InvariantChecker, InvariantViolation
from repro.check.reproducer import load_reproducer, write_reproducer
from repro.check.sweepdiff import (
    SweepEquivalenceReport,
    check_spec_expansion,
    check_sweep_equivalence,
    random_sweep_spec,
)

__all__ = [
    "CommitRecorder",
    "DifferentialDivergence",
    "DifferentialReport",
    "FuzzFailure",
    "FuzzReport",
    "FuzzTrial",
    "InvariantChecker",
    "InvariantViolation",
    "SweepEquivalenceReport",
    "build_trial",
    "check_spec_expansion",
    "check_sweep_equivalence",
    "check_workload",
    "check_workload_batched",
    "fuzz",
    "load_reproducer",
    "random_sweep_spec",
    "replay",
    "run_differential",
    "write_reproducer",
]
