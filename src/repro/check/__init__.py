"""Correctness harness: differential checking, invariants, fuzzing.

Three composable layers (see ``docs/TESTING.md``):

* :mod:`repro.check.invariants` -- per-cycle structural invariant
  sweeps, enabled by ``SimParams.check_invariants`` (zero cost when
  off);
* :mod:`repro.check.differential` -- replays an independently
  regenerated functional-oracle stream against the cycle simulator's
  commit stream, branch by branch, plus architectural end-state
  agreement;
* :mod:`repro.check.fuzz` -- a seeded random config/program fuzzer
  running both layers plus metamorphic properties, with greedy failure
  minimisation and JSON reproducers (:mod:`repro.check.reproducer`).

Everything is driven from the ``repro check`` CLI subcommand.
"""

from repro.check.differential import (
    CommitRecorder,
    DifferentialDivergence,
    DifferentialReport,
    check_workload,
    check_workload_batched,
    run_differential,
)
from repro.check.fuzz import FuzzFailure, FuzzReport, FuzzTrial, build_trial, fuzz, replay
from repro.check.invariants import InvariantChecker, InvariantViolation
from repro.check.reproducer import load_reproducer, write_reproducer

__all__ = [
    "CommitRecorder",
    "DifferentialDivergence",
    "DifferentialReport",
    "FuzzFailure",
    "FuzzReport",
    "FuzzTrial",
    "InvariantChecker",
    "InvariantViolation",
    "build_trial",
    "check_workload",
    "check_workload_batched",
    "fuzz",
    "load_reproducer",
    "replay",
    "run_differential",
    "write_reproducer",
]
