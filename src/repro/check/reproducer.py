"""Failure reproducers: JSON round-trip of (spec, seeds, params).

A fuzz failure is fully determined by the trial's program spec, its two
generation seeds, and the parameter bundle -- everything else
regenerates deterministically.  This module serialises that tuple (plus
the failing property and message) as a small JSON file and rebuilds the
trial from it, so any violation becomes a one-command repro::

    python -m repro check --replay results/check/failure-<seed>.json

The JSON uses the same canonical dataclass encoding as the result
cache's content fingerprints (:func:`repro.experiments.cache._canonical`),
so a reproducer file doubles as a human-readable record of the exact
configuration.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.common.params import (
    BranchPredictorParams,
    CoreParams,
    FrontendParams,
    MemoryParams,
    SimParams,
)
from repro.experiments.cache import _canonical
from repro.trace.cfg import ProgramSpec

REPRODUCER_VERSION = 1


def params_to_dict(params: SimParams) -> dict:
    """Canonical JSON-able encoding of a parameter bundle."""
    return _canonical(params)


def spec_to_dict(spec: ProgramSpec) -> dict:
    """Canonical JSON-able encoding of a program spec."""
    return _canonical(spec)


def _fields_from_dict(cls, data: dict) -> dict:
    """Rebuild constructor kwargs, restoring tuples from JSON lists."""
    kwargs = {}
    for f in dataclasses.fields(cls):
        if f.name not in data:
            continue  # field added after the reproducer was written
        value = data[f.name]
        if isinstance(value, list):
            value = tuple(value)
        kwargs[f.name] = value
    return kwargs


def spec_from_dict(data: dict) -> ProgramSpec:
    """Inverse of :func:`spec_to_dict`."""
    return ProgramSpec(**_fields_from_dict(ProgramSpec, data))


def params_from_dict(data: dict) -> SimParams:
    """Inverse of :func:`params_to_dict` (restores nested enums too).

    Component names stay strings: the parameter dataclasses coerce
    built-in enum values themselves and leave custom registered names
    (resolved by :mod:`repro.core.build`) untouched.
    """
    frontend = _fields_from_dict(FrontendParams, data["frontend"])
    branch = _fields_from_dict(BranchPredictorParams, data["branch"])
    top = _fields_from_dict(SimParams, data)
    top["frontend"] = FrontendParams(**frontend)
    top["branch"] = BranchPredictorParams(**branch)
    top["memory"] = MemoryParams(**_fields_from_dict(MemoryParams, data["memory"]))
    top["core"] = CoreParams(**_fields_from_dict(CoreParams, data["core"]))
    return SimParams(**top)


def failure_to_dict(
    seed: int,
    prop: str,
    message: str,
    spec: ProgramSpec,
    program_seed: int,
    oracle_seed: int,
    params: SimParams,
) -> dict:
    """One JSON-able reproducer record."""
    return {
        "version": REPRODUCER_VERSION,
        "seed": seed,
        "property": prop,
        "message": message,
        "program_spec": spec_to_dict(spec),
        "program_seed": program_seed,
        "oracle_seed": oracle_seed,
        "params": params_to_dict(params),
    }


def write_reproducer(path: str | Path, record: dict) -> Path:
    """Write one reproducer record; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def load_reproducer(path: str | Path) -> dict:
    """Load a reproducer record, validating its version tag."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or data.get("version") != REPRODUCER_VERSION:
        raise ValueError(f"{path} is not a v{REPRODUCER_VERSION} reproducer file")
    return data
