"""Seeded config/program fuzzer (``repro check --fuzz N --seed S``).

Each trial derives, from one integer seed, a random synthetic program
(a :class:`~repro.trace.cfg.ProgramSpec` drawn from wide-but-valid
ranges) and a random-but-valid :class:`~repro.common.params.SimParams`
point (FTQ depth, BTB geometry, history policy, direction predictor,
PFC on/off, prefetcher choice, warmup mode, ...), then runs the
simulator under the full correctness harness:

* **invariants + differential** -- the primary run executes with
  :mod:`repro.check.invariants` sweeping every cycle and the commit
  stream checked branch-by-branch against an independently regenerated
  oracle (:mod:`repro.check.differential`);
* **checked == unchecked** -- a plain re-run must be bit-identical in
  every counter (the check layer only observes);
* **typed == interp** -- when the plain run took the typed flat kernel
  (:mod:`repro.core.typed`), a forced-interpreted re-run must be
  bit-identical in every counter (the typed kernel is an optimisation,
  never a semantic change);
* **batched == scalar** -- a two-instance lockstep batch
  (:mod:`repro.core.batch`) must reproduce the plain scalar run
  bit-identically, instance by instance;
* **traced == untraced** -- a telemetry re-run must match once the
  telemetry-only counters are stripped;
* **functional == cycle warmup** -- measured IPC of the two warmup
  modes agrees within :data:`WARMUP_IPC_TOLERANCE` (the catalogue pins
  2% at realistic windows; fuzz windows are tiny and noisier);
* **perfect BTB helps** -- a perfect-BTB run's IPC is not materially
  below the finite-BTB run (slack :data:`PERFECT_BTB_SLACK`: a perfect
  BTB also exposes never-taken conditionals to the direction predictor,
  so tiny windows can pay small transient penalties);
* **parallel == serial** -- every ``parallel_every``-th trial re-runs
  in a worker process and must be bit-identical;
* **sweep specs round-trip** -- a random declarative sweep spec
  (:mod:`repro.check.sweepdiff`) expands deterministically, survives a
  ``to_dict``/``parse_spec`` round trip, and shard-partitions with no
  lost, duplicated or skewed points (checked first: simulation-free).

Failures are minimised (greedy parameter shrinking toward defaults)
and dumped as a JSON reproducer (:mod:`repro.check.reproducer`) so any
violation is a one-command repro.
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace

from repro.common.params import (
    BranchPredictorParams,
    CoreParams,
    DirectionPredictorKind,
    FrontendParams,
    HistoryPolicy,
    MemoryParams,
    SimParams,
)
from repro.common.telemetry import Telemetry, TelemetryConfig
from repro.core.batch import batchable
from repro.core.batch import run_batch as batch_run
from repro.core.simulator import Simulator
from repro.prefetch import prefetcher_names
from repro.trace.cfg import ProgramSpec, generate_program
from repro.trace.oracle import run_oracle
from repro.trace.workloads import TRACE_SLACK

from repro.check.differential import CommitRecorder, _end_state_problems, flatten_branches
from repro.check.reproducer import failure_to_dict

WARMUP_IPC_TOLERANCE = 0.30
"""Relative IPC tolerance between functional and cycle warmup on fuzz
trials.  Fuzz windows are a few thousand instructions, so the bounded
second-order warmup differences (docs/PERFORMANCE.md) are far noisier
than on the catalogue, where tests pin 2%."""

PERFECT_BTB_SLACK = 0.05
"""A perfect BTB must not *lose* more than this fraction of IPC, with
direction and indirect prediction held perfect in both runs.  Holding
the predictors perfect isolates the detection/reach benefit the
property is about: without it, perfect detection also exposes
random-target indirects and random conditionals to the real
predictors, which can legitimately cost more than the detection gains
on adversarial programs.  The residual slack absorbs wrong-path-fill
warming: a finite-BTB run's undetected-branch resteers briefly fetch
fall-through lines that can act as accidental next-line prefetches."""

MINIMIZE_BUDGET = 24
"""Maximum re-runs spent shrinking a failing trial."""

_TELEMETRY_ONLY = ("prefetch_inflight_end", "prefetch_resident_end")
"""Counters only a telemetry run writes (plus the ``cyc_*`` family)."""


@dataclass(frozen=True)
class FuzzTrial:
    """One deterministic trial: everything regenerates from this."""

    seed: int
    spec: ProgramSpec
    program_seed: int
    oracle_seed: int
    params: SimParams


@dataclass
class FuzzFailure:
    """A violated property, with its (possibly minimised) trial."""

    trial: FuzzTrial
    prop: str
    message: str

    def to_dict(self) -> dict:
        t = self.trial
        return failure_to_dict(
            t.seed, self.prop, self.message, t.spec, t.program_seed, t.oracle_seed, t.params
        )


@dataclass
class FuzzReport:
    """Outcome of a fuzz campaign."""

    trials_run: int
    failure: FuzzFailure | None
    minimize_attempts: int = 0

    @property
    def ok(self) -> bool:
        return self.failure is None


# ----------------------------------------------------------------------
# Random generation (all via one random.Random so trials are seed-stable)
# ----------------------------------------------------------------------
def random_spec(rng: random.Random) -> ProgramSpec:
    """Draw a random-but-valid program spec."""
    # Terminator mixture: scale a random simplex to <= 0.9 total.
    weights = [rng.random() for _ in range(6)]
    scale = rng.uniform(0.4, 0.9) / sum(weights)
    cond, jump, call, ijump, icall, eret = (w * scale for w in weights)
    # Conditional behaviours: a random simplex summing to exactly 1.
    beh = [rng.random() + 0.05 for _ in range(4)]
    beh_total = sum(beh)
    never, mostly, pattern = (b / beh_total for b in beh[:3])
    block_lo = rng.randint(2, 4)
    instr_lo = rng.randint(1, 3)
    n_functions = rng.randint(20, 120)
    return ProgramSpec(
        n_functions=n_functions,
        blocks_per_function=(block_lo, block_lo + rng.randint(1, 8)),
        instrs_per_block=(instr_lo, instr_lo + rng.randint(1, 9)),
        cond_fraction=cond,
        jump_fraction=jump,
        call_fraction=call,
        indirect_jump_fraction=ijump,
        indirect_call_fraction=icall,
        early_return_fraction=eret,
        loops_per_function=(0, rng.randint(0, 2)),
        loop_trip=(2, rng.randint(3, 24)),
        frac_never_taken=never,
        frac_mostly_taken=mostly,
        frac_pattern=pattern,
        frac_random=max(0.0, 1.0 - never - mostly - pattern),
        pattern_len=(2, rng.randint(3, 9)),
        indirect_fanout=(2, rng.randint(2, 5)),
        call_budget=rng.choice([150, 300, 400, 600]),
        n_phases=rng.randint(2, 4),
        functions_per_phase=min(n_functions - 1, rng.randint(4, 20)),
        phase_repeats=rng.randint(1, 3),
    )


def random_params(rng: random.Random) -> SimParams:
    """Draw a random-but-valid simulation parameter point."""
    fetch_width = rng.choice([4, 6, 8])
    block_bytes = rng.choice([16, 32])
    line_bytes = rng.choice([32, 64])
    if block_bytes > line_bytes:
        block_bytes = line_bytes  # an FTQ entry must fit one cache line
    frontend = FrontendParams(
        ftq_entries=rng.choice([2, 4, 8, 16, 24, 32]),
        fetch_width=fetch_width,
        predict_width=fetch_width * 2,
        max_taken_per_cycle=rng.choice([1, 1, 2]),
        decode_queue_size=rng.choice([32, 64]),
        fetch_probe_width=rng.randint(1, 3),
        pfc_enabled=rng.random() < 0.5,
        history_policy=rng.choice(list(HistoryPolicy)),
        block_bytes=block_bytes,
        wrong_path_fills=rng.random() < 0.85,
    )
    btb_entries = rng.choice([512, 1024, 2048, 8192])
    branch = BranchPredictorParams(
        direction_kind=rng.choice(
            [
                DirectionPredictorKind.TAGE,
                DirectionPredictorKind.TAGE,
                DirectionPredictorKind.GSHARE,
                DirectionPredictorKind.PERCEPTRON,
            ]
        ),
        tage_storage_kib=rng.choice([9, 18, 36]),
        btb_entries=btb_entries,
        btb_assoc=4,
        btb_latency=rng.randint(1, 3),
        btb_l1_entries=rng.choice([0, 0, 0, 256]) if btb_entries > 256 else 0,
        perfect_direction=rng.random() < 0.1,
        perfect_indirect=rng.random() < 0.1,
        loop_predictor_entries=rng.choice([0, 0, 64]),
        ras_entries=rng.choice([16, 64]),
    )
    memory = MemoryParams(
        l1i_kib=rng.choice([16, 32]),
        l1i_assoc=rng.choice([4, 8]),
        line_bytes=line_bytes,
        l2_kib=rng.choice([256, 1024]),
        mshr_entries=rng.choice([2, 4, 8, 16]),
        itlb_entries=rng.choice([16, 64]),
    )
    core = CoreParams(
        retire_width=rng.choice([4, 6, 8]),
        mispredict_penalty=rng.choice([8, 14, 20]),
    )
    prefetchers = ["none", "none", "none", "perfect", *prefetcher_names()]
    return SimParams(
        frontend=frontend,
        branch=branch,
        memory=memory,
        core=core,
        warmup_instructions=rng.choice([0, 500, 1500, 3000]),
        sim_instructions=rng.randint(2500, 6000),
        prefetcher=rng.choice(prefetchers),
        warmup_mode=rng.choice(["cycle", "functional"]),
        check_invariants=True,
    )


def build_trial(seed: int) -> FuzzTrial:
    """Derive one trial deterministically from its seed."""
    rng = random.Random(seed)
    spec = random_spec(rng)
    program_seed = rng.randint(1, 2**31)
    oracle_seed = rng.randint(1, 2**31)
    params = random_params(rng)
    return FuzzTrial(seed, spec, program_seed, oracle_seed, params)


# ----------------------------------------------------------------------
# Trial execution
# ----------------------------------------------------------------------
def _materialize(trial: FuzzTrial):
    """(program, stream) for a trial, regenerated deterministically."""
    program = generate_program(trial.spec, trial.program_seed)
    n = trial.params.warmup_instructions + trial.params.sim_instructions
    stream = run_oracle(program, n + TRACE_SLACK, trial.oracle_seed)
    return program, stream


def _run(params: SimParams, program, stream, telemetry=None):
    """One simulation; returns (result, sim)."""
    sim = Simulator(params, program, stream, telemetry=telemetry)
    result = sim.run()
    return result, sim


def _run_worker(trial: FuzzTrial) -> tuple[int, int, dict]:
    """Process-pool entry point: regenerate and run, plain configuration."""
    program, stream = _materialize(trial)
    params = trial.params.replace(check_invariants=False)
    sim = Simulator(params, program, stream)
    result = sim.run()
    return result.cycles, result.instructions, result.stats.as_dict()


def _strip_telemetry(counters: dict) -> dict:
    return {
        k: v
        for k, v in counters.items()
        if not k.startswith("cyc_") and k not in _TELEMETRY_ONLY
    }


def run_trial(trial: FuzzTrial, pool: ProcessPoolExecutor | None = None) -> FuzzFailure | None:
    """Run one trial under every property; None when all hold."""
    # Property 9 (first: cheap and simulation-free): a random declarative
    # sweep spec expands deterministically, round-trips through its dict
    # form, and shard-partitions with no loss, overlap or skew.
    from repro.check.sweepdiff import check_spec_expansion, random_sweep_spec

    try:
        problem = check_spec_expansion(random_sweep_spec(random.Random(trial.seed)))
    except Exception as exc:
        problem = f"{type(exc).__name__}: {exc}"
    if problem is not None:
        return FuzzFailure(trial, "sweep_spec_roundtrip", problem)

    try:
        program, stream = _materialize(trial)
    except Exception as exc:  # spec ranges are meant to be always-valid
        return FuzzFailure(trial, "generation", f"{type(exc).__name__}: {exc}")

    n = trial.params.warmup_instructions + trial.params.sim_instructions
    params = trial.params.replace(check_invariants=True)

    # Property 1: invariants + differential oracle agreement.
    try:
        sim = Simulator(params, program, stream)
        expected = run_oracle(program, n + TRACE_SLACK, trial.oracle_seed)
        recorder = CommitRecorder(sim.trainer, flatten_branches(expected))
        result = sim.run()
        problems = _end_state_problems(sim, recorder.expected, recorder)
        if problems:
            return FuzzFailure(trial, "differential_end_state", "\n".join(problems))
    except Exception as exc:
        return FuzzFailure(trial, "invariants_differential", f"{type(exc).__name__}: {exc}")
    base_counters = result.stats.as_dict()

    # Property 2: the check layer only observes (checked == unchecked).
    plain, plain_sim = _run(trial.params.replace(check_invariants=False), program, stream)
    if (
        plain.cycles != result.cycles
        or plain.instructions != result.instructions
        or plain.stats.as_dict() != base_counters
    ):
        return FuzzFailure(
            trial,
            "checked_bit_identity",
            f"checked run differs from unchecked: cycles {result.cycles} vs "
            f"{plain.cycles}, instructions {result.instructions} vs {plain.instructions}",
        )

    # Property 8 (ordering: needs `plain` from property 2): when the
    # plain run took the typed flat kernel, a forced-interpreted re-run
    # must be bit-identical -- the typed backend is an optimisation,
    # never a semantic change.  (When the trial draws a real prefetcher
    # the plain run is already interpreted and this property is vacuous;
    # the checked-vs-unchecked comparison above still crosses backends
    # on typed-eligible trials, so both directions stay covered.)
    if plain_sim.kernel_backend != "interp":
        interp, _ = _run(
            trial.params.replace(check_invariants=False, kernel="interp"),
            program,
            stream,
        )
        if (
            interp.cycles != plain.cycles
            or interp.instructions != plain.instructions
            or interp.stats.as_dict() != plain.stats.as_dict()
        ):
            return FuzzFailure(
                trial,
                "typed_interp_identity",
                f"typed run ({plain_sim.kernel_backend}) differs from interp: "
                f"cycles {plain.cycles} vs {interp.cycles}, instructions "
                f"{plain.instructions} vs {interp.instructions}",
            )

    # Property 7 (ordering: needs `plain` from property 2): the lockstep
    # batch path is bit-identical to scalar execution.  Two instances of
    # the plain config advance in lockstep via the stepping kernel; each
    # must reproduce the scalar run exactly.
    plain_params = trial.params.replace(check_invariants=False)
    if batchable(plain_params)[0]:
        batch_sims = [Simulator(plain_params, program, stream) for _ in range(2)]
        batch_results = batch_run(batch_sims)
        for b in batch_results:
            if (
                b.cycles != plain.cycles
                or b.instructions != plain.instructions
                or b.stats.as_dict() != plain.stats.as_dict()
            ):
                return FuzzFailure(
                    trial,
                    "batched_scalar_identity",
                    f"batched run differs from scalar: cycles {b.cycles} vs "
                    f"{plain.cycles}, instructions {b.instructions} vs "
                    f"{plain.instructions}",
                )

    # Property 3: telemetry only observes (traced == untraced).
    tel = Telemetry(TelemetryConfig(interval_stride=2_000, ring_capacity=256))
    traced, _ = _run(
        trial.params.replace(check_invariants=False), program, stream, telemetry=tel
    )
    if traced.cycles != result.cycles or _strip_telemetry(
        traced.stats.as_dict()
    ) != _strip_telemetry(base_counters):
        return FuzzFailure(
            trial,
            "traced_bit_identity",
            f"traced run differs from untraced: cycles {traced.cycles} vs {result.cycles}",
        )

    # Property 4: functional and cycle warmup agree on measured IPC.
    if trial.params.warmup_instructions >= 1500:
        other_mode = "cycle" if trial.params.warmup_mode == "functional" else "functional"
        flipped, _ = _run(
            trial.params.replace(check_invariants=False, warmup_mode=other_mode),
            program,
            stream,
        )
        rel = abs(flipped.ipc - result.ipc) / max(result.ipc, 1e-9)
        if rel > WARMUP_IPC_TOLERANCE:
            return FuzzFailure(
                trial,
                "warmup_mode_ipc",
                f"IPC {result.ipc:.4f} ({trial.params.warmup_mode}) vs "
                f"{flipped.ipc:.4f} ({other_mode}): {100 * rel:.1f}% apart "
                f"(tolerance {100 * WARMUP_IPC_TOLERANCE:.0f}%)",
            )

    # Property 5: with perfect direction/indirect prediction in both
    # runs, a perfect BTB must not materially hurt.
    if not trial.params.branch.perfect_btb:
        oracle_pred = replace(
            trial.params.branch, perfect_direction=True, perfect_indirect=True
        )
        finite, _ = _run(
            trial.params.replace(check_invariants=False, branch=oracle_pred),
            program,
            stream,
        )
        perfect, _ = _run(
            trial.params.replace(
                check_invariants=False,
                branch=replace(oracle_pred, perfect_btb=True, btb_l1_entries=0),
            ),
            program,
            stream,
        )
        if perfect.ipc < finite.ipc * (1.0 - PERFECT_BTB_SLACK):
            return FuzzFailure(
                trial,
                "perfect_btb_monotonic",
                f"perfect-BTB IPC {perfect.ipc:.4f} below finite-BTB IPC "
                f"{finite.ipc:.4f} by more than {100 * PERFECT_BTB_SLACK:.0f}% "
                f"(direction/indirect prediction perfect in both runs)",
            )

    # Property 6: a worker process reproduces the run bit-identically.
    if pool is not None:
        w_cycles, w_instrs, w_counters = pool.submit(_run_worker, trial).result()
        if (
            w_cycles != plain.cycles
            or w_instrs != plain.instructions
            or w_counters != plain.stats.as_dict()
        ):
            return FuzzFailure(
                trial,
                "parallel_serial",
                f"worker-process run differs from in-process: cycles "
                f"{w_cycles} vs {plain.cycles}",
            )
    return None


# ----------------------------------------------------------------------
# Minimisation
# ----------------------------------------------------------------------
def _shrink_candidates(params: SimParams):
    """Yield simpler parameter bundles, most aggressive first."""
    defaults = SimParams()
    if params.prefetcher != "none":
        yield params.replace(prefetcher="none")
    if params.warmup_instructions > 0:
        yield params.replace(warmup_instructions=0)
    if params.sim_instructions > 1000:
        yield params.replace(sim_instructions=max(1000, params.sim_instructions // 2))
    if params.warmup_mode != "cycle":
        yield params.replace(warmup_mode="cycle")
    if params.branch.btb_l1_entries:
        yield params.with_branch(btb_l1_entries=0)
    if params.branch.loop_predictor_entries:
        yield params.with_branch(loop_predictor_entries=0)
    if params.frontend.history_policy is not defaults.frontend.history_policy:
        yield params.with_frontend(history_policy=defaults.frontend.history_policy)
    if not params.frontend.wrong_path_fills:
        yield params.with_frontend(wrong_path_fills=True)
    if params.frontend.pfc_enabled != defaults.frontend.pfc_enabled:
        yield params.with_frontend(pfc_enabled=defaults.frontend.pfc_enabled)
    if params.frontend.ftq_entries > 2:
        yield params.with_frontend(ftq_entries=max(2, params.frontend.ftq_entries // 2))
    if params.memory.mshr_entries < 16:
        yield params.replace(memory=replace(params.memory, mshr_entries=16))
    if params.branch.direction_kind is not defaults.branch.direction_kind:
        yield params.with_branch(direction_kind=defaults.branch.direction_kind)


def minimize(failure: FuzzFailure, budget: int = MINIMIZE_BUDGET) -> tuple[FuzzFailure, int]:
    """Greedily shrink a failing trial's parameters, keeping the failure.

    Re-runs the whole property suite on each candidate; a candidate is
    accepted when *any* property still fails (the failure may shift to a
    simpler property, which is fine -- it is still a violation at a
    simpler point).  Returns the minimised failure and attempts used.
    """
    attempts = 0
    current = failure
    progress = True
    while progress and attempts < budget:
        progress = False
        for candidate_params in _shrink_candidates(current.trial.params):
            if attempts >= budget:
                break
            attempts += 1
            candidate = replace(current.trial, params=candidate_params)
            result = run_trial(candidate)
            if result is not None:
                current = result
                progress = True
                break
    return current, attempts


# ----------------------------------------------------------------------
# Campaign driver
# ----------------------------------------------------------------------
def fuzz(
    n_trials: int,
    seed: int = 0,
    parallel_every: int = 5,
    log=None,
    do_minimize: bool = True,
) -> FuzzReport:
    """Run ``n_trials`` seeded trials; stop and minimise on first failure.

    Trial ``i`` uses seed ``seed + i``, so a campaign is a fixed seed
    matrix: re-running with the same arguments replays identical trials.
    ``parallel_every`` > 0 adds the worker-process bit-identity property
    to every that-many-th trial (0 disables it).
    """
    pool = None
    try:
        for i in range(n_trials):
            trial = build_trial(seed + i)
            use_pool = parallel_every > 0 and i % parallel_every == 0
            if use_pool and pool is None:
                pool = ProcessPoolExecutor(max_workers=1)
            failure = run_trial(trial, pool=pool if use_pool else None)
            if log is not None:
                label = trial.params.label()
                status = "FAIL" if failure else "ok"
                log(f"  trial {i + 1}/{n_trials} seed={trial.seed} {label}: {status}")
            if failure is not None:
                attempts = 0
                if do_minimize:
                    failure, attempts = minimize(failure)
                return FuzzReport(trials_run=i + 1, failure=failure, minimize_attempts=attempts)
        return FuzzReport(trials_run=n_trials, failure=None)
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


def replay(record: dict) -> FuzzFailure | None:
    """Re-run a loaded reproducer record; None when it no longer fails."""
    from repro.check.reproducer import params_from_dict, spec_from_dict

    trial = FuzzTrial(
        seed=record["seed"],
        spec=spec_from_dict(record["program_spec"]),
        program_seed=record["program_seed"],
        oracle_seed=record["oracle_seed"],
        params=params_from_dict(record["params"]),
    )
    return run_trial(trial)
