"""Runtime invariant layer (``SimParams.check_invariants``).

The checker sweeps the simulator's structures at the end of every cycle
and once more after the run, raising :class:`InvariantViolation` with
every broken invariant it found.  Checks only *observe* -- they use the
side-effect-free ``validate()`` / ``contains()`` / ``resident_lines()``
accessors, never ``probe()`` or any stats counter -- so a checked run
is bit-identical to an unchecked one (pinned by ``tests/test_check.py``).

Per-cycle (cheap, O(resident pipeline state)):

* FTQ structure: occupancy, entry states, block-aligned bounds,
  head-only consumption, probe-pointer prefix, stream contiguity;
* every ``AWAIT_FILL`` FTQ entry is registered as a waiter of an
  in-flight MSHR fill for its line;
* decode queue occupancy accounting;
* MSHR occupancy / keying / causal timing;
* BPU on-path cursor bounds;
* commit trainer vs backend agreement and oracle-cursor consistency;
* the prefetch terminal-state partition: every issued prefetch is
  timely, late, evicted-unused, still in flight, or resident-untouched
  (over warmup + measurement counters combined).

Periodically (every :data:`HEAVY_STRIDE` cycles) and at end of run, the
O(cache size) sweeps run too: full L1I/L2 structural checks, the
no-line-both-in-flight-and-resident cross-check, and the
untouched-prefetch accounting subset property.

Cost when disabled: zero.  The ``invariant_sweep`` hook point of
:data:`repro.core.schedule.CYCLE_SCHEDULE` is composed into the cycle
kernel only when a checker is attached; the ordinary kernel carries no
per-cycle branch for it.
"""

from __future__ import annotations

from repro.frontend.ftq import STATE_AWAIT_FILL

HEAVY_STRIDE = 1024
"""Cycles between the O(cache size) structural sweeps."""


class InvariantViolation(AssertionError):
    """One or more runtime invariants failed.

    ``problems`` lists every violation found in the failing sweep;
    ``cycle`` is the simulation cycle of the sweep (-1 for the
    end-of-run check).
    """

    def __init__(self, cycle: int, problems: list[str]) -> None:
        self.cycle = cycle
        self.problems = problems
        where = "end of run" if cycle < 0 else f"cycle {cycle}"
        super().__init__(
            f"{len(problems)} invariant violation(s) at {where}:\n  " + "\n  ".join(problems)
        )


class InvariantChecker:
    """Per-cycle invariant sweep bound to one simulator.

    Constructed by ``Simulator.__init__`` when
    ``params.check_invariants`` is set; ``repro check`` and the fuzzer
    always run with it attached.
    """

    __slots__ = ("sim", "_block_bytes", "_next_heavy", "cycles_checked")

    def __init__(self, sim) -> None:
        self.sim = sim
        self._block_bytes = sim.params.frontend.block_bytes
        self._next_heavy = 0
        self.cycles_checked = 0

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def check_cycle(self, cycle: int) -> None:
        """Light sweep; raises :class:`InvariantViolation` on failure."""
        sim = self.sim
        problems = sim.ftq.validate(self._block_bytes)
        problems += sim.decode_queue.validate()
        problems += sim.memory.mshrs.validate()
        problems += sim.bpu.validate_state()
        self._check_ftq_fills(problems)
        self._check_trainer(problems)
        self._check_prefetch_partition(problems)
        if cycle >= self._next_heavy:
            self._next_heavy = cycle + HEAVY_STRIDE
            problems += sim.memory.validate()
        self.cycles_checked += 1
        if problems:
            raise InvariantViolation(cycle, problems)

    def check_end(self, result) -> None:
        """Full end-of-run sweep, after telemetry finalisation."""
        sim = self.sim
        problems = sim.ftq.validate(self._block_bytes)
        problems += sim.decode_queue.validate()
        problems += sim.memory.validate()
        problems += sim.bpu.validate_state()
        self._check_ftq_fills(problems)
        self._check_trainer(problems)
        self._check_prefetch_partition(problems)
        self._check_accounting(problems, result)
        self._check_counters(problems)
        if problems:
            raise InvariantViolation(-1, problems)

    # ------------------------------------------------------------------
    # Cross-structure checks
    # ------------------------------------------------------------------
    def _check_ftq_fills(self, problems: list[str]) -> None:
        """Every AWAIT_FILL entry waits on a live fill for its line."""
        memory = self.sim.memory
        line_of = memory.l1i.line_of
        lookup = memory.mshrs.lookup
        for e in self.sim.ftq:
            if e.state != STATE_AWAIT_FILL:
                continue
            entry = lookup(line_of(e.start))
            if entry is None:
                problems.append(
                    f"FTQ uid={e.uid} awaits a fill for {e.start:#x} with no in-flight MSHR"
                )
            elif all(w is not e for w in entry.waiters):
                problems.append(
                    f"FTQ uid={e.uid} awaits line {entry.line:#x} but is not a registered waiter"
                )

    def _check_trainer(self, problems: list[str]) -> None:
        """Commit trainer agrees with the backend and the oracle cursor."""
        sim = self.sim
        trainer = sim.trainer
        if trainer.committed != sim.backend.committed:
            problems.append(
                f"trainer committed {trainer.committed} != backend committed "
                f"{sim.backend.committed}"
            )
        stream = sim.stream
        if trainer.seg_idx < len(stream.segments):
            seg = stream.segments[trainer.seg_idx]
            if not 0 <= trainer.pos < seg.n_instrs:
                problems.append(
                    f"trainer position {trainer.pos} outside segment {trainer.seg_idx} "
                    f"of {seg.n_instrs} instructions"
                )
            if not 0 <= trainer.br_ptr <= len(seg.branches):
                problems.append(
                    f"trainer branch pointer {trainer.br_ptr} outside segment "
                    f"{trainer.seg_idx} branch list of {len(seg.branches)}"
                )
            expected = stream.cumulative[trainer.seg_idx] + trainer.pos
            if expected != trainer.committed:
                problems.append(
                    f"trainer oracle cursor at instruction {expected} "
                    f"but {trainer.committed} committed"
                )
        committed_stat = self._stat("committed_instructions")
        if committed_stat != trainer.committed:
            problems.append(
                f"committed_instructions counter {committed_stat} != trainer "
                f"committed {trainer.committed}"
            )

    def _check_prefetch_partition(self, problems: list[str]) -> None:
        """issued == timely + late + evicted + in-flight + resident-untouched."""
        issued = self._stat("prefetch_issued")
        memory = self.sim.memory
        pending = memory.mshrs.inflight_prefetches() + memory.untouched_prefetched_lines
        if issued == 0:
            if pending:
                problems.append(f"{pending} pending prefetches but none were issued")
            return
        terminal = (
            self._stat("prefetch_useful")
            + self._stat("prefetch_late")
            + self._stat("prefetch_useless")
        )
        if terminal + pending != issued:
            problems.append(
                f"prefetch partition broken: issued {issued} != "
                f"terminal {terminal} + in-flight/resident {pending}"
            )

    def _check_accounting(self, problems: list[str], result) -> None:
        """Cycle-accounting buckets sum to the measured cycle count."""
        tel = self.sim.telemetry
        if tel is None or not tel.config.accounting:
            return
        measured = self.sim.cycle - self.sim._measure_start_cycle
        if measured <= 0:
            return
        total = sum(tel.accounting().values())
        if total != result.cycles:
            problems.append(
                f"cycle-accounting buckets sum to {total}, measured {result.cycles} cycles"
            )

    def _check_counters(self, problems: list[str]) -> None:
        """No counter may go negative, in either window."""
        for label, stats in (("warmup", self.sim.warmup_stats), ("measure", self.sim.stats)):
            if stats is None:
                continue
            for name, value in stats.as_dict().items():
                if value < 0:
                    problems.append(f"negative {label} counter: {name} = {value}")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _stat(self, name: str) -> int:
        """Counter value over warmup + measurement windows combined."""
        sim = self.sim
        value = sim.stats.get(name)
        if sim.warmup_stats is not None:
            value += sim.warmup_stats.get(name)
        return value
