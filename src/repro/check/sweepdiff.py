"""Differential sweep-equivalence harness (``repro check --sweep``).

Shard/resume/dedup bookkeeping is exactly the kind of distributed
machinery that silently drops or double-counts points, so the sweep
scheduler ships with a harness that *proves*, for a given spec, that
every execution strategy yields the identical result set:

* **serial**       -- one process, ``jobs=1``;
* **parallel**     -- one run fanned across a worker pool;
* **shard2/shard3**-- every shard of a 2-way and a 3-way partition run
  sequentially against a shared cache, then merged;
* **resume**       -- a run interrupted after half its points (the
  scheduler's deterministic interruption injection), then re-run with
  ``--resume`` against the same cache.

Each strategy executes in its own isolated result-cache and ledger
directories (the in-process memo is cleared between runs), so every
strategy actually recomputes its points.  The harness then asserts:

1. the merged ``table.csv`` / ``table.json`` / ``table.md`` files are
   **byte-identical** across all strategies;
2. every strategy's ledgers reconcile: each expansion point has exactly
   one terminal event per run, **no point is simulated more than once**
   across a strategy's runs (resume must not redo finished work), and
   **no point is missed**;
3. the resumed run started only the points the interrupted run had not
   completed.

The fuzzer reuses the expansion-layer half of this module:
:func:`random_sweep_spec` plus :func:`check_spec_expansion` form fuzz
property 9 (spec round-trip and shard-union identity on random specs).
"""

from __future__ import annotations

import hashlib
import os
import random
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.ledger import invalid_sequences, read_ledger
from repro.experiments.runner import clear_cache
from repro.experiments.spec import (
    SweepSpec,
    expand,
    parse_spec,
    shard_points,
)
from repro.experiments.sweep import MERGED_BASENAME, run_sweep

STRATEGIES = ("serial", "parallel", "shard2", "shard3", "resume")
"""Execution strategies the equivalence harness compares."""


@dataclass
class StrategyOutcome:
    """One strategy's observable behaviour."""

    name: str
    digests: dict[str, str] = field(default_factory=dict)
    started: dict[str, int] = field(default_factory=dict)
    terminal: dict[str, int] = field(default_factory=dict)
    problems: list[str] = field(default_factory=list)


@dataclass
class SweepEquivalenceReport:
    """Verdict of one ``repro check --sweep`` run."""

    spec_name: str
    n_points: int
    strategies: list[StrategyOutcome] = field(default_factory=list)
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems and not any(s.problems for s in self.strategies)

    def all_problems(self) -> list[str]:
        out = list(self.problems)
        for strategy in self.strategies:
            out.extend(f"[{strategy.name}] {p}" for p in strategy.problems)
        return out


@contextmanager
def _isolated(cache_dir: Path, ledger_dir: Path):
    """Point the cache and ledger env at strategy-private directories."""
    saved = {k: os.environ.get(k) for k in ("REPRO_CACHE_DIR", "REPRO_LEDGER")}
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    os.environ["REPRO_LEDGER"] = str(ledger_dir)
    clear_cache()
    try:
        yield
    finally:
        clear_cache()
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _digest_tables(out_dir: Path) -> dict[str, str]:
    digests = {}
    for suffix in ("csv", "json", "md"):
        path = out_dir / f"{MERGED_BASENAME}.{suffix}"
        if path.is_file():
            digests[f"{MERGED_BASENAME}.{suffix}"] = hashlib.sha256(
                path.read_bytes()
            ).hexdigest()
    return digests


def _reconcile_ledgers(
    outcome: StrategyOutcome, ledger_dir: Path, expected_ids: set[str]
) -> None:
    """Fold a strategy's ledger files into started/terminal counts."""
    paths = sorted(Path(ledger_dir).glob("*.jsonl"))
    if not paths:
        outcome.problems.append("no ledger files written (REPRO_LEDGER ignored?)")
        return
    for path in paths:
        events = read_ledger(path)
        invalid = invalid_sequences(events)
        if invalid:
            outcome.problems.append(
                f"{path.name}: {len(invalid)} invalid job lifecycle(s)"
            )
        per_run_terminal: dict[str, int] = {}
        for record in events:
            key = record.get("key")
            if key is None:
                continue
            if record["event"] == "started":
                outcome.started[key] = outcome.started.get(key, 0) + 1
            if record["event"] in ("cache_hit", "finished", "failed"):
                per_run_terminal[key] = per_run_terminal.get(key, 0) + 1
                outcome.terminal[key] = outcome.terminal.get(key, 0) + 1
        doubled = {k: n for k, n in per_run_terminal.items() if n > 1}
        if doubled:
            outcome.problems.append(
                f"{path.name}: {len(doubled)} point(s) with multiple terminal events"
            )
    ran_twice = {k: n for k, n in outcome.started.items() if n > 1}
    if ran_twice:
        outcome.problems.append(
            f"{len(ran_twice)} point(s) simulated more than once across runs "
            "(resume/shard dedup failure)"
        )
    strangers = set(outcome.terminal) - expected_ids
    if strangers:
        outcome.problems.append(
            f"{len(strangers)} ledgered point(s) not in the expansion"
        )
    missed = expected_ids - set(outcome.terminal)
    if missed:
        outcome.problems.append(f"{len(missed)} expansion point(s) never ledgered")


def check_sweep_equivalence(
    spec: SweepSpec,
    workdir: Path | str | None = None,
    jobs: int = 4,
    log=None,
) -> SweepEquivalenceReport:
    """Run every strategy and compare tables and ledgers; see module doc."""
    points = expand(spec)
    report = SweepEquivalenceReport(spec_name=spec.name, n_points=len(points))
    say = log or (lambda *_: None)

    with tempfile.TemporaryDirectory(prefix="repro-sweepdiff-") as tmp:
        root = Path(workdir) if workdir is not None else Path(tmp)
        root.mkdir(parents=True, exist_ok=True)

        for name in STRATEGIES:
            strategy = StrategyOutcome(name=name)
            report.strategies.append(strategy)
            base = root / name
            cache_dir, ledger_dir, out_dir = (
                base / "cache",
                base / "ledger",
                base / "out",
            )
            say(f"  strategy {name}: running {len(points)} point(s)")
            try:
                with _isolated(cache_dir, ledger_dir):
                    if name == "serial":
                        run_sweep(spec, points, jobs=1, out_dir=out_dir)
                    elif name == "parallel":
                        run_sweep(spec, points, jobs=jobs, out_dir=out_dir)
                    elif name in ("shard2", "shard3"):
                        total = 2 if name == "shard2" else 3
                        for k in range(1, total + 1):
                            clear_cache()  # each shard models its own process
                            run_sweep(
                                spec,
                                points,
                                shard=(k, total),
                                jobs=jobs,
                                out_dir=out_dir,
                            )
                    else:  # resume
                        half = max(1, (len(shard_points(points, 1, 1)) + 1) // 2)
                        run_sweep(
                            spec, points, jobs=jobs, out_dir=out_dir, limit=half
                        )
                        # A killed sweep loses its process; drop the memo so
                        # the resumed run must go through the disk cache.
                        clear_cache()
                        run_sweep(spec, points, jobs=jobs, out_dir=out_dir, resume=True)
            except Exception as exc:
                strategy.problems.append(f"execution failed: {type(exc).__name__}: {exc}")
                continue
            strategy.digests = _digest_tables(out_dir)
            if len(strategy.digests) != 3:
                strategy.problems.append("merged table files missing")
            _reconcile_ledgers(strategy, ledger_dir, {p.point_id for p in points})

        reference = next((s for s in report.strategies if s.digests), None)
        if reference is not None:
            for strategy in report.strategies:
                if strategy is reference or not strategy.digests:
                    continue
                for fname, digest in reference.digests.items():
                    if strategy.digests.get(fname) != digest:
                        report.problems.append(
                            f"{fname} differs between {reference.name} and "
                            f"{strategy.name}"
                        )
    return report


# ----------------------------------------------------------------------
# Fuzz property 9: expansion round-trip + shard-union identity
# ----------------------------------------------------------------------
_FUZZ_AXES = (
    ("frontend.ftq_entries", (2, 4, 8, 16, 24, 32)),
    ("branch.btb_entries", (512, 1024, 2048, 8192)),
    ("frontend.pfc_enabled", (False, True)),
    ("branch.btb_latency", (1, 2, 3)),
    ("frontend.history_policy", ("THR", "GHR0", "GHR2", "Ideal")),
    ("prefetcher", ("none", "nl1", "perfect")),
    ("core.mispredict_penalty", (8, 14, 20)),
)

_FUZZ_WORKLOADS = ("srv_web", "srv_db", "clt_browser", "spc_int_a")


def random_sweep_spec(rng: random.Random) -> SweepSpec:
    """Draw a small random-but-valid sweep spec (expansion-layer fuzzing)."""
    axes = rng.sample(list(_FUZZ_AXES), k=rng.randint(1, 3))
    matrix = {}
    for key, pool in axes:
        k = rng.randint(2, min(3, len(pool)))
        matrix[key] = list(rng.sample(list(pool), k=k))
    data: dict = {
        "sweep": f"fuzz-{rng.randint(0, 2**16)}",
        "workloads": rng.sample(list(_FUZZ_WORKLOADS), k=rng.randint(1, 2)),
        "base": {
            "warmup_instructions": rng.choice([0, 500]),
            "sim_instructions": rng.choice([1500, 2500]),
        },
        "matrix": matrix,
        "output": {"metrics": rng.sample(["ipc", "cycles", "branch_mpki"], k=2)},
    }
    n_configs = 1
    for values in matrix.values():
        n_configs *= len(values)
    if n_configs >= 2 and rng.random() < 0.5:
        # A complete-assignment exclude removes exactly one combination.
        data["exclude"] = [{key: rng.choice(values) for key, values in matrix.items()}]
    return parse_spec(data)


def check_spec_expansion(spec: SweepSpec) -> str | None:
    """Fuzz property 9 body; returns a failure message or ``None``.

    * expansion is deterministic (two expansions agree point for point);
    * ``to_dict`` -> ``parse_spec`` round-trips to the identical
      expansion (IDs, labels *and* order);
    * for N in {2, 3, 5}: shards are pairwise disjoint, their union is
      the full expansion, and sizes differ by at most one.
    """
    points = expand(spec)
    again = expand(spec)
    if [p.point_id for p in points] != [p.point_id for p in again]:
        return "expansion is not deterministic across calls"

    reparsed = expand(parse_spec(spec.to_dict(), name_hint=spec.name))
    mine = [(p.point_id, p.workload, p.label) for p in points]
    theirs = [(p.point_id, p.workload, p.label) for p in reparsed]
    if mine != theirs:
        return "to_dict/parse_spec round-trip changed the expansion"

    all_ids = [p.point_id for p in points]
    if len(set(all_ids)) != len(all_ids):
        return "expansion contains duplicate point IDs"
    for total in (2, 3, 5):
        shards = [shard_points(points, k, total) for k in range(1, total + 1)]
        sizes = [len(s) for s in shards]
        if max(sizes) - min(sizes) > 1:
            return f"shard skew {sizes} exceeds 1 for N={total}"
        union: list[str] = []
        for shard in shards:
            union.extend(p.point_id for p in shard)
        if len(union) != len(set(union)):
            return f"shards overlap for N={total}"
        if set(union) != set(all_ids):
            return f"shard union misses points for N={total}"
    return None
