"""Differential oracle checking.

The functional oracle (:func:`repro.trace.oracle.run_oracle`) and the
cycle-accurate simulator must agree on the *committed* instruction
stream: timing never changes architecture.  This module replays an
independently regenerated oracle stream against the simulator's commit
stream and asserts:

* **per-branch equality** -- every branch the
  :class:`~repro.core.backend.CommitTrainer` trains (i.e. every
  committed dynamic branch, warmup included) matches the oracle's
  record exactly: PC, kind, direction, and target;
* **end-state agreement** -- committed-instruction and
  committed-branch counters match between backend, trainer and stats;
  the number of branches trained equals the number the oracle commits
  in the same instruction window; and the trainer's architectural RAS
  and (for the THR/Ideal policies, whose architectural history is a
  pure function of the committed stream) its architectural history
  equal an independent replay of the oracle stream.

The expected stream is *independently derived* (regenerated from the
(program, seed) pair for synthetic workloads; re-decoded bypassing the
chunk-artifact cache for trace-backed ones) rather than shared with the
simulator, so in-place corruption of the cached stream cannot hide a
divergence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.history import HistoryManager
from repro.branch.ras import ReturnAddressStack
from repro.common.params import HistoryPolicy, SimParams
from repro.common.stats import StatSet
from repro.core.metrics import RunResult
from repro.core.simulator import Simulator
from repro.trace.cfg import Program
from repro.trace.oracle import OracleStream
from repro.trace.workloads import make_trace, workload_by_name


class DifferentialDivergence(AssertionError):
    """The simulator's commit stream disagrees with the oracle replay."""


@dataclass(frozen=True)
class DifferentialReport:
    """Summary of one clean differential run."""

    workload: str
    branches_checked: int
    committed_instructions: int
    result: RunResult


def flatten_branches(stream: OracleStream) -> list[tuple]:
    """All dynamic branch records of ``stream``, in commit order."""
    out: list[tuple] = []
    for seg in stream.segments:
        out.extend(seg.branches)
    return out


class CommitRecorder:
    """Subscribed to the ``CommitTrainer.add_branch_listener`` hook point.

    Compares each trained (committed) branch against the independent
    expected stream as it happens, failing fast with full context.  It
    registers with ``first=True`` so the comparison observes each
    branch before any previously installed listener (e.g. a
    prefetcher's commit hook) can react; training behaviour is
    unchanged because the recorder only observes.
    """

    __slots__ = ("expected", "index")

    def __init__(self, trainer, expected: list[tuple]) -> None:
        self.expected = expected
        self.index = 0
        trainer.add_branch_listener(self.on_branch, first=True)

    def on_branch(self, pc: int, kind, taken: bool, target: int) -> None:
        """Check one committed branch against the oracle stream."""
        i = self.index
        expected = self.expected
        if i >= len(expected):
            raise DifferentialDivergence(
                f"commit stream longer than the oracle: branch #{i} "
                f"pc={pc:#x} {kind.name} taken={taken}"
            )
        e_pc, e_kind, e_taken, e_target = expected[i]
        if pc != e_pc or kind is not e_kind or taken != e_taken or target != e_target:
            raise DifferentialDivergence(
                f"commit stream diverges at branch #{i}:\n"
                f"  simulator committed pc={pc:#x} {kind.name} taken={taken} "
                f"target={target:#x}\n"
                f"  oracle expects     pc={e_pc:#x} {e_kind.name} taken={e_taken} "
                f"target={e_target:#x}"
            )
        self.index = i + 1


def _expected_branches_within(stream: OracleStream, committed: int) -> int:
    """Branches the oracle commits within its first ``committed`` instructions."""
    count = 0
    for seg, base in zip(stream.segments, stream.cumulative):
        if base >= committed:
            break
        if base + seg.n_instrs <= committed:
            count += len(seg.branches)
            continue
        limit = committed - base
        count += sum(1 for addr, _, _, _ in seg.branches if ((addr - seg.start) >> 2) < limit)
        break
    return count


def _end_state_problems(
    sim: Simulator, expected: list[tuple], recorder: CommitRecorder
) -> list[str]:
    """Architectural end-state agreement between simulator and oracle."""
    problems: list[str] = []
    params = sim.params
    combined = StatSet()
    if sim.warmup_stats is not None:
        combined.merge(sim.warmup_stats)
    combined.merge(sim.stats)

    committed = sim.backend.committed
    target = params.warmup_instructions + params.sim_instructions
    if committed < target:
        problems.append(f"run ended at {committed} committed instructions, target {target}")
    if sim.trainer.committed != committed:
        problems.append(
            f"trainer committed {sim.trainer.committed} != backend committed {committed}"
        )
    if combined.get("committed_instructions") != committed:
        problems.append(
            f"committed_instructions counter {combined.get('committed_instructions')} "
            f"!= backend committed {committed}"
        )
    if combined.get("committed_branches") != recorder.index:
        problems.append(
            f"committed_branches counter {combined.get('committed_branches')} "
            f"!= {recorder.index} branches checked"
        )
    oracle_branches = _expected_branches_within(sim.stream, committed)
    if recorder.index != oracle_branches:
        problems.append(
            f"simulator trained {recorder.index} branches; the oracle commits "
            f"{oracle_branches} in the same {committed}-instruction window"
        )

    # Architectural RAS: replay calls/returns of the checked prefix.
    ras = ReturnAddressStack()
    for addr, kind, taken, _target in expected[: recorder.index]:
        if not taken:
            continue
        if kind.is_call:
            ras.push(addr + 4)
        elif kind.is_return:
            ras.pop()
    if ras.snapshot() != sim.trainer.arch_ras.snapshot():
        problems.append(
            f"architectural RAS mismatch: depth {len(sim.trainer.arch_ras)} "
            f"vs oracle replay depth {len(ras)}"
        )

    # Architectural history: for THR/Ideal the commit-time history is a
    # pure function of the committed stream (the `detected` argument is
    # ignored), so an independent replay must reproduce it bit-exactly.
    # GHR* histories depend on BTB contents at commit time and are
    # covered by the per-branch stream equality instead.
    policy = params.frontend.history_policy
    if policy in (HistoryPolicy.THR, HistoryPolicy.IDEAL):
        mgr = HistoryManager(policy, sim.hist_mgr.bits)
        hist = 0
        for addr, kind, taken, target in expected[: recorder.index]:
            hist, _ = mgr.commit_push(hist, addr, taken, target, True)
        if hist != sim.trainer.arch_hist:
            problems.append(
                f"architectural {policy.value} history mismatch vs oracle replay"
            )
    return problems


def run_differential(
    params: SimParams,
    program: Program,
    stream: OracleStream,
    expected_stream: OracleStream,
    workload_name: str = "",
    telemetry=None,
) -> tuple[RunResult, DifferentialReport]:
    """Run one simulation under differential oracle checking.

    ``stream`` drives the simulator as usual; ``expected_stream`` is the
    independently regenerated oracle run it is checked against.  Raises
    :class:`DifferentialDivergence` on the first disagreement (or on
    end-state mismatch); invariant checking composes freely via
    ``params.check_invariants``.
    """
    sim = Simulator(params, program, stream, telemetry=telemetry)
    recorder = CommitRecorder(sim.trainer, flatten_branches(expected_stream))
    result = sim.run(workload_name=workload_name)
    problems = _end_state_problems(sim, recorder.expected, recorder)
    if problems:
        raise DifferentialDivergence(
            f"end-state disagreement ({workload_name or 'custom program'}):\n  "
            + "\n  ".join(problems)
        )
    report = DifferentialReport(
        workload=workload_name,
        branches_checked=recorder.index,
        committed_instructions=sim.backend.committed,
        result=result,
    )
    return result, report


def check_workload(name: str, params: SimParams) -> DifferentialReport:
    """Differential + invariant check of one workload (any source).

    The expected stream comes from the source's own independent
    derivation (:meth:`~repro.trace.source.WorkloadSource.expected_stream`):
    a fresh seeded regeneration for synthetic workloads, a fresh
    cache-bypassing decode for trace-backed ones.
    """
    params = params.replace(check_invariants=True)
    n = params.warmup_instructions + params.sim_instructions
    program, stream = make_trace(name, n)
    expected = workload_by_name(name).expected_stream(n)
    _result, report = run_differential(params, program, stream, expected, workload_name=name)
    return report


def check_workload_batched(
    name: str, params: SimParams, width: int = 2
) -> DifferentialReport:
    """Differential check of one workload on the lockstep batch path.

    Runs ``width`` identical instances via
    :func:`repro.core.batch.run_batch`, each under its own
    :class:`CommitRecorder` against the independently regenerated oracle
    stream, then checks every instance's end state *and* bit-identity
    (cycles, instructions, full counter set) against a scalar reference
    run of the same configuration.  The per-cycle invariant checker is
    forced off -- it is exactly what makes a config non-batchable -- so
    this complements, rather than replaces, :func:`check_workload`.
    """
    from repro.core.batch import batchable, run_batch

    params = params.replace(check_invariants=False)
    ok, reason = batchable(params)
    if not ok:
        raise ValueError(f"config {params.label()!r} is not batchable: {reason}")
    n = params.warmup_instructions + params.sim_instructions
    program, stream = make_trace(name, n)
    expected = workload_by_name(name).expected_stream(n)
    flat = flatten_branches(expected)

    sims = [Simulator(params, program, stream) for _ in range(max(2, width))]
    recorders = [CommitRecorder(sim.trainer, flat) for sim in sims]
    results = run_batch(sims, [name] * len(sims))
    for i, (sim, recorder) in enumerate(zip(sims, recorders)):
        problems = _end_state_problems(sim, flat, recorder)
        if problems:
            raise DifferentialDivergence(
                f"end-state disagreement ({name}, batch member {i}):\n  "
                + "\n  ".join(problems)
            )

    reference = Simulator(params, program, stream).run(workload_name=name)
    ref_stats = reference.stats.as_dict()
    for i, result in enumerate(results):
        if (
            result.cycles != reference.cycles
            or result.instructions != reference.instructions
            or result.stats.as_dict() != ref_stats
        ):
            raise DifferentialDivergence(
                f"batched run diverges from scalar ({name}, batch member {i}): "
                f"cycles {result.cycles} vs {reference.cycles}, "
                f"instructions {result.instructions} vs {reference.instructions}"
            )
    return DifferentialReport(
        workload=name,
        branches_checked=recorders[0].index,
        committed_instructions=sims[0].backend.committed,
        result=results[0],
    )
