"""Package-wide stdlib logging.

Every module that wants diagnostics asks for a child of the single
``repro`` logger::

    from repro.common.log import get_logger
    log = get_logger(__name__)
    log.debug("fanning %d simulations across %d workers", n, jobs)

Nothing is printed until :func:`configure` runs (the CLI calls it with
the ``--log-level`` flag; the ``REPRO_LOG`` environment variable is the
fallback, default ``warning``).  Library use without configuration
falls through to the stdlib's last-resort handler, so ``repro`` stays
quiet when embedded.
"""

from __future__ import annotations

import logging
import os

ENV_VAR = "REPRO_LOG"
"""Environment variable naming the default log level (e.g. ``debug``)."""

ROOT_NAME = "repro"
"""Name of the package root logger all module loggers descend from."""

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

_configured = False


def level_names() -> list[str]:
    """Accepted level names, for CLI ``choices``."""
    return list(_LEVELS)


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` hierarchy.

    ``name`` may be a module ``__name__`` (already rooted at ``repro``)
    or a short suffix like ``"runner"``; ``None`` returns the root.
    """
    if not name or name == ROOT_NAME:
        return logging.getLogger(ROOT_NAME)
    if name.startswith(ROOT_NAME + ".") :
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_NAME}.{name}")


def resolve_level(level: str | None = None) -> int:
    """Map a level name (or ``REPRO_LOG``, or the default) to an int."""
    raw = (level or os.environ.get(ENV_VAR) or "warning").strip().lower()
    try:
        return _LEVELS[raw]
    except KeyError:
        raise ValueError(f"unknown log level {raw!r}; expected one of {list(_LEVELS)}") from None


def current_level_name() -> str:
    """The effective level name of the ``repro`` root logger.

    Used to thread the parent's logging configuration into pool workers
    (``ProcessPoolExecutor`` initializer): returns the configured level
    when :func:`configure` has run, else falls back to ``REPRO_LOG`` /
    the default -- always a name :func:`configure` accepts.
    """
    level = logging.getLogger(ROOT_NAME).level
    for name, value in _LEVELS.items():
        if value == level:
            return name
    raw = (os.environ.get(ENV_VAR) or "warning").strip().lower()
    return raw if raw in _LEVELS else "warning"


def configure(level: str | None = None) -> logging.Logger:
    """Attach a stream handler to the ``repro`` logger and set its level.

    Idempotent: repeated calls only adjust the level, they never stack
    handlers.  Returns the configured root logger.
    """
    global _configured
    root = logging.getLogger(ROOT_NAME)
    root.setLevel(resolve_level(level))
    if not _configured:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
        root.addHandler(handler)
        root.propagate = False
        _configured = True
    return root
