"""Uniform component registries.

Every pluggable component family in the simulator -- dedicated
prefetchers (:mod:`repro.prefetch`), direction predictors, history
policies and BTB variants (:mod:`repro.core.build`) -- is published
through a :class:`Registry`: a named mapping from component name to
factory (or descriptor) with a ``register()`` entry point, so new
components can be added by any module without editing core code::

    from repro.core.build import direction_predictors

    @direction_predictors.register("always_taken")
    def _build(branch, hist_bits):
        return AlwaysTaken()

    params = SimParams().with_branch(direction_kind="always_taken")

Unknown names raise a :class:`ValueError` that lists every registered
name, so CLI and sweep errors are self-describing.  See
``docs/ARCHITECTURE.md`` for the extension recipe of each registry.
"""

from __future__ import annotations

from collections.abc import Iterator


class Registry:
    """A named mapping of component names to factories/descriptors.

    ``kind`` is a human-readable family name ("prefetcher", "direction
    predictor", ...) used in error messages.  Entries are usually
    callables (classes or factory functions) created via
    :meth:`create`, but plain descriptor objects (e.g. enum members)
    can be registered too and fetched with :meth:`get`.
    """

    __slots__ = ("kind", "_entries")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, object] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, entry: object = None):
        """Register ``entry`` under ``name``; usable as a decorator.

        ``register("x", factory)`` registers directly;
        ``@register("x")`` registers the decorated callable.  Names are
        unique: re-registering an existing name raises ``ValueError``
        (use :meth:`unregister` first to replace deliberately).
        """
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} name must be a non-empty string, got {name!r}")
        if entry is None:
            def _decorator(obj):
                self.register(name, obj)
                return obj

            return _decorator
        if name in self._entries:
            raise ValueError(f"{self.kind} {name!r} is already registered")
        self._entries[name] = entry
        return entry

    def unregister(self, name: str) -> object:
        """Remove and return the entry for ``name`` (KeyError if absent)."""
        return self._entries.pop(name)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> object:
        """The registered entry for ``name``; ValueError lists known names."""
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self.names()) or "<none>"
            raise ValueError(f"unknown {self.kind} {name!r}; known: {known}") from None

    def create(self, name: str, *args, **kwargs):
        """Instantiate the factory registered under ``name``."""
        factory = self.get(name)
        if not callable(factory):
            raise TypeError(f"{self.kind} {name!r} is not a factory (registered: {factory!r})")
        return factory(*args, **kwargs)

    def names(self) -> list[str]:
        """All registered names, sorted."""
        return sorted(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {len(self._entries)} entries)"
