"""Lightweight statistics counters.

A :class:`StatSet` is a flat namespace of named integer counters with a
few derived-metric helpers.  Simulator components mutate counters
directly (``stats.bump("l1i_miss")``); the experiments layer reads them
out at the end of a run.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from collections import defaultdict


class StatSet:
    """A dictionary of named counters with convenience arithmetic."""

    __slots__ = ("_counters",)

    def __init__(self) -> None:
        # defaultdict makes ``bump`` a single indexed add -- it is the
        # most frequently called method in the whole simulator.
        self._counters: dict[str, int] = defaultdict(int)

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (creating it at 0)."""
        self._counters[name] += amount

    def set(self, name: str, value: int) -> None:
        """Set counter ``name`` to an absolute value."""
        self._counters[name] = value

    def get(self, name: str) -> int:
        """Return counter ``name`` (0 if never touched)."""
        return self._counters.get(name, 0)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def names(self) -> list[str]:
        """Return all counter names, sorted."""
        return sorted(self._counters)

    def as_dict(self) -> dict[str, int]:
        """Return a copy of the raw counters."""
        return dict(self._counters)

    def merge(self, other: "StatSet") -> None:
        """Add every counter of ``other`` into this set."""
        for name, value in other._counters.items():
            self.bump(name, value)

    def per_kilo(self, name: str, denom_name: str) -> float:
        """Return ``name`` per 1000 units of ``denom_name`` (e.g. MPKI)."""
        denom = self.get(denom_name)
        if denom == 0:
            return 0.0
        return 1000.0 * self.get(name) / denom

    def ratio(self, name: str, denom_name: str) -> float:
        """Return ``name`` / ``denom_name`` (0 if the denominator is 0)."""
        denom = self.get(denom_name)
        if denom == 0:
            return 0.0
        return self.get(name) / denom

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counters.items()))
        return f"StatSet({inner})"


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the paper reports IPC speedups this way (Section V)."""
    vals = list(values)
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def amean(values: Iterable[float]) -> float:
    """Arithmetic mean; the paper reports MPKI this way (Section V)."""
    vals = list(values)
    if not vals:
        raise ValueError("amean of empty sequence")
    return sum(vals) / len(vals)


def speedup(ipc: float, baseline_ipc: float) -> float:
    """Return the speedup of ``ipc`` over ``baseline_ipc``."""
    if baseline_ipc <= 0:
        raise ValueError("baseline IPC must be positive")
    return ipc / baseline_ipc


def weighted_mean(pairs: Iterable[tuple[float, float]]) -> float:
    """Return the mean of (value, weight) pairs."""
    total = 0.0
    weight_sum = 0.0
    for value, weight in pairs:
        total += value * weight
        weight_sum += weight
    if weight_sum == 0:
        raise ValueError("weights sum to zero")
    return total / weight_sum


def summarize(stat_sets: Mapping[str, StatSet], names: Iterable[str]) -> dict[str, dict[str, int]]:
    """Extract a counter subset from several runs, keyed by run label."""
    wanted = list(names)
    return {label: {n: s.get(n) for n in wanted} for label, s in stat_sets.items()}
