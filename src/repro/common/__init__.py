"""Shared infrastructure: parameters, statistics, bit utilities, RNG.

These modules are substrate for the whole simulator and carry no
microarchitectural policy of their own.
"""

from repro.common.bits import (
    INSTR_BYTES,
    align_down,
    block_addr,
    block_offset,
    fold,
    line_addr,
    mix64,
)
from repro.common.params import (
    BranchPredictorParams,
    CoreParams,
    FrontendParams,
    MemoryParams,
    SimParams,
)
from repro.common.rng import SplitMix64
from repro.common.stats import StatSet

__all__ = [
    "INSTR_BYTES",
    "align_down",
    "block_addr",
    "block_offset",
    "fold",
    "line_addr",
    "mix64",
    "BranchPredictorParams",
    "CoreParams",
    "FrontendParams",
    "MemoryParams",
    "SimParams",
    "SplitMix64",
    "StatSet",
]
