"""Sweep-level run ledger: JSONL job-lifecycle events plus summaries.

A sweep (:func:`repro.experiments.runner.run_points`) is a black box
without this module: N jobs fan out across a process pool and nothing
records which ran where, which came from the cache, or why the sweep
was slow.  The ledger fixes that with one append-only JSONL file per
sweep under ``results/ledger/<sweep-id>.jsonl``:

* every deduplicated (workload, params) point emits ``queued``;
* points resolved from the in-process memo or the disk cache emit a
  terminal ``cache_hit`` (``source`` names which);
* the remainder emit ``started`` -> ``finished`` (or ``failed``), with
  the worker pid, the work-unit id (lockstep batches share one unit),
  wall seconds and simulated instructions per second;
* ``sweep_begin`` / ``sweep_end`` bracket the run with the pool
  configuration and the reconciled totals.

Workers never touch the file: they return timing metadata with their
results and the *parent* process writes every event (a single writer,
no interleaving or locking).  The ledger only observes -- results of a
ledgered sweep are bit-identical to a plain one -- and is enabled by
``REPRO_LEDGER`` (``1`` for the default directory, or a directory
path).  ``repro sweep-report`` renders the progress view and the
post-hoc markdown/JSON summary from the file; see
``docs/OBSERVABILITY.md`` for the event schema.
"""

from __future__ import annotations

import datetime
import json
import os
import time
from pathlib import Path

LEDGER_SCHEMA_VERSION = 1
"""Bump when the event shapes below change incompatibly."""

ENV_LEDGER = "REPRO_LEDGER"
"""``1``/``true`` enables the ledger in the default directory; any
other non-empty value is used as the ledger directory path; ``0`` /
unset disables."""

#: Event names a job may carry, in lifecycle order.
JOB_EVENTS = ("queued", "cache_hit", "started", "finished", "failed")

#: Terminal events: exactly one per queued job in a complete ledger.
TERMINAL_EVENTS = ("cache_hit", "finished", "failed")

#: Fields that legitimately differ between a serial and a parallel run
#: of the same sweep (timing, process identity, interleaving).
TIMING_FIELDS = ("ts", "pid", "wall_seconds", "instrs_per_sec", "unit", "unit_size")


def ledger_enabled() -> bool:
    """Whether sweeps should write a run ledger (``REPRO_LEDGER``)."""
    raw = os.environ.get(ENV_LEDGER, "").strip()
    return bool(raw) and raw.lower() not in ("0", "off", "no", "false")


def default_ledger_dir() -> Path:
    """``REPRO_LEDGER`` as a path when it names one, else ``results/ledger``."""
    raw = os.environ.get(ENV_LEDGER, "").strip()
    if raw and raw.lower() not in ("0", "1", "off", "no", "false", "true", "yes", "on"):
        return Path(raw)
    return Path(__file__).resolve().parents[3] / "results" / "ledger"


_SWEEP_SEQ = 0


def new_sweep_id(clock=time.time) -> str:
    """A sortable, collision-safe sweep id (UTC timestamp + pid + seq).

    The per-process sequence number keeps two sweeps started within the
    same second (e.g. back-to-back figure scripts) in separate files.
    """
    global _SWEEP_SEQ
    _SWEEP_SEQ += 1
    stamp = datetime.datetime.fromtimestamp(clock(), tz=datetime.timezone.utc)
    return f"{stamp.strftime('%Y%m%dT%H%M%S')}-{os.getpid()}-{_SWEEP_SEQ:04d}"


class SweepLedger:
    """Single-writer JSONL event log for one sweep.

    All ``emit``-family methods append one self-contained JSON object
    per line and flush immediately, so a concurrently running
    ``repro sweep-report --follow`` always sees complete lines.  File
    I/O is best-effort: a full or read-only disk silences the ledger
    rather than failing the sweep.
    """

    def __init__(
        self,
        path: Path | str | None = None,
        sweep_id: str | None = None,
        clock=time.time,
        context: dict | None = None,
    ) -> None:
        self.sweep_id = sweep_id or new_sweep_id(clock)
        self.clock = clock
        #: Caller-supplied fields stamped into every event (the sweep
        #: scheduler passes the spec name and shard k/N here, so a
        #: multi-shard sweep's ledgers can be reconciled file by file).
        self.context = dict(context or {})
        self.path = Path(path) if path is not None else (
            default_ledger_dir() / f"{self.sweep_id}.jsonl"
        )
        self._fh = None
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a")
        except OSError:
            self._fh = None

    # ------------------------------------------------------------------
    # Event emission
    # ------------------------------------------------------------------
    def emit(self, event: str, **fields) -> None:
        """Append one event line (``schema``/``sweep``/``event``/``ts`` + fields)."""
        if self._fh is None:
            return
        record = {
            "schema": LEDGER_SCHEMA_VERSION,
            "sweep": self.sweep_id,
            "event": event,
            "ts": fields.pop("ts", None) or self.clock(),
        }
        record.update(self.context)
        record.update(fields)
        try:
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()
        except OSError:
            self._fh = None

    def begin(self, jobs: int, batching: bool, batch_width: int) -> None:
        """Open the sweep: pool configuration snapshot."""
        self.emit("sweep_begin", jobs=jobs, batching=batching, batch_width=batch_width)

    def queued(self, key: str, workload: str, label: str) -> None:
        """A deduplicated point entered the sweep."""
        self.emit("queued", key=key, workload=workload, label=label)

    def cache_hit(self, key: str, workload: str, label: str, source: str) -> None:
        """Terminal: the point was resolved from the ``memo`` or ``disk`` cache."""
        self.emit("cache_hit", key=key, workload=workload, label=label, source=source)

    def started(self, key: str, workload: str, unit: str, pid: int, ts: float) -> None:
        """A worker began simulating the point (``ts`` is the worker's clock)."""
        self.emit("started", key=key, workload=workload, unit=unit, pid=pid, ts=ts)

    def finished(
        self,
        key: str,
        workload: str,
        label: str,
        unit: str,
        unit_size: int,
        pid: int,
        wall_seconds: float,
        instructions: int,
        instrs_per_sec: float,
        ipc: float,
    ) -> None:
        """Terminal: the point simulated successfully.

        ``wall_seconds`` and ``instrs_per_sec`` describe the whole
        *work unit* (a lockstep batch shares one measurement across its
        ``unit_size`` members); ``instructions``/``ipc`` are this job's.
        """
        self.emit(
            "finished",
            key=key,
            workload=workload,
            label=label,
            unit=unit,
            unit_size=unit_size,
            pid=pid,
            wall_seconds=wall_seconds,
            instructions=instructions,
            instrs_per_sec=instrs_per_sec,
            ipc=ipc,
        )

    def failed(self, key: str, workload: str, label: str, unit: str, error: str) -> None:
        """Terminal: the point's work unit raised."""
        self.emit("failed", key=key, workload=workload, label=label, unit=unit, error=error)

    def end(self, **totals) -> None:
        """Close the sweep with its reconciled totals, then close the file."""
        self.emit("sweep_end", **totals)
        self.close()

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None


def open_ledger(context: dict | None = None) -> SweepLedger | None:
    """Environment-gated ledger factory the sweep runner calls.

    Returns ``None`` when ``REPRO_LEDGER`` is off so the runner's fast
    path stays branch-only.  ``context`` fields (e.g. the sweep
    scheduler's spec name and shard k/N) are stamped into every event.
    """
    if not ledger_enabled():
        return None
    return SweepLedger(context=context)


# ----------------------------------------------------------------------
# Reading and summarising
# ----------------------------------------------------------------------
def read_ledger(path: Path | str) -> list[dict]:
    """Parse a ledger JSONL file; malformed lines are skipped.

    Skipping (rather than raising) lets ``--follow`` read a file whose
    final line is still being written.
    """
    events: list[dict] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "event" in record:
                events.append(record)
    return events


def job_sequences(events: list[dict]) -> dict[str, list[str]]:
    """Per-job event-name sequences, keyed by run key, in file order."""
    sequences: dict[str, list[str]] = {}
    for record in events:
        key = record.get("key")
        if key is None:
            continue
        sequences.setdefault(key, []).append(record["event"])
    return sequences


_VALID_SEQUENCES = (
    ["queued", "cache_hit"],
    ["queued", "started", "finished"],
    ["queued", "started", "failed"],
    ["queued", "failed"],  # the unit raised before worker meta came back
    ["queued"],  # still pending (live sweep)
    ["queued", "started"],  # running (live sweep)
)


def invalid_sequences(events: list[dict]) -> dict[str, list[str]]:
    """Jobs whose lifecycle violates queued -> cache_hit | started -> end."""
    return {
        key: seq
        for key, seq in job_sequences(events).items()
        if seq not in _VALID_SEQUENCES
    }


def summarize_ledger(events: list[dict], top: int = 10) -> dict:
    """Aggregate one sweep's events into the sweep-report payload.

    The payload reconciles exactly: ``queued == finished + failed +
    cache_hits`` on a complete ledger (``reconciled`` flags it), and
    carries the slowest work units, the cache-hit rate, per-worker
    utilization and the aggregate simulation throughput.
    """
    counts = {name: 0 for name in JOB_EVENTS}
    hit_sources = {"memo": 0, "disk": 0}
    begin_ts = end_ts = None
    begin_cfg: dict = {}
    units: dict[str, dict] = {}
    workers: dict[int, dict] = {}
    sweep_id = None
    for record in events:
        event = record["event"]
        sweep_id = record.get("sweep", sweep_id)
        if event == "sweep_begin":
            begin_ts = record["ts"]
            begin_cfg = {
                k: record.get(k) for k in ("jobs", "batching", "batch_width")
            }
        elif event == "sweep_end":
            end_ts = record["ts"]
        if event not in counts:
            continue
        counts[event] += 1
        if event == "cache_hit":
            source = record.get("source", "disk")
            hit_sources[source] = hit_sources.get(source, 0) + 1
        elif event == "finished":
            unit = units.setdefault(
                record.get("unit", record["key"]),
                {
                    "workloads": set(),
                    "labels": set(),
                    "keys": 0,
                    "pid": record.get("pid"),
                    "wall_seconds": record.get("wall_seconds", 0.0),
                    "instrs_per_sec": record.get("instrs_per_sec", 0.0),
                    "unit_size": record.get("unit_size", 1),
                },
            )
            unit["keys"] += 1
            unit["workloads"].add(record.get("workload", ""))
            unit["labels"].add(record.get("label", ""))
            pid = record.get("pid")
            if pid is not None:
                worker = workers.setdefault(pid, {"units": set(), "busy_seconds": 0.0})
                if record.get("unit") not in worker["units"]:
                    worker["units"].add(record.get("unit"))
                    worker["busy_seconds"] += record.get("wall_seconds", 0.0)

    queued = counts["queued"]
    terminal = counts["finished"] + counts["failed"] + counts["cache_hit"]
    duration = (end_ts - begin_ts) if (begin_ts is not None and end_ts is not None) else None
    slowest = sorted(units.values(), key=lambda u: -u["wall_seconds"])[: max(0, top)]
    total_busy = sum(u["wall_seconds"] for u in units.values())
    total_instr_rate = 0.0
    if total_busy > 0:
        total_instr = sum(u["instrs_per_sec"] * u["wall_seconds"] for u in units.values())
        total_instr_rate = total_instr / total_busy
    worker_rows = []
    for pid, worker in sorted(workers.items()):
        row = {
            "pid": pid,
            "units": len(worker["units"]),
            "busy_seconds": worker["busy_seconds"],
        }
        if duration:
            row["utilization"] = min(1.0, worker["busy_seconds"] / duration)
        worker_rows.append(row)
    return {
        "schema": LEDGER_SCHEMA_VERSION,
        "sweep": sweep_id,
        "config": begin_cfg,
        "complete": end_ts is not None,
        "duration_seconds": duration,
        "totals": {
            "queued": queued,
            "cache_hits": counts["cache_hit"],
            "started": counts["started"],
            "finished": counts["finished"],
            "failed": counts["failed"],
        },
        "reconciled": queued == terminal,
        "cache_hit_rate": (counts["cache_hit"] / queued) if queued else 0.0,
        "cache_hit_sources": hit_sources,
        "busy_seconds": total_busy,
        "instrs_per_sec": total_instr_rate,
        "slowest_units": [
            {
                "workloads": sorted(u["workloads"]),
                "labels": sorted(u["labels"]),
                "jobs": u["keys"],
                "pid": u["pid"],
                "wall_seconds": u["wall_seconds"],
                "instrs_per_sec": u["instrs_per_sec"],
            }
            for u in slowest
        ],
        "workers": worker_rows,
        "invalid_sequences": {k: v for k, v in invalid_sequences(events).items()},
    }


def render_progress(summary: dict) -> str:
    """One-screen live progress view (``repro sweep-report`` default)."""
    totals = summary["totals"]
    queued = totals["queued"]
    done = totals["finished"] + totals["failed"] + totals["cache_hits"]
    frac = done / queued if queued else 0.0
    bar_width = 40
    filled = int(round(bar_width * frac))
    bar = "#" * filled + "." * (bar_width - filled)
    state = "complete" if summary["complete"] else "running"
    lines = [
        f"sweep {summary.get('sweep') or '?'} [{state}]",
        f"[{bar}] {done}/{queued} jobs ({100.0 * frac:.0f}%)",
        f"  finished={totals['finished']} cache_hits={totals['cache_hits']} "
        f"failed={totals['failed']} "
        f"hit_rate={100.0 * summary['cache_hit_rate']:.0f}%",
    ]
    if summary["instrs_per_sec"]:
        lines.append(f"  throughput {summary['instrs_per_sec']:,.0f} instrs/sec across workers")
    if summary["duration_seconds"] is not None:
        lines.append(f"  wall {summary['duration_seconds']:.2f}s")
    return "\n".join(lines)


def render_summary_md(summary: dict) -> str:
    """Post-hoc markdown sweep report (``repro sweep-report --format md``)."""
    totals = summary["totals"]
    lines = [
        f"# Sweep report: {summary.get('sweep') or '?'}",
        "",
        f"- status: {'complete' if summary['complete'] else 'running'}"
        + ("" if summary["reconciled"] else " (totals do NOT reconcile)"),
        f"- jobs queued: {totals['queued']}",
        f"- finished: {totals['finished']}, failed: {totals['failed']}, "
        f"cache hits: {totals['cache_hits']} "
        f"(memo {summary['cache_hit_sources'].get('memo', 0)}, "
        f"disk {summary['cache_hit_sources'].get('disk', 0)})",
        f"- cache hit rate: {100.0 * summary['cache_hit_rate']:.1f}%",
    ]
    if summary["duration_seconds"] is not None:
        lines.append(f"- sweep wall time: {summary['duration_seconds']:.2f}s")
    if summary["busy_seconds"]:
        lines.append(f"- worker busy time: {summary['busy_seconds']:.2f}s")
    if summary["instrs_per_sec"]:
        lines.append(f"- aggregate throughput: {summary['instrs_per_sec']:,.0f} instrs/sec")
    cfg = summary.get("config") or {}
    if any(v is not None for v in cfg.values()):
        lines.append(
            f"- pool: jobs={cfg.get('jobs')}, batching={cfg.get('batching')}, "
            f"batch_width={cfg.get('batch_width')}"
        )
    if summary["slowest_units"]:
        lines += [
            "",
            "## Slowest work units",
            "",
            "| workload | config | jobs | pid | wall (s) | instrs/sec |",
            "| --- | --- | --- | --- | --- | --- |",
        ]
        for unit in summary["slowest_units"]:
            lines.append(
                f"| {','.join(unit['workloads'])} | {','.join(unit['labels'])} "
                f"| {unit['jobs']} | {unit['pid']} | {unit['wall_seconds']:.3f} "
                f"| {unit['instrs_per_sec']:,.0f} |"
            )
    if summary["workers"]:
        lines += [
            "",
            "## Per-worker utilization",
            "",
            "| pid | units | busy (s) | utilization |",
            "| --- | --- | --- | --- |",
        ]
        for row in summary["workers"]:
            util = f"{100.0 * row['utilization']:.0f}%" if "utilization" in row else "n/a"
            lines.append(
                f"| {row['pid']} | {row['units']} | {row['busy_seconds']:.3f} | {util} |"
            )
    if summary["invalid_sequences"]:
        lines += ["", "## Invalid job lifecycles", ""]
        for key, seq in sorted(summary["invalid_sequences"].items()):
            lines.append(f"- `{key[:16]}`: {' -> '.join(seq)}")
    return "\n".join(lines) + "\n"


def latest_ledger(directory: Path | str | None = None) -> Path | None:
    """The most recent ledger file in ``directory`` (default dir), if any."""
    directory = Path(directory) if directory is not None else default_ledger_dir()
    if not directory.is_dir():
        return None
    candidates = sorted(directory.glob("*.jsonl"))
    return candidates[-1] if candidates else None
