"""Pipeline telemetry: cycle accounting, prefetch tracking, sampling, tracing.

An opt-in observability layer for the simulator, built around four
pieces (all orchestrated by :class:`Telemetry`):

* **Top-down frontend cycle accounting.**  Every cycle of the
  measurement window is attributed to exactly one of the seven
  :data:`CYCLE_BUCKETS` causes, so the buckets sum to ``RunResult.cycles``
  *by construction* -- the attribution runs once per cycle, picks one
  bucket, and nothing else touches the counters.
* **Prefetch usefulness.**  The memory hierarchy already classifies
  every issued prefetch into a terminal state (timely / late /
  unused-evicted); :meth:`Telemetry.finalize` adds the end-of-run
  residuals (still in flight, resident-but-untouched) so the states
  partition the issued count exactly.
* **Interval time-series.**  :class:`IntervalSampler` snapshots a fixed
  counter subset every ``interval_stride`` committed instructions
  (default 10k), warmup included, and serialises the rows as JSONL --
  warm-up transients and phase changes become visible.
* **Event trace.**  :class:`EventRing` is a bounded ring of structured
  pipeline events (FTQ push/pop, resteer, flush, fill, prefetch issue)
  fed through per-component ``telemetry`` attributes that stay ``None``
  on untraced runs, so the disabled cost is a single predictable branch
  per event site and results are bit-identical to an uninstrumented run.

See ``docs/OBSERVABILITY.md`` for bucket definitions, the event schema
and the JSONL layouts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.common.stats import StatSet

CYCLE_BUCKETS = (
    "retiring",
    "fetch_bandwidth",
    "icache_miss",
    "ftq_empty",
    "btb_miss_resteer",
    "pfc_resteer",
    "backend_flush",
)
"""Top-down cycle-accounting buckets, stored as ``cyc_<bucket>`` counters.

* ``retiring``         -- a full retire-width of correct-path instructions
  committed this cycle.
* ``fetch_bandwidth``  -- partial progress: some instructions committed
  (or wrong-path/pipeline-latency work consumed) but less than a full
  retire width was available.
* ``icache_miss``      -- nothing committed; the FTQ head is waiting on
  an in-flight I-cache fill.
* ``ftq_empty``        -- nothing committed and the FTQ is empty with no
  attributable re-steer in flight (prediction starvation).
* ``btb_miss_resteer`` -- FTQ empty because the frontend is refilling
  after a flush caused by a BTB-missed taken branch.
* ``pfc_resteer``      -- FTQ empty because a post-fetch correction or
  history-fixup re-steer is refilling the frontend.
* ``backend_flush``    -- FTQ empty because a backend misprediction
  flush (direction / wrong target) is refilling the frontend.
"""

SAMPLE_COUNTERS = (
    "committed_instructions",
    "starvation_cycles",
    "l1i_hit",
    "l1i_miss",
    "l2_miss",
    "branch_mispredictions",
    "cond_mispredictions",
    "frontend_resteer",
    "ftq_entries_created",
    "bpu_taken_predictions",
    "prefetch_issued",
    "prefetch_useful",
    "prefetch_late",
    "wrong_path_consumed",
)
"""Counters snapshotted (as per-interval deltas) by the interval sampler."""

#: Re-steer reason -> stall bucket.  Reasons are set by
#: :meth:`repro.frontend.bpu.BranchPredictionUnit.resteer` callers.
_REASON_BUCKETS = {
    "flush:btb_miss": "btb_miss_resteer",
    "pfc": "pfc_resteer",
    "fixup": "pfc_resteer",
}

# FTQ-entry state meaning "an I-cache fill is in flight" -- mirrored
# here (value-stable, asserted in tests) to avoid an import cycle with
# repro.frontend.ftq.
_STATE_AWAIT_FILL = 2


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs for one telemetry-enabled run."""

    interval_stride: int = 10_000
    """Committed instructions between interval samples."""
    ring_capacity: int = 8192
    """Event-ring size; older events are overwritten (and counted)."""
    accounting: bool = True
    """Attribute every measured cycle to a :data:`CYCLE_BUCKETS` cause."""
    sampling: bool = True
    """Emit periodic counter snapshots (warmup included)."""
    events: bool = True
    """Attach the structured event trace hooks to pipeline components."""

    def __post_init__(self) -> None:
        if self.interval_stride < 1:
            raise ValueError("interval_stride must be positive")
        if self.ring_capacity < 1:
            raise ValueError("ring_capacity must be positive")


class EventRing:
    """Bounded ring buffer of structured pipeline events.

    Keeps the most recent ``capacity`` events; the total emitted and a
    per-kind histogram are tracked over the whole run so the report can
    say what was dropped.
    """

    __slots__ = ("capacity", "total", "counts", "_buf", "_next")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self.total = 0
        self.counts: dict[str, int] = {}
        self._buf: list[dict | None] = [None] * capacity
        self._next = 0

    def emit(self, event: dict) -> None:
        """Append ``event`` (a JSON-able dict with ``cycle``/``kind``)."""
        self._buf[self._next] = event
        self._next = (self._next + 1) % self.capacity
        self.total += 1
        kind = event["kind"]
        self.counts[kind] = self.counts.get(kind, 0) + 1

    @property
    def dropped(self) -> int:
        """Events overwritten because the ring was full."""
        return max(0, self.total - self.capacity)

    def events(self) -> list[dict]:
        """Retained events, oldest first."""
        if self.total < self.capacity:
            return [e for e in self._buf[: self._next] if e is not None]
        return [e for e in self._buf[self._next :] + self._buf[: self._next] if e is not None]


class IntervalSampler:
    """Periodic counter snapshots over the whole run (warmup included).

    Rows record cumulative position (committed instructions, cycle,
    phase) plus per-interval deltas of :data:`SAMPLE_COUNTERS`.  The
    warmup/measurement boundary swaps the simulator's ``StatSet``; the
    sampler detects the swap and restarts its delta baseline, tagging
    rows with the phase they belong to.
    """

    __slots__ = ("stride", "rows", "next_at", "_base", "_base_stats", "_last_cycle", "_last_committed")

    def __init__(self, stride: int) -> None:
        self.stride = stride
        self.rows: list[dict] = []
        self.next_at = stride
        self._base: dict[str, int] = {}
        self._base_stats: StatSet | None = None
        self._last_cycle = 0
        self._last_committed = 0

    def sample(self, cycle: int, committed: int, stats: StatSet, measuring: bool) -> None:
        """Record one row and advance the next-sample threshold."""
        if stats is not self._base_stats:
            # Warmup -> measurement boundary: counters were reset.
            self._base_stats = stats
            self._base = {}
        d_cycles = cycle - self._last_cycle
        d_instrs = committed - self._last_committed
        deltas = {}
        base = self._base
        for name in SAMPLE_COUNTERS:
            value = stats.get(name)
            deltas[name] = value - base.get(name, 0)
            base[name] = value
        self.rows.append(
            {
                "instructions": committed,
                "cycle": cycle,
                "phase": "measure" if measuring else "warmup",
                "interval_instructions": d_instrs,
                "interval_cycles": d_cycles,
                "interval_ipc": (d_instrs / d_cycles) if d_cycles > 0 else 0.0,
                "counters": deltas,
            }
        )
        self._last_cycle = cycle
        self._last_committed = committed
        self.next_at = committed - (committed % self.stride) + self.stride


class Telemetry:
    """Observability hub attached to one :class:`~repro.core.simulator.Simulator`.

    Construct one, pass it to ``simulate(..., telemetry=tel)`` (or the
    ``Simulator`` constructor), run, then read :meth:`summary` or dump
    the JSONL side files.  A ``Telemetry`` object is single-use: it
    belongs to the run that consumed it.
    """

    def __init__(self, config: TelemetryConfig | None = None) -> None:
        self.config = config or TelemetryConfig()
        self.now = 0
        """Current simulation cycle; refreshed at the top of every cycle."""
        self.ring = EventRing(self.config.ring_capacity) if self.config.events else None
        self.sampler = IntervalSampler(self.config.interval_stride) if self.config.sampling else None
        self._sim = None
        self._retire_width = 1
        self._finalized = False
        # Cycle-accounting buckets (plain ints on the per-cycle path;
        # folded into the run's StatSet at finalize).
        self.c_retiring = 0
        self.c_fetch_bandwidth = 0
        self.c_icache_miss = 0
        self.c_ftq_empty = 0
        self.c_btb_miss_resteer = 0
        self.c_pfc_resteer = 0
        self.c_backend_flush = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, sim) -> None:
        """Bind to a simulator and install the per-component event hooks."""
        if self._sim is not None:
            raise RuntimeError("Telemetry objects are single-use; build a new one per run")
        self._sim = sim
        self._retire_width = sim.params.core.retire_width
        if self.config.events:
            # The builder declares which components are observable; the
            # hub hooks each one rather than hand-listing them here.
            for component in sim.observables.values():
                component.telemetry = self

    def event(self, kind: str, **payload) -> None:
        """Record one structured event at the current cycle."""
        ring = self.ring
        if ring is None:
            return
        record = {"cycle": self.now, "kind": kind}
        record.update(payload)
        ring.emit(record)

    # ------------------------------------------------------------------
    # Per-cycle path
    # ------------------------------------------------------------------
    def tick(self, cycle: int, retired: int, measuring: bool) -> None:
        """Per-cycle callback: sample if due, attribute the cycle if measuring.

        ``retired`` is the number of correct-path instructions the
        backend committed this cycle.
        """
        sampler = self.sampler
        if sampler is not None:
            committed = self._sim.backend.committed
            if committed >= sampler.next_at:
                sampler.sample(cycle, committed, self._sim.stats, measuring)
        if not measuring or not self.config.accounting:
            return
        if retired >= self._retire_width:
            self.c_retiring += 1
        elif retired > 0:
            self.c_fetch_bandwidth += 1
        else:
            self._classify_stall(cycle)

    def _classify_stall(self, cycle: int) -> None:
        """Attribute one zero-retire cycle to its dominant frontend cause."""
        sim = self._sim
        if sim.decode_queue.total_instrs > 0:
            # Wrong-path or latency-bubbled work is draining: the fetch
            # pipeline delivered bytes the backend could not retire.
            self.c_fetch_bandwidth += 1
            return
        head = sim.ftq.head
        if head is not None:
            if head.state == _STATE_AWAIT_FILL:
                self.c_icache_miss += 1
            else:
                # Head present but still in tag-probe / array latency.
                self.c_fetch_bandwidth += 1
            return
        bpu = sim.bpu
        if cycle < bpu.stall_until and cycle < bpu.last_resteer_until:
            reason = bpu.last_resteer_reason
            bucket = _REASON_BUCKETS.get(reason)
            if bucket == "btb_miss_resteer":
                self.c_btb_miss_resteer += 1
            elif bucket == "pfc_resteer":
                self.c_pfc_resteer += 1
            elif reason.startswith("flush:"):
                self.c_backend_flush += 1
            else:
                self.c_ftq_empty += 1
            return
        self.c_ftq_empty += 1

    # ------------------------------------------------------------------
    # End of run
    # ------------------------------------------------------------------
    def accounting(self) -> dict[str, int]:
        """Current bucket counts, keyed by :data:`CYCLE_BUCKETS` name."""
        return {
            "retiring": self.c_retiring,
            "fetch_bandwidth": self.c_fetch_bandwidth,
            "icache_miss": self.c_icache_miss,
            "ftq_empty": self.c_ftq_empty,
            "btb_miss_resteer": self.c_btb_miss_resteer,
            "pfc_resteer": self.c_pfc_resteer,
            "backend_flush": self.c_backend_flush,
        }

    def finalize(self, sim, result) -> None:
        """Fold telemetry into the run's stats and take the final sample.

        Called by ``Simulator.run`` once the cycle loop exits: writes
        the ``cyc_*`` bucket counters and the prefetch residual counts
        (``prefetch_inflight_end`` / ``prefetch_resident_end``) into the
        measurement :class:`StatSet`, and forces a last interval sample
        so short runs still produce a time-series row.
        """
        if self._finalized:
            return
        self._finalized = True
        stats = sim.stats
        if self.config.accounting:
            for name, value in self.accounting().items():
                stats.set(f"cyc_{name}", value)
        stats.set("prefetch_inflight_end", sim.memory.mshrs.inflight_prefetches())
        stats.set("prefetch_resident_end", sim.memory.untouched_prefetched_lines)
        if self.sampler is not None:
            self.sampler.sample(sim.cycle, sim.backend.committed, stats, sim._measuring)

    def combined_stats(self) -> StatSet:
        """Warmup + measurement counters merged into one :class:`StatSet`.

        Prefetches issued during warmup can reach their terminal state
        inside the measurement window; the partition invariant therefore
        holds over the *combined* counters, which is what the prefetch
        section of :meth:`summary` reports.
        """
        merged = StatSet()
        warm = getattr(self._sim, "warmup_stats", None)
        if warm is not None:
            merged.merge(warm)
        merged.merge(self._sim.stats)
        return merged

    def prefetch_partition(self) -> dict[str, int | float]:
        """Full-run terminal-state partition of issued prefetches."""
        s = self.combined_stats()
        issued = s.get("prefetch_issued")
        timely = s.get("prefetch_useful")
        late = s.get("prefetch_late")
        evicted = s.get("prefetch_useless")
        inflight = s.get("prefetch_inflight_end")
        resident = s.get("prefetch_resident_end")
        useful = timely + late
        return {
            "issued": issued,
            "timely": timely,
            "late": late,
            "unused_evicted": evicted,
            "in_flight_at_end": inflight,
            "resident_untouched_at_end": resident,
            "redundant_unissued": s.get("prefetch_redundant") + s.get("prefetch_inflight_merge"),
            "accuracy": useful / issued if issued else 0.0,
            "coverage": timely / (timely + s.get("l1i_miss")) if timely + s.get("l1i_miss") else 0.0,
            "timeliness": timely / useful if useful else 0.0,
        }

    def summary(self, result) -> dict:
        """One JSON-able report dict for a finished run."""
        accounting = self.accounting() if self.config.accounting else {}
        total = sum(accounting.values())
        out = {
            "workload": result.workload,
            "label": result.label,
            "instructions": result.instructions,
            "cycles": result.cycles,
            "ipc": result.ipc,
            "cycle_accounting": accounting,
            "cycle_accounting_fraction": {
                k: (v / total if total else 0.0) for k, v in accounting.items()
            },
            "prefetch": self.prefetch_partition(),
            "fdp_miss_exposure": result.miss_exposure(),
            "mshr": {
                "peak_occupancy": self._sim.memory.mshrs.peak_occupancy,
                "allocations": self._sim.memory.mshrs.allocations,
                "merges": self._sim.memory.mshrs.merges,
            },
            "caches": {
                "l1i": self._sim.memory.l1i.snapshot(),
                "l2": self._sim.memory.l2.snapshot(),
            },
            "samples": len(self.sampler.rows) if self.sampler is not None else 0,
        }
        if self.ring is not None:
            out["events"] = {
                "emitted": self.ring.total,
                "retained": min(self.ring.total, self.ring.capacity),
                "capacity": self.ring.capacity,
                "dropped": self.ring.dropped,
                "by_kind": dict(sorted(self.ring.counts.items())),
            }
        return out

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def write_events_jsonl(self, path: str | Path) -> Path:
        """Write retained events, one JSON object per line; returns the path."""
        return _write_jsonl(path, self.ring.events() if self.ring is not None else [])

    def write_timeseries_jsonl(self, path: str | Path) -> Path:
        """Write interval samples, one JSON object per line; returns the path."""
        return _write_jsonl(path, self.sampler.rows if self.sampler is not None else [])


def _write_jsonl(path: str | Path, rows: list[dict]) -> Path:
    """Serialise ``rows`` as JSON Lines, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True))
            fh.write("\n")
    return path
