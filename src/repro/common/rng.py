"""Deterministic pseudo-random number generation.

Every stochastic decision in the repository (program shapes, branch
behaviours, interpreter outcomes) flows from a :class:`SplitMix64`
seeded by an explicit value, so that traces and experiments are
reproducible bit-for-bit across runs and platforms.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


class SplitMix64:
    """Small, fast, deterministic 64-bit PRNG (SplitMix64).

    Chosen over :mod:`random` to keep the stream format independent of
    CPython internals and trivially re-implementable.
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        """Return the next raw 64-bit value."""
        self._state = (self._state + _GOLDEN) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    def randint(self, lo: int, hi: int) -> int:
        """Return a uniform integer in ``[lo, hi]`` inclusive."""
        if hi < lo:
            raise ValueError(f"empty range [{lo}, {hi}]")
        span = hi - lo + 1
        return lo + self.next_u64() % span

    def random(self) -> float:
        """Return a uniform float in ``[0, 1)``."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def chance(self, p: float) -> bool:
        """Return True with probability ``p``."""
        return self.random() < p

    def choice(self, seq):
        """Return a uniformly chosen element of a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.next_u64() % len(seq)]

    def shuffle(self, seq: list) -> None:
        """Shuffle ``seq`` in place (Fisher-Yates)."""
        for i in range(len(seq) - 1, 0, -1):
            j = self.next_u64() % (i + 1)
            seq[i], seq[j] = seq[j], seq[i]

    def fork(self, tag: int) -> "SplitMix64":
        """Derive an independent child stream keyed by ``tag``.

        Forking keeps unrelated subsystems (e.g. two branch behaviours)
        decoupled: adding draws to one does not perturb the other.
        """
        return SplitMix64(self.next_u64() ^ ((tag * _GOLDEN) & _MASK64))
