"""Bit-manipulation helpers used throughout the simulator.

All addresses are byte addresses held in plain Python ints.  The ISA is
fixed-length 32-bit (4-byte) instructions, as assumed by the paper
(Section IV), so instruction indices and byte addresses convert by a
shift of 2.
"""

from __future__ import annotations

INSTR_BYTES = 4
"""Fixed instruction length in bytes (the paper assumes 32-bit instructions)."""

_MASK64 = (1 << 64) - 1

# SplitMix64 finalizer constants; used as a cheap, well-distributed mixer.
_MIX_K1 = 0xBF58476D1CE4E5B9
_MIX_K2 = 0x94D049BB133111EB


def mix64(x: int) -> int:
    """Return a 64-bit avalanche mix of ``x`` (SplitMix64 finalizer).

    Used wherever the hardware would employ an index hash.  The exact
    polynomial is irrelevant to the studied behaviour; what matters is
    that distinct inputs spread uniformly over the index space.
    """
    x &= _MASK64
    x ^= x >> 30
    x = (x * _MIX_K1) & _MASK64
    x ^= x >> 27
    x = (x * _MIX_K2) & _MASK64
    x ^= x >> 31
    return x


def fold(value: int, out_bits: int) -> int:
    """Fold an arbitrarily long non-negative int into ``out_bits`` bits.

    The value is first reduced to 64 bits by XOR-folding 64-bit chunks,
    then mixed and truncated.  This stands in for the hardware's
    folded-history registers: a deterministic many-to-one hash whose
    aliasing behaviour is what branch-predictor indexing relies on.
    """
    if out_bits <= 0:
        return 0
    v = value
    while v > _MASK64:
        v = (v & _MASK64) ^ (v >> 64)
    return mix64(v) >> (64 - out_bits)


def align_down(addr: int, size: int) -> int:
    """Align ``addr`` down to a multiple of ``size`` (a power of two)."""
    return addr & ~(size - 1)


def block_addr(addr: int, block_bytes: int = 32) -> int:
    """Address of the fetch block (default 32B, Section IV-A) holding ``addr``."""
    return addr & ~(block_bytes - 1)


def block_offset(addr: int, block_bytes: int = 32) -> int:
    """Instruction slot index of ``addr`` within its fetch block."""
    return (addr & (block_bytes - 1)) >> 2


def line_addr(addr: int, line_bytes: int = 64) -> int:
    """Address of the cache line (default 64B) holding ``addr``."""
    return addr & ~(line_bytes - 1)


def target_hash(pc: int, target: int) -> int:
    """Taken-branch hash from the paper's Eq. 2.

    ``target hash = (instruction address >> 2) XOR (target >> 3)``
    """
    return (pc >> 2) ^ (target >> 3)
