"""Simulation parameter dataclasses.

The parameter surface mirrors Table IV of the paper (common core
parameters, Sunny Cove-like) plus the knobs the evaluation sweeps:
FTQ depth (Fig 14), BTB capacity (Figs 7/11), direction predictor kind
and size (Fig 12), prediction bandwidth and BTB latency (Fig 13),
history-management policy (Table V / Fig 8) and PFC on/off.

Everything is a frozen dataclass so configurations can be hashed,
compared, and safely shared between runs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from enum import Enum


class HistoryPolicy(str, Enum):
    """Branch history management policies (Table V).

    * ``THR``   -- taken-only branch target history; BTB allocates taken
      branches only; no fixup needed (the paper's proposal).
    * ``GHR0``  -- direction history, no fixup, taken-only BTB allocation.
    * ``GHR1``  -- direction history, no fixup, BTB allocates all branches.
    * ``GHR2``  -- direction history, fixup on BTB-miss not-taken branches
      (costs frontend flushes), taken-only BTB allocation.
    * ``GHR3``  -- direction history, fixup, BTB allocates all branches
      (the policy commonly paired with basic-block BTBs in academia).
    * ``IDEAL`` -- oracle direction history: every branch contributes its
      bit as if always detected, with no fixup flushes.
    """

    THR = "THR"
    GHR0 = "GHR0"
    GHR1 = "GHR1"
    GHR2 = "GHR2"
    GHR3 = "GHR3"
    IDEAL = "Ideal"

    @property
    def uses_target_history(self) -> bool:
        return self is HistoryPolicy.THR

    @property
    def allocates_all_branches(self) -> bool:
        """True if not-taken branches are installed in the BTB too."""
        return self in (HistoryPolicy.GHR1, HistoryPolicy.GHR3)

    @property
    def fixes_not_taken_history(self) -> bool:
        """True if BTB-miss not-taken branches trigger a history fixup flush."""
        return self in (HistoryPolicy.GHR2, HistoryPolicy.GHR3)


class DirectionPredictorKind(str, Enum):
    """Conditional direction predictor selection (Fig 12)."""

    TAGE = "tage"
    GSHARE = "gshare"
    PERCEPTRON = "perceptron"
    PERFECT = "perfect"


@dataclass(frozen=True)
class BranchPredictorParams:
    """Branch prediction resources (Section V; Fig 12 sweeps sizes)."""

    direction_kind: DirectionPredictorKind = DirectionPredictorKind.TAGE
    tage_storage_kib: int = 18
    """Approximate TAGE budget: 9 (half), 18 (baseline), 36 (2x)."""
    gshare_storage_kib: int = 8
    history_bits: int = 260
    """Branch history length used by TAGE/ITTAGE (paper: 260 for THR)."""
    direction_history_bits: int = 280
    """History length when a direction-history policy is used (Section VI-C)."""

    btb_entries: int = 8192
    btb_assoc: int = 4
    btb_latency: int = 2
    """Cycles from BTB access to a usable taken-branch target (Fig 13)."""
    btb_l1_entries: int = 0
    """When > 0, a two-level BTB hierarchy is used (Section II-B): a fast
    L1 of this many entries in front of the ``btb_entries`` L2."""
    btb_l1_assoc: int = 4
    btb_l2_extra_latency: int = 2
    """Extra prediction-pipeline cycles when a taken prediction's entry
    was served from the L2 BTB."""
    perfect_btb: bool = False
    perfect_direction: bool = False
    perfect_indirect: bool = False

    ittage_entries: int = 2048
    ras_entries: int = 64
    loop_predictor_entries: int = 0
    """When > 0, a loop predictor (Fig 2) overrides the direction
    predictor on confidently learned counted loops."""
    btb_variant: str = "auto"
    """Registered BTB-variant name (:data:`repro.core.build.btb_variants`).
    ``auto`` selects ``two_level`` when ``btb_l1_entries`` is set and
    ``single`` otherwise, matching the historical behaviour."""

    def __post_init__(self) -> None:
        if isinstance(self.direction_kind, str) and not isinstance(
            self.direction_kind, DirectionPredictorKind
        ):
            # Accept enum value strings ("tage", ...); other strings are
            # custom registry names resolved at build time.
            try:
                object.__setattr__(
                    self, "direction_kind", DirectionPredictorKind(self.direction_kind)
                )
            except ValueError:
                pass
        if self.btb_variant == "two_level" and not self.btb_l1_entries:
            raise ValueError("btb_variant 'two_level' requires btb_l1_entries > 0")
        if self.btb_entries <= 0 or self.btb_assoc <= 0:
            raise ValueError("BTB geometry must be positive")
        if self.btb_entries % self.btb_assoc:
            raise ValueError("btb_entries must be a multiple of btb_assoc")
        if self.btb_latency < 1:
            raise ValueError("btb_latency must be at least 1 cycle")
        if self.btb_l1_entries < 0 or self.btb_l2_extra_latency < 0:
            raise ValueError("two-level BTB parameters cannot be negative")
        if self.btb_l1_entries and self.btb_l1_entries >= self.btb_entries:
            raise ValueError("L1 BTB must be smaller than the L2 BTB")
        if self.btb_l1_entries % self.btb_l1_assoc:
            raise ValueError("btb_l1_entries must be a multiple of btb_l1_assoc")


@dataclass(frozen=True)
class FrontendParams:
    """Decoupled frontend shape (Section IV)."""

    ftq_entries: int = 24
    """FTQ depth; 24 x 8-instruction blocks = the paper's 192-instruction FTQ.

    2 entries (16 instructions) models FDP-off (Section V)."""
    fetch_width: int = 6
    """Instructions fetched to the decode queue per cycle."""
    predict_width: int = 12
    """Instructions covered by branch prediction per cycle (2x fetch)."""
    max_taken_per_cycle: int = 1
    """Predicted-taken branches resolvable per cycle (B18m raises this)."""
    decode_queue_size: int = 64
    fetch_probe_width: int = 2
    """FTQ entries that may start I-TLB/I-cache tag probes per cycle."""
    pfc_enabled: bool = True
    history_policy: HistoryPolicy = HistoryPolicy.THR
    block_bytes: int = 32
    """Fetch block granularity; each FTQ entry covers one aligned block."""
    wrong_path_fills: bool = True
    """Diagnostic ablation (not a hardware knob): when False, FTQ entries
    the simulator knows to be wrong-path skip their I-cache probe/fill,
    isolating how much of FDP's benefit comes from wrong-path
    prefetching versus correct-path run-ahead."""

    def __post_init__(self) -> None:
        if isinstance(self.history_policy, str) and not isinstance(
            self.history_policy, HistoryPolicy
        ):
            # Accept enum value strings ("THR", ...); other strings are
            # custom registry names resolved at build time.
            try:
                object.__setattr__(self, "history_policy", HistoryPolicy(self.history_policy))
            except ValueError:
                pass
        if self.ftq_entries < 2:
            raise ValueError("FTQ needs at least 2 entries")
        if self.fetch_width < 1 or self.predict_width < 1:
            raise ValueError("widths must be positive")
        if self.block_bytes not in (16, 32, 64):
            raise ValueError("block_bytes must be 16, 32 or 64")
        if self.decode_queue_size < self.fetch_width:
            raise ValueError("decode queue must hold at least one fetch group")

    @property
    def instrs_per_block(self) -> int:
        return self.block_bytes // 4

    @property
    def fdp_enabled(self) -> bool:
        """FDP is 'off' when the FTQ is too shallow to run ahead (Section V)."""
        return self.ftq_entries > 2


@dataclass(frozen=True)
class MemoryParams:
    """Instruction-side memory hierarchy (Table IV, scaled latencies)."""

    l1i_kib: int = 32
    l1i_assoc: int = 8
    line_bytes: int = 64
    l1i_latency: int = 4
    l2_kib: int = 1024
    l2_assoc: int = 8
    l2_latency: int = 14
    dram_latency: int = 170
    mshr_entries: int = 16
    itlb_entries: int = 64
    itlb_page_bytes: int = 4096
    itlb_miss_latency: int = 20

    def __post_init__(self) -> None:
        if self.line_bytes not in (32, 64, 128):
            raise ValueError("line_bytes must be 32, 64 or 128")
        if self.l1i_kib <= 0 or self.l2_kib <= 0:
            raise ValueError("cache sizes must be positive")

    @property
    def l1i_lines(self) -> int:
        return self.l1i_kib * 1024 // self.line_bytes

    @property
    def l2_lines(self) -> int:
        return self.l2_kib * 1024 // self.line_bytes


@dataclass(frozen=True)
class CoreParams:
    """Backend consumption model (Sunny Cove-like widths)."""

    retire_width: int = 6
    mispredict_penalty: int = 14
    """Cycles from consuming a mispredicted branch to frontend restart."""
    pfc_resteer_penalty: int = 3
    """Frontend bubble charged when PFC re-steers the prefetch stream."""
    history_fixup_penalty: int = 3
    """Frontend bubble charged by a GHR2/GHR3 history-fixup flush."""

    def __post_init__(self) -> None:
        if self.retire_width < 1:
            raise ValueError("retire_width must be positive")
        if self.mispredict_penalty < 1:
            raise ValueError("mispredict_penalty must be positive")


WARMUP_MODES = ("auto", "cycle", "functional")
"""Valid :attr:`SimParams.warmup_mode` values.

* ``cycle``      -- warm through the full cycle-accurate pipeline (the
  original behaviour; exact but pays pipeline modelling for a window
  that is never measured).
* ``functional`` -- replay the oracle stream in commit order, training
  BTB/direction/ITTAGE/loop/RAS/history and warming L1I/L2/I-TLB
  without ticking the FTQ, fetch unit, backend or MSHRs, then start the
  cycle-accurate loop at the measurement boundary (see
  :mod:`repro.core.warmup`).
* ``auto``       -- resolve by call site: ``cycle`` for the direct
  simulator API, ``functional`` under the sweep runner (which resolves
  the mode *before* computing cache keys, so the two never share cache
  entries).
"""


KERNEL_MODES = ("auto", "typed", "interp")
"""Valid :attr:`SimParams.kernel` values.

* ``typed``  -- prefer the flat typed cycle kernel
  (:mod:`repro.core.typedkern`; mypyc-compiled when a toolchain built
  it, pure-Python otherwise).  Runs whose feature set the typed kernel
  does not cover (telemetry / checker / dedicated prefetcher /
  profiler) fall back to the interpreted kernel automatically -- both
  backends are bit-identical, so the fallback is invisible in results.
* ``interp`` -- force the schedule-generated interpreted kernel
  (:func:`repro.core.schedule.build_kernel`).
* ``auto``   -- defer to the ``REPRO_KERNEL`` environment variable,
  defaulting to ``typed`` (see :func:`repro.core.typed.resolve_kernel_mode`).
  The sweep runner resolves ``auto`` *before* computing cache keys, so
  recorded runs always name a concrete backend.
"""


@dataclass(frozen=True)
class SimParams:
    """Top-level bundle for one simulation run."""

    frontend: FrontendParams = field(default_factory=FrontendParams)
    branch: BranchPredictorParams = field(default_factory=BranchPredictorParams)
    memory: MemoryParams = field(default_factory=MemoryParams)
    core: CoreParams = field(default_factory=CoreParams)
    warmup_instructions: int = 40_000
    sim_instructions: int = 60_000
    prefetcher: str = "none"
    """Registered name of the L1I prefetcher to attach (see repro.prefetch)."""
    warmup_mode: str = "auto"
    """How the warmup window is simulated (see :data:`WARMUP_MODES`)."""
    check_invariants: bool = False
    """Run the machine-checked invariant layer (:mod:`repro.check`) every
    cycle and at end of run.  Checks only *observe* -- results are
    bit-identical to an unchecked run -- but the per-cycle sweep costs
    simulation speed, so it defaults off; ``repro check`` and the fuzzer
    turn it on, and ``REPRO_CHECK=1`` enables it for sweep runs."""
    kernel: str = "auto"
    """Which cycle-kernel backend runs the loop (see :data:`KERNEL_MODES`).
    Bit-identical either way; recorded in cache keys, manifests and
    bench history so every number names the backend that produced it."""

    def __post_init__(self) -> None:
        if self.warmup_instructions < 0 or self.sim_instructions <= 0:
            raise ValueError("instruction windows must be sensible")
        if self.warmup_mode not in WARMUP_MODES:
            raise ValueError(
                f"warmup_mode must be one of {WARMUP_MODES}, got {self.warmup_mode!r}"
            )
        if self.kernel not in KERNEL_MODES:
            raise ValueError(
                f"kernel must be one of {KERNEL_MODES}, got {self.kernel!r}"
            )

    def replace(self, **kwargs) -> "SimParams":
        """Return a copy with top-level fields replaced."""
        return dataclasses.replace(self, **kwargs)

    def with_frontend(self, **kwargs) -> "SimParams":
        return dataclasses.replace(self, frontend=dataclasses.replace(self.frontend, **kwargs))

    def with_branch(self, **kwargs) -> "SimParams":
        return dataclasses.replace(self, branch=dataclasses.replace(self.branch, **kwargs))

    def with_memory(self, **kwargs) -> "SimParams":
        return dataclasses.replace(self, memory=dataclasses.replace(self.memory, **kwargs))

    def with_core(self, **kwargs) -> "SimParams":
        return dataclasses.replace(self, core=dataclasses.replace(self.core, **kwargs))

    def label(self) -> str:
        """A short human-readable tag for tables and logs."""
        fdp = "fdp" if self.frontend.fdp_enabled else "nofdp"
        pfc = "+pfc" if self.frontend.pfc_enabled else ""
        pf = f"+{self.prefetcher}" if self.prefetcher != "none" else ""
        return (
            f"{fdp}{pfc}{pf}/{self.frontend.history_policy.value}"
            f"/btb{self.branch.btb_entries // 1024}k"
        )
