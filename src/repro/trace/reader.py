"""Trace (de)serialisation.

Two formats:

* **spec format** (default) -- a small JSON header recording the
  workload's :class:`~repro.trace.cfg.ProgramSpec`, seeds and window;
  loading regenerates the identical program and oracle stream.  This is
  the honest equivalent of shipping a trace when generation is
  deterministic.
* **segment dump** (``include_segments=True``) -- additionally embeds
  the committed stream as explicit segment records, for interchange
  with external tools and for tests that want to diff regeneration
  against a golden dump.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.isa.instructions import BranchKind
from repro.trace.cfg import Program, ProgramSpec, generate_program
from repro.trace.oracle import OracleStream, Segment, run_oracle

FORMAT_VERSION = 1


def _spec_to_dict(spec: ProgramSpec) -> dict:
    out = dataclasses.asdict(spec)
    # Tuples become lists in JSON; normalised back on load.
    return out


def _spec_from_dict(data: dict) -> ProgramSpec:
    fields = {f.name: f.type for f in dataclasses.fields(ProgramSpec)}
    kwargs = {}
    for name, value in data.items():
        if name not in fields:
            raise ValueError(f"unknown ProgramSpec field {name!r} in trace file")
        kwargs[name] = tuple(value) if isinstance(value, list) else value
    return ProgramSpec(**kwargs)


def save_trace(
    path: str | Path,
    spec: ProgramSpec,
    program_seed: int,
    oracle_seed: int,
    n_instructions: int,
    include_segments: bool = False,
) -> None:
    """Write a trace file; see the module docstring for formats."""
    doc: dict = {
        "format_version": FORMAT_VERSION,
        "program_spec": _spec_to_dict(spec),
        "program_seed": program_seed,
        "oracle_seed": oracle_seed,
        "n_instructions": n_instructions,
    }
    if include_segments:
        program = generate_program(spec, program_seed)
        stream = run_oracle(program, n_instructions, oracle_seed)
        doc["segments"] = [
            {
                "start": seg.start,
                "n": seg.n_instrs,
                "next": seg.next_start,
                "branches": [[a, int(k), t, tgt] for a, k, t, tgt in seg.branches],
            }
            for seg in stream.segments
        ]
    Path(path).write_text(json.dumps(doc))


def load_trace(path: str | Path) -> tuple[Program, OracleStream]:
    """Load a trace file, regenerating or decoding as appropriate."""
    doc = json.loads(Path(path).read_text())
    version = doc.get("format_version")
    if isinstance(version, int) and version > FORMAT_VERSION:
        raise ValueError(
            f"trace file {path} uses format version {version}, but this "
            f"build reads up to version {FORMAT_VERSION}; upgrade the "
            f"package (or re-save the trace with this version)"
        )
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {version!r}")
    spec = _spec_from_dict(doc["program_spec"])
    program = generate_program(spec, doc["program_seed"])
    if "segments" in doc:
        segments = []
        total = total_branches = total_taken = 0
        for rec in doc["segments"]:
            branches = [
                (a, BranchKind(k), bool(t), tgt) for a, k, t, tgt in rec["branches"]
            ]
            seg = Segment(
                start=rec["start"],
                n_instrs=rec["n"],
                next_start=rec["next"],
                branches=branches,
            )
            segments.append(seg)
            total += seg.n_instrs
            total_branches += len(branches)
            total_taken += sum(1 for b in branches if b[2])
        stream = OracleStream(
            segments=segments,
            total_instructions=total,
            total_branches=total_branches,
            total_taken=total_taken,
        )
    else:
        stream = run_oracle(program, doc["n_instructions"], doc["oracle_seed"])
    return program, stream
