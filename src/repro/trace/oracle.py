"""Oracle execution of a synthetic program.

The interpreter walks a :class:`~repro.trace.cfg.Program` and produces
the *committed* dynamic instruction stream as a list of
:class:`Segment` records: maximal sequential runs separated by taken
control transfers.  The simulator's backend commits this stream; the
decoupled frontend must *predict* it, and every divergence between
prediction and oracle is a branch misprediction.

Segments also record every dynamic branch instance they contain
(including not-taken conditionals), which is what predictor training,
architectural history and the RAS consume at commit time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.rng import SplitMix64
from repro.isa.instructions import BranchKind
from repro.trace.behaviors import CondBehaviour, IndirectBehaviour
from repro.trace.cfg import Program


@dataclass(slots=True)
class Segment:
    """A maximal sequential run of committed instructions.

    ``branches`` holds ``(addr, kind, taken, target)`` for every dynamic
    branch instance inside the run, in program order.  If the run ends
    with a taken transfer, its last entry is that transfer and
    ``next_start`` is its destination; a ``next_start`` of 0 marks the
    end of the stream.
    """

    start: int
    n_instrs: int
    next_start: int = 0
    branches: list[tuple[int, BranchKind, bool, int]] = field(default_factory=list)

    @property
    def end(self) -> int:
        """Address of the last instruction in the run."""
        return self.start + 4 * (self.n_instrs - 1)

    @property
    def limit(self) -> int:
        """First address past the run."""
        return self.start + 4 * self.n_instrs

    @property
    def taken_branch(self) -> tuple[int, BranchKind, bool, int] | None:
        """The terminating taken transfer, if the run ends with one."""
        if self.next_start and self.branches:
            last = self.branches[-1]
            if last[2]:
                return last
        return None


@dataclass
class OracleStream:
    """The committed stream: segments plus summary statistics."""

    segments: list[Segment]
    total_instructions: int
    total_branches: int
    total_taken: int
    cumulative: list[int] = field(default_factory=list)
    """``cumulative[i]`` = committed instructions before segment ``i``."""

    def __post_init__(self) -> None:
        if not self.cumulative:
            acc = 0
            cum = []
            for seg in self.segments:
                cum.append(acc)
                acc += seg.n_instrs
            self.cumulative = cum

    def __getstate__(self) -> dict:
        # The compiled StreamMeta (repro.trace.fbmeta.stream_meta) is a
        # per-process memo stashed on the instance; drop it from pickles
        # so sweep workers receive the lean stream and recompile locally.
        state = dict(self.__dict__)
        state.pop("_stream_meta", None)
        return state

    def segment_at_instruction(self, n: int) -> int:
        """Index of the segment containing committed instruction ``n``."""
        lo, hi = 0, len(self.segments) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.cumulative[mid] <= n:
                lo = mid
            else:
                hi = mid - 1
        return lo

    @property
    def taken_per_kilo(self) -> float:
        if self.total_instructions == 0:
            return 0.0
        return 1000.0 * self.total_taken / self.total_instructions


def run_oracle(program: Program, max_instructions: int, seed: int = 1) -> OracleStream:
    """Execute ``program`` for at least ``max_instructions`` instructions.

    Execution may overshoot by at most one basic block so that the final
    segment ends at a block boundary.  Behaviour state is reset first,
    so repeated calls with the same arguments are identical.
    """
    if max_instructions <= 0:
        raise ValueError("max_instructions must be positive")
    program.reset_behaviours()
    rng = SplitMix64(seed)
    behaviours = program.behaviours
    blocks = program.blocks

    stack: list[int] = []
    segments: list[Segment] = []
    total = 0
    total_branches = 0
    total_taken = 0

    cur = blocks[program.entry]
    seg = Segment(start=cur.start, n_instrs=0)

    def close(target: int) -> None:
        nonlocal seg
        seg.next_start = target
        segments.append(seg)
        seg = Segment(start=target, n_instrs=0)

    while total < max_instructions:
        seg.n_instrs += cur.n_instrs
        total += cur.n_instrs
        kind = cur.kind
        if kind is BranchKind.NONE:
            cur = blocks[cur.fall_addr]
            continue

        term = cur.term_addr
        total_branches += 1
        if kind is BranchKind.COND_DIRECT:
            beh = behaviours[cur.behaviour]
            assert isinstance(beh, CondBehaviour)
            taken = beh.outcome(rng)
            seg.branches.append((term, kind, taken, cur.target))
            if taken:
                total_taken += 1
                close(cur.target)
                cur = blocks[cur.target]
            else:
                cur = blocks[cur.fall_addr]
        elif kind is BranchKind.UNCOND_DIRECT:
            total_taken += 1
            seg.branches.append((term, kind, True, cur.target))
            close(cur.target)
            cur = blocks[cur.target]
        elif kind is BranchKind.CALL_DIRECT:
            total_taken += 1
            stack.append(cur.fall_addr)
            seg.branches.append((term, kind, True, cur.target))
            close(cur.target)
            cur = blocks[cur.target]
        elif kind is BranchKind.RETURN:
            if not stack:
                # main's dead terminal return; the driver loop prevents
                # this in practice, but end the stream gracefully.
                break
            target = stack.pop()
            total_taken += 1
            seg.branches.append((term, kind, True, target))
            close(target)
            cur = blocks[target]
        elif kind in (BranchKind.INDIRECT, BranchKind.INDIRECT_CALL):
            beh = behaviours[cur.behaviour]
            assert isinstance(beh, IndirectBehaviour)
            target = cur.targets[beh.select(rng)]
            total_taken += 1
            if kind is BranchKind.INDIRECT_CALL:
                stack.append(cur.fall_addr)
            seg.branches.append((term, kind, True, target))
            close(target)
            cur = blocks[target]
        else:  # pragma: no cover - exhaustive over BranchKind
            raise AssertionError(f"unhandled terminator kind {kind}")

    if seg.n_instrs:
        segments.append(seg)

    return OracleStream(
        segments=segments,
        total_instructions=total,
        total_branches=total_branches,
        total_taken=total_taken,
    )
