"""Precompiled fetch-block metadata.

The per-cycle BPU candidate scan (perfect-BTB mode) and the fetch
stage's PFC pre-decoder both walk a fetch block 4 bytes at a time,
asking the program image "is there a branch here, and what shape is
it?" on every visit.  The static image never changes, so this module
compiles it once per :class:`~repro.trace.cfg.Program` into immutable
flat parallel tuples sorted by address; consumers replace the per-slot
walk with one ``bisect`` per block and a contiguous slice/range over
the arrays.  The records carry exactly what the hot paths read --
branch kind, PC-relative target, predecode class -- so the rewrite is
bit-identical to the dictionary walk by construction
(``tests/test_warmup.py`` pins the equivalence, and the parallel
determinism test pins whole-run bit-identity).
"""

from __future__ import annotations

from repro.isa.instructions import BranchKind

# Predecode classification of a branch, as PFC's pre-decoder sees it
# (Fig 5): how (whether) the branch target is recoverable from the
# fetched bytes plus the RAS.
PD_COND = 0
"""PC-relative conditional: PFC case 2 candidate (target in encoding)."""
PD_PCREL_UNCOND = 1
"""PC-relative unconditional: PFC case 1, target in the encoding."""
PD_RETURN = 2
"""Return: PFC case 1, target from the RAS top."""
PD_INDIRECT = 3
"""Register-indirect: unconditional but uncorrectable at pre-decode."""


class FetchBlockMeta:
    """Flat, address-sorted branch metadata of one static program image.

    All tuples are parallel and indexed by the same branch ordinal;
    ``addrs`` is sorted ascending, so ``bisect`` over it selects the
    branches inside any address window in O(log n).
    """

    __slots__ = ("addrs", "kinds", "targets", "pd_class", "triples")

    def __init__(self, program) -> None:
        branches = sorted(program.branches.values(), key=lambda i: i.addr)
        self.addrs: tuple[int, ...] = tuple(i.addr for i in branches)
        self.kinds: tuple[BranchKind, ...] = tuple(i.kind for i in branches)
        self.targets: tuple[int, ...] = tuple(i.target for i in branches)
        self.pd_class: tuple[int, ...] = tuple(
            _classify(i.kind) for i in branches
        )
        self.triples: tuple[tuple[int, BranchKind, int], ...] = tuple(
            (i.addr, i.kind, i.target) for i in branches
        )
        """(addr, kind, pc-relative target) per branch -- the exact shape
        the BPU's perfect-BTB candidate scan yields."""

    def __len__(self) -> int:
        return len(self.addrs)


def _classify(kind: BranchKind) -> int:
    if kind is BranchKind.COND_DIRECT:
        return PD_COND
    if kind.is_pc_relative:  # UNCOND_DIRECT / CALL_DIRECT
        return PD_PCREL_UNCOND
    if kind.is_return:
        return PD_RETURN
    return PD_INDIRECT
