"""Precompiled fetch-block and oracle-stream metadata (structure of arrays).

The per-cycle BPU candidate scan (perfect-BTB mode) and the fetch
stage's PFC pre-decoder both walk a fetch block 4 bytes at a time,
asking the program image "is there a branch here, and what shape is
it?" on every visit.  The static image never changes, so this module
compiles it once per :class:`~repro.trace.cfg.Program` into immutable
flat parallel arrays sorted by address; consumers replace the per-slot
walk with one ``bisect`` per block and a contiguous slice/range over
the arrays.

The compiled layout is two-layer:

* **tuples** (``addrs``/``kinds``/``targets``/``pd_class``/``triples``)
  serve the scalar hot paths -- CPython indexes a small tuple slice
  faster than a numpy array element, and ``bisect`` works on tuples
  directly;
* **numpy arrays** (the ``np_*`` attributes) carry the same data
  column-wise for whole-array consumers: batch construction, the
  functional-warmup footprint precompute, and analysis code that wants
  one vectorised pass instead of a Python loop.

:class:`StreamMeta` applies the same treatment to one *dynamic* oracle
stream: every committed branch flattened into commit order with its
global commit index, per-segment branch offsets, and segment address
bounds as arrays.  The commit trainer's per-segment dict/list walk and
the functional-warmup replay both become flat pointer sweeps over it.
The records carry exactly what the hot paths read, so the rewrites are
bit-identical to the structure walks by construction
(``tests/test_warmup.py`` pins the equivalence, and the parallel
determinism test pins whole-run bit-identity).
"""

from __future__ import annotations

import numpy as np

from repro.isa.instructions import BranchKind

# Predecode classification of a branch, as PFC's pre-decoder sees it
# (Fig 5): how (whether) the branch target is recoverable from the
# fetched bytes plus the RAS.
PD_COND = 0
"""PC-relative conditional: PFC case 2 candidate (target in encoding)."""
PD_PCREL_UNCOND = 1
"""PC-relative unconditional: PFC case 1, target in the encoding."""
PD_RETURN = 2
"""Return: PFC case 1, target from the RAS top."""
PD_INDIRECT = 3
"""Register-indirect: unconditional but uncorrectable at pre-decode."""


class FetchBlockMeta:
    """Flat, address-sorted branch metadata of one static program image.

    All tuples/arrays are parallel and indexed by the same branch
    ordinal; ``addrs`` is sorted ascending, so ``bisect`` over it
    selects the branches inside any address window in O(log n).
    """

    __slots__ = (
        "addrs",
        "kinds",
        "targets",
        "pd_class",
        "triples",
        "np_addrs",
        "np_kinds",
        "np_targets",
        "np_pd",
        "np_fallthrough",
    )

    def __init__(self, program) -> None:
        branches = sorted(program.branches.values(), key=lambda i: i.addr)
        self.addrs: tuple[int, ...] = tuple(i.addr for i in branches)
        self.kinds: tuple[BranchKind, ...] = tuple(i.kind for i in branches)
        self.targets: tuple[int, ...] = tuple(i.target for i in branches)
        self.pd_class: tuple[int, ...] = tuple(
            _classify(i.kind) for i in branches
        )
        self.triples: tuple[tuple[int, BranchKind, int], ...] = tuple(
            (i.addr, i.kind, i.target) for i in branches
        )
        """(addr, kind, pc-relative target) per branch -- the exact shape
        the BPU's perfect-BTB candidate scan yields."""
        # Column-wise mirror for vectorised consumers (read-only).
        self.np_addrs = np.asarray(self.addrs, dtype=np.int64)
        self.np_kinds = np.asarray(
            [int(k) for k in self.kinds], dtype=np.int16
        )
        self.np_targets = np.asarray(self.targets, dtype=np.int64)
        self.np_pd = np.asarray(self.pd_class, dtype=np.int8)
        self.np_fallthrough = self.np_addrs + 4
        """Fall-through address per branch (the not-taken successor)."""
        for arr in (
            self.np_addrs,
            self.np_kinds,
            self.np_targets,
            self.np_pd,
            self.np_fallthrough,
        ):
            arr.setflags(write=False)

    def __len__(self) -> int:
        return len(self.addrs)


def _classify(kind: BranchKind) -> int:
    if kind is BranchKind.COND_DIRECT:
        return PD_COND
    if kind.is_pc_relative:  # UNCOND_DIRECT / CALL_DIRECT
        return PD_PCREL_UNCOND
    if kind.is_return:
        return PD_RETURN
    return PD_INDIRECT


class StreamMeta:
    """Flat commit-order branch + segment metadata of one oracle stream.

    Where :class:`FetchBlockMeta` flattens the *static* image,
    ``StreamMeta`` flattens the *dynamic* committed stream: every
    branch instance of every segment, concatenated in commit order.
    ``br_commit[i]`` is the global committed-instruction index of
    branch ``i`` (``cumulative[seg] + (addr - seg.start) // 4``), which
    is strictly increasing, so the commit trainer replaces its
    per-segment list walk with a single flat pointer compared against
    the committed-instruction count.
    """

    __slots__ = (
        "br_addr",
        "br_kind",
        "br_taken",
        "br_target",
        "br_commit",
        "seg_first_br",
        "np_seg_start",
        "np_seg_limit",
        "_footprints",
    )

    def __init__(self, stream) -> None:
        addrs: list[int] = []
        kinds: list[BranchKind] = []
        takens: list[bool] = []
        targets: list[int] = []
        commits: list[int] = []
        first: list[int] = []
        cumulative = stream.cumulative
        for seg_idx, seg in enumerate(stream.segments):
            first.append(len(addrs))
            base = cumulative[seg_idx]
            start = seg.start
            for addr, kind, taken, target in seg.branches:
                addrs.append(addr)
                kinds.append(kind)
                takens.append(taken)
                targets.append(target)
                commits.append(base + ((addr - start) >> 2))
        first.append(len(addrs))

        self.br_addr: tuple[int, ...] = tuple(addrs)
        self.br_kind: tuple[BranchKind, ...] = tuple(kinds)
        self.br_taken: tuple[bool, ...] = tuple(takens)
        self.br_target: tuple[int, ...] = tuple(targets)
        self.br_commit: tuple[int, ...] = tuple(commits)
        self.seg_first_br: tuple[int, ...] = tuple(first)
        """``seg_first_br[i]`` = flat index of segment ``i``'s first
        branch; one trailing sentinel equal to the total branch count."""
        self.np_seg_start = np.asarray(
            [seg.start for seg in stream.segments], dtype=np.int64
        )
        self.np_seg_limit = np.asarray(
            [seg.limit for seg in stream.segments], dtype=np.int64
        )
        self.np_seg_start.setflags(write=False)
        self.np_seg_limit.setflags(write=False)
        self._footprints: dict[tuple[int, int, int], tuple[list[int], list[int]]] = {}

    def __len__(self) -> int:
        return len(self.br_addr)

    def warm_footprint(
        self, last_seg: int, line_bytes: int, page_bytes: int
    ) -> tuple[list[int], list[int]]:
        """Cache-line and I-TLB-page footprint of segments ``0..last_seg``.

        Returns ``(lines, pages)``: for each segment in stream order,
        every line (then every page) overlapping ``[start, limit)``,
        stepping by ``line_bytes`` (``page_bytes``) from the aligned
        segment start.  Per-segment order is preserved, so replaying
        ``lines`` into the L1I and ``pages`` into the I-TLB leaves both
        structures (LRU state included) exactly as the per-segment
        interleaved walk does -- the two structures never interact.
        Memoised per (last_seg, line_bytes, page_bytes); the lists hold
        plain Python ints, ready for the scalar ``fill``/``translate``
        loops.
        """
        key = (last_seg, line_bytes, page_bytes)
        cached = self._footprints.get(key)
        if cached is None:
            starts = self.np_seg_start[: last_seg + 1]
            limits = self.np_seg_limit[: last_seg + 1]
            cached = (
                _strided_footprint(starts, limits, line_bytes),
                _strided_footprint(starts, limits, page_bytes),
            )
            self._footprints[key] = cached
        return cached


def _strided_footprint(starts, limits, stride: int) -> list[int]:
    """Concatenated ``range(start & ~(stride-1), limit, stride)`` per row.

    Vectorised equivalent of the per-segment Python ``range`` walk the
    functional warmup used to run: one address per covered
    ``stride``-aligned chunk, segments concatenated in order.
    """
    aligned = starts & ~np.int64(stride - 1)
    counts = (limits - aligned + (stride - 1)) // stride
    np.maximum(counts, 0, out=counts)
    total = int(counts.sum())
    if total == 0:
        return []
    # Per-element offset within its own segment: a global arange minus
    # each segment's first global index, repeated per element.
    firsts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(total, dtype=np.int64) - np.repeat(firsts, counts)
    return (np.repeat(aligned, counts) + within * stride).tolist()


def stream_meta(stream) -> StreamMeta:
    """The (memoised) :class:`StreamMeta` of ``stream``.

    Compiled on first use and stashed on the stream object, so every
    consumer of one oracle stream -- the commit trainer, functional
    warmup, batched runs sharing a trace -- shares one compilation.
    """
    meta = getattr(stream, "_stream_meta", None)
    if meta is None:
        meta = StreamMeta(stream)
        stream._stream_meta = meta
    return meta
