"""Workload catalogue.

Mirrors the IPC-1 benchmark mix the paper evaluates (Section V):
*server* traces with instruction footprints far exceeding the 32KB
L1I and large taken-branch footprints, *client* traces with moderate
footprints, and *spec* traces that are loop-heavy with smaller
footprints.  Each workload is a (ProgramSpec, seed) pair; programs and
oracle streams regenerate deterministically from the spec.

The paper selects workloads whose perfect-I-cache uplift exceeds 5%;
``tests/test_workloads.py`` asserts the same property for this
catalogue.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import lru_cache

from repro.trace.cfg import Program, ProgramSpec, generate_program
from repro.trace.oracle import OracleStream, run_oracle

#: Extra oracle instructions generated beyond the requested window so the
#: run-ahead frontend never walks off the end of the committed stream.
TRACE_SLACK = 4_000


@dataclass(frozen=True)
class WorkloadSpec:
    """One catalogue entry: a named, seeded program shape."""

    name: str
    category: str
    program_spec: ProgramSpec
    program_seed: int
    oracle_seed: int

    def __post_init__(self) -> None:
        if self.category not in ("server", "client", "spec"):
            raise ValueError(f"unknown category {self.category!r}")


def _server_spec(**overrides) -> ProgramSpec:
    """Large flat code footprint, deep call chains, hard branches."""
    base = ProgramSpec(
        n_functions=1200,
        blocks_per_function=(4, 13),
        instrs_per_block=(4, 12),
        cond_fraction=0.40,
        jump_fraction=0.07,
        call_fraction=0.22,
        indirect_jump_fraction=0.015,
        indirect_call_fraction=0.02,
        early_return_fraction=0.03,
        loops_per_function=(0, 1),
        loop_trip=(2, 10),
        frac_never_taken=0.28,
        frac_mostly_taken=0.39,
        frac_pattern=0.30,
        frac_random=0.03,
        n_phases=6,
        functions_per_phase=24,
        phase_repeats=1,
    )
    return dataclasses.replace(base, **overrides)


def _client_spec(**overrides) -> ProgramSpec:
    """Moderate footprint with more reuse than server."""
    base = ProgramSpec(
        n_functions=420,
        blocks_per_function=(4, 14),
        instrs_per_block=(4, 12),
        cond_fraction=0.44,
        jump_fraction=0.08,
        call_fraction=0.18,
        indirect_jump_fraction=0.02,
        indirect_call_fraction=0.02,
        early_return_fraction=0.03,
        loops_per_function=(0, 2),
        loop_trip=(3, 24),
        frac_never_taken=0.27,
        frac_mostly_taken=0.39,
        frac_pattern=0.32,
        frac_random=0.02,
        n_phases=5,
        functions_per_phase=55,
        phase_repeats=2,
    )
    return dataclasses.replace(base, **overrides)


def _spec_spec(**overrides) -> ProgramSpec:
    """Loop-heavy, smaller footprint, predictable branches (SPEC-like)."""
    base = ProgramSpec(
        n_functions=300,
        blocks_per_function=(8, 20),
        instrs_per_block=(5, 13),
        cond_fraction=0.48,
        jump_fraction=0.06,
        call_fraction=0.13,
        indirect_jump_fraction=0.01,
        indirect_call_fraction=0.01,
        early_return_fraction=0.02,
        loops_per_function=(1, 3),
        loop_trip=(8, 80),
        frac_never_taken=0.30,
        frac_mostly_taken=0.37,
        frac_pattern=0.31,
        frac_random=0.02,
        call_budget=600,
        n_phases=3,
        functions_per_phase=40,
        phase_repeats=1,
    )
    return dataclasses.replace(base, **overrides)


def default_workloads() -> list[WorkloadSpec]:
    """The full evaluation catalogue (8 workloads across 3 categories)."""
    return [
        WorkloadSpec("srv_web", "server", _server_spec(), 101, 9101),
        WorkloadSpec("srv_db", "server", _server_spec(n_functions=1400, functions_per_phase=28), 202, 9202),
        WorkloadSpec("srv_cache", "server", _server_spec(n_functions=1000, functions_per_phase=20, frac_random=0.06, frac_pattern=0.27), 303, 9303),
        WorkloadSpec("clt_browser", "client", _client_spec(), 404, 9404),
        WorkloadSpec("clt_media", "client", _client_spec(n_functions=520, phase_repeats=3), 505, 9505),
        WorkloadSpec("spc_int_a", "spec", _spec_spec(), 606, 9606),
        WorkloadSpec("spc_int_b", "spec", _spec_spec(n_functions=340, loop_trip=(6, 40), functions_per_phase=36), 707, 9707),
        WorkloadSpec("spc_fp", "spec", _spec_spec(n_functions=260, phase_repeats=2, frac_random=0.02, frac_pattern=0.31), 808, 9808),
    ]


def workload_by_name(name: str) -> WorkloadSpec:
    """Look a workload up by its catalogue name."""
    for wl in default_workloads():
        if wl.name == name:
            return wl
    raise KeyError(f"no workload named {name!r}")


@lru_cache(maxsize=32)
def _cached_trace(name: str, n_instructions: int) -> tuple[Program, OracleStream]:
    wl = workload_by_name(name)
    program = generate_program(wl.program_spec, wl.program_seed)
    stream = run_oracle(program, n_instructions + TRACE_SLACK, wl.oracle_seed)
    # Compile the fetch-block metadata eagerly so the sweep runner's
    # pre-generation pass bakes it into the trace cache, and forked
    # workers inherit it instead of recompiling per process.
    program.fetch_meta()
    return program, stream


def make_trace(workload: WorkloadSpec | str, n_instructions: int) -> tuple[Program, OracleStream]:
    """Generate (program, oracle stream) for a workload.

    ``n_instructions`` is the window the simulator will commit; the
    stream carries :data:`TRACE_SLACK` extra instructions of run-ahead
    margin.  Results are cached per (workload, length) because every
    experiment configuration reuses the same trace.
    """
    name = workload if isinstance(workload, str) else workload.name
    return _cached_trace(name, n_instructions)
