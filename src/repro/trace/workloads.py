"""Workload catalogue.

Mirrors the IPC-1 benchmark mix the paper evaluates (Section V):
*server* traces with instruction footprints far exceeding the 32KB
L1I and large taken-branch footprints, *client* traces with moderate
footprints, and *spec* traces that are loop-heavy with smaller
footprints.  Each workload is a (ProgramSpec, seed) pair; programs and
oracle streams regenerate deterministically from the spec.

The paper selects workloads whose perfect-I-cache uplift exceeds 5%;
``tests/test_workloads.py`` asserts the same property for this
catalogue.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import lru_cache

from repro.trace.cfg import Program, ProgramSpec, generate_program
from repro.trace.oracle import OracleStream, run_oracle
from repro.trace.source import (  # noqa: F401  (TRACE_SLACK re-exported)
    TRACE_SLACK,
    WorkloadSource,
    resolve_workload,
)


@dataclass(frozen=True)
class WorkloadSpec:
    """One catalogue entry: a named, seeded program shape.

    Implements the :class:`~repro.trace.source.WorkloadSource` protocol
    as the ``synthetic`` source: everything regenerates
    deterministically from ``(program_spec, seeds)``.
    """

    name: str
    category: str
    program_spec: ProgramSpec
    program_seed: int
    oracle_seed: int

    def __post_init__(self) -> None:
        if self.category not in ("server", "client", "spec"):
            raise ValueError(f"unknown category {self.category!r}")

    @property
    def source_kind(self) -> str:
        return "synthetic"

    def materialize(self, n_instructions: int) -> tuple[Program, OracleStream]:
        """Regenerate the program and run the oracle over the window."""
        program = generate_program(self.program_spec, self.program_seed)
        stream = run_oracle(program, n_instructions + TRACE_SLACK, self.oracle_seed)
        # Compile the fetch-block metadata eagerly so the sweep runner's
        # pre-generation pass bakes it into the trace cache, and forked
        # workers inherit it instead of recompiling per process.
        program.fetch_meta()
        return program, stream

    def expected_stream(self, n_instructions: int) -> OracleStream:
        """A fresh oracle run over a fresh program: the independent copy
        the differential checker replays against the simulator."""
        program = generate_program(self.program_spec, self.program_seed)
        return run_oracle(program, n_instructions + TRACE_SLACK, self.oracle_seed)

    def fingerprint_data(self) -> dict:
        return {
            "kind": "synthetic",
            "name": self.name,
            "category": self.category,
            "program_spec": dataclasses.asdict(self.program_spec),
            "program_seed": self.program_seed,
            "oracle_seed": self.oracle_seed,
        }

    def info(self) -> dict:
        return {
            "source": self.source_kind,
            "program_seed": self.program_seed,
            "oracle_seed": self.oracle_seed,
            "n_functions": self.program_spec.n_functions,
            "n_phases": self.program_spec.n_phases,
        }


def _server_spec(**overrides) -> ProgramSpec:
    """Large flat code footprint, deep call chains, hard branches."""
    base = ProgramSpec(
        n_functions=1200,
        blocks_per_function=(4, 13),
        instrs_per_block=(4, 12),
        cond_fraction=0.40,
        jump_fraction=0.07,
        call_fraction=0.22,
        indirect_jump_fraction=0.015,
        indirect_call_fraction=0.02,
        early_return_fraction=0.03,
        loops_per_function=(0, 1),
        loop_trip=(2, 10),
        frac_never_taken=0.28,
        frac_mostly_taken=0.39,
        frac_pattern=0.30,
        frac_random=0.03,
        n_phases=6,
        functions_per_phase=24,
        phase_repeats=1,
    )
    return dataclasses.replace(base, **overrides)


def _client_spec(**overrides) -> ProgramSpec:
    """Moderate footprint with more reuse than server."""
    base = ProgramSpec(
        n_functions=420,
        blocks_per_function=(4, 14),
        instrs_per_block=(4, 12),
        cond_fraction=0.44,
        jump_fraction=0.08,
        call_fraction=0.18,
        indirect_jump_fraction=0.02,
        indirect_call_fraction=0.02,
        early_return_fraction=0.03,
        loops_per_function=(0, 2),
        loop_trip=(3, 24),
        frac_never_taken=0.27,
        frac_mostly_taken=0.39,
        frac_pattern=0.32,
        frac_random=0.02,
        n_phases=5,
        functions_per_phase=55,
        phase_repeats=2,
    )
    return dataclasses.replace(base, **overrides)


def _spec_spec(**overrides) -> ProgramSpec:
    """Loop-heavy, smaller footprint, predictable branches (SPEC-like)."""
    base = ProgramSpec(
        n_functions=300,
        blocks_per_function=(8, 20),
        instrs_per_block=(5, 13),
        cond_fraction=0.48,
        jump_fraction=0.06,
        call_fraction=0.13,
        indirect_jump_fraction=0.01,
        indirect_call_fraction=0.01,
        early_return_fraction=0.02,
        loops_per_function=(1, 3),
        loop_trip=(8, 80),
        frac_never_taken=0.30,
        frac_mostly_taken=0.37,
        frac_pattern=0.31,
        frac_random=0.02,
        call_budget=600,
        n_phases=3,
        functions_per_phase=40,
        phase_repeats=1,
    )
    return dataclasses.replace(base, **overrides)


def default_workloads() -> list[WorkloadSpec]:
    """The full evaluation catalogue (8 workloads across 3 categories)."""
    return [
        WorkloadSpec("srv_web", "server", _server_spec(), 101, 9101),
        WorkloadSpec("srv_db", "server", _server_spec(n_functions=1400, functions_per_phase=28), 202, 9202),
        WorkloadSpec("srv_cache", "server", _server_spec(n_functions=1000, functions_per_phase=20, frac_random=0.06, frac_pattern=0.27), 303, 9303),
        WorkloadSpec("clt_browser", "client", _client_spec(), 404, 9404),
        WorkloadSpec("clt_media", "client", _client_spec(n_functions=520, phase_repeats=3), 505, 9505),
        WorkloadSpec("spc_int_a", "spec", _spec_spec(), 606, 9606),
        WorkloadSpec("spc_int_b", "spec", _spec_spec(n_functions=340, loop_trip=(6, 40), functions_per_phase=36), 707, 9707),
        WorkloadSpec("spc_fp", "spec", _spec_spec(n_functions=260, phase_repeats=2, frac_random=0.02, frac_pattern=0.31), 808, 9808),
    ]


def workload_by_name(name: str) -> WorkloadSource:
    """Look a workload up: catalogue, registry, or a trace file path.

    Synthetic catalogue names resolve to their :class:`WorkloadSpec`;
    registered external sources (and bare trace-file paths, which are
    auto-registered) resolve through
    :func:`repro.trace.source.resolve_workload`.
    """
    return resolve_workload(name)


@lru_cache(maxsize=32)
def _cached_trace(name: str, n_instructions: int) -> tuple[Program, OracleStream]:
    return resolve_workload(name).materialize(n_instructions)


def make_trace(
    workload: WorkloadSource | str, n_instructions: int
) -> tuple[Program, OracleStream]:
    """Materialise (program, oracle stream) for a workload.

    ``n_instructions`` is the window the simulator will commit; the
    stream carries :data:`TRACE_SLACK` extra instructions of run-ahead
    margin.  Results are cached per (workload, length) because every
    experiment configuration reuses the same trace.  The workload may
    be a source object, a catalogue/registered name, or a trace file
    path.
    """
    if isinstance(workload, str):
        return _cached_trace(workload, n_instructions)
    try:
        if resolve_workload(workload.name) == workload:
            return _cached_trace(workload.name, n_instructions)
    except KeyError:
        pass
    # An unregistered source object: materialise without the name memo
    # (a name lookup could resolve to a different source).
    return workload.materialize(n_instructions)
