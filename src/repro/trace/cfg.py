"""Synthetic program generation.

A :class:`Program` is a static code image: functions made of basic
blocks laid out contiguously in a byte-addressed code region, exactly
like the text segment the paper's frontend fetches from.  Programs are
generated from a :class:`ProgramSpec` with a seeded RNG, so a given
(spec, seed) pair always yields the same image.

Structural guarantees (they make the oracle interpreter total):

* the call graph is a DAG -- a function only calls higher-indexed
  functions, so there is no recursion;
* within a function, all control flow moves forward except designated
  counted-loop back-edges, whose :class:`~repro.trace.behaviors.LoopBehaviour`
  eventually falls through; hence every call returns;
* function 0 (``main``) is a phase driver that cycles forever over
  groups of callees -- the oracle stops it by instruction count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.rng import SplitMix64
from repro.isa.instructions import BranchKind, Instruction
from repro.trace.behaviors import (
    BiasedBehaviour,
    CondBehaviour,
    IndirectBehaviour,
    LoopBehaviour,
    PatternBehaviour,
)

_FUNC_ALIGN = 64


@dataclass(frozen=True)
class ProgramSpec:
    """Shape parameters for synthetic program generation.

    The behaviour-mixture fields must sum to 1; they control how hard
    the conditional branches are for a direction predictor, which in
    turn sets the workload's branch MPKI.
    """

    n_functions: int = 60
    blocks_per_function: tuple[int, int] = (4, 14)
    instrs_per_block: tuple[int, int] = (3, 9)

    # Terminator mixture for non-final blocks (remainder is plain
    # fall-through). Final blocks always return.
    cond_fraction: float = 0.45
    jump_fraction: float = 0.08
    call_fraction: float = 0.18
    indirect_jump_fraction: float = 0.02
    indirect_call_fraction: float = 0.02
    early_return_fraction: float = 0.03

    # Counted loops per function.
    loops_per_function: tuple[int, int] = (0, 2)
    loop_trip: tuple[int, int] = (4, 40)

    # Conditional behaviour mixture.
    frac_never_taken: float = 0.25
    frac_mostly_taken: float = 0.30
    frac_pattern: float = 0.30
    frac_random: float = 0.15
    pattern_len: tuple[int, int] = (3, 9)
    bias_epsilon: float = 0.03
    """Residual flip probability of 'biased' branches."""

    indirect_fanout: tuple[int, int] = (2, 5)
    indirect_random_fraction: float = 0.25
    """Fraction of indirect branches whose target choice is random."""

    call_budget: int = 400
    """Worst-case dynamic instruction cost a callee may have.  Functions
    are generated leaf-first with their worst-case cost tracked; call
    sites only target functions under this budget, which bounds the cost
    of any call subtree and keeps per-phase execution length stable
    (without it, call cascades have heavy-tailed costs that let a single
    phase member absorb an entire trace)."""

    # main() phase driver.
    n_phases: int = 4
    functions_per_phase: int = 10
    phase_repeats: int = 6

    base_addr: int = 0x10_0000

    def __post_init__(self) -> None:
        if self.n_functions < 2:
            raise ValueError("need main plus at least one callee")
        mixture = (
            self.cond_fraction
            + self.jump_fraction
            + self.call_fraction
            + self.indirect_jump_fraction
            + self.indirect_call_fraction
            + self.early_return_fraction
        )
        if mixture > 1.0 + 1e-9:
            raise ValueError("terminator fractions exceed 1")
        beh = self.frac_never_taken + self.frac_mostly_taken + self.frac_pattern + self.frac_random
        if abs(beh - 1.0) > 1e-6:
            raise ValueError("behaviour fractions must sum to 1")
        for lo, hi in (
            self.blocks_per_function,
            self.instrs_per_block,
            self.loop_trip,
            self.pattern_len,
            self.indirect_fanout,
            self.loops_per_function,
        ):
            if lo > hi or lo < 0:
                raise ValueError("range bounds must satisfy 0 <= lo <= hi")
        if self.blocks_per_function[0] < 2:
            raise ValueError("functions need at least 2 blocks")
        if self.instrs_per_block[0] < 1:
            raise ValueError("blocks need at least 1 instruction")
        if self.base_addr % _FUNC_ALIGN:
            raise ValueError("base_addr must be 64-byte aligned")


@dataclass(slots=True)
class BlockDef:
    """One basic block in the final, address-assigned program.

    ``start`` is the address of the first instruction; the terminator
    (if ``kind`` is a branch) is the *last* instruction of the block.
    ``target`` is the direct-branch destination; ``targets`` lists the
    candidate destinations of an indirect terminator.
    """

    start: int
    n_instrs: int
    kind: BranchKind = BranchKind.NONE
    target: int = 0
    behaviour: int = -1
    targets: tuple[int, ...] = ()

    @property
    def term_addr(self) -> int:
        """Address of the block's last (terminator) instruction."""
        return self.start + 4 * (self.n_instrs - 1)

    @property
    def fall_addr(self) -> int:
        """Address immediately after the block (sequential successor)."""
        return self.start + 4 * self.n_instrs


@dataclass(frozen=True)
class FunctionInfo:
    """Descriptive record of one laid-out function."""

    index: int
    start: int
    end: int
    n_blocks: int
    n_instrs: int


@dataclass
class Program:
    """A generated static code image plus its dynamic behaviour tables."""

    spec: ProgramSpec
    entry: int
    blocks: dict[int, BlockDef]
    branches: dict[int, Instruction]
    behaviours: list[CondBehaviour | IndirectBehaviour]
    functions: list[FunctionInfo]
    code_start: int
    code_end: int
    block_of_term: dict[int, int] = field(default_factory=dict)
    _fetch_meta: object = field(default=None, repr=False, compare=False)
    """Lazily compiled :class:`~repro.trace.fbmeta.FetchBlockMeta`."""

    def fetch_meta(self):
        """The program's precompiled fetch-block metadata (memoized).

        Compiled once per program; the image is immutable, so the flat
        arrays stay valid for the program's lifetime and are shared by
        every simulator bound to it (including forked sweep workers).
        """
        meta = self._fetch_meta
        if meta is None:
            from repro.trace.fbmeta import FetchBlockMeta

            meta = FetchBlockMeta(self)
            self._fetch_meta = meta
        return meta

    def instruction_at(self, addr: int) -> Instruction | None:
        """Return the branch instruction at ``addr``, or None for non-branches.

        Models pre-decode of fetched bytes: addresses outside the code
        region or between branches decode as plain instructions.
        """
        return self.branches.get(addr)

    def in_code(self, addr: int) -> bool:
        return self.code_start <= addr < self.code_end

    def reset_behaviours(self) -> None:
        """Reset all behaviour state so an oracle run starts fresh."""
        for beh in self.behaviours:
            beh.reset()

    @property
    def footprint_bytes(self) -> int:
        return self.code_end - self.code_start

    @property
    def static_instructions(self) -> int:
        return sum(f.n_instrs for f in self.functions)

    @property
    def static_branches(self) -> int:
        return len(self.branches)

    def static_taken_candidates(self) -> int:
        """Static branches that can ever be taken (everything that is not
        a never-taken biased conditional); approximates the taken-branch
        BTB footprint."""
        count = 0
        for instr in self.branches.values():
            if not instr.kind.is_conditional:
                count += 1
                continue
            if not 0 <= instr.behaviour < len(self.behaviours):
                # Trace-reconstructed images carry no behaviour table;
                # every observed conditional counts as a taken candidate.
                count += 1
                continue
            beh = self.behaviours[instr.behaviour]
            if isinstance(beh, BiasedBehaviour) and beh.p_taken <= 0.05:
                continue
            count += 1
        return count


@dataclass(slots=True)
class _ProtoBlock:
    """Pass-1 block: indices instead of addresses."""

    n_instrs: int
    kind: BranchKind = BranchKind.NONE
    target_block: int = -1
    callee: int = -1
    callees: tuple[int, ...] = ()
    target_blocks: tuple[int, ...] = ()
    behaviour: int = -1


def _make_cond_behaviour(spec: ProgramSpec, rng: SplitMix64) -> CondBehaviour:
    """Draw one conditional behaviour from the spec's mixture."""
    roll = rng.random()
    if roll < spec.frac_never_taken:
        return BiasedBehaviour(spec.bias_epsilon)
    roll -= spec.frac_never_taken
    if roll < spec.frac_mostly_taken:
        return BiasedBehaviour(1.0 - spec.bias_epsilon)
    roll -= spec.frac_mostly_taken
    if roll < spec.frac_pattern:
        length = rng.randint(*spec.pattern_len)
        pattern = tuple(rng.chance(0.5) for _ in range(length))
        # Degenerate all-same patterns are just biased branches; force a flip.
        if all(pattern) or not any(pattern):
            pattern = pattern[:-1] + (not pattern[-1],)
        return PatternBehaviour(pattern)
    return BiasedBehaviour(0.35 + 0.3 * rng.random())


def _generate_function(
    spec: ProgramSpec,
    fn_index: int,
    rng: SplitMix64,
    behaviours: list,
    wcost: list[int],
) -> tuple[list[_ProtoBlock], int]:
    """Pass 1: build one callee function as proto-blocks.

    Functions are generated leaf-first (highest index first); ``wcost``
    holds the worst-case dynamic instruction cost of already-generated
    higher-index functions, and call sites only target callees whose
    cost fits :attr:`ProgramSpec.call_budget`.  Returns the proto-blocks
    and this function's own worst-case cost.
    """
    n_blocks = rng.randint(*spec.blocks_per_function)
    protos = [_ProtoBlock(n_instrs=rng.randint(*spec.instrs_per_block)) for _ in range(n_blocks)]
    protos[-1].kind = BranchKind.RETURN

    eligible = [
        j
        for j in range(fn_index + 1, spec.n_functions)
        if 0 < wcost[j] <= spec.call_budget
    ]

    for i in range(n_blocks - 1):
        block = protos[i]
        later = list(range(i + 1, n_blocks))
        roll = rng.random()
        if roll < spec.cond_fraction and later:
            block.kind = BranchKind.COND_DIRECT
            block.target_block = rng.choice(later)
            behaviours.append(_make_cond_behaviour(spec, rng))
            block.behaviour = len(behaviours) - 1
        elif roll < spec.cond_fraction + spec.jump_fraction and len(later) > 1:
            block.kind = BranchKind.UNCOND_DIRECT
            # Skipping at least one block keeps jumps observable.
            block.target_block = rng.choice(later[1:])
        elif roll < spec.cond_fraction + spec.jump_fraction + spec.call_fraction and eligible:
            block.kind = BranchKind.CALL_DIRECT
            block.callee = rng.choice(eligible)
        elif (
            roll
            < spec.cond_fraction
            + spec.jump_fraction
            + spec.call_fraction
            + spec.indirect_jump_fraction
            and len(later) >= 2
        ):
            block.kind = BranchKind.INDIRECT
            fanout = min(rng.randint(*spec.indirect_fanout), len(later))
            picks = list(later)
            rng.shuffle(picks)
            block.target_blocks = tuple(sorted(picks[:fanout]))
            behaviours.append(_make_indirect_behaviour(spec, len(block.target_blocks), rng))
            block.behaviour = len(behaviours) - 1
        elif (
            roll
            < spec.cond_fraction
            + spec.jump_fraction
            + spec.call_fraction
            + spec.indirect_jump_fraction
            + spec.indirect_call_fraction
            and len(eligible) >= 2
        ):
            block.kind = BranchKind.INDIRECT_CALL
            fanout = min(rng.randint(*spec.indirect_fanout), len(eligible))
            picks = list(eligible)
            rng.shuffle(picks)
            block.callees = tuple(sorted(picks[:fanout]))
            behaviours.append(_make_indirect_behaviour(spec, len(block.callees), rng))
            block.behaviour = len(behaviours) - 1
        elif (
            roll
            < spec.cond_fraction
            + spec.jump_fraction
            + spec.call_fraction
            + spec.indirect_jump_fraction
            + spec.indirect_call_fraction
            + spec.early_return_fraction
        ):
            block.kind = BranchKind.RETURN
        # else: plain fall-through (kind stays NONE)

    loop_ranges = _add_loops(spec, protos, rng, behaviours)
    return protos, _worst_case_cost(protos, loop_ranges, wcost)


def _worst_case_cost(
    protos: list[_ProtoBlock],
    loop_ranges: list[tuple[int, int, int]],
    wcost: list[int],
) -> int:
    """Upper bound on one invocation's dynamic instruction count.

    Straight-line sum of every block (loops multiply their body by the
    trip count; loop bodies contain no calls by construction) plus the
    worst-case cost of every call site's callee.
    """
    mult = [1] * len(protos)
    for header, tail, trip in loop_ranges:
        for i in range(header, tail + 1):
            mult[i] *= trip
    total = 0
    for i, block in enumerate(protos):
        total += block.n_instrs * mult[i]
        if block.kind is BranchKind.CALL_DIRECT:
            total += wcost[block.callee]
        elif block.kind is BranchKind.INDIRECT_CALL and block.callees:
            total += max(wcost[c] for c in block.callees)
    return total


def _make_indirect_behaviour(spec: ProgramSpec, n_targets: int, rng: SplitMix64) -> IndirectBehaviour:
    if rng.chance(spec.indirect_random_fraction):
        weights = tuple(0.2 + rng.random() for _ in range(n_targets))
        return IndirectBehaviour(n_targets, mode="random", weights=weights)
    return IndirectBehaviour(n_targets, mode="roundrobin")


def _add_loops(
    spec: ProgramSpec,
    protos: list[_ProtoBlock],
    rng: SplitMix64,
    behaviours: list,
) -> list[tuple[int, int, int]]:
    """Convert some blocks into counted-loop back-edges.

    Loop ranges are kept disjoint so the only backward edges are the
    counted ones, preserving guaranteed termination.  Loop bodies must
    not contain call blocks: a counted loop around a call site would
    multiply the callee subtree's instruction count, and nested such
    loops compound exponentially, collapsing the trace into a tiny
    working set (inner loops in real code are overwhelmingly call-free
    straight-line/conditional code).
    """
    n_blocks = len(protos)
    n_loops = rng.randint(*spec.loops_per_function)
    used_upto = 0
    ranges: list[tuple[int, int, int]] = []
    for _ in range(n_loops):
        # Need header < tail < last block, tail beyond previously used range.
        if used_upto + 2 > n_blocks - 2:
            break
        header = rng.randint(used_upto, n_blocks - 3)
        tail = rng.randint(header + 1, n_blocks - 2)
        if any(
            protos[i].kind in (BranchKind.CALL_DIRECT, BranchKind.INDIRECT_CALL)
            for i in range(header, tail + 1)
        ):
            used_upto = tail + 1
            continue
        block = protos[tail]
        block.kind = BranchKind.COND_DIRECT
        block.target_block = header
        block.callee = -1
        block.callees = ()
        block.target_blocks = ()
        trip = rng.randint(*spec.loop_trip)
        behaviours.append(LoopBehaviour(trip))
        block.behaviour = len(behaviours) - 1
        ranges.append((header, tail, trip))
        used_upto = tail + 1
    return ranges


def _generate_main(
    spec: ProgramSpec,
    rng: SplitMix64,
    behaviours: list,
) -> list[_ProtoBlock]:
    """Pass 1 for the ``main`` phase driver (function 0).

    Layout per phase: one call block per phase member, then a counted
    back-edge repeating the phase; the final block jumps back to the
    first so execution cycles over phases forever.
    """
    callees = list(range(1, spec.n_functions))
    rng.shuffle(callees)
    protos: list[_ProtoBlock] = []
    for phase in range(spec.n_phases):
        members = [
            callees[(phase * spec.functions_per_phase + k) % len(callees)]
            for k in range(spec.functions_per_phase)
        ]
        phase_start = len(protos)
        for callee in members:
            protos.append(
                _ProtoBlock(
                    n_instrs=rng.randint(2, 4),
                    kind=BranchKind.CALL_DIRECT,
                    callee=callee,
                )
            )
        # Counted phase-repeat back-edge.
        behaviours.append(LoopBehaviour(spec.phase_repeats))
        protos.append(
            _ProtoBlock(
                n_instrs=2,
                kind=BranchKind.COND_DIRECT,
                target_block=phase_start,
                behaviour=len(behaviours) - 1,
            )
        )
    # Eternal outer loop over all phases.
    protos.append(
        _ProtoBlock(n_instrs=2, kind=BranchKind.UNCOND_DIRECT, target_block=0)
    )
    # main never returns; give it a terminal return block anyway so the
    # layout invariant (last block returns) holds.
    protos.append(_ProtoBlock(n_instrs=1, kind=BranchKind.RETURN))
    return protos


def generate_program(spec: ProgramSpec, seed: int) -> Program:
    """Generate a full :class:`Program` from ``spec`` with ``seed``."""
    rng = SplitMix64(seed)
    behaviours: list[CondBehaviour | IndirectBehaviour] = []

    # Leaf-first generation so each call site knows its callees' costs.
    wcost = [0] * spec.n_functions
    proto_functions: list[list[_ProtoBlock] | None] = [None] * spec.n_functions
    fn_rngs = [rng.fork(fn) for fn in range(spec.n_functions)]
    for fn in range(spec.n_functions - 1, 0, -1):
        protos, cost = _generate_function(spec, fn, fn_rngs[fn], behaviours, wcost)
        proto_functions[fn] = protos
        wcost[fn] = cost
    proto_functions[0] = _generate_main(spec, fn_rngs[0], behaviours)

    # Pass 2: assign addresses.
    fn_starts: list[int] = []
    block_starts: list[list[int]] = []
    cursor = spec.base_addr
    for protos in proto_functions:
        cursor = (cursor + _FUNC_ALIGN - 1) & ~(_FUNC_ALIGN - 1)
        fn_starts.append(cursor)
        starts = []
        for block in protos:
            starts.append(cursor)
            cursor += 4 * block.n_instrs
        block_starts.append(starts)
    code_end = cursor

    blocks: dict[int, BlockDef] = {}
    branch_map: dict[int, Instruction] = {}
    functions: list[FunctionInfo] = []
    block_of_term: dict[int, int] = {}

    for fn, protos in enumerate(proto_functions):
        starts = block_starts[fn]
        n_instrs_total = 0
        for i, proto in enumerate(protos):
            start = starts[i]
            n_instrs_total += proto.n_instrs
            target = 0
            targets: tuple[int, ...] = ()
            if proto.kind in (BranchKind.COND_DIRECT, BranchKind.UNCOND_DIRECT):
                target = starts[proto.target_block]
            elif proto.kind is BranchKind.CALL_DIRECT:
                target = fn_starts[proto.callee]
            elif proto.kind is BranchKind.INDIRECT:
                targets = tuple(starts[j] for j in proto.target_blocks)
            elif proto.kind is BranchKind.INDIRECT_CALL:
                targets = tuple(fn_starts[c] for c in proto.callees)
            block = BlockDef(
                start=start,
                n_instrs=proto.n_instrs,
                kind=proto.kind,
                target=target,
                behaviour=proto.behaviour,
                targets=targets,
            )
            blocks[start] = block
            if proto.kind.is_branch:
                term = block.term_addr
                branch_map[term] = Instruction(
                    addr=term,
                    kind=proto.kind,
                    target=target if proto.kind.is_pc_relative else 0,
                    behaviour=proto.behaviour,
                )
                block_of_term[term] = start
        functions.append(
            FunctionInfo(
                index=fn,
                start=fn_starts[fn],
                end=starts[-1] + 4 * protos[-1].n_instrs,
                n_blocks=len(protos),
                n_instrs=n_instrs_total,
            )
        )

    return Program(
        spec=spec,
        entry=fn_starts[0],
        blocks=blocks,
        branches=branch_map,
        behaviours=behaviours,
        functions=functions,
        code_start=spec.base_addr,
        code_end=code_end,
        block_of_term=block_of_term,
    )
