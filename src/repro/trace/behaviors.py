"""Dynamic branch behaviours.

A *behaviour* decides the runtime outcome of a static branch each time
the oracle interpreter reaches it.  The mix of behaviours is what gives
a workload its branch-prediction character:

* :class:`BiasedBehaviour`  -- mostly-taken / mostly-not-taken branches;
  trivial for any predictor, and the source of the "(almost) never taken"
  branches that make BTB pollution and PFC false positives interesting
  (Sections VI-B, VI-E).
* :class:`PatternBehaviour` -- short repeating outcome patterns; learnable
  by history-based predictors (TAGE) but not by bias alone.  These are the
  branches that suffer when the global history is imprecise (Section III-A).
* :class:`LoopBehaviour`    -- counted loops (taken ``trip - 1`` times, then
  not taken once).
* :class:`IndirectBehaviour`-- register-indirect target selection over a
  target set, either round-robin (ITTAGE-learnable) or random.

Behaviours are deliberately stateful and deterministic given the RNG
stream so that a trace regenerates identically from its seed.
"""

from __future__ import annotations

from repro.common.rng import SplitMix64


class CondBehaviour:
    """Base class for conditional-branch outcome generators."""

    def outcome(self, rng: SplitMix64) -> bool:
        """Return the next dynamic direction (True = taken)."""
        raise NotImplementedError

    def reset(self) -> None:
        """Reset internal state (used when a fresh oracle run starts)."""

    def describe(self) -> str:
        raise NotImplementedError


class BiasedBehaviour(CondBehaviour):
    """Taken with fixed probability ``p_taken``, independently each time."""

    __slots__ = ("p_taken",)

    def __init__(self, p_taken: float) -> None:
        if not 0.0 <= p_taken <= 1.0:
            raise ValueError("p_taken must be a probability")
        self.p_taken = p_taken

    def outcome(self, rng: SplitMix64) -> bool:
        return rng.chance(self.p_taken)

    def describe(self) -> str:
        return f"biased(p={self.p_taken:g})"


class PatternBehaviour(CondBehaviour):
    """Cycles through a fixed boolean outcome pattern.

    Perfectly predictable by a predictor with enough (precise!) history;
    mispredicted when the history it indexes with has been corrupted by
    undetected not-taken branches -- the exact failure mode taken-only
    target history avoids.
    """

    __slots__ = ("pattern", "_pos")

    def __init__(self, pattern: tuple[bool, ...]) -> None:
        if not pattern:
            raise ValueError("pattern must be non-empty")
        self.pattern = tuple(bool(b) for b in pattern)
        self._pos = 0

    def outcome(self, rng: SplitMix64) -> bool:
        out = self.pattern[self._pos]
        self._pos = (self._pos + 1) % len(self.pattern)
        return out

    def reset(self) -> None:
        self._pos = 0

    def describe(self) -> str:
        bits = "".join("T" if b else "N" for b in self.pattern)
        return f"pattern({bits})"


class LoopBehaviour(CondBehaviour):
    """Counted loop back-edge: taken ``trip - 1`` times, then not taken."""

    __slots__ = ("trip", "_count")

    def __init__(self, trip: int) -> None:
        if trip < 1:
            raise ValueError("trip count must be >= 1")
        self.trip = trip
        self._count = 0

    def outcome(self, rng: SplitMix64) -> bool:
        self._count += 1
        if self._count >= self.trip:
            self._count = 0
            return False
        return True

    def reset(self) -> None:
        self._count = 0

    def describe(self) -> str:
        return f"loop(trip={self.trip})"


class IndirectBehaviour:
    """Selects among ``n_targets`` for an indirect branch or call.

    ``mode='roundrobin'`` cycles deterministically (learnable with
    history); ``mode='random'`` draws per ``weights`` (hard to predict,
    exercising ITTAGE's allocation churn).
    """

    __slots__ = ("n_targets", "mode", "weights", "_pos")

    def __init__(
        self,
        n_targets: int,
        mode: str = "roundrobin",
        weights: tuple[float, ...] | None = None,
    ) -> None:
        if n_targets < 1:
            raise ValueError("need at least one target")
        if mode not in ("roundrobin", "random"):
            raise ValueError(f"unknown mode {mode!r}")
        if weights is not None:
            if len(weights) != n_targets:
                raise ValueError("weights length must match n_targets")
            if any(w < 0 for w in weights) or sum(weights) <= 0:
                raise ValueError("weights must be non-negative and sum > 0")
        self.n_targets = n_targets
        self.mode = mode
        self.weights = weights
        self._pos = 0

    def select(self, rng: SplitMix64) -> int:
        """Return the index of the next dynamic target."""
        if self.mode == "roundrobin":
            out = self._pos
            self._pos = (self._pos + 1) % self.n_targets
            return out
        if self.weights is None:
            return rng.randint(0, self.n_targets - 1)
        pick = rng.random() * sum(self.weights)
        acc = 0.0
        for i, w in enumerate(self.weights):
            acc += w
            if pick < acc:
                return i
        return self.n_targets - 1

    def reset(self) -> None:
        self._pos = 0

    def describe(self) -> str:
        return f"indirect(n={self.n_targets},{self.mode})"
