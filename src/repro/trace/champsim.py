"""ChampSim trace ingestion: the first external workload source.

ChampSim IPC-1 traces (the paper's own evaluation substrate) are flat
streams of fixed 64-byte records, one per retired instruction::

    ip                  u64 LE   instruction pointer
    is_branch           u8       retired as a branch?
    branch_taken        u8       did it redirect the sequential PC?
    destination_registers u8[2]  architectural register writes
    source_registers    u8[4]    architectural register reads
    destination_memory  u64[2]   (unused here)
    source_memory       u64[4]   (unused here)

usually compressed with xz or gzip.  ChampSim never stores the branch
*kind* -- its tracer encodes it in the register usage pattern around
three special registers (stack pointer 6, flags 25, instruction
pointer 26), and the decode side reverses that encoding.  This module
does the same, vectorised over numpy record arrays.

The pipeline is built for multi-GB files:

* **chunked streaming decode** -- the (de)compressed byte stream is
  consumed in fixed ``chunk_records`` slices; only the prefix the
  requested window needs is ever decoded, and per-record validation
  reports absolute record indices (truncated tail, corrupt record,
  empty file) so a bad trace fails with a pinpoint message.
* **content-addressed chunk artifacts** -- each decoded chunk is
  persisted as an ``.npz`` under ``<result-cache>/traces/<digest>/``
  keyed by the file's SHA-256 and the decoder version, so the second
  run of the same trace reads arrays instead of re-decoding (the
  acceptance contract for multi-GB inputs: one decode, ever).
* **address remapping** -- trace IPs are variable-length x86 addresses;
  the simulator's ISA is fixed 4-byte.  Unique static IPs are ranked
  and remapped to ``base + 4*rank``, which preserves code locality and
  maps sequential execution to ``addr + 4`` exactly as the fetch and
  commit layers require.

Decoded records become the same structures every downstream layer
already consumes: an :class:`~repro.trace.oracle.OracleStream` of
segments plus a reconstructed :class:`~repro.trace.cfg.Program` static
image (branch map, code bounds, fetch-block metadata).  A tiny
:func:`write_champsim_trace` encoder emits the canonical register
patterns from a synthetic (program, stream) pair -- it generates the
committed golden fixture and powers decode/encode round-trip tests.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import lzma
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.isa.instructions import BranchKind, Instruction
from repro.trace.cfg import Program, ProgramSpec
from repro.trace.oracle import OracleStream, Segment
from repro.trace.source import TRACE_SLACK, trace_name_for_path

CHAMPSIM_DECODER_VERSION = 1
"""Bump when decode/classification/remap changes can alter the stream;
invalidates every persisted chunk artifact at once."""

RECORD_BYTES = 64

REG_STACK_POINTER = 6
REG_FLAGS = 25
REG_INSTRUCTION_POINTER = 26

RECORD_DTYPE = np.dtype(
    [
        ("ip", "<u8"),
        ("is_branch", "u1"),
        ("taken", "u1"),
        ("dst_regs", "u1", (2,)),
        ("src_regs", "u1", (4,)),
        ("dst_mem", "<u8", (2,)),
        ("src_mem", "<u8", (4,)),
    ]
)
assert RECORD_DTYPE.itemsize == RECORD_BYTES

DEFAULT_CHUNK_RECORDS = 65_536
"""Records per decode chunk (4 MiB of raw trace)."""

_XZ_MAGIC = b"\xfd7zXZ\x00"
_GZ_MAGIC = b"\x1f\x8b"


class TraceFormatError(ValueError):
    """A ChampSim trace file is malformed (truncated, corrupt, empty)."""


# ----------------------------------------------------------------------
# Byte access
# ----------------------------------------------------------------------
def _open_trace(path: Path):
    """Open a trace for streaming reads, sniffing the compression.

    The suffix is a hint only; the magic bytes decide, so a renamed
    file still decodes (or fails with a format error, not garbage).
    """
    with open(path, "rb") as probe:
        magic = probe.read(6)
    if magic.startswith(_XZ_MAGIC):
        return lzma.open(path, "rb")
    if magic.startswith(_GZ_MAGIC):
        return gzip.open(path, "rb")
    return open(path, "rb")


def file_digest(path: str | Path) -> str:
    """SHA-256 of the file bytes (compressed form; identity of the input)."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            h.update(block)
    return h.hexdigest()


def _read_exactly(fh, n: int) -> bytes:
    """Read up to ``n`` bytes, looping over short reads from the codec."""
    parts = []
    remaining = n
    while remaining > 0:
        block = fh.read(remaining)
        if not block:
            break
        parts.append(block)
        remaining -= len(block)
    return b"".join(parts)


# ----------------------------------------------------------------------
# Record classification
# ----------------------------------------------------------------------
def classify_records(records: np.ndarray, first_index: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate one chunk and derive per-record (ip, kind, taken) arrays.

    ``first_index`` is the chunk's absolute record offset, used to make
    corruption messages pinpoint the failing record.  Branch kinds are
    recovered from the tracer's register-usage encoding (see module
    docstring); a branch record matching no known pattern is
    conservatively INDIRECT (target never recoverable at pre-decode).
    """
    bad = (records["is_branch"] > 1) | (records["taken"] > 1) | (records["ip"] == 0)
    if bad.any():
        i = int(np.argmax(bad))
        rec = records[i]
        raise TraceFormatError(
            f"corrupt record #{first_index + i} (file offset {(first_index + i) * RECORD_BYTES}): "
            f"ip={int(rec['ip']):#x} is_branch={int(rec['is_branch'])} taken={int(rec['taken'])}"
        )

    src = records["src_regs"]
    dst = records["dst_regs"]
    r_sp = (src == REG_STACK_POINTER).any(axis=1)
    r_flags = (src == REG_FLAGS).any(axis=1)
    r_ip = (src == REG_INSTRUCTION_POINTER).any(axis=1)
    r_other = (
        (src != 0)
        & (src != REG_STACK_POINTER)
        & (src != REG_FLAGS)
        & (src != REG_INSTRUCTION_POINTER)
    ).any(axis=1)
    w_sp = (dst == REG_STACK_POINTER).any(axis=1)

    is_branch = records["is_branch"] == 1
    kinds = np.zeros(len(records), dtype=np.uint8)
    kinds[is_branch] = BranchKind.INDIRECT  # fallback for unknown patterns
    direct = is_branch & r_ip & ~r_other
    kinds[direct & r_flags & ~r_sp] = BranchKind.COND_DIRECT
    kinds[direct & ~r_flags & ~r_sp] = BranchKind.UNCOND_DIRECT
    kinds[direct & ~r_flags & r_sp & w_sp] = BranchKind.CALL_DIRECT
    kinds[is_branch & r_sp & w_sp & ~r_ip & ~r_other] = BranchKind.RETURN
    kinds[is_branch & r_other & ~r_ip & ~r_sp] = BranchKind.INDIRECT
    kinds[is_branch & r_other & ~r_ip & r_sp & w_sp] = BranchKind.INDIRECT_CALL

    taken = records["taken"].astype(np.uint8)
    taken[~is_branch] = 0
    return records["ip"].astype(np.uint64), kinds, taken


# ----------------------------------------------------------------------
# Chunk artifact store
# ----------------------------------------------------------------------
@dataclass
class DecodedPrefix:
    """The decoded (ip, kind, taken) arrays for a trace prefix."""

    ips: np.ndarray
    kinds: np.ndarray
    takens: np.ndarray
    complete: bool
    """Whether the arrays cover the entire file (EOF reached)."""

    def __len__(self) -> int:
        return len(self.ips)


def _chunk_cache_dir(digest: str) -> Path:
    from repro.experiments.cache import default_cache_dir

    return default_cache_dir() / "traces" / digest[:24]


def _decode_stream(
    path: Path, needed_records: int, chunk_records: int, sink=None
) -> DecodedPrefix:
    """Stream-decode a prefix of at least ``needed_records`` records.

    Decoding always stops on a chunk boundary (or EOF) so persisted
    artifacts are extendable; ``sink(chunk_index, ips, kinds, takens)``
    receives each chunk as it is decoded.
    """
    chunk_bytes = chunk_records * RECORD_BYTES
    out_ips: list[np.ndarray] = []
    out_kinds: list[np.ndarray] = []
    out_takens: list[np.ndarray] = []
    decoded = 0
    chunk_index = 0
    complete = False
    try:
        fh = _open_trace(path)
    except OSError as exc:
        raise TraceFormatError(f"cannot open trace {path}: {exc}") from exc
    with fh:
        while True:
            try:
                blob = _read_exactly(fh, chunk_bytes)
            except (lzma.LZMAError, gzip.BadGzipFile, EOFError, OSError) as exc:
                raise TraceFormatError(
                    f"{path.name}: compressed stream error after record {decoded}: {exc}"
                ) from exc
            if not blob:
                complete = True
                break
            extra = len(blob) % RECORD_BYTES
            if extra:
                raise TraceFormatError(
                    f"{path.name}: truncated trace: {extra} trailing byte(s) after "
                    f"record {decoded + len(blob) // RECORD_BYTES} "
                    f"(file is not a whole number of {RECORD_BYTES}-byte records)"
                )
            records = np.frombuffer(blob, dtype=RECORD_DTYPE)
            ips, kinds, takens = classify_records(records, decoded)
            out_ips.append(ips)
            out_kinds.append(kinds)
            out_takens.append(takens)
            if sink is not None:
                sink(chunk_index, ips, kinds, takens)
            decoded += len(records)
            chunk_index += 1
            if len(blob) < chunk_bytes:
                complete = True
                break
            if decoded >= needed_records:
                break
    if decoded == 0:
        raise TraceFormatError(f"{path.name}: empty trace (contains no records)")
    return DecodedPrefix(
        ips=np.concatenate(out_ips),
        kinds=np.concatenate(out_kinds),
        takens=np.concatenate(out_takens),
        complete=complete,
    )


def _load_meta(cache_dir: Path, digest: str, chunk_records: int) -> dict | None:
    try:
        meta = json.loads((cache_dir / "meta.json").read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if (
        not isinstance(meta, dict)
        or meta.get("decoder") != CHAMPSIM_DECODER_VERSION
        or meta.get("digest") != digest
        or meta.get("chunk_records") != chunk_records
    ):
        return None
    return meta


def _load_cached_prefix(
    cache_dir: Path, meta: dict, needed_records: int
) -> DecodedPrefix | None:
    """Reassemble a prefix from persisted chunk artifacts; None if any
    chunk is missing/unreadable (falls back to a fresh decode)."""
    from repro.experiments.cache import CACHE_STATS

    out_ips, out_kinds, out_takens = [], [], []
    loaded = 0
    for index in range(int(meta["chunks"])):
        try:
            with np.load(cache_dir / f"chunk-{index:06d}.npz") as npz:
                out_ips.append(npz["ips"])
                out_kinds.append(npz["kinds"])
                out_takens.append(npz["takens"])
        except (OSError, KeyError, ValueError):
            return None
        loaded += len(out_ips[-1])
        if loaded >= needed_records:
            break
    CACHE_STATS.bump("trace_chunk_hit", index + 1)
    return DecodedPrefix(
        ips=np.concatenate(out_ips),
        kinds=np.concatenate(out_kinds),
        takens=np.concatenate(out_takens),
        complete=bool(meta["complete"]) and loaded == int(meta["records"]),
    )


def load_decoded_prefix(
    path: str | Path,
    needed_records: int,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    digest: str | None = None,
    use_cache: bool = True,
) -> DecodedPrefix:
    """Decoded (ip, kind, taken) arrays covering ``needed_records`` (or EOF).

    Chunk artifacts are read and written under the result cache when
    enabled; ``use_cache=False`` forces a fresh end-to-end decode (the
    differential oracle's independent derivation).
    """
    from repro.experiments.cache import CACHE_STATS, cache_enabled

    path = Path(path)
    if not use_cache or not cache_enabled():
        prefix = _decode_stream(path, needed_records, chunk_records)
        CACHE_STATS.bump("trace_records_decoded", len(prefix))
        return prefix

    digest = digest or file_digest(path)
    cache_dir = _chunk_cache_dir(digest)
    meta = _load_meta(cache_dir, digest, chunk_records)
    if meta is not None and (meta["complete"] or meta["records"] >= needed_records):
        cached = _load_cached_prefix(cache_dir, meta, needed_records)
        if cached is not None:
            return cached

    cache_dir.mkdir(parents=True, exist_ok=True)

    def sink(index: int, ips, kinds, takens) -> None:
        target = cache_dir / f"chunk-{index:06d}.npz"
        tmp = target.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                np.savez_compressed(fh, ips=ips, kinds=kinds, takens=takens)
            tmp.replace(target)
        except OSError:
            tmp.unlink(missing_ok=True)

    prefix = _decode_stream(path, needed_records, chunk_records, sink=sink)
    CACHE_STATS.bump("trace_records_decoded", len(prefix))
    meta = {
        "decoder": CHAMPSIM_DECODER_VERSION,
        "digest": digest,
        "source": str(path),
        "chunk_records": chunk_records,
        "chunks": (len(prefix) + chunk_records - 1) // chunk_records,
        "records": len(prefix),
        "complete": prefix.complete,
    }
    tmp = cache_dir / f"meta.tmp.{os.getpid()}"
    try:
        tmp.write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n")
        tmp.replace(cache_dir / "meta.json")
    except OSError:
        tmp.unlink(missing_ok=True)
    return prefix


# ----------------------------------------------------------------------
# Workload reconstruction
# ----------------------------------------------------------------------
def build_workload(
    prefix: DecodedPrefix,
    n_instructions: int,
    base_addr: int = 0x10_0000,
) -> tuple[Program, OracleStream, dict]:
    """Rebuild (Program, OracleStream, anomaly counters) from records.

    The stream covers ``len(prefix) - 1`` instructions (the final
    record only supplies the last taken-branch target); static branch
    kinds are resolved per unique IP with direct kinds observed at more
    than one taken target demoted to their indirect form, and non-branch
    discontinuities synthesised as pseudo-indirect taken branches so the
    committed stream stays segment-consistent.
    """
    n_records = len(prefix)
    if n_records < 2:
        raise TraceFormatError("trace too short: need at least 2 records")
    if n_records - 1 < n_instructions:
        raise TraceFormatError(
            f"trace ends after {n_records - 1} usable instruction(s); "
            f"the requested window needs {n_instructions}"
        )

    uniq, inverse = np.unique(prefix.ips, return_inverse=True)
    rec_addr = (base_addr + 4 * inverse).astype(np.int64)
    disc = np.zeros(n_records, dtype=bool)
    disc[:-1] = rec_addr[1:] != rec_addr[:-1] + 4
    kinds = prefix.kinds
    takens = prefix.takens

    anomalies = {
        "pseudo_branches": 0,
        "kind_conflicts": 0,
        "demoted_direct": 0,
        "not_taken_discontinuities": 0,
    }

    # Static pass: one kind and (for direct kinds) one target per IP.
    static_kind = np.zeros(len(uniq), dtype=np.uint8)
    static_target = np.zeros(len(uniq), dtype=np.int64)
    taken_targets: dict[int, set[int]] = {}
    interesting = np.nonzero((kinds != 0) | disc)[0]
    for i in interesting:
        idx = int(inverse[i])
        kind = int(kinds[i])
        if kind == 0:
            # Non-branch discontinuity (trap/interrupt/unmarked branch):
            # model the IP as an indirect branch taken on those occurrences.
            if static_kind[idx] == 0:
                static_kind[idx] = BranchKind.INDIRECT
                anomalies["pseudo_branches"] += 1
            continue
        if static_kind[idx] == 0:
            static_kind[idx] = kind
        elif static_kind[idx] != kind:
            anomalies["kind_conflicts"] += 1  # first observation wins
        if (takens[i] or disc[i]) and i + 1 < n_records:
            taken_targets.setdefault(idx, set()).add(int(rec_addr[i + 1]))

    for idx, targets in taken_targets.items():
        kind = int(static_kind[idx])
        if kind in (BranchKind.COND_DIRECT, BranchKind.UNCOND_DIRECT, BranchKind.CALL_DIRECT):
            if len(targets) == 1:
                static_target[idx] = next(iter(targets))
            else:
                static_kind[idx] = (
                    BranchKind.INDIRECT_CALL
                    if kind == BranchKind.CALL_DIRECT
                    else BranchKind.INDIRECT
                )
                anomalies["demoted_direct"] += 1

    # Dynamic pass: segment assembly over the first n_records - 1 records.
    n_stream = n_records - 1
    segments: list[Segment] = []
    seg = Segment(start=int(rec_addr[0]), n_instrs=0)
    total_branches = 0
    total_taken = 0
    inv = inverse
    for i in range(n_stream):
        seg.n_instrs += 1
        record_kind = int(kinds[i])
        if record_kind == 0 and not disc[i]:
            continue
        addr = int(rec_addr[i])
        idx = int(inv[i])
        kind = BranchKind(int(static_kind[idx]))
        taken = bool(takens[i]) or bool(disc[i])
        if record_kind != 0 and not bool(takens[i]) and bool(disc[i]):
            anomalies["not_taken_discontinuities"] += 1
        target = int(rec_addr[i + 1]) if taken else int(static_target[idx])
        seg.branches.append((addr, kind, taken, target))
        total_branches += 1
        if taken:
            total_taken += 1
            seg.next_start = target
            segments.append(seg)
            seg = Segment(start=target, n_instrs=0)
    if seg.n_instrs:
        segments.append(seg)

    stream = OracleStream(
        segments=segments,
        total_instructions=n_stream,
        total_branches=total_branches,
        total_taken=total_taken,
    )

    branch_map: dict[int, Instruction] = {}
    for idx in np.nonzero(static_kind)[0]:
        kind = BranchKind(int(static_kind[idx]))
        addr = base_addr + 4 * int(idx)
        branch_map[addr] = Instruction(
            addr=addr,
            kind=kind,
            target=int(static_target[idx]) if kind.is_pc_relative else 0,
        )

    program = Program(
        spec=ProgramSpec(),
        entry=int(rec_addr[0]),
        blocks={},
        branches=branch_map,
        behaviours=[],
        functions=[],
        code_start=base_addr,
        code_end=base_addr + 4 * len(uniq),
    )
    return program, stream, anomalies


# ----------------------------------------------------------------------
# The workload source
# ----------------------------------------------------------------------
@dataclass
class ChampSimTrace:
    """A ChampSim trace file as a first-class workload source."""

    path: str
    name: str = ""
    chunk_records: int = DEFAULT_CHUNK_RECORDS
    _digest: str | None = field(default=None, repr=False, compare=False)
    _anomalies: dict | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.path = os.fspath(self.path)
        if not self.name:
            self.name = trace_name_for_path(self.path)
        if self.chunk_records < 1:
            raise ValueError("chunk_records must be positive")

    @property
    def category(self) -> str:
        return "trace"

    @property
    def source_kind(self) -> str:
        return "champsim"

    def digest(self) -> str:
        """SHA-256 of the trace file (computed once per source object)."""
        if self._digest is None:
            self._digest = file_digest(self.path)
        return self._digest

    def materialize(self, n_instructions: int) -> tuple[Program, OracleStream]:
        """Decode (via the chunk cache) and rebuild program + stream.

        The stream carries up to :data:`TRACE_SLACK` instructions of
        run-ahead margin past ``n_instructions`` when the file is long
        enough; shorter files fail with the usable window named.
        """
        prefix = load_decoded_prefix(
            self.path,
            n_instructions + TRACE_SLACK + 1,
            chunk_records=self.chunk_records,
            digest=self.digest(),
        )
        program, stream, anomalies = build_workload(prefix, n_instructions)
        self._anomalies = anomalies
        program.fetch_meta()
        return program, stream

    def expected_stream(self, n_instructions: int) -> OracleStream:
        """Independent re-decode for the differential oracle.

        Bypasses the chunk-artifact cache entirely, so a corrupted
        artifact (or a buggy cache layer) cannot agree with itself.
        """
        prefix = load_decoded_prefix(
            self.path,
            n_instructions + TRACE_SLACK + 1,
            chunk_records=self.chunk_records,
            use_cache=False,
        )
        _program, stream, _anomalies = build_workload(prefix, n_instructions)
        return stream

    def fingerprint_data(self) -> dict:
        return {
            "kind": "champsim",
            "digest": self.digest(),
            "decoder": CHAMPSIM_DECODER_VERSION,
        }

    def info(self) -> dict:
        stat = os.stat(self.path)
        payload = {
            "source": self.source_kind,
            "path": self.path,
            "bytes": stat.st_size,
            "digest": self.digest(),
            "decoder_version": CHAMPSIM_DECODER_VERSION,
            "chunk_records": self.chunk_records,
        }
        if self._anomalies is not None:
            payload["anomalies"] = dict(self._anomalies)
        return payload


# ----------------------------------------------------------------------
# Encoder (fixtures and round-trip tests)
# ----------------------------------------------------------------------
_ENCODE_REGS = {
    BranchKind.COND_DIRECT: ((REG_INSTRUCTION_POINTER, REG_FLAGS, 0, 0), (REG_INSTRUCTION_POINTER, 0)),
    BranchKind.UNCOND_DIRECT: ((REG_INSTRUCTION_POINTER, 0, 0, 0), (REG_INSTRUCTION_POINTER, 0)),
    BranchKind.CALL_DIRECT: (
        (REG_INSTRUCTION_POINTER, REG_STACK_POINTER, 0, 0),
        (REG_INSTRUCTION_POINTER, REG_STACK_POINTER),
    ),
    BranchKind.RETURN: ((REG_STACK_POINTER, 0, 0, 0), (REG_INSTRUCTION_POINTER, REG_STACK_POINTER)),
    BranchKind.INDIRECT: ((15, 0, 0, 0), (REG_INSTRUCTION_POINTER, 0)),
    BranchKind.INDIRECT_CALL: ((REG_STACK_POINTER, 15, 0, 0), (REG_INSTRUCTION_POINTER, REG_STACK_POINTER)),
}


def encode_stream(stream: OracleStream) -> np.ndarray:
    """Encode a committed stream as raw ChampSim records.

    Walks every segment's instructions in commit order, emitting the
    canonical register pattern for each dynamic branch record and plain
    records for everything else.  Synthetic 4-byte addresses are written
    as the IPs (the decoder's rank remap is order-preserving, so a
    decode of the result reproduces the same structure).
    """
    records = np.zeros(stream.total_instructions, dtype=RECORD_DTYPE)
    row = 0
    for seg in stream.segments:
        bi = 0
        branches = seg.branches
        addr = seg.start
        for _ in range(seg.n_instrs):
            rec = records[row]
            rec["ip"] = addr
            if bi < len(branches) and branches[bi][0] == addr:
                _addr, kind, taken, _target = branches[bi]
                bi += 1
                src, dst = _ENCODE_REGS[kind]
                rec["is_branch"] = 1
                rec["taken"] = 1 if taken else 0
                rec["src_regs"] = src
                rec["dst_regs"] = dst
            addr += 4
            row += 1
    return records


def write_champsim_trace(path: str | Path, stream: OracleStream) -> Path:
    """Write a stream as a ChampSim trace file (.xz/.gz by suffix)."""
    path = Path(path)
    blob = encode_stream(stream).tobytes()
    name = path.name
    if name.endswith(".xz"):
        blob = lzma.compress(blob, preset=9)
    elif name.endswith(".gz"):
        blob = gzip.compress(blob, compresslevel=9, mtime=0)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(blob)
    return path
