"""Workload substrate: synthetic programs and external trace sources.

The paper evaluates on the IPC-1 trace set (server/client/SPEC, 50M
instructions each).  Those traces are not redistributable here, so this
package builds the closest synthetic equivalent: control-flow-graph
programs with parameterised instruction footprint, call depth, branch
bias and loop structure, executed by a deterministic oracle interpreter
into the committed instruction stream (see DESIGN.md, Section 2).

Since the workload-source refactor the synthetic catalogue is just the
first implementation of the :class:`~repro.trace.source.WorkloadSource`
protocol; :mod:`repro.trace.champsim` ingests real ChampSim-format
trace files through the same interface (see docs/TRACES.md), and
external sources register through :mod:`repro.trace.source`.
"""

from repro.trace.behaviors import (
    BiasedBehaviour,
    IndirectBehaviour,
    LoopBehaviour,
    PatternBehaviour,
)
from repro.trace.cfg import Program, ProgramSpec, generate_program
from repro.trace.oracle import OracleStream, Segment, run_oracle
from repro.trace.reader import load_trace, save_trace
from repro.trace.source import (
    TRACE_SLACK,
    WorkloadSource,
    clear_registered_workloads,
    known_workload_names,
    register_workload,
    registered_workloads,
    resolve_workload,
    unregister_workload,
)
from repro.trace.workloads import (
    WorkloadSpec,
    default_workloads,
    make_trace,
    workload_by_name,
)

__all__ = [
    "BiasedBehaviour",
    "IndirectBehaviour",
    "LoopBehaviour",
    "PatternBehaviour",
    "Program",
    "ProgramSpec",
    "generate_program",
    "OracleStream",
    "Segment",
    "run_oracle",
    "load_trace",
    "save_trace",
    "TRACE_SLACK",
    "WorkloadSource",
    "WorkloadSpec",
    "clear_registered_workloads",
    "default_workloads",
    "known_workload_names",
    "make_trace",
    "register_workload",
    "registered_workloads",
    "resolve_workload",
    "unregister_workload",
    "workload_by_name",
]
