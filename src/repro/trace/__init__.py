"""Synthetic workload substrate.

The paper evaluates on the IPC-1 trace set (server/client/SPEC, 50M
instructions each).  Those traces are not redistributable here, so this
package builds the closest synthetic equivalent: control-flow-graph
programs with parameterised instruction footprint, call depth, branch
bias and loop structure, executed by a deterministic oracle interpreter
into the committed instruction stream (see DESIGN.md, Section 2).
"""

from repro.trace.behaviors import (
    BiasedBehaviour,
    IndirectBehaviour,
    LoopBehaviour,
    PatternBehaviour,
)
from repro.trace.cfg import Program, ProgramSpec, generate_program
from repro.trace.oracle import OracleStream, Segment, run_oracle
from repro.trace.reader import load_trace, save_trace
from repro.trace.workloads import (
    WorkloadSpec,
    default_workloads,
    make_trace,
    workload_by_name,
)

__all__ = [
    "BiasedBehaviour",
    "IndirectBehaviour",
    "LoopBehaviour",
    "PatternBehaviour",
    "Program",
    "ProgramSpec",
    "generate_program",
    "OracleStream",
    "Segment",
    "run_oracle",
    "load_trace",
    "save_trace",
    "WorkloadSpec",
    "default_workloads",
    "make_trace",
    "workload_by_name",
]
