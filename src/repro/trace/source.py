"""Pluggable workload sources.

Historically every workload was a ``(ProgramSpec, seed)`` pair and all
downstream layers assumed *regeneration from seed*.  This module breaks
that assumption into an explicit :class:`WorkloadSource` protocol: any
object that can materialise the structures the rest of the stack
consumes --

* an :class:`~repro.trace.oracle.OracleStream` (the committed stream the
  backend replays, the :class:`~repro.trace.fbmeta.StreamMeta` arrays
  are compiled from),
* a :class:`~repro.trace.cfg.Program` static image (fetch-block
  geometry for :class:`~repro.trace.fbmeta.FetchBlockMeta`, pre-decode,
  PFC), and
* a second, *independently derived* copy of the stream for the
  differential oracle in :mod:`repro.check`

-- is a workload.  The synthetic catalogue
(:class:`~repro.trace.workloads.WorkloadSpec`) implements the protocol
by regenerating from seed; :mod:`repro.trace.champsim` implements it by
decoding an external ChampSim trace file.  Non-catalogue sources are
held in a process-wide registry; ``REPRO_TRACES`` (``os.pathsep``-
separated trace files) pre-populates it at first lookup.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.trace.cfg import Program
    from repro.trace.oracle import OracleStream

#: Extra oracle instructions generated beyond the requested window so the
#: run-ahead frontend never walks off the end of the committed stream.
TRACE_SLACK = 4_000

_ENV_TRACES = "REPRO_TRACES"

#: File suffixes recognised as ChampSim trace files by the registry's
#: path fallback and the ``REPRO_TRACES`` discovery scan.
TRACE_SUFFIXES = (".champsim.xz", ".champsim.gz", ".champsim", ".trace.xz", ".trace.gz", ".trace")


@runtime_checkable
class WorkloadSource(Protocol):
    """Anything that can supply a workload to the simulation stack.

    Implementations must be deterministic: two calls to
    :meth:`materialize` with the same ``n_instructions`` yield
    bit-identical streams, and :meth:`expected_stream` must reproduce
    the materialised stream through an *independent* derivation (fresh
    regeneration for synthetic sources, a fresh cache-bypassing decode
    for trace files) so in-place corruption of the cached copy cannot
    hide a divergence.
    """

    @property
    def name(self) -> str:
        """Registry/catalogue name (also the run-result workload label)."""
        ...

    @property
    def category(self) -> str:
        """Workload family (``server``/``client``/``spec``/``trace``)."""
        ...

    @property
    def source_kind(self) -> str:
        """Provenance class: ``synthetic`` or ``champsim``."""
        ...

    def materialize(self, n_instructions: int) -> tuple[Program, OracleStream]:
        """Produce the static image and committed stream for a window.

        The stream must cover at least ``n_instructions`` committed
        instructions (sources add :data:`TRACE_SLACK` of run-ahead
        margin where they can).
        """
        ...

    def expected_stream(self, n_instructions: int) -> OracleStream:
        """An independently derived copy of :meth:`materialize`'s stream."""
        ...

    def fingerprint_data(self) -> dict:
        """Canonical JSON-able identity for content-addressed run keys.

        Must change iff the materialised trace can change: for trace
        files this covers the file content digest and the decoder
        version, never incidental details like the path spelling.
        """
        ...

    def info(self) -> dict:
        """Human-readable provenance (``repro workload info``)."""
        ...


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, WorkloadSource] = {}
_ENV_SCANNED = False


def _invalidate_lookup_caches() -> None:
    """Drop every cache keyed by workload *name* after a registry change.

    ``workload_fingerprint``/``run_key`` and the trace memo all cache by
    name string; rebinding a name to a different source would otherwise
    serve stale entries.  Imports are deferred (and tolerant) because
    the caches live in modules that import this one.
    """
    try:
        from repro.experiments import cache as _cache

        _cache.workload_fingerprint.cache_clear()
        _cache.run_key.cache_clear()
    except ImportError:  # pragma: no cover - cache layer always present
        pass
    try:
        from repro.trace import workloads as _workloads

        _workloads._cached_trace.cache_clear()
    except ImportError:  # pragma: no cover - workloads always present
        pass


def register_workload(source: WorkloadSource, replace: bool = False) -> WorkloadSource:
    """Add a source to the registry under ``source.name``.

    Catalogue names are reserved.  Re-registering an identical source is
    a no-op; rebinding a name to a different source requires
    ``replace=True`` (and invalidates the name-keyed caches).
    """
    from repro.trace.workloads import default_workloads

    name = source.name
    if any(wl.name == name for wl in default_workloads()):
        raise ValueError(f"workload name {name!r} is reserved by the synthetic catalogue")
    existing = _REGISTRY.get(name)
    if existing is not None:
        if existing.fingerprint_data() == source.fingerprint_data():
            return existing
        if not replace:
            raise ValueError(
                f"workload {name!r} is already registered with different content; "
                f"pass replace=True to rebind it"
            )
    _REGISTRY[name] = source
    _invalidate_lookup_caches()
    return source


def unregister_workload(name: str) -> bool:
    """Remove one registered source; True when it existed."""
    removed = _REGISTRY.pop(name, None) is not None
    if removed:
        _invalidate_lookup_caches()
    return removed


def clear_registered_workloads() -> None:
    """Drop every registered (non-catalogue) source and allow a rescan
    of ``REPRO_TRACES`` on the next lookup (test isolation hook)."""
    global _ENV_SCANNED
    _REGISTRY.clear()
    _ENV_SCANNED = False
    _invalidate_lookup_caches()


def registered_workloads() -> list[WorkloadSource]:
    """Registered sources (env-discovered ones included), name order."""
    _scan_env_traces()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def trace_name_for_path(path: str | os.PathLike) -> str:
    """Canonical registry name of a trace file: its stem minus the
    recognised trace/compression suffixes (``foo.champsim.xz`` -> ``foo``)."""
    base = os.path.basename(os.fspath(path))
    for suffix in TRACE_SUFFIXES:
        if base.endswith(suffix):
            return base[: -len(suffix)]
    return os.path.splitext(base)[0]


def looks_like_trace_path(name: str) -> bool:
    """Whether a workload argument denotes a trace file rather than a name."""
    return (os.sep in name or name.endswith(TRACE_SUFFIXES)) and os.path.isfile(name)


def _register_trace_path(path: str) -> WorkloadSource:
    from repro.trace.champsim import ChampSimTrace

    return register_workload(ChampSimTrace(path))


def _scan_env_traces() -> None:
    """One-shot discovery of ``REPRO_TRACES`` trace files/directories."""
    global _ENV_SCANNED
    if _ENV_SCANNED:
        return
    _ENV_SCANNED = True
    raw = os.environ.get(_ENV_TRACES, "").strip()
    if not raw:
        return
    for entry in raw.split(os.pathsep):
        entry = entry.strip()
        if not entry:
            continue
        if os.path.isdir(entry):
            for base in sorted(os.listdir(entry)):
                if base.endswith(TRACE_SUFFIXES):
                    _register_trace_path(os.path.join(entry, base))
        elif os.path.isfile(entry):
            _register_trace_path(entry)
        else:
            raise FileNotFoundError(f"REPRO_TRACES entry {entry!r} does not exist")


def resolve_workload(workload) -> WorkloadSource:
    """Resolve a workload argument to its source.

    Accepts a :class:`WorkloadSource` (returned as-is), a catalogue or
    registered name, or a path to a trace file (auto-registered under
    its canonical name).  Raises ``KeyError`` for unknown names, with
    the known names listed.
    """
    if not isinstance(workload, str):
        return workload
    from repro.trace.workloads import default_workloads

    for wl in default_workloads():
        if wl.name == workload:
            return wl
    _scan_env_traces()
    source = _REGISTRY.get(workload)
    if source is not None:
        return source
    if looks_like_trace_path(workload):
        return _register_trace_path(workload)
    known = [wl.name for wl in default_workloads()] + sorted(_REGISTRY)
    raise KeyError(
        f"no workload named {workload!r} (known: {', '.join(known)}; "
        f"a trace file path must exist on disk)"
    )


def known_workload_names() -> list[str]:
    """Catalogue names plus registered source names, in listing order."""
    from repro.trace.workloads import default_workloads

    return [wl.name for wl in default_workloads()] + [s.name for s in registered_workloads()]
