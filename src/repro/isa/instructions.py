"""Static instruction model.

The simulator is execution-driven over a synthetic *static program
image*: a mapping from byte address to :class:`Instruction`.  Wrong-path
fetch, pre-decode and Post-Fetch Correction (Section III-B) all read
this image, exactly as hardware reads I-cache bytes.

The ISA is deliberately minimal: fixed 32-bit instructions, and the
branch taxonomy the paper's mechanisms distinguish between:

* PC-relative branches (offset embedded in the instruction) -- their
  target is recoverable at pre-decode time, so they are PFC candidates;
* returns -- target comes from the RAS, also PFC-recoverable;
* register-indirect branches/calls -- target unknown until execute, so
  neither PFC nor BTB prefetching can supply it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum


class BranchKind(IntEnum):
    """Control-flow classification of an instruction."""

    NONE = 0
    """Not a branch (ALU/load/store/nop)."""
    COND_DIRECT = 1
    """PC-relative conditional branch."""
    UNCOND_DIRECT = 2
    """PC-relative unconditional jump."""
    CALL_DIRECT = 3
    """PC-relative call (pushes the return address onto the RAS)."""
    RETURN = 4
    """Function return (target comes from the RAS)."""
    INDIRECT = 5
    """Register-indirect unconditional jump (target set at runtime)."""
    INDIRECT_CALL = 6
    """Register-indirect call."""

    @property
    def is_branch(self) -> bool:
        return self is not BranchKind.NONE

    @property
    def is_conditional(self) -> bool:
        return self is BranchKind.COND_DIRECT

    @property
    def is_unconditional(self) -> bool:
        return self.is_branch and self is not BranchKind.COND_DIRECT

    @property
    def is_call(self) -> bool:
        return self in (BranchKind.CALL_DIRECT, BranchKind.INDIRECT_CALL)

    @property
    def is_return(self) -> bool:
        return self is BranchKind.RETURN

    @property
    def is_indirect(self) -> bool:
        """True when the target is register-relative (not in the encoding)."""
        return self in (BranchKind.INDIRECT, BranchKind.INDIRECT_CALL)

    @property
    def is_pc_relative(self) -> bool:
        """True when pre-decode can extract the target from the encoding."""
        return self in (
            BranchKind.COND_DIRECT,
            BranchKind.UNCOND_DIRECT,
            BranchKind.CALL_DIRECT,
        )

    @property
    def pfc_eligible(self) -> bool:
        """True when Post-Fetch Correction can compute the branch target.

        The paper extends PFC to all PC-relative branches and returns
        (Section III-B); register-indirect branches are excluded because
        their target is not recoverable at pre-decode.
        """
        return self.is_pc_relative or self is BranchKind.RETURN


def is_branch_kind(kind: BranchKind) -> bool:
    """Module-level convenience mirroring :attr:`BranchKind.is_branch`."""
    return kind is not BranchKind.NONE


@dataclass(frozen=True, slots=True)
class Instruction:
    """One static instruction in the program image.

    ``target`` is the PC-relative destination for direct branches and
    0 for everything else (indirect targets live in the behaviour
    model, not the encoding -- just like real machine code).
    ``behaviour`` indexes the program's branch-behaviour table and is
    only meaningful for conditional/indirect branches.
    """

    addr: int
    kind: BranchKind = BranchKind.NONE
    target: int = 0
    behaviour: int = -1

    def __post_init__(self) -> None:
        if self.addr % 4:
            raise ValueError(f"instruction address {self.addr:#x} not 4-byte aligned")
        if self.kind.is_pc_relative and self.target % 4:
            raise ValueError("direct branch target must be 4-byte aligned")

    @property
    def fall_through(self) -> int:
        """Address of the sequentially next instruction."""
        return self.addr + 4

    @property
    def is_branch(self) -> bool:
        return self.kind.is_branch

    def decode_target(self, ras_top: int | None = None) -> int | None:
        """Return the target recoverable at pre-decode, if any.

        Models the fetch-pipeline pre-decoder of Section IV-C: direct
        branches expose their embedded offset; returns use the RAS top;
        indirect branches yield ``None``.
        """
        if self.kind.is_pc_relative:
            return self.target
        if self.kind.is_return:
            return ras_top
        return None


NOP = Instruction(addr=0)
"""Prototype non-branch; fetching outside the program image decodes as this
shape (at the fetched address)."""
