"""Instruction-set model: fixed-length 32-bit instructions and branch kinds."""

from repro.isa.instructions import BranchKind, Instruction, is_branch_kind

__all__ = ["BranchKind", "Instruction", "is_branch_kind"]
