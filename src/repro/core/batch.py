"""Batched lockstep simulation of N independent instances.

A parameter sweep runs many simulations of the *same* workload trace
with different configurations.  Each instance is fully independent --
the only shared objects are the immutable program image, the oracle
stream, and their compiled metadata
(:class:`~repro.trace.fbmeta.FetchBlockMeta` /
:class:`~repro.trace.fbmeta.StreamMeta`) -- so a batch shares one trace
generation and one metadata compilation across all members, and the
lockstep interleaving keeps the shared read-only arrays hot across
instances instead of re-walking them one full run at a time.

:class:`BatchKernelBuilder` sits beside the scalar memoising kernel
builder (:func:`repro.core.schedule.build_kernel`): it emits, per
active-feature set, the *stepping* form of the same schedule-composed
loop body (:func:`repro.core.schedule.build_step_kernel`) and drives
one generator per instance round-robin, one simulated cycle per turn.
Because the per-cycle source is generated from the same
:data:`~repro.core.schedule.CYCLE_SCHEDULE` declaration, a batched run
is bit-identical to N scalar runs by construction (pinned by
``tests/test_batch.py`` across every registered predictor/prefetcher
combination and by the fuzzer's ``batched_scalar_identity`` property).

Scalar fallback: a config is *batchable* unless an observing subsystem
needs the run to itself -- an attached telemetry hub (one hub serves
one run) or the per-cycle invariant checker (diagnostic path, kept on
the scalar kernel where failures attribute to a single instance).  The
sweep runner checks :func:`batchable` per point and falls back to the
scalar path for the rest; mixed feature sets within one batch are fine
because every instance steps its own specialized kernel.

Batching always drives the *interpreted* stepping kernels regardless of
``SimParams.kernel``: the flat typed kernel (:mod:`repro.core.typed`)
has no stepping form, and the sweep runner prefers the typed scalar
path for typed-eligible points anyway (``_plan_batches``), so batches
are formed only from points the typed backend would not take.  A
batched run therefore leaves each instance's ``kernel_backend`` at
``interp``, and stays bit-identical to scalar runs of either backend.
"""

from __future__ import annotations

from repro.common.params import SimParams
from repro.core.metrics import RunResult
from repro.core.schedule import build_step_kernel
from repro.core.simulator import Simulator
from repro.trace.workloads import WorkloadSpec, make_trace


def batchable(params: SimParams, telemetry=None, profiler=None) -> tuple[bool, str]:
    """Whether a config can join a lockstep batch.

    Returns ``(ok, reason)``; ``reason`` names the scalar-fallback
    trigger when ``ok`` is False (see the module docstring).
    """
    if telemetry is not None:
        return False, "telemetry hub attached (one hub serves one run)"
    if profiler is not None:
        return False, "stage profiler attached (per-instance self-time attribution)"
    if params.check_invariants:
        return False, "per-cycle invariant checking (diagnostic scalar path)"
    return True, ""


class BatchKernelBuilder:
    """Builds and drives lockstep batches of simulator instances.

    The builder is stateless apart from the process-wide step-kernel
    memo it shares with :func:`~repro.core.schedule.build_step_kernel`;
    one instance (:data:`BATCH_BUILDER`) serves the whole process.
    """

    def launch(self, sim: Simulator, workload_name: str = ""):
        """Prepare ``sim`` and return its stepping generator.

        Equivalent to the prologue of :meth:`Simulator.run` (functional
        warmup included) followed by instantiating the stepping kernel;
        the caller drives the generator to exhaustion and then calls
        ``sim._finish_run``.
        """
        target, warmup, guard = sim._prepare_run(workload_name)
        kernel = build_step_kernel(sim.active_features())
        return kernel(sim, target, warmup, guard)

    def run_batch(
        self, sims: list[Simulator], workload_names: list[str] | None = None
    ) -> list[RunResult]:
        """Advance ``sims`` in lockstep until every instance finishes.

        One simulated cycle per instance per round; an instance that
        reaches its target drops out of the rotation (StopIteration)
        while the rest keep stepping.  Results are returned in input
        order, each identical to what ``sims[i].run(names[i])`` would
        have produced.
        """
        if workload_names is None:
            workload_names = [""] * len(sims)
        if len(workload_names) != len(sims):
            raise ValueError("need one workload name per simulator")
        live = [
            (i, self.launch(sim, name))
            for i, (sim, name) in enumerate(zip(sims, workload_names))
        ]
        while live:
            still = []
            for item in live:
                try:
                    next(item[1])
                except StopIteration:
                    continue
                still.append(item)
            live = still
        return [
            sim._finish_run(name) for sim, name in zip(sims, workload_names)
        ]


BATCH_BUILDER = BatchKernelBuilder()
"""The process-wide batch builder."""


def run_batch(
    sims: list[Simulator], workload_names: list[str] | None = None
) -> list[RunResult]:
    """Module-level convenience over :data:`BATCH_BUILDER`."""
    return BATCH_BUILDER.run_batch(sims, workload_names)


def simulate_batch(
    workload: WorkloadSpec | str, params_list: list[SimParams]
) -> list[RunResult]:
    """Generate one shared trace and run ``params_list`` over it in batch.

    Every config must need the same trace length (equal warmup + sim
    instructions) so all instances predict against the *same* oracle
    stream -- a longer stream changes BPU run-ahead behaviour near the
    stream end, which would break bit-identity with scalar runs of the
    shorter trace.  Non-batchable configs are rejected; group them out
    with :func:`batchable` first.
    """
    if not params_list:
        return []
    lengths = {p.warmup_instructions + p.sim_instructions for p in params_list}
    if len(lengths) != 1:
        raise ValueError(
            f"batch members need one shared trace length, got {sorted(lengths)}"
        )
    for p in params_list:
        ok, reason = batchable(p)
        if not ok:
            raise ValueError(f"config {p.label()!r} is not batchable: {reason}")
    program, stream = make_trace(workload, lengths.pop())
    name = workload if isinstance(workload, str) else workload.name
    sims = [Simulator(p, program, stream) for p in params_list]
    return run_batch(sims, [name] * len(sims))
