"""Typed-kernel backend selection (``REPRO_KERNEL`` / ``SimParams.kernel``).

The simulator has two cycle-loop backends:

``interp``
    The schedule-generated interpreted kernel
    (:func:`repro.core.schedule.build_kernel`) -- composed from
    :data:`~repro.core.schedule.CYCLE_SCHEDULE` for any feature set.

``typed``
    The hand-lowered flat kernel (:mod:`repro.core.typedkern`) for the
    *uninstrumented* feature set only.  It is bit-identical to the
    interpreted kernel by contract (pinned by ``tests/test_typed.py``
    and the ``typed_interp_identity`` fuzz property) and exists purely
    for speed.  When the optional mypyc toolchain has compiled
    ``typedkern`` into an extension module the backend reports
    ``typed-compiled``; otherwise the pure-Python module runs as-is and
    reports ``typed-python``.

Selection is three-valued (:data:`KERNEL_MODES`): ``SimParams.kernel``
is ``auto`` (defer to the ``REPRO_KERNEL`` environment variable,
defaulting to ``typed``), ``typed`` (prefer the typed kernel, falling
back to ``interp`` per-run when the simulator carries features the
typed kernel does not support), or ``interp`` (force the interpreted
kernel).  Because both backends are bit-identical, the choice never
changes results -- it is still resolved into cache keys, manifests,
``--stats-json`` and bench history lines so every recorded number
names the backend that produced it.
"""

from __future__ import annotations

import os

from repro.common.params import KERNEL_MODES, SimParams
from repro.core.typedkern import typed_kernel

__all__ = [
    "KERNEL_MODES",
    "backend_name",
    "kernel_backend_for_params",
    "resolve_kernel_mode",
    "supported",
    "typed_eligible",
    "typed_kernel",
]

_ENV_VAR = "REPRO_KERNEL"


def resolve_kernel_mode(mode: str) -> str:
    """Resolve a :data:`KERNEL_MODES` value to ``typed`` or ``interp``.

    Explicit modes pass through; ``auto`` reads ``REPRO_KERNEL``
    (itself allowed to say ``auto``) and defaults to ``typed`` -- the
    typed backend is always importable (pure-Python fallback), so auto
    only ever needs the interpreted kernel for unsupported feature
    sets, which :func:`supported` handles per-run.
    """
    if mode != "auto":
        if mode not in KERNEL_MODES:
            raise ValueError(f"kernel mode must be one of {KERNEL_MODES}, got {mode!r}")
        return mode
    raw = os.environ.get(_ENV_VAR, "").strip().lower()
    if not raw or raw == "auto":
        return "typed"
    if raw not in KERNEL_MODES:
        raise ValueError(
            f"{_ENV_VAR} must be one of {KERNEL_MODES}, got {raw!r}"
        )
    return raw


def supported(sim) -> tuple[bool, str]:
    """Can ``sim`` run on the typed kernel?  Returns ``(ok, reason)``.

    The typed kernel lowers only the uninstrumented schedule: any
    active feature (telemetry, checker, dedicated prefetcher,
    profiler) composes extra hook points into the loop, so those runs
    use the interpreted kernel.
    """
    features = sim.active_features()
    if features:
        return False, (
            f"active features {sorted(features)} require the interpreted kernel"
        )
    return True, ""


def backend_name() -> str:
    """``typed-compiled`` when mypyc's extension shadows ``typedkern``,
    else ``typed-python``."""
    from repro.core import typedkern

    source = getattr(typedkern, "__file__", "") or ""
    return "typed-python" if source.endswith(".py") else "typed-compiled"


def typed_eligible(params: SimParams) -> bool:
    """Would a scalar run of ``params`` (no telemetry/profiler attached)
    select the typed kernel?

    Mirrors :func:`supported` from params alone: the checker feature
    comes from ``check_invariants`` and the prefetcher feature from any
    dedicated prefetcher (``perfect`` is a memory flag, not a
    component).  The sweep runner uses this to prefer the typed scalar
    path over interpreted lockstep batching, and the cache layer to
    derive the recorded backend from resolved params.
    """
    if resolve_kernel_mode(params.kernel) == "interp":
        return False
    if params.check_invariants:
        return False
    return params.prefetcher in ("none", "perfect")


def kernel_backend_for_params(params: SimParams) -> str:
    """The backend label an uninstrumented scalar run of ``params``
    records: ``typed-compiled`` / ``typed-python`` / ``interp``."""
    return backend_name() if typed_eligible(params) else "interp"
