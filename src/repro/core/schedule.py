"""The declarative per-cycle stage schedule and the cycle-kernel builder.

This module is the **single source of truth for the simulator's cycle
loop**.  :data:`CYCLE_SCHEDULE` declares, in execution order, the six
per-cycle pipeline stages plus the named hook points that optional
subsystems attach to:

========  ==================  ===========  =================================
order     point               kind         active when
========  ==================  ===========  =================================
1         telemetry_clock     hook         a telemetry hub is attached
2         memory_fill         stage        always
3         retire_count        hook         a telemetry hub is attached
4         backend_retire      stage        always
5         measure_boundary    hook         always
6         telemetry_tick      hook         a telemetry hub is attached
7         fetch               stage        always
8         predict             stage        always
9         probe               stage        always
10        prefetch            stage        a dedicated prefetcher is built
11        invariant_sweep     hook         ``params.check_invariants``
12        livelock_guard      hook         always
========  ==================  ===========  =================================

:func:`build_kernel` *specializes* one loop body from the schedule at
``Simulator`` construction time: it composes only the points whose
feature is active into Python source, compiles it once per feature
combination (memoised process-wide), and returns the kernel function.
The uninstrumented path therefore keeps the bound-locals speed of a
hand-written tight loop, while every telemetry x checker combination is
generated from the same declaration instead of hand-copied variants --
observing hooks compose in, they never fork the loop, so checked /
traced runs stay bit-identical to plain runs (pinned by the fuzzer's
``checked_bit_identity`` / ``traced_bit_identity`` properties).

Each point also declares its *bindings*: the ``sim`` attributes it
snapshots into locals before the loop starts.  Bound methods stay valid
across the measurement-boundary stats swap because only ``.stats``
attributes are replaced, never the component objects.  The bindings
double as the stage-interface conformance contract: a component wired
by :mod:`repro.core.build` must expose exactly the callables its stage
binds (checked by :func:`validate_stage_interfaces`).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Feature flags a schedule point may require.  A kernel is specialized
#: for one subset of these (the simulator's active features).
FEATURES = ("telemetry", "checker", "prefetcher")


@dataclass(frozen=True)
class SchedulePoint:
    """One stage or hook point of the per-cycle schedule.

    ``binds`` are prologue source lines (run once, before the loop)
    that snapshot ``sim`` attributes into locals; ``body`` are the
    per-cycle source lines.  ``requires`` names the feature flag that
    must be active for the point to be composed into the kernel
    (``None`` means always active).
    """

    name: str
    kind: str  # "stage" | "hook"
    body: tuple[str, ...]
    binds: tuple[str, ...] = ()
    requires: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("stage", "hook"):
            raise ValueError(f"schedule point kind must be stage|hook, got {self.kind!r}")
        if self.requires is not None and self.requires not in FEATURES:
            raise ValueError(f"unknown feature {self.requires!r}; known: {FEATURES}")


def _stage(name: str, body: tuple[str, ...], binds: tuple[str, ...] = (), requires=None):
    """Shorthand for a pipeline-stage schedule point."""
    return SchedulePoint(name, "stage", body, binds, requires)


def _hook(name: str, body: tuple[str, ...], binds: tuple[str, ...] = (), requires=None):
    """Shorthand for a hook-point schedule point."""
    return SchedulePoint(name, "hook", body, binds, requires)


CYCLE_SCHEDULE: tuple[SchedulePoint, ...] = (
    # Refresh the telemetry clock before any stage can emit an event.
    _hook(
        "telemetry_clock",
        requires="telemetry",
        binds=("tel = sim.telemetry",),
        body=("tel.now = cycle",),
    ),
    # 1. Memory fill completion -> FTQ wakeups.
    _stage(
        "memory_fill",
        binds=(
            "memory_tick = sim.memory.tick",
            "complete_fills = sim.fetch.complete_fills",
        ),
        body=(
            "fills = memory_tick(cycle)",
            "if fills:",
            "    complete_fills(fills, cycle)",
        ),
    ),
    # Snapshot the retire counter so telemetry_tick sees this cycle's delta.
    _hook(
        "retire_count",
        requires="telemetry",
        body=("before = backend.committed",),
    ),
    # 2. Backend retire (may trigger a misprediction flush).
    _stage(
        "backend_retire",
        binds=("backend = sim.backend", "backend_cycle = backend.cycle"),
        body=("backend_cycle(cycle)",),
    ),
    # Warmup -> measurement boundary: swap in fresh counters exactly once.
    _hook(
        "measure_boundary",
        body=(
            "if not sim._measuring and backend.committed >= warmup:",
            "    sim.cycle = cycle",
            "    sim._begin_measurement()",
        ),
    ),
    # Cycle accounting + interval sampling, fed the cycle's retire count.
    _hook(
        "telemetry_tick",
        requires="telemetry",
        binds=("tel_tick = sim.telemetry.tick",),
        body=("tel_tick(cycle, backend.committed - before, sim._measuring)",),
    ),
    # 3. Fetch stage (head FTQ entries -> decode queue; PFC fires here).
    _stage(
        "fetch",
        binds=("fetch_stage = sim.fetch.fetch_stage",),
        body=("fetch_stage(cycle)",),
    ),
    # 4. Branch prediction (new FTQ entries).
    _stage(
        "predict",
        binds=("ftq = sim.ftq", "bpu_cycle = sim.bpu.cycle"),
        body=("bpu_cycle(cycle, ftq)",),
    ),
    # 5. Probe stage (I-TLB + I-cache tag lookups; fills start here).
    _stage(
        "probe",
        binds=("probe_stage = sim.fetch.probe_stage",),
        body=("probe_stage(cycle)",),
    ),
    # 6. Dedicated prefetcher tick.
    _stage(
        "prefetch",
        requires="prefetcher",
        binds=("prefetcher_cycle = sim.prefetcher.cycle",),
        body=("prefetcher_cycle(cycle)",),
    ),
    # End-of-cycle invariant sweep (repro check / the fuzzer).
    _hook(
        "invariant_sweep",
        requires="checker",
        binds=("check_cycle = sim.checker.check_cycle",),
        body=("check_cycle(cycle)",),
    ),
    # A run exceeding the guard indicates a livelock; fail with context.
    _hook(
        "livelock_guard",
        body=(
            "if cycle > guard:",
            "    sim.cycle = cycle",
            "    raise sim._livelock_error(target)",
        ),
    ),
)


def active_points(features: frozenset[str]) -> list[SchedulePoint]:
    """The schedule points composed into a kernel for ``features``."""
    unknown = features.difference(FEATURES)
    if unknown:
        raise ValueError(f"unknown feature(s) {sorted(unknown)}; known: {FEATURES}")
    return [p for p in CYCLE_SCHEDULE if p.requires is None or p.requires in features]


def kernel_source(features: frozenset[str]) -> str:
    """Python source of the cycle kernel specialized for ``features``.

    The kernel signature is ``_kernel(sim, target, warmup, guard)``:
    run cycles until ``sim.backend.committed`` reaches ``target``,
    beginning measurement once ``warmup`` instructions have committed.
    ``cycle += 1`` is loop bookkeeping emitted between the last stage
    and the livelock guard, mirroring the original hand-written loop.
    """
    points = active_points(features)
    lines = ["def _kernel(sim, target, warmup, guard):"]
    for point in points:
        for bind in point.binds:
            lines.append(f"    {bind}")
    lines.append("    cycle = sim.cycle")
    lines.append("    while backend.committed < target:")
    for point in points:
        if point.name == "livelock_guard":
            lines.append("        cycle += 1")
        for stmt in point.body:
            lines.append(f"        {stmt}")
    lines.append("    sim.cycle = cycle")
    return "\n".join(lines) + "\n"


_KERNELS: dict[frozenset[str], object] = {}
"""Process-wide memo of compiled kernels, keyed by active feature set."""


def build_kernel(features: frozenset[str]):
    """Compile (memoised) and return the cycle kernel for ``features``."""
    features = frozenset(features)
    kernel = _KERNELS.get(features)
    if kernel is None:
        source = kernel_source(features)
        namespace: dict[str, object] = {}
        code = compile(source, f"<cycle-kernel {sorted(features)}>", "exec")
        exec(code, namespace)  # noqa: S102 - trusted, schedule-generated source
        kernel = namespace["_kernel"]
        _KERNELS[features] = kernel
    return kernel


def validate_stage_interfaces(sim) -> list[str]:
    """Stage-interface conformance: every binding resolves on ``sim``.

    Returns a list of problems (empty when conformant).  Used by tests
    to pin that the components :mod:`repro.core.build` wires expose
    exactly the callables the schedule binds.
    """
    problems: list[str] = []
    env: dict[str, object] = {"sim": sim}
    for point in active_points(sim.active_features()):
        for bind in point.binds:
            name, expr = (s.strip() for s in bind.split("=", 1))
            try:
                value = eval(expr, env)  # noqa: S307 - introspection of own schedule
            except AttributeError as exc:
                problems.append(f"{point.name}: binding {expr!r} failed: {exc}")
                continue
            env[name] = value
            if not expr.endswith((".telemetry", ".ftq", ".backend")) and not callable(value):
                problems.append(f"{point.name}: binding {expr!r} is not callable")
    return problems
