"""The declarative per-cycle stage schedule and the cycle-kernel builder.

This module is the **single source of truth for the simulator's cycle
loop**.  :data:`CYCLE_SCHEDULE` declares, in execution order, the six
per-cycle pipeline stages plus the named hook points that optional
subsystems attach to:

========  ==================  ===========  =================================
order     point               kind         active when
========  ==================  ===========  =================================
1         profile_prologue    hook         a stage profiler is attached
2         telemetry_clock     hook         a telemetry hub is attached
3         memory_fill         stage        always
4         retire_count        hook         a telemetry hub is attached
5         backend_retire      stage        always
6         measure_boundary    hook         always
7         telemetry_tick      hook         a telemetry hub is attached
8         fetch               stage        always
9         predict             stage        always
10        probe               stage        always
11        prefetch            stage        a dedicated prefetcher is built
12        invariant_sweep     hook         ``params.check_invariants``
13        idle_skip           hook         no telemetry/checker/prefetcher/profile
14        livelock_guard      hook         always
========  ==================  ===========  =================================

Under the ``profile`` feature (:mod:`repro.core.prof`) the emitter
additionally wraps each composed point's body with perf-counter reads
accumulating per-stage self time -- timers only observe, so profiled
runs stay bit-identical to plain runs.

:func:`build_kernel` *specializes* one loop body from the schedule at
``Simulator`` construction time: it composes only the points whose
feature is active into Python source, compiles it once per feature
combination (memoised process-wide), and returns the kernel function.
:func:`build_step_kernel` compiles the same composed body into a
*generator* that yields after every cycle, which is what the batched
lockstep driver (:mod:`repro.core.batch`) interleaves across N
independent simulator instances -- one declaration, two loop shapes,
bit-identical by construction.
The uninstrumented path therefore keeps the bound-locals speed of a
hand-written tight loop, while every telemetry x checker combination is
generated from the same declaration instead of hand-copied variants --
observing hooks compose in, they never fork the loop, so checked /
traced runs stay bit-identical to plain runs (pinned by the fuzzer's
``checked_bit_identity`` / ``traced_bit_identity`` properties).

Each point also declares its *bindings*: the ``sim`` attributes it
snapshots into locals before the loop starts.  Bound methods stay valid
across the measurement-boundary stats swap because only ``.stats``
attributes are replaced, never the component objects.  The bindings
double as the stage-interface conformance contract: a component wired
by :mod:`repro.core.build` must expose exactly the callables its stage
binds (checked by :func:`validate_stage_interfaces`).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Feature flags a schedule point may require.  A kernel is specialized
#: for one subset of these (the simulator's active features).
#: ``profile`` additionally changes how the kernel is *emitted*: every
#: composed point body is wrapped with perf-counter self-time
#: accumulation (see :mod:`repro.core.prof`).
FEATURES = ("telemetry", "checker", "prefetcher", "profile")


@dataclass(frozen=True)
class SchedulePoint:
    """One stage or hook point of the per-cycle schedule.

    ``binds`` are prologue source lines (run once, before the loop)
    that snapshot ``sim`` attributes into locals; ``body`` are the
    per-cycle source lines.  ``requires`` names the feature flag that
    must be active for the point to be composed into the kernel
    (``None`` means always active).
    """

    name: str
    kind: str  # "stage" | "hook"
    body: tuple[str, ...]
    binds: tuple[str, ...] = ()
    requires: str | None = None
    excludes: tuple[str, ...] = ()
    """Feature flags that suppress the point: it is composed in only
    when *none* of these are active.  Used by pure fast-path
    optimisations (idle_skip) that must stand aside whenever an
    observing subsystem wants to see every cycle."""

    def __post_init__(self) -> None:
        if self.kind not in ("stage", "hook"):
            raise ValueError(f"schedule point kind must be stage|hook, got {self.kind!r}")
        if self.requires is not None and self.requires not in FEATURES:
            raise ValueError(f"unknown feature {self.requires!r}; known: {FEATURES}")
        for feature in self.excludes:
            if feature not in FEATURES:
                raise ValueError(f"unknown feature {feature!r}; known: {FEATURES}")


def _stage(name: str, body: tuple[str, ...], binds: tuple[str, ...] = (), requires=None):
    """Shorthand for a pipeline-stage schedule point."""
    return SchedulePoint(name, "stage", body, binds, requires)


def _hook(
    name: str,
    body: tuple[str, ...],
    binds: tuple[str, ...] = (),
    requires=None,
    excludes: tuple[str, ...] = (),
):
    """Shorthand for a hook-point schedule point."""
    return SchedulePoint(name, "hook", body, binds, requires, excludes)


CYCLE_SCHEDULE: tuple[SchedulePoint, ...] = (
    # Stage-profiler bindings (no per-cycle body of its own: the
    # emitter wraps every *other* point's body with `_clk`/`_pacc`
    # accesses when the profile feature is active).
    _hook(
        "profile_prologue",
        requires="profile",
        binds=("_clk = sim.profiler.clock", "_pacc = sim.profiler.acc"),
        body=(),
    ),
    # Refresh the telemetry clock before any stage can emit an event.
    _hook(
        "telemetry_clock",
        requires="telemetry",
        binds=("tel = sim.telemetry",),
        body=("tel.now = cycle",),
    ),
    # 1. Memory fill completion -> FTQ wakeups.
    _stage(
        "memory_fill",
        binds=(
            "memory_tick = sim.memory.tick",
            "complete_fills = sim.fetch.complete_fills",
        ),
        body=(
            "fills = memory_tick(cycle)",
            "if fills:",
            "    complete_fills(fills, cycle)",
        ),
    ),
    # Snapshot the retire counter so telemetry_tick sees this cycle's delta.
    _hook(
        "retire_count",
        requires="telemetry",
        body=("before = backend.committed",),
    ),
    # 2. Backend retire (may trigger a misprediction flush).
    _stage(
        "backend_retire",
        binds=("backend = sim.backend", "backend_cycle = backend.cycle"),
        body=("backend_cycle(cycle)",),
    ),
    # Warmup -> measurement boundary: swap in fresh counters exactly once.
    _hook(
        "measure_boundary",
        body=(
            "if not sim._measuring and backend.committed >= warmup:",
            "    sim.cycle = cycle",
            "    sim._begin_measurement()",
        ),
    ),
    # Cycle accounting + interval sampling, fed the cycle's retire count.
    _hook(
        "telemetry_tick",
        requires="telemetry",
        binds=("tel_tick = sim.telemetry.tick",),
        body=("tel_tick(cycle, backend.committed - before, sim._measuring)",),
    ),
    # 3. Fetch stage (head FTQ entries -> decode queue; PFC fires here).
    _stage(
        "fetch",
        binds=("fetch_stage = sim.fetch.fetch_stage",),
        body=("fetch_stage(cycle)",),
    ),
    # 4. Branch prediction (new FTQ entries).
    _stage(
        "predict",
        binds=("ftq = sim.ftq", "bpu_cycle = sim.bpu.cycle"),
        body=("bpu_cycle(cycle, ftq)",),
    ),
    # 5. Probe stage (I-TLB + I-cache tag lookups; fills start here).
    _stage(
        "probe",
        binds=("probe_stage = sim.fetch.probe_stage",),
        body=("probe_stage(cycle)",),
    ),
    # 6. Dedicated prefetcher tick.
    _stage(
        "prefetch",
        requires="prefetcher",
        binds=("prefetcher_cycle = sim.prefetcher.cycle",),
        body=("prefetcher_cycle(cycle)",),
    ),
    # End-of-cycle invariant sweep (repro check / the fuzzer).
    _hook(
        "invariant_sweep",
        requires="checker",
        binds=("check_cycle = sim.checker.check_cycle",),
        body=("check_cycle(cycle)",),
    ),
    # Idle-cycle fast-forward.  When no frontend stage can act before a
    # known wake-up cycle -- the BPU is stalled (or the FTQ full), the
    # FTQ head is absent / awaiting a fill / not yet consumable, and no
    # entry awaits its probe -- the frontend is a provable no-op until
    # the earliest wake-up (next MSHR completion, BPU stall release,
    # head ready cycle, or the livelock guard).  Two compressible
    # shapes:
    #
    # * decode queue empty: every intervening cycle is exactly one
    #   backend starvation bump, so the loop jumps straight to the
    #   wake-up and bumps starvation in bulk;
    # * decode queue holding only fault-free chunks (the
    #   fetch-bandwidth-bound stretch: the head block is ready but
    #   fetch already banked more instructions than the backend has
    #   retired): only the backend acts, and with no fault in flight no
    #   flush can occur, so Simulator._drain_to retires cycle-by-cycle
    #   -- replicating per-cycle starvation accounting, take-splitting
    #   and the head starved-flag -- without running the no-op
    #   frontend stages.
    #
    # Composed in only on the plain fast path: any observer that wants
    # to see every cycle (telemetry ticks, the invariant checker, a
    # prefetcher that may act on any cycle) suppresses it, which is
    # also what lets the fuzzer's bit-identity properties pin the
    # skipped path against the cycle-by-cycle one.
    _hook(
        "idle_skip",
        excludes=("telemetry", "checker", "prefetcher", "profile"),
        binds=(
            "dq = sim.decode_queue",
            "bpu = sim.bpu",
            "mshr_next_ready = sim.memory.mshrs.next_ready_cycle",
            "_drain = sim._drain_to",
        ),
        body=(
            # The target check mirrors the loop condition: once the last
            # instruction has committed (this very iteration), the loop
            # is about to exit and a skip would pad cycles the
            # cycle-by-cycle loop never runs.
            "if backend.committed < target:",
            "    entries = ftq._entries",
            "    head = entries[0] if entries else None",
            "    wake = 0",
            "    if head is None:",
            "        wake = guard + 1",
            "    elif head.state == 2:  # AWAIT_FILL: woken by an MSHR completion",
            "        wake = guard + 1",
            "    elif head.state == 3 and head.ready_cycle > cycle + 1:  # READY, later",
            "        wake = head.ready_cycle",
            "    if wake:",
            "        if not ftq.full:",
            "            if bpu.stall_until <= cycle + 1:",
            "                wake = 0  # the BPU can predict next cycle",
            "            elif bpu.stall_until < wake:",
            "                wake = bpu.stall_until",
            "        if wake:",
            "            for _e in entries:",
            "                if _e.state == 1:  # AWAIT_PROBE: probe acts next cycle",
            "                    wake = 0",
            "                    break",
            "    if wake:",
            "        _fill = mshr_next_ready()",
            "        if _fill is not None and _fill < wake:",
            "            wake = _fill",
            "        if wake > guard + 1:",
            "            wake = guard + 1",
            "        if wake > cycle + 1:",
            "            if not dq._chunks:",
            "                backend.stats.bump('starvation_cycles', wake - cycle - 1)",
            "                cycle = wake - 1",
            "            elif all(_c.fault is None for _c in dq._chunks):",
            "                cycle = _drain(cycle, wake, target, warmup, head)",
        ),
    ),
    # A run exceeding the guard indicates a livelock; fail with context.
    _hook(
        "livelock_guard",
        body=(
            "if cycle > guard:",
            "    sim.cycle = cycle",
            "    raise sim._livelock_error(target)",
        ),
    ),
)


def active_points(features: frozenset[str]) -> list[SchedulePoint]:
    """The schedule points composed into a kernel for ``features``."""
    unknown = features.difference(FEATURES)
    if unknown:
        raise ValueError(f"unknown feature(s) {sorted(unknown)}; known: {FEATURES}")
    return [
        p
        for p in CYCLE_SCHEDULE
        if (p.requires is None or p.requires in features)
        and not any(f in features for f in p.excludes)
    ]


def profiled_points(features: frozenset[str]) -> list[SchedulePoint]:
    """The points the ``profile`` feature wraps with self-time timers.

    Every composed point with a per-cycle body, in emission order --
    the index into this list is the index into
    :attr:`repro.core.prof.StageProfiler.acc` the emitted kernel
    accumulates into.
    """
    return [p for p in active_points(features) if p.body]


def _emit_kernel(features: frozenset[str], name: str, stepping: bool) -> str:
    """Emit the composed cycle-loop source (the ONE loop body).

    Both kernel shapes are generated here so the codebase keeps exactly
    one cycle loop: the plain callable and the stepping generator
    differ only by a trailing ``yield`` per iteration.  When the
    ``profile`` feature is active each point body is bracketed with
    ``_clk`` reads feeding the per-stage accumulator ``_pacc`` (bound
    by the ``profile_prologue`` point); the wrap adds observation only,
    never control flow.
    """
    points = active_points(features)
    profiling = "profile" in features
    profile_index = {id(p): i for i, p in enumerate(profiled_points(features))}
    lines = [f"def {name}(sim, target, warmup, guard):"]
    for point in points:
        for bind in point.binds:
            lines.append(f"    {bind}")
    lines.append("    cycle = sim.cycle")
    lines.append("    while backend.committed < target:")
    for point in points:
        if point.name == "livelock_guard":
            lines.append("        cycle += 1")
        if not point.body:
            continue
        if profiling:
            lines.append("        _pt = _clk()")
        for stmt in point.body:
            lines.append(f"        {stmt}")
        if profiling:
            lines.append(f"        _pacc[{profile_index[id(point)]}] += _clk() - _pt")
    if stepping:
        lines.append("        yield")
    lines.append("    sim.cycle = cycle")
    return "\n".join(lines) + "\n"


def kernel_source(features: frozenset[str]) -> str:
    """Python source of the cycle kernel specialized for ``features``.

    The kernel signature is ``_kernel(sim, target, warmup, guard)``:
    run cycles until ``sim.backend.committed`` reaches ``target``,
    beginning measurement once ``warmup`` instructions have committed.
    ``cycle += 1`` is loop bookkeeping emitted between the last stage
    and the livelock guard, mirroring the original hand-written loop.
    """
    return _emit_kernel(features, "_kernel", stepping=False)


def step_kernel_source(features: frozenset[str]) -> str:
    """Source of the *stepping* cycle kernel for ``features``.

    Identical composed body to :func:`kernel_source`, but emitted as a
    generator -- ``_step_kernel(sim, target, warmup, guard)`` yields
    once at the end of every simulated cycle (after the livelock
    guard), and finishes (StopIteration) once ``target`` instructions
    have committed, writing ``sim.cycle`` back first.  The batched
    lockstep driver round-robins ``next()`` over one generator per
    simulator instance; because the per-cycle body is the same
    schedule-generated source, a stepped run is bit-identical to a
    :func:`build_kernel` run by construction.
    """
    return _emit_kernel(features, "_step_kernel", stepping=True)


_KERNELS: dict[frozenset[str], object] = {}
"""Process-wide memo of compiled kernels, keyed by active feature set."""

_STEP_KERNELS: dict[frozenset[str], object] = {}
"""Process-wide memo of compiled stepping kernels (generators)."""


def _compile_kernel(source: str, name: str, tag: str):
    namespace: dict[str, object] = {}
    code = compile(source, tag, "exec")
    exec(code, namespace)  # noqa: S102 - trusted, schedule-generated source
    return namespace[name]


def build_kernel(features: frozenset[str]):
    """Compile (memoised) and return the cycle kernel for ``features``."""
    features = frozenset(features)
    kernel = _KERNELS.get(features)
    if kernel is None:
        kernel = _compile_kernel(
            kernel_source(features), "_kernel", f"<cycle-kernel {sorted(features)}>"
        )
        _KERNELS[features] = kernel
    return kernel


def build_step_kernel(features: frozenset[str]):
    """Compile (memoised) and return the stepping kernel for ``features``."""
    features = frozenset(features)
    kernel = _STEP_KERNELS.get(features)
    if kernel is None:
        kernel = _compile_kernel(
            step_kernel_source(features),
            "_step_kernel",
            f"<step-kernel {sorted(features)}>",
        )
        _STEP_KERNELS[features] = kernel
    return kernel


def validate_stage_interfaces(sim) -> list[str]:
    """Stage-interface conformance: every binding resolves on ``sim``.

    Returns a list of problems (empty when conformant).  Used by tests
    to pin that the components :mod:`repro.core.build` wires expose
    exactly the callables the schedule binds.
    """
    problems: list[str] = []
    env: dict[str, object] = {"sim": sim}
    for point in active_points(sim.active_features()):
        for bind in point.binds:
            name, expr = (s.strip() for s in bind.split("=", 1))
            try:
                value = eval(expr, env)  # noqa: S307 - introspection of own schedule
            except AttributeError as exc:
                problems.append(f"{point.name}: binding {expr!r} failed: {exc}")
                continue
            env[name] = value
            object_binds = (
                ".telemetry",
                ".ftq",
                ".backend",
                ".decode_queue",
                ".bpu",
                ".profiler.acc",
            )
            if not expr.endswith(object_binds) and not callable(value):
                problems.append(f"{point.name}: binding {expr!r} is not callable")
    return problems
