"""Top-level cycle-accurate simulator.

Wires together the decoupled FDP frontend (BPU -> FTQ -> fetch), the
instruction memory hierarchy, an optional dedicated prefetcher, and the
consuming backend, then runs the oracle stream through it.

Construction is delegated to :class:`repro.core.build.SimBuilder`: every
pluggable component (direction predictor, history policy, BTB variant,
dedicated prefetcher) is resolved through its registry, and optional
subsystems attach through declared hook points (``sim.hooks``,
``trainer.add_branch_listener``, ``sim.observables``).

The per-cycle stage order lives in one place --
:data:`repro.core.schedule.CYCLE_SCHEDULE` -- from which
:func:`repro.core.schedule.build_kernel` specializes the cycle loop for
this simulator's active features (telemetry / invariant checker /
prefetcher).  Inactive hooks are not composed in at all, so the
uninstrumented path keeps bound-locals tight-loop speed, and because
observers only *observe*, traced and checked runs stay bit-identical to
plain runs (pinned by the fuzzer's bit-identity properties).
"""

from __future__ import annotations

from repro.common.params import SimParams
from repro.common.stats import StatSet
from repro.core.build import SimBuilder, resolve_btb_variant
from repro.core.metrics import RunResult
from repro.core.schedule import build_kernel
from repro.core.typed import backend_name, resolve_kernel_mode, supported, typed_kernel
from repro.core.warmup import functional_warmup
from repro.trace.cfg import Program
from repro.trace.oracle import OracleStream
from repro.trace.source import resolve_workload
from repro.trace.workloads import WorkloadSpec, make_trace

_CYCLE_GUARD_FACTOR = 400
"""A run exceeding this many cycles per instruction indicates a livelock."""


class Simulator:
    """One simulated core bound to one program + oracle stream."""

    def __init__(
        self,
        params: SimParams,
        program: Program,
        stream: OracleStream,
        telemetry=None,
        profiler=None,
    ) -> None:
        if not stream.segments:
            raise ValueError("oracle stream is empty")
        total_needed = params.warmup_instructions + params.sim_instructions
        if stream.total_instructions < total_needed:
            raise ValueError(
                f"stream has {stream.total_instructions} instructions; "
                f"run needs {total_needed}"
            )
        self.params = params
        self.program = program
        self.stream = stream
        self.workload_name = ""
        self.cycle = 0
        self._measuring = False
        self._measure_start_cycle = 0
        self._measure_start_committed = 0
        self.warmup_stats: StatSet | None = None
        """Warmup-window counters, stashed at the measurement boundary."""
        self.profiler = profiler
        """Optional :class:`repro.core.prof.StageProfiler`; activates the
        ``profile`` kernel feature (per-stage self-time accumulation)."""
        self.kernel_backend = "interp"
        """Which cycle-loop backend the last :meth:`run` selected:
        ``typed-compiled`` / ``typed-python`` / ``interp``.  Stays
        ``interp`` until a run decides otherwise (the batched lockstep
        driver always steps the interpreted kernels)."""
        SimBuilder(params, program, stream).wire(self, telemetry)
        if profiler is not None:
            profiler.bind_to(self)

    def _fill_lines(self, cache, start: int, end: int) -> None:
        """Fill every cache line overlapping ``[start, end)`` into ``cache``."""
        line_bytes = self.params.memory.line_bytes
        fill = cache.fill
        for line in range(start & ~(line_bytes - 1), end, line_bytes):
            fill(line)

    def _prewarm_l2(self, program: Program) -> None:
        """Install the code image into the L2 before simulation.

        The paper warms for 50M instructions, after which server code is
        L2-resident and I-cache misses are L2 hits, not DRAM accesses.
        Our scaled windows cannot amortise compulsory DRAM misses the
        same way, so the steady state is established directly (the L2
        comfortably holds every catalogue footprint).  L1I, BTB and
        predictor warm-up still happens architecturally during the
        warmup window.
        """
        self._fill_lines(self.memory.l2, program.code_start, program.code_end)

    # ------------------------------------------------------------------
    # Flush handling
    # ------------------------------------------------------------------
    def _on_flush(self, fault, cycle: int) -> None:
        """Backend-detected misprediction: flush and restart at commit PC."""
        self.ftq.flush_all()
        self.decode_queue.flush()
        self.memory.flush_waiters()
        self.bpu.ras.copy_from(self.trainer.arch_ras)
        self.hooks.run_spec_sync()
        if self.trainer.seg_idx >= len(self.stream.segments):
            return  # stream exhausted; the run is about to end
        self.bpu.resteer(
            self.trainer.commit_pc,
            self.trainer.arch_hist,
            self.trainer.seg_idx,
            cycle + self.params.core.mispredict_penalty,
            reason=f"flush:{fault.kind_label}",
        )

    # ------------------------------------------------------------------
    # Fetch-bandwidth drain (idle_skip extension)
    # ------------------------------------------------------------------
    def _drain_to(self, cycle: int, wake: int, target: int, warmup: int, head) -> int:
        """Retire-only drain of a fetch-bandwidth-bound stretch.

        Called from the ``idle_skip`` hook when every frontend stage is
        a provable no-op until ``wake`` (see the hook's wake
        computation in :mod:`repro.core.schedule`) but the decode queue
        still holds instructions -- all fault-free, so no flush can
        occur and no new chunks can arrive.  Runs the backend
        cycle-by-cycle up to ``wake - 1``, replicating exactly what the
        full loop would have done each cycle: retire (with per-cycle
        starvation accounting and take-splitting inside
        :meth:`Backend.cycle`), the measurement boundary, and fetch's
        ``starved_while_head`` flag on the non-consumable head.  Once
        the queue empties mid-drain the remaining cycles collapse to a
        bulk starvation bump, matching the plain idle skip that would
        have fired at that cycle with the identical wake.  Returns the
        cycle the caller's loop variable resumes from (the cycle the
        target was reached, or ``wake - 1``).
        """
        backend = self.backend
        backend_cycle = backend.cycle
        dq = self.decode_queue
        chunks = dq._chunks
        capacity = dq.capacity
        fetch_width = self.fetch._fetch_width
        end = wake - 1
        c = cycle
        while c < end:
            c += 1
            backend_cycle(c)
            if not self._measuring and backend.committed >= warmup:
                self.cycle = c
                self._begin_measurement()
            # Fetch's starved flag: only when fetch would have run (free
            # decode slots) and found too few banked instructions.
            if (
                head is not None
                and dq.total_instrs < capacity
                and dq.total_instrs < fetch_width
            ):
                head.starved_while_head = True
            if backend.committed >= target:
                return c
            if not chunks:
                rem = end - c
                if rem > 0:
                    backend.stats.bump("starvation_cycles", rem)
                    if head is not None:
                        head.starved_while_head = True
                return end
        return end

    # ------------------------------------------------------------------
    # Measurement window
    # ------------------------------------------------------------------
    def _begin_measurement(self) -> None:
        """Swap in fresh counters at the warmup -> measurement boundary."""
        self._measuring = True
        self._measure_start_cycle = self.cycle
        self._measure_start_committed = self.backend.committed
        fresh = StatSet()
        self.warmup_stats = self.stats
        self.stats = fresh
        self.memory.set_stats(fresh)
        self.bpu.stats = fresh
        self.fetch.stats = fresh
        self.backend.stats = fresh
        self.trainer.stats = fresh
        if self.prefetcher is not None:
            self.prefetcher.stats = fresh

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def active_features(self) -> frozenset[str]:
        """The schedule features active on this simulator.

        Selects which cycle kernel :meth:`run` executes; see
        :data:`repro.core.schedule.FEATURES`.
        """
        features = set()
        if self.telemetry is not None:
            features.add("telemetry")
        if self.checker is not None:
            features.add("checker")
        if self.prefetcher is not None:
            features.add("prefetcher")
        if self.profiler is not None:
            features.add("profile")
        return frozenset(features)

    def _livelock_error(self, target: int) -> RuntimeError:
        """Build the livelock RuntimeError with full run attribution.

        Includes the workload name, committed/target progress and the
        key parameters so a failure inside a sweep worker is
        attributable without re-running it.
        """
        params = self.params
        policy = params.frontend.history_policy
        return RuntimeError(
            f"livelock: workload {self.workload_name or '<unnamed>'!r} "
            f"[{params.label()}] stuck after {self.cycle} cycles with "
            f"{self.backend.committed}/{target} instructions committed "
            f"(warmup={params.warmup_instructions}, sim={params.sim_instructions}); "
            f"prefetcher={params.prefetcher!r}, "
            f"ftq_entries={params.frontend.ftq_entries}, "
            f"btb={resolve_btb_variant(params.branch)}/{params.branch.btb_entries}, "
            f"history={getattr(policy, 'value', policy)!r}"
        )

    def _prepare_run(self, workload_name: str = "") -> tuple[int, int, int]:
        """Everything :meth:`run` does before the cycle loop starts.

        Applies the functional warmup fast-forward when configured and
        returns the ``(target, warmup, guard)`` triple the cycle kernel
        is called with.  Split out so the batched lockstep driver
        (:mod:`repro.core.batch`) can prepare each instance, interleave
        their stepping kernels, and finish them identically to a scalar
        :meth:`run`.
        """
        params = self.params
        if workload_name:
            self.workload_name = workload_name
        target = params.warmup_instructions + params.sim_instructions
        warmup = params.warmup_instructions
        guard = _CYCLE_GUARD_FACTOR * target + 100_000
        if (
            params.warmup_mode == "functional"
            and warmup > 0
            and not self._measuring
            and self.backend.committed == 0
        ):
            functional_warmup(self)
            self._begin_measurement()
        return target, warmup, guard

    def _finish_run(self, workload_name: str = "") -> RunResult:
        """Everything :meth:`run` does after the cycle loop completes."""
        params = self.params
        if not self._measuring:
            self._begin_measurement()
        instructions = self.backend.committed - self._measure_start_committed
        cycles = self.cycle - self._measure_start_cycle
        result = RunResult(
            workload=workload_name,
            label=params.label(),
            params=params,
            instructions=instructions,
            cycles=max(cycles, 1),
            stats=self.stats,
        )
        if self.telemetry is not None:
            self.telemetry.finalize(self, result)
        if self.checker is not None:
            self.checker.check_end(result)
        if self.profiler is not None:
            self.profiler.finalize(self, result)
        return result

    def run(self, workload_name: str = "") -> RunResult:
        """Simulate warmup + measurement windows; return the result.

        ``params.warmup_mode == "functional"`` fast-forwards the warmup
        window architecturally (:func:`repro.core.warmup.functional_warmup`)
        and starts the cycle-accurate loop at the measurement boundary;
        ``"cycle"`` (and ``"auto"``, for this direct API) warms through
        the full pipeline as before.

        The cycle loop is either the flat typed kernel
        (:mod:`repro.core.typedkern`, bit-identical by contract) or the
        schedule-specialized interpreted kernel for this simulator's
        :meth:`active_features` -- selected by ``params.kernel`` /
        ``REPRO_KERNEL`` and recorded in :attr:`kernel_backend`.
        """
        target, warmup, guard = self._prepare_run(workload_name)
        if resolve_kernel_mode(self.params.kernel) != "interp" and supported(self)[0]:
            self.kernel_backend = backend_name()
            typed_kernel(self, target, warmup, guard)
        else:
            self.kernel_backend = "interp"
            kernel = build_kernel(self.active_features())
            kernel(self, target, warmup, guard)
        return self._finish_run(workload_name)


def simulate(
    workload: WorkloadSpec | str, params: SimParams, telemetry=None, profiler=None
) -> RunResult:
    """Convenience wrapper: generate the trace and run one simulation.

    ``telemetry`` (a :class:`repro.common.telemetry.Telemetry`) opts the
    run into the telemetry-instrumented cycle kernel; ``profiler`` (a
    :class:`repro.core.prof.StageProfiler`) into the stage-profiled
    one; ``None`` keeps the uninstrumented fast path.
    """
    n = params.warmup_instructions + params.sim_instructions
    program, stream = make_trace(workload, n)
    sim = Simulator(params, program, stream, telemetry=telemetry, profiler=profiler)
    if isinstance(workload, str):
        # Record the canonical registry name, not the argument spelling
        # (a trace file path resolves to its registered source name).
        try:
            name = resolve_workload(workload).name
        except KeyError:
            name = workload
    else:
        name = workload.name
    return sim.run(workload_name=name)
