"""Top-level cycle-accurate simulator.

Wires together the decoupled FDP frontend (BPU -> FTQ -> fetch), the
instruction memory hierarchy, an optional dedicated prefetcher, and the
consuming backend, then runs the oracle stream through it.

Per-cycle stage order (reverse pipeline order so a stage never sees
work produced in the same cycle):

1. memory fill completion -> FTQ wakeups
2. backend retire (may trigger a misprediction flush)
3. fetch stage (head FTQ entries -> decode queue; PFC fires here)
4. branch prediction (new FTQ entries)
5. probe stage (I-TLB + I-cache tag lookups; fills start here) --
   runs after prediction so freshly pushed entries are probed the same
   cycle: a shallow FTQ then limits *run-ahead*, not steady-state fetch
   throughput, matching the paper's no-FDP baseline semantics
6. dedicated prefetcher tick

Passing a :class:`repro.common.telemetry.Telemetry` object switches the
run onto an instrumented copy of the cycle loop that feeds per-cycle
attribution, interval sampling and the event trace; without one the
original tight loop runs untouched, so untraced results are
bit-identical to an uninstrumented build.
"""

from __future__ import annotations

from repro.branch.btb import BTB
from repro.branch.btb2l import TwoLevelBTB
from repro.branch.gshare import Gshare
from repro.branch.history import HistoryManager
from repro.branch.ittage import ITTAGE
from repro.branch.loop import LoopPredictor
from repro.branch.perceptron import Perceptron
from repro.branch.tage import TAGE, TageConfig
from repro.common.params import DirectionPredictorKind, SimParams
from repro.common.stats import StatSet
from repro.core.backend import Backend, CommitTrainer, DecodeQueue
from repro.core.metrics import RunResult
from repro.core.warmup import functional_warmup
from repro.frontend.bpu import BranchPredictionUnit
from repro.frontend.fetch import FetchUnit
from repro.frontend.ftq import FTQ
from repro.memory.hierarchy import InstructionMemory
from repro.prefetch import create_prefetcher
from repro.trace.cfg import Program
from repro.trace.oracle import OracleStream
from repro.trace.workloads import WorkloadSpec, make_trace

_CYCLE_GUARD_FACTOR = 400
"""A run exceeding this many cycles per instruction indicates a livelock."""


class Simulator:
    """One simulated core bound to one program + oracle stream."""

    def __init__(
        self,
        params: SimParams,
        program: Program,
        stream: OracleStream,
        telemetry=None,
    ) -> None:
        if not stream.segments:
            raise ValueError("oracle stream is empty")
        total_needed = params.warmup_instructions + params.sim_instructions
        if stream.total_instructions < total_needed:
            raise ValueError(
                f"stream has {stream.total_instructions} instructions; "
                f"run needs {total_needed}"
            )
        self.params = params
        self.program = program
        self.stream = stream
        self.stats = StatSet()

        self.memory = InstructionMemory(params.memory, self.stats)
        self._prewarm_l2(program)
        if params.branch.btb_l1_entries:
            self.btb = TwoLevelBTB(
                params.branch.btb_l1_entries,
                params.branch.btb_l1_assoc,
                params.branch.btb_entries,
                params.branch.btb_assoc,
                params.branch.btb_l2_extra_latency,
            )
        else:
            self.btb = BTB(params.branch.btb_entries, params.branch.btb_assoc)
        self.ittage = ITTAGE(params.branch.ittage_entries, params.branch.history_bits)

        hist_bits = (
            params.branch.history_bits
            if params.frontend.history_policy.uses_target_history
            else params.branch.direction_history_bits
        )
        self.hist_mgr = HistoryManager(params.frontend.history_policy, hist_bits)

        self.direction = self._build_direction_predictor(hist_bits)
        self.loop = (
            LoopPredictor(params.branch.loop_predictor_entries)
            if params.branch.loop_predictor_entries
            else None
        )

        self.ftq = FTQ(params.frontend.ftq_entries)
        self.decode_queue = DecodeQueue(params.frontend.decode_queue_size)
        self.trainer = CommitTrainer(
            stream=stream,
            mgr=self.hist_mgr,
            btb=self.btb,
            direction=self.direction,
            ittage=self.ittage,
            stats=self.stats,
            train_direction=not params.branch.perfect_direction,
            loop=self.loop,
        )
        self.backend = Backend(params, self.decode_queue, self.trainer, self.stats, self._on_flush)
        self.bpu = BranchPredictionUnit(
            params, program, stream, self.btb, self.direction, self.ittage, self.hist_mgr, self.stats
        )
        self.bpu.loop = self.loop
        self.prefetcher = None
        if params.prefetcher == "perfect":
            self.memory.perfect = True
        elif params.prefetcher != "none":
            self.prefetcher = create_prefetcher(
                params.prefetcher,
                params=params,
                memory=self.memory,
                btb=self.btb,
                program=program,
                stats=self.stats,
            )
            if params.prefetcher == "profile_guided":
                # Software prefetching: the offline profiling pass runs
                # over the warmup window only, like training on a
                # separate profiling run.
                from repro.prefetch.profile_guided import build_profile

                self.prefetcher.profile = build_profile(
                    stream,
                    training_instructions=max(params.warmup_instructions, 1_000),
                    l1i_lines=params.memory.l1i_lines,
                    assoc=params.memory.l1i_assoc,
                    line_bytes=params.memory.line_bytes,
                )
            self.trainer.branch_listener = self.prefetcher.on_commit_branch
        self.fetch = FetchUnit(
            params=params,
            program=program,
            stream=stream,
            ftq=self.ftq,
            memory=self.memory,
            bpu=self.bpu,
            hist_mgr=self.hist_mgr,
            direction=self.direction,
            decode_queue=self.decode_queue,
            stats=self.stats,
            prefetcher=self.prefetcher,
        )
        self.cycle = 0
        self._measuring = False
        self._measure_start_cycle = 0
        self._measure_start_committed = 0
        self.warmup_stats: StatSet | None = None
        """Warmup-window counters, stashed at the measurement boundary."""
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.attach(self)
        self.checker = None
        if params.check_invariants:
            # Imported lazily: the check layer is opt-in tooling and the
            # core simulator must not depend on it by default.
            from repro.check.invariants import InvariantChecker

            self.checker = InvariantChecker(self)

    def _fill_lines(self, cache, start: int, end: int) -> None:
        """Fill every cache line overlapping ``[start, end)`` into ``cache``."""
        line_bytes = self.params.memory.line_bytes
        fill = cache.fill
        for line in range(start & ~(line_bytes - 1), end, line_bytes):
            fill(line)

    def _prewarm_l2(self, program: Program) -> None:
        """Install the code image into the L2 before simulation.

        The paper warms for 50M instructions, after which server code is
        L2-resident and I-cache misses are L2 hits, not DRAM accesses.
        Our scaled windows cannot amortise compulsory DRAM misses the
        same way, so the steady state is established directly (the L2
        comfortably holds every catalogue footprint).  L1I, BTB and
        predictor warm-up still happens architecturally during the
        warmup window.
        """
        self._fill_lines(self.memory.l2, program.code_start, program.code_end)

    def _build_direction_predictor(self, hist_bits: int):
        branch = self.params.branch
        if branch.perfect_direction or branch.direction_kind is DirectionPredictorKind.PERFECT:
            return None
        if branch.direction_kind is DirectionPredictorKind.GSHARE:
            return Gshare(branch.gshare_storage_kib)
        if branch.direction_kind is DirectionPredictorKind.PERCEPTRON:
            return Perceptron(branch.gshare_storage_kib)
        return TAGE(TageConfig.for_budget_kib(branch.tage_storage_kib, hist_bits))

    # ------------------------------------------------------------------
    # Flush handling
    # ------------------------------------------------------------------
    def _on_flush(self, fault, cycle: int) -> None:
        """Backend-detected misprediction: flush and restart at commit PC."""
        self.ftq.flush_all()
        self.decode_queue.flush()
        self.memory.flush_waiters()
        self.bpu.ras.copy_from(self.trainer.arch_ras)
        if self.loop is not None:
            self.loop.flush_spec()
        if self.trainer.seg_idx >= len(self.stream.segments):
            return  # stream exhausted; the run is about to end
        self.bpu.resteer(
            self.trainer.commit_pc,
            self.trainer.arch_hist,
            self.trainer.seg_idx,
            cycle + self.params.core.mispredict_penalty,
            reason=f"flush:{fault.kind_label}",
        )

    # ------------------------------------------------------------------
    # Measurement window
    # ------------------------------------------------------------------
    def _begin_measurement(self) -> None:
        self._measuring = True
        self._measure_start_cycle = self.cycle
        self._measure_start_committed = self.backend.committed
        fresh = StatSet()
        self.warmup_stats = self.stats
        self.stats = fresh
        self.memory.set_stats(fresh)
        self.bpu.stats = fresh
        self.fetch.stats = fresh
        self.backend.stats = fresh
        self.trainer.stats = fresh
        if self.prefetcher is not None:
            self.prefetcher.stats = fresh

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, workload_name: str = "") -> RunResult:
        """Simulate warmup + measurement windows; return the result.

        ``params.warmup_mode == "functional"`` fast-forwards the warmup
        window architecturally (:func:`repro.core.warmup.functional_warmup`)
        and starts the cycle-accurate loop at the measurement boundary;
        ``"cycle"`` (and ``"auto"``, for this direct API) warms through
        the full pipeline as before.
        """
        params = self.params
        target = params.warmup_instructions + params.sim_instructions
        warmup = params.warmup_instructions
        guard = _CYCLE_GUARD_FACTOR * target + 100_000
        if (
            params.warmup_mode == "functional"
            and warmup > 0
            and not self._measuring
            and self.backend.committed == 0
        ):
            functional_warmup(self)
            self._begin_measurement()
        if self.checker is not None:
            self._loop_checked(target, warmup, guard)
        elif self.telemetry is not None:
            self._loop_instrumented(target, warmup, guard)
        else:
            self._loop(target, warmup, guard)
        if not self._measuring:
            self._begin_measurement()
        instructions = self.backend.committed - self._measure_start_committed
        cycles = self.cycle - self._measure_start_cycle
        result = RunResult(
            workload=workload_name,
            label=params.label(),
            params=params,
            instructions=instructions,
            cycles=max(cycles, 1),
            stats=self.stats,
        )
        if self.telemetry is not None:
            self.telemetry.finalize(self, result)
        if self.checker is not None:
            self.checker.check_end(result)
        return result

    def _loop(self, target: int, warmup: int, guard: int) -> None:
        """The uninstrumented cycle loop (the simulator's hot path).

        Binds the per-stage methods and collaborating objects once so
        each iteration pays local loads instead of repeated attribute
        lookups.  Bound methods stay valid across the
        measurement-boundary stats swap (only ``.stats`` attributes are
        replaced, never the objects).
        """
        backend = self.backend
        ftq = self.ftq
        memory_tick = self.memory.tick
        complete_fills = self.fetch.complete_fills
        backend_cycle = backend.cycle
        fetch_stage = self.fetch.fetch_stage
        bpu_cycle = self.bpu.cycle
        probe_stage = self.fetch.probe_stage
        prefetcher = self.prefetcher
        prefetcher_cycle = prefetcher.cycle if prefetcher is not None else None
        cycle = self.cycle
        while backend.committed < target:
            fills = memory_tick(cycle)
            if fills:
                complete_fills(fills, cycle)
            backend_cycle(cycle)
            if not self._measuring and backend.committed >= warmup:
                self.cycle = cycle
                self._begin_measurement()
            fetch_stage(cycle)
            bpu_cycle(cycle, ftq)
            probe_stage(cycle)
            if prefetcher_cycle is not None:
                prefetcher_cycle(cycle)
            cycle += 1
            if cycle > guard:
                self.cycle = cycle
                raise RuntimeError(
                    f"livelock: {cycle} cycles, {backend.committed}/{target} committed"
                )
        self.cycle = cycle

    def _loop_instrumented(self, target: int, warmup: int, guard: int) -> None:
        """The telemetry variant of :meth:`_loop`.

        Identical simulation semantics -- telemetry only *observes* --
        plus, per cycle: the hub's clock (``tel.now``) is refreshed
        before any stage can emit an event, and ``tel.tick`` runs right
        after the backend stage with the cycle's correct-path retire
        count, which is all cycle accounting and interval sampling need.
        """
        tel = self.telemetry
        backend = self.backend
        ftq = self.ftq
        memory_tick = self.memory.tick
        complete_fills = self.fetch.complete_fills
        backend_cycle = backend.cycle
        fetch_stage = self.fetch.fetch_stage
        bpu_cycle = self.bpu.cycle
        probe_stage = self.fetch.probe_stage
        prefetcher = self.prefetcher
        prefetcher_cycle = prefetcher.cycle if prefetcher is not None else None
        tel_tick = tel.tick
        cycle = self.cycle
        while backend.committed < target:
            tel.now = cycle
            fills = memory_tick(cycle)
            if fills:
                complete_fills(fills, cycle)
            before = backend.committed
            backend_cycle(cycle)
            if not self._measuring and backend.committed >= warmup:
                self.cycle = cycle
                self._begin_measurement()
            tel_tick(cycle, backend.committed - before, self._measuring)
            fetch_stage(cycle)
            bpu_cycle(cycle, ftq)
            probe_stage(cycle)
            if prefetcher_cycle is not None:
                prefetcher_cycle(cycle)
            cycle += 1
            if cycle > guard:
                self.cycle = cycle
                raise RuntimeError(
                    f"livelock: {cycle} cycles, {backend.committed}/{target} committed"
                )
        self.cycle = cycle


    def _loop_checked(self, target: int, warmup: int, guard: int) -> None:
        """The invariant-checking variant of :meth:`_loop` (repro check).

        Simulation semantics are identical -- the checker only observes,
        so results stay bit-identical to the other loops -- with an
        invariant sweep at the end of every cycle.  An attached
        telemetry hub is supported too (its hooks run at the same points
        as in :meth:`_loop_instrumented`), so traced runs can be checked.
        """
        tel = self.telemetry
        checker = self.checker
        backend = self.backend
        ftq = self.ftq
        memory_tick = self.memory.tick
        complete_fills = self.fetch.complete_fills
        backend_cycle = backend.cycle
        fetch_stage = self.fetch.fetch_stage
        bpu_cycle = self.bpu.cycle
        probe_stage = self.fetch.probe_stage
        prefetcher = self.prefetcher
        prefetcher_cycle = prefetcher.cycle if prefetcher is not None else None
        check_cycle = checker.check_cycle
        cycle = self.cycle
        while backend.committed < target:
            if tel is not None:
                tel.now = cycle
            fills = memory_tick(cycle)
            if fills:
                complete_fills(fills, cycle)
            before = backend.committed
            backend_cycle(cycle)
            if not self._measuring and backend.committed >= warmup:
                self.cycle = cycle
                self._begin_measurement()
            if tel is not None:
                tel.tick(cycle, backend.committed - before, self._measuring)
            fetch_stage(cycle)
            bpu_cycle(cycle, ftq)
            probe_stage(cycle)
            if prefetcher_cycle is not None:
                prefetcher_cycle(cycle)
            check_cycle(cycle)
            cycle += 1
            if cycle > guard:
                self.cycle = cycle
                raise RuntimeError(
                    f"livelock: {cycle} cycles, {backend.committed}/{target} committed"
                )
        self.cycle = cycle


def simulate(workload: WorkloadSpec | str, params: SimParams, telemetry=None) -> RunResult:
    """Convenience wrapper: generate the trace and run one simulation.

    ``telemetry`` (a :class:`repro.common.telemetry.Telemetry`) opts the
    run into the instrumented cycle loop; ``None`` keeps the fast path.
    """
    n = params.warmup_instructions + params.sim_instructions
    program, stream = make_trace(workload, n)
    sim = Simulator(params, program, stream, telemetry=telemetry)
    name = workload if isinstance(workload, str) else workload.name
    return sim.run(workload_name=name)
