"""Schedule-stage self-time profiler (``repro profile``).

Perf work on the cycle loop has so far been steered by whole-run
benchmarks (``repro bench``): they say *that* the loop got slower, not
*where*.  This module adds the missing resolution: an opt-in
``profile`` feature in the schedule codegen
(:mod:`repro.core.schedule`) wraps every composed stage/hook body with
a pair of perf-counter reads and accumulates per-stage self time into
:attr:`StageProfiler.acc` -- the emitted kernel stays a single
generated function, and a profiled run is bit-identical to a plain one
because the timers only observe (pinned by ``tests/test_prof.py``).

Like telemetry and the invariant checker, the ``idle_skip``
fast-forward stands aside under profiling (skipped cycles would
attribute no time to the stages that *would* have run), so per-cycle
stage costs are measured on the cycle-by-cycle loop the other features
see.

Usage::

    profiler = StageProfiler()
    result = simulate("srv_web", params, profiler=profiler)
    for row in profiler.rows():
        print(row["stage"], row["self_ns"], row["share"])
"""

from __future__ import annotations

import time


class StageProfiler:
    """Per-stage self-time accumulator for one simulation run.

    ``acc[i]`` holds the accumulated clock delta (ns with the default
    ``perf_counter_ns``) of the ``i``-th profiled schedule point; the
    index order is fixed by
    :func:`repro.core.schedule.profiled_points` for the simulator's
    active features, and :meth:`bind_to` (called by the ``Simulator``
    constructor) captures it.  One profiler serves one run.
    """

    __slots__ = ("clock", "point_names", "point_kinds", "acc", "cycles")

    def __init__(self, clock=time.perf_counter_ns) -> None:
        self.clock = clock
        self.point_names: list[str] = []
        self.point_kinds: list[str] = []
        self.acc: list[int] = []
        self.cycles = 0

    def bind_to(self, sim) -> None:
        """Size the accumulator for ``sim``'s composed schedule points."""
        from repro.core.schedule import profiled_points

        points = profiled_points(sim.active_features())
        self.point_names = [p.name for p in points]
        self.point_kinds = [p.kind for p in points]
        self.acc = [0] * len(points)

    def finalize(self, sim, result) -> None:
        """Record the run's cycle count (called from ``_finish_run``)."""
        self.cycles = sim.cycle

    @property
    def total_self_ns(self) -> int:
        """Accumulated self time across every profiled point."""
        return sum(self.acc)

    def rows(self) -> list[dict]:
        """Per-stage table rows, hottest first.

        ``share`` is the fraction of accumulated self time;
        ``ns_per_cycle`` the mean cost per simulated cycle;
        ``cycles_per_sec`` the simulated-cycle rate this stage alone
        would sustain (the stage's perf headroom number).
        """
        total = self.total_self_ns
        rows = []
        for name, kind, ns in zip(self.point_names, self.point_kinds, self.acc):
            rows.append(
                {
                    "stage": name,
                    "kind": kind,
                    "self_ns": ns,
                    "share": (ns / total) if total else 0.0,
                    "ns_per_cycle": (ns / self.cycles) if self.cycles else 0.0,
                    "cycles_per_sec": (self.cycles / (ns * 1e-9)) if ns else 0.0,
                }
            )
        rows.sort(key=lambda r: -r["self_ns"])
        return rows

    def report(self) -> dict:
        """JSON-ready profile summary (``repro profile --json``)."""
        total = self.total_self_ns
        return {
            "cycles": self.cycles,
            "total_self_ns": total,
            "cycles_per_sec": (self.cycles / (total * 1e-9)) if total else 0.0,
            "stages": self.rows(),
        }
