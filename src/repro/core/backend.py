"""Decode queue, commit-time training and the consuming backend.

The paper's experiments are all frontend-bound, so the backend is an
ideal consumer: it retires up to ``retire_width`` instructions per
cycle from the decode queue and charges a fixed pipeline penalty when
it consumes a mispredicted branch.  Starvation cycles -- cycles where
the decode queue holds fewer than a decode-width of instructions -- are
the paper's fetch-stall metric (Section VI-D).

:class:`CommitTrainer` replays the committed oracle stream into the
predictors: TAGE/Gshare direction training, BTB insertion per the
active allocation policy, ITTAGE target training, the architectural RAS
and the architectural global history.  The architectural history is
what every pipeline flush copies back into the frontend.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.branch.btb import BTB
from repro.branch.history import HistoryManager
from repro.branch.ittage import ITTAGE
from repro.branch.ras import ReturnAddressStack
from repro.common.params import SimParams
from repro.common.stats import StatSet
from repro.frontend.bpu import Fault
from repro.isa.instructions import BranchKind
from repro.trace.fbmeta import stream_meta
from repro.trace.oracle import OracleStream


@dataclass(slots=True)
class _Chunk:
    n: int
    fault: Fault | None
    fault_index: int
    wrong_path: bool
    pos: int = 0


class DecodeQueue:
    """Bounded FIFO of fetched instruction groups."""

    __slots__ = ("capacity", "_chunks", "total_instrs")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("decode queue capacity must be positive")
        self.capacity = capacity
        self._chunks: deque[_Chunk] = deque()
        self.total_instrs = 0

    @property
    def free_slots(self) -> int:
        return self.capacity - self.total_instrs

    def push(self, n_instrs: int, fault: Fault | None, fault_index: int, wrong_path: bool) -> None:
        if n_instrs <= 0:
            raise ValueError("chunk must contain instructions")
        if n_instrs > self.free_slots:
            raise RuntimeError("decode queue overflow")
        self._chunks.append(_Chunk(n_instrs, fault, fault_index, wrong_path))
        self.total_instrs += n_instrs

    def flush(self) -> None:
        self._chunks.clear()
        self.total_instrs = 0

    def __len__(self) -> int:
        return len(self._chunks)

    def head(self) -> _Chunk | None:
        return self._chunks[0] if self._chunks else None

    def pop_head(self) -> None:
        chunk = self._chunks.popleft()
        self.total_instrs -= chunk.n - chunk.pos

    def consume_from_head(self, take: int) -> None:
        chunk = self._chunks[0]
        chunk.pos += take
        self.total_instrs -= take
        if chunk.pos >= chunk.n:
            self._chunks.popleft()

    def validate(self) -> list[str]:
        """Structural invariants (:mod:`repro.check`); side-effect free."""
        problems: list[str] = []
        total = 0
        for i, chunk in enumerate(self._chunks):
            if chunk.n <= 0 or not 0 <= chunk.pos < chunk.n:
                problems.append(
                    f"decode-queue chunk {i}: position {chunk.pos} outside [0, {chunk.n})"
                )
            if i > 0 and chunk.pos:
                problems.append(f"decode-queue chunk {i}: non-head chunk partially consumed")
            total += chunk.n - chunk.pos
        if total != self.total_instrs:
            problems.append(
                f"decode-queue occupancy counter {self.total_instrs} != chunk sum {total}"
            )
        if self.total_instrs > self.capacity:
            problems.append(
                f"decode queue holds {self.total_instrs} instructions, capacity {self.capacity}"
            )
        return problems


class CommitTrainer:
    """Replays committed instructions into the predictors, in order."""

    __slots__ = (
        "stream",
        "mgr",
        "btb",
        "direction",
        "ittage",
        "stats",
        "train_direction",
        "btb_insert_hook",
        "loop",
        "arch_ras",
        "arch_hist",
        "flat_br",
        "committed",
        "branch_listener",
        "_smeta",
    )

    def __init__(
        self,
        stream: OracleStream,
        mgr: HistoryManager,
        btb: BTB,
        direction,
        ittage: ITTAGE,
        stats: StatSet,
        train_direction: bool = True,
        btb_insert_hook=None,
        loop=None,
    ) -> None:
        self.stream = stream
        self.mgr = mgr
        self.btb = btb
        self.direction = direction
        self.ittage = ittage
        self.stats = stats
        self.train_direction = train_direction
        self.btb_insert_hook = btb_insert_hook
        self.loop = loop
        self.arch_ras = ReturnAddressStack()
        self.arch_hist = 0
        self.flat_br = 0
        """Flat cursor into the stream's commit-order branch arrays
        (:class:`repro.trace.fbmeta.StreamMeta`): branches below it have
        trained, branches at or above it have not."""
        self.committed = 0
        self.branch_listener = None
        self._smeta = stream_meta(stream)
        """Optional callable(pc, kind, taken, target) -- prefetchers that
        watch the committed branch stream (e.g. D-JOLT) subscribe here."""

    def add_branch_listener(self, listener, first: bool = False) -> None:
        """Subscribe ``listener`` to the committed-branch hook point.

        Listeners are called as ``listener(pc, kind, taken, target)``.
        Multiple listeners compose: a new one runs after those already
        installed, unless ``first=True`` puts it ahead (the
        differential recorder uses this to observe each branch before
        prefetcher training can react to it).  A single listener stays
        a plain attribute, so the common one-subscriber case pays no
        dispatch overhead.
        """
        current = self.branch_listener
        if current is None:
            self.branch_listener = listener
            return
        earlier, later = (listener, current) if first else (current, listener)

        def _chained(pc, kind, taken, target, _a=earlier, _b=later):
            _a(pc, kind, taken, target)
            _b(pc, kind, taken, target)

        self.branch_listener = _chained

    # ------------------------------------------------------------------
    # Derived cursors
    #
    # The trainer's architectural position is fully determined by
    # ``committed`` (instructions) and ``flat_br`` (branches); the
    # segment-relative cursors the flush path and the invariant checker
    # read are derived on demand instead of maintained per step.
    # ------------------------------------------------------------------
    @property
    def seg_idx(self) -> int:
        """Index of the segment holding the next instruction to commit
        (``len(segments)`` once the stream is exhausted)."""
        stream = self.stream
        if self.committed >= stream.total_instructions:
            return len(stream.segments)
        return stream.segment_at_instruction(self.committed)

    @property
    def pos(self) -> int:
        """Committed instructions within the current segment."""
        stream = self.stream
        c = self.committed
        if c >= stream.total_instructions:
            return 0
        return c - stream.cumulative[stream.segment_at_instruction(c)]

    @property
    def br_ptr(self) -> int:
        """Trained branches within the current segment."""
        idx = self.seg_idx
        first = self._smeta.seg_first_br
        if idx >= len(first) - 1:
            return 0
        return self.flat_br - first[idx]

    @property
    def commit_pc(self) -> int:
        """Address of the next instruction to commit."""
        stream = self.stream
        idx = self.seg_idx
        seg = stream.segments[idx]
        return seg.start + 4 * (self.committed - stream.cumulative[idx])

    def advance(self, n: int) -> None:
        """Commit ``n`` oracle instructions, training along the way.

        One flat sweep over the stream's commit-order branch arrays:
        a branch trains exactly when its global commit index falls
        below the new committed count, which is the same condition the
        per-segment walk evaluated segment-locally.
        """
        new_committed = self.committed + n
        if new_committed > self.stream.total_instructions:
            raise RuntimeError("commit ran past the oracle stream")
        smeta = self._smeta
        commits = smeta.br_commit
        addrs = smeta.br_addr
        kinds = smeta.br_kind
        takens = smeta.br_taken
        targets = smeta.br_target
        train = self._train
        ptr = self.flat_br
        n_br = len(commits)
        while ptr < n_br and commits[ptr] < new_committed:
            train(addrs[ptr], kinds[ptr], takens[ptr], targets[ptr])
            ptr += 1
        self.flat_br = ptr
        self.committed = new_committed

    def _train(self, addr: int, kind: BranchKind, taken: bool, target: int) -> None:
        stats = self.stats
        stats.bump("committed_branches")
        detected = self.btb.contains(addr)
        if not detected:
            stats.bump("commit_btb_miss")

        if kind is BranchKind.COND_DIRECT:
            stats.bump("committed_cond_branches")
            if self.train_direction and self.direction is not None:
                self.direction.update(addr, self.arch_hist, taken)
            if self.loop is not None:
                self.loop.train(addr, taken)
        elif kind.is_indirect:
            self.ittage.update(addr, self.arch_hist, target)

        if kind.is_call:
            self.arch_ras.push(addr + 4)
        elif kind.is_return:
            self.arch_ras.pop()

        if taken or self.mgr.allocates_all_branches:
            stored_target = target if taken else self._static_target(kind, target)
            self.btb.insert(addr, kind, stored_target)
            if self.btb_insert_hook is not None:
                self.btb_insert_hook(addr, kind, stored_target, taken)

        if self.branch_listener is not None:
            self.branch_listener(addr, kind, taken, target)

        self.arch_hist, fixup = self.mgr.commit_push(self.arch_hist, addr, taken, target, detected)
        if fixup:
            stats.bump("commit_history_fixups")

    @staticmethod
    def _static_target(kind: BranchKind, target: int) -> int:
        # For not-taken conditionals the oracle record's target *is* the
        # static destination, which is what an all-branch BTB stores.
        return target


class Backend:
    """Ideal-width consumer with misprediction penalties."""

    __slots__ = (
        "params",
        "dq",
        "trainer",
        "stats",
        "flush_callback",
        "committed",
        "telemetry",
        "_retire_width",
    )

    def __init__(
        self,
        params: SimParams,
        decode_queue: DecodeQueue,
        trainer: CommitTrainer,
        stats: StatSet,
        flush_callback,
    ) -> None:
        self.params = params
        self.dq = decode_queue
        self.trainer = trainer
        self.stats = stats
        self.flush_callback = flush_callback
        self.committed = 0
        self.telemetry = None
        """Optional telemetry hub (set by Telemetry.attach on traced runs)."""
        self._retire_width = params.core.retire_width

    def cycle(self, cycle: int) -> None:
        """Retire up to ``retire_width`` instructions."""
        width = self._retire_width
        dq = self.dq
        if dq.total_instrs < width:
            self.stats.bump("starvation_cycles")
            if not dq._chunks:  # empty queue: nothing to retire this cycle
                return
        budget = width
        while budget > 0:
            chunk = self.dq.head()
            if chunk is None:
                break
            avail = chunk.n - chunk.pos
            take = min(budget, avail)
            fault_hit = (
                chunk.fault is not None
                and chunk.pos <= chunk.fault_index < chunk.pos + take
            )
            if fault_hit:
                take = chunk.fault_index - chunk.pos + 1
            self._consume(chunk, take)
            budget -= take
            if fault_hit:
                self._flush(chunk.fault, cycle)
                break

    def _consume(self, chunk: _Chunk, take: int) -> None:
        if chunk.wrong_path:
            self.stats.bump("wrong_path_consumed", take)
        else:
            self.committed += take
            self.stats.bump("committed_instructions", take)
            self.trainer.advance(take)
        self.dq.consume_from_head(take)

    def _flush(self, fault: Fault, cycle: int) -> None:
        self.stats.bump("branch_mispredictions")
        self.stats.bump(f"mispredict_{fault.kind_label}")
        if fault.branch_kind is BranchKind.COND_DIRECT:
            self.stats.bump("cond_mispredictions")
        if self.telemetry is not None:
            self.telemetry.event(
                "flush", pc=fault.pc, fault=fault.kind_label, branch=fault.branch_kind.name
            )
        self.flush_callback(fault, cycle)
