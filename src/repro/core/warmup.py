"""Functional fast-forward warmup.

The warmup window exists only to train state: BTB (and the two-level
hierarchy), direction predictors, ITTAGE, the loop predictor, the
architectural history/RAS, the I-caches, and the dedicated prefetcher's
commit-stream hook.  None of that training depends on *timing* -- the
:class:`~repro.core.backend.CommitTrainer` replays committed branches
in program order regardless of how many cycles the pipeline spent
between them.  ``warmup_mode="functional"`` therefore replays the
oracle stream directly through the trainer, warms the memory-side
structures from the committed footprint, and hands the cycle-accurate
loop a machine that starts *at* the measurement boundary, skipping FTQ
/ fetch / backend / MSHR modelling for the entire warmup window.

What is identical to cycle-accurate warmup:

* every predictor/BTB/ITTAGE/loop/history/RAS training event, in the
  same commit order (the trainer is shared code, not a re-implementation);
* the committed-instruction count at the boundary, and the measured
  window that follows it;
* the prefetcher's commit-branch training (``on_commit_branch``).

What differs (bounded, second-order -- see docs/PERFORMANCE.md):

* L1I/I-TLB contents are warmed from the *committed* footprint, so
  wrong-path fills from warmup-window mispredictions are absent;
* the FTQ/decode queue start empty and the prediction pipeline refills
  through one re-steer, instead of starting mid-flight;
* the prefetcher's demand-access/fill observations from the warmup
  window are absent (its queue is cleared at the boundary so the
  measured prefetch-usefulness partition stays exact).

The measured-IPC agreement between the two modes is pinned to within
2% on every catalogue workload by ``tests/test_warmup.py``.
"""

from __future__ import annotations

from repro.trace.fbmeta import stream_meta


def functional_warmup(sim) -> None:
    """Fast-forward ``sim`` through its warmup window architecturally.

    Must run before the first cycle of :meth:`Simulator.run`; the
    caller is expected to invoke ``sim._begin_measurement()`` right
    after, so the cycle-accurate loop starts measuring at cycle 0.
    """
    warmup = sim.params.warmup_instructions
    if warmup <= 0:
        return

    # 1. Replay the committed stream through the shared commit trainer:
    #    BTB insertion policy, direction predictors, ITTAGE, the loop
    #    predictor, architectural RAS/history, and the prefetcher's
    #    on_commit_branch hook all train exactly as they would at the
    #    backend's commit stage.
    trainer = sim.trainer
    trainer.advance(warmup)
    sim.backend.committed = warmup
    sim.stats.bump("committed_instructions", warmup)

    # 2. Warm the instruction-side memory state from the committed
    #    footprint: every line and page the warmup window executed.
    #    (L2 residency is already established by _prewarm_l2; the L1I
    #    LRU state converges to the most recently executed segments,
    #    like the tail of a cycle-accurate warmup without its
    #    wrong-path fills.)
    #    The footprint is precompiled per stream/geometry
    #    (StreamMeta.warm_footprint) as two flat address lists -- all
    #    lines in segment order, then all pages in segment order.  The
    #    L1I and the I-TLB never interact, and per-structure replay
    #    order is preserved, so the split replay leaves both (LRU state
    #    included) exactly as the per-segment interleaved walk did.
    memory = sim.memory
    itlb = memory.itlb
    stream = sim.stream
    last_seg = stream.segment_at_instruction(warmup - 1)
    lines, pages = stream_meta(stream).warm_footprint(
        last_seg, sim.params.memory.line_bytes, itlb.page_bytes
    )
    fill = memory.l1i.fill
    for line in lines:
        fill(line)
    translate = itlb.translate
    for page in pages:
        translate(page)

    # 3. Synchronise speculative state with the trained architectural
    #    state, exactly like a pipeline-flush recovery at the boundary.
    #    The declared hook points carry the subsystem-specific work
    #    (loop-predictor flush_spec via spec_sync, prefetcher
    #    reset_queue via warmup_boundary).
    sim.hooks.run_warmup_boundary()
    bpu = sim.bpu
    bpu.ras.copy_from(trainer.arch_ras)
    bpu.resteer(
        trainer.commit_pc,
        trainer.arch_hist,
        trainer.seg_idx,
        sim.cycle,
        reason="warmup",
    )
