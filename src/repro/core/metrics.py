"""Run results and hardware-cost accounting.

:class:`RunResult` is the uniform output of one simulation: IPC plus
the derived metrics every figure of the paper reports (branch MPKI,
starvation cycles per kilo-instruction, I-cache tag accesses per
kilo-instruction, miss-exposure classification).  Telemetry-enabled
runs additionally expose top-down cycle accounting
(:meth:`RunResult.cycle_accounting`) and prefetch-usefulness terminal
states with accuracy / coverage / timeliness derived metrics.

:func:`ftq_storage_bits` reproduces Table III: the FTQ is the only
hardware FDP adds, and with the paper's field widths a 24-entry FTQ
costs 195 bytes, of which the per-instruction direction hints (needed
by the extended PFC) are only 24 bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.params import SimParams
from repro.common.stats import StatSet

CYCLE_ACCOUNTING_BUCKETS = (
    "retiring",
    "fetch_bandwidth",
    "icache_miss",
    "ftq_empty",
    "btb_miss_resteer",
    "pfc_resteer",
    "backend_flush",
)
"""Top-down cycle buckets, mirrored from :mod:`repro.common.telemetry`
(the authoritative definitions live there; this tuple exists so reading
a cached :class:`RunResult` does not import the telemetry layer)."""

# Table III field widths (bits per FTQ entry).
FTQ_FIELD_BITS = {
    "start_address": 48,
    "block_predicted_taken": 1,
    "block_termination_offset": 3,
    "icache_way": 3,
    "state": 2,
    "direction_hint": 8,
}


def ftq_entry_bits(with_pfc_hints: bool = True) -> int:
    """Bits per FTQ entry (Table III)."""
    bits = sum(v for k, v in FTQ_FIELD_BITS.items() if k != "direction_hint")
    if with_pfc_hints:
        bits += FTQ_FIELD_BITS["direction_hint"]
    return bits


def ftq_storage_bits(n_entries: int = 24, with_pfc_hints: bool = True) -> int:
    """Total FTQ storage in bits."""
    if n_entries <= 0:
        raise ValueError("n_entries must be positive")
    return n_entries * ftq_entry_bits(with_pfc_hints)


def ftq_storage_bytes(n_entries: int = 24, with_pfc_hints: bool = True) -> int:
    """Total FTQ storage in bytes, rounded up (paper: 195 bytes)."""
    return math.ceil(ftq_storage_bits(n_entries, with_pfc_hints) / 8)


@dataclass
class RunResult:
    """Outcome of one (workload, configuration) simulation."""

    workload: str
    label: str
    params: SimParams
    instructions: int
    cycles: int
    stats: StatSet = field(repr=False, default_factory=StatSet)

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def branch_mpki(self) -> float:
        return self._per_kilo("branch_mispredictions")

    @property
    def cond_mpki(self) -> float:
        return self._per_kilo("cond_mispredictions")

    @property
    def l1i_mpki(self) -> float:
        return self._per_kilo("l1i_miss")

    @property
    def starvation_per_kilo(self) -> float:
        return self._per_kilo("starvation_cycles")

    @property
    def tag_accesses_per_kilo(self) -> float:
        return self._per_kilo("l1i_tag_access")

    def _per_kilo(self, name: str) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.stats.get(name) / self.instructions

    def miss_exposure(self) -> dict[str, int]:
        """Fig 14 classification counts over demand I-cache misses."""
        return {
            "covered": self.stats.get("miss_covered"),
            "partially_exposed": self.stats.get("miss_partially_exposed"),
            "fully_exposed": self.stats.get("miss_fully_exposed"),
        }

    def exposed_fraction(self) -> float:
        """Fraction of classified misses that are (partially) exposed."""
        exposure = self.miss_exposure()
        total = sum(exposure.values())
        if total == 0:
            return 0.0
        return (exposure["partially_exposed"] + exposure["fully_exposed"]) / total

    # ------------------------------------------------------------------
    # Telemetry-derived views
    # ------------------------------------------------------------------
    def cycle_accounting(self) -> dict[str, int]:
        """Top-down cycle buckets (telemetry runs; all zero otherwise).

        On a telemetry-enabled run the values sum exactly to
        :attr:`cycles` -- every measured cycle is attributed to one
        bucket, by construction.
        """
        return {b: self.stats.get(f"cyc_{b}") for b in CYCLE_ACCOUNTING_BUCKETS}

    @property
    def has_cycle_accounting(self) -> bool:
        """True when this run carried the cycle-accounting telemetry."""
        return any(self.stats.get(f"cyc_{b}") for b in CYCLE_ACCOUNTING_BUCKETS)

    def cycle_accounting_fractions(self) -> dict[str, float]:
        """Cycle buckets normalised by their sum (zeros when absent)."""
        buckets = self.cycle_accounting()
        total = sum(buckets.values())
        if total == 0:
            return {b: 0.0 for b in buckets}
        return {b: v / total for b, v in buckets.items()}

    def prefetch_usefulness(self) -> dict[str, int]:
        """Terminal-state classification of issued prefetches.

        ``timely``/``late``/``unused_evicted`` come from the always-on
        hierarchy counters; ``in_flight_at_end``/``resident_untouched_at_end``
        are recorded by telemetry at the end of the run (zero on
        untraced runs).  ``redundant_unissued`` counts prefetch requests
        that never issued because the line was already resident or in
        flight.
        """
        s = self.stats
        return {
            "issued": s.get("prefetch_issued"),
            "timely": s.get("prefetch_useful"),
            "late": s.get("prefetch_late"),
            "unused_evicted": s.get("prefetch_useless"),
            "in_flight_at_end": s.get("prefetch_inflight_end"),
            "resident_untouched_at_end": s.get("prefetch_resident_end"),
            "redundant_unissued": s.get("prefetch_redundant") + s.get("prefetch_inflight_merge"),
        }

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of issued prefetches a demand eventually wanted."""
        s = self.stats
        issued = s.get("prefetch_issued")
        if issued == 0:
            return 0.0
        return (s.get("prefetch_useful") + s.get("prefetch_late")) / issued

    @property
    def prefetch_coverage(self) -> float:
        """Fraction of would-be demand misses the prefetcher hid fully."""
        s = self.stats
        timely = s.get("prefetch_useful")
        denom = timely + s.get("l1i_miss")
        if denom == 0:
            return 0.0
        return timely / denom

    @property
    def prefetch_timeliness(self) -> float:
        """Among useful prefetches, the fraction that arrived in time."""
        s = self.stats
        useful = s.get("prefetch_useful") + s.get("prefetch_late")
        if useful == 0:
            return 0.0
        return s.get("prefetch_useful") / useful

    def summary(self) -> str:
        return (
            f"{self.workload:12s} {self.label:32s} IPC={self.ipc:5.2f} "
            f"brMPKI={self.branch_mpki:6.2f} l1iMPKI={self.l1i_mpki:6.2f} "
            f"starv/KI={self.starvation_per_kilo:7.1f} tag/KI={self.tag_accesses_per_kilo:7.1f}"
        )
