"""The assembled simulator: decoupled FDP frontend + consuming backend."""

from repro.core.backend import Backend, CommitTrainer, DecodeQueue
from repro.core.batch import BatchKernelBuilder, batchable, run_batch, simulate_batch
from repro.core.metrics import RunResult, ftq_storage_bits, ftq_storage_bytes
from repro.core.simulator import Simulator, simulate

__all__ = [
    "Backend",
    "BatchKernelBuilder",
    "CommitTrainer",
    "DecodeQueue",
    "RunResult",
    "batchable",
    "ftq_storage_bits",
    "ftq_storage_bytes",
    "run_batch",
    "simulate",
    "simulate_batch",
    "Simulator",
]
