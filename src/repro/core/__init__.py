"""The assembled simulator: decoupled FDP frontend + consuming backend."""

from repro.core.backend import Backend, CommitTrainer, DecodeQueue
from repro.core.metrics import RunResult, ftq_storage_bits, ftq_storage_bytes
from repro.core.simulator import Simulator, simulate

__all__ = [
    "Backend",
    "CommitTrainer",
    "DecodeQueue",
    "RunResult",
    "ftq_storage_bits",
    "ftq_storage_bytes",
    "Simulator",
    "simulate",
]
