"""Registry-driven simulator construction (:class:`SimBuilder`).

This module owns the wiring that used to live inline in
``Simulator.__init__``: every pluggable component family is resolved
through a uniform :class:`~repro.common.registry.Registry`, and the
cross-cutting subsystems (functional warmup, the differential checker,
telemetry, dedicated prefetchers) attach through *declared hook points*
instead of ad-hoc attribute surgery.

Registries (see ``docs/ARCHITECTURE.md`` for the extension recipe):

* :data:`direction_predictors` -- conditional direction predictors,
  keyed by :class:`~repro.common.params.DirectionPredictorKind` value
  (or any registered custom name).  Factories are called as
  ``factory(branch_params, hist_bits)`` and may return ``None`` for
  oracle prediction.
* :data:`history_policies` -- branch-history policy descriptors, keyed
  by policy name.  Entries satisfy the :class:`HistoryPolicyLike`
  protocol (the four predicate properties `HistoryManager` consumes).
* :data:`btb_variants` -- BTB organisations, keyed by
  ``BranchPredictorParams.btb_variant`` name.  Factories are called as
  ``factory(branch_params)`` and return a BTB-compatible object.
* :data:`repro.prefetch.prefetchers` -- the dedicated prefetcher zoo
  (same registry class, owned by :mod:`repro.prefetch`).

Hook points a built simulator exposes:

* ``sim.hooks.spec_sync`` -- callables run whenever speculative state
  resynchronises to architectural state (backend misprediction flush
  and the functional-warmup boundary).  The loop predictor's
  ``flush_spec`` registers here.
* ``sim.hooks.warmup_boundary`` -- callables run once at the
  functional-warmup measurement boundary, after ``spec_sync``.  The
  prefetcher's ``reset_queue`` registers here.
* ``sim.trainer.add_branch_listener`` -- the committed-branch stream
  hook point (prefetcher training, the differential recorder).
* ``sim.observables`` -- the named components a telemetry hub
  instruments (``Telemetry.attach`` sets their ``telemetry`` slots).
"""

from __future__ import annotations

from repro.branch.btb import BTB
from repro.branch.btb2l import TwoLevelBTB
from repro.branch.gshare import Gshare
from repro.branch.history import HistoryManager
from repro.branch.ittage import ITTAGE
from repro.branch.loop import LoopPredictor
from repro.branch.perceptron import Perceptron
from repro.branch.tage import TAGE, TageConfig
from repro.common.params import (
    BranchPredictorParams,
    DirectionPredictorKind,
    HistoryPolicy,
    SimParams,
)
from repro.common.registry import Registry
from repro.common.stats import StatSet
from repro.core.backend import Backend, CommitTrainer, DecodeQueue
from repro.frontend.bpu import BranchPredictionUnit
from repro.frontend.fetch import FetchUnit
from repro.frontend.ftq import FTQ
from repro.memory.hierarchy import InstructionMemory
from repro.prefetch import prefetchers

# ----------------------------------------------------------------------
# Direction predictors
# ----------------------------------------------------------------------
direction_predictors = Registry("direction predictor")
"""Factories ``(branch_params, hist_bits) -> predictor | None``."""


def _build_tage(branch: BranchPredictorParams, hist_bits: int) -> TAGE:
    """The paper's baseline TAGE, sized by ``tage_storage_kib``."""
    return TAGE(TageConfig.for_budget_kib(branch.tage_storage_kib, hist_bits))


def _build_gshare(branch: BranchPredictorParams, hist_bits: int) -> Gshare:
    """8KB-class Gshare baseline (Fig 12)."""
    return Gshare(branch.gshare_storage_kib)


def _build_perceptron(branch: BranchPredictorParams, hist_bits: int) -> Perceptron:
    """Perceptron predictor at the Gshare storage budget (Fig 12)."""
    return Perceptron(branch.gshare_storage_kib)


def _build_perfect_direction(branch: BranchPredictorParams, hist_bits: int) -> None:
    """Oracle direction prediction: no predictor object is built."""
    return None


direction_predictors.register(DirectionPredictorKind.TAGE.value, _build_tage)
direction_predictors.register(DirectionPredictorKind.GSHARE.value, _build_gshare)
direction_predictors.register(DirectionPredictorKind.PERCEPTRON.value, _build_perceptron)
direction_predictors.register(DirectionPredictorKind.PERFECT.value, _build_perfect_direction)

# ----------------------------------------------------------------------
# History policies
# ----------------------------------------------------------------------
history_policies = Registry("history policy")
"""Policy descriptors (:class:`HistoryPolicyLike`), keyed by name."""

for _policy in HistoryPolicy:
    history_policies.register(_policy.value, _policy)


class HistoryPolicyLike:
    """Protocol a registered history-policy descriptor must satisfy.

    :class:`~repro.branch.history.HistoryManager` consumes exactly this
    surface; the built-in :class:`~repro.common.params.HistoryPolicy`
    enum members implement it.  Custom descriptors must provide a
    ``value`` (their registry name) plus the three predicate
    properties below.
    """

    value: str
    uses_target_history: bool
    allocates_all_branches: bool
    fixes_not_taken_history: bool


# ----------------------------------------------------------------------
# BTB variants
# ----------------------------------------------------------------------
btb_variants = Registry("BTB variant")
"""Factories ``(branch_params) -> BTB-compatible object``."""


def _build_single_btb(branch: BranchPredictorParams) -> BTB:
    """The default single-level set-associative BTB."""
    return BTB(branch.btb_entries, branch.btb_assoc)


def _build_two_level_btb(branch: BranchPredictorParams) -> TwoLevelBTB:
    """Two-level BTB hierarchy (Section II-B); needs ``btb_l1_entries``."""
    if not branch.btb_l1_entries:
        raise ValueError("BTB variant 'two_level' requires btb_l1_entries > 0")
    return TwoLevelBTB(
        branch.btb_l1_entries,
        branch.btb_l1_assoc,
        branch.btb_entries,
        branch.btb_assoc,
        branch.btb_l2_extra_latency,
    )


btb_variants.register("single", _build_single_btb)
btb_variants.register("two_level", _build_two_level_btb)


def resolve_btb_variant(branch: BranchPredictorParams) -> str:
    """Concrete BTB-variant name for a parameter bundle.

    ``btb_variant="auto"`` (the default) selects ``two_level`` when an
    L1 BTB is provisioned (``btb_l1_entries > 0``) and ``single``
    otherwise, matching the historical behaviour.
    """
    if branch.btb_variant != "auto":
        return branch.btb_variant
    return "two_level" if branch.btb_l1_entries else "single"


# ----------------------------------------------------------------------
# Component resolution (fail-fast validation)
# ----------------------------------------------------------------------
def resolve_components(params: SimParams) -> dict[str, str]:
    """Resolve every registry-named component of ``params``.

    Returns ``{family: name}`` for the resolvable families and raises
    ``ValueError`` (listing the known names) on the first unknown name.
    The sweep runner calls this before fanning work out, so a typo'd
    component name fails fast instead of inside a worker process.
    """
    kind = params.branch.direction_kind
    direction = kind.value if isinstance(kind, DirectionPredictorKind) else kind
    direction_predictors.get(direction)
    policy = params.frontend.history_policy
    policy_name = getattr(policy, "value", policy)
    history_policies.get(policy_name)
    variant = resolve_btb_variant(params.branch)
    btb_variants.get(variant)
    prefetcher = params.prefetcher
    if prefetcher not in ("none", "perfect"):
        prefetchers.get(prefetcher)
    return {
        "direction": direction,
        "history": policy_name,
        "btb": variant,
        "prefetcher": prefetcher,
    }


# ----------------------------------------------------------------------
# Hook points
# ----------------------------------------------------------------------
class SimHooks:
    """Declared attachment points of one built simulator.

    ``spec_sync`` callables run (in registration order) whenever
    speculative state resynchronises to architectural state: on every
    backend misprediction flush and at the functional-warmup boundary.
    ``warmup_boundary`` callables run once, at the functional-warmup
    measurement boundary only, after ``spec_sync``.
    """

    __slots__ = ("spec_sync", "warmup_boundary")

    def __init__(self) -> None:
        self.spec_sync: list = []
        self.warmup_boundary: list = []

    def run_spec_sync(self) -> None:
        """Invoke every speculative-state resync callback."""
        for hook in self.spec_sync:
            hook()

    def run_warmup_boundary(self) -> None:
        """Invoke spec-sync then warmup-boundary-only callbacks."""
        self.run_spec_sync()
        for hook in self.warmup_boundary:
            hook()


# ----------------------------------------------------------------------
# The builder
# ----------------------------------------------------------------------
class SimBuilder:
    """Assemble one :class:`~repro.core.simulator.Simulator` from registries.

    ``SimBuilder(params, program, stream).build()`` is equivalent to
    calling the ``Simulator`` constructor directly (which delegates its
    wiring here); the builder exists so component selection goes
    through the registries and so attachment paths use the declared
    hook points.  Component-swap experiments therefore need only a
    registered name in ``params``, never a core edit.
    """

    def __init__(self, params: SimParams, program, stream) -> None:
        self.params = params
        self.program = program
        self.stream = stream

    def build(self, telemetry=None):
        """Construct and return a fully wired simulator."""
        from repro.core.simulator import Simulator

        return Simulator(self.params, self.program, self.stream, telemetry=telemetry)

    # The wiring below runs inside Simulator.__init__ (via wire()); it
    # sets the component attributes the rest of the system reads.
    def wire(self, sim, telemetry=None) -> None:
        """Wire every component of ``sim`` (called by ``Simulator.__init__``)."""
        params = self.params
        program = self.program
        stream = self.stream
        names = resolve_components(params)

        sim.stats = StatSet()
        sim.memory = InstructionMemory(params.memory, sim.stats)
        sim._prewarm_l2(program)

        sim.btb = btb_variants.create(names["btb"], params.branch)
        sim.ittage = ITTAGE(params.branch.ittage_entries, params.branch.history_bits)

        policy = history_policies.get(names["history"])
        hist_bits = (
            params.branch.history_bits
            if policy.uses_target_history
            else params.branch.direction_history_bits
        )
        sim.hist_mgr = HistoryManager(policy, hist_bits)

        if params.branch.perfect_direction:
            sim.direction = None
        else:
            sim.direction = direction_predictors.create(
                names["direction"], params.branch, hist_bits
            )
        sim.loop = (
            LoopPredictor(params.branch.loop_predictor_entries)
            if params.branch.loop_predictor_entries
            else None
        )

        sim.ftq = FTQ(params.frontend.ftq_entries)
        sim.decode_queue = DecodeQueue(params.frontend.decode_queue_size)
        sim.trainer = CommitTrainer(
            stream=stream,
            mgr=sim.hist_mgr,
            btb=sim.btb,
            direction=sim.direction,
            ittage=sim.ittage,
            stats=sim.stats,
            train_direction=not params.branch.perfect_direction,
            loop=sim.loop,
        )
        sim.backend = Backend(params, sim.decode_queue, sim.trainer, sim.stats, sim._on_flush)
        sim.bpu = BranchPredictionUnit(
            params, program, stream, sim.btb, sim.direction, sim.ittage, sim.hist_mgr, sim.stats
        )
        sim.bpu.loop = sim.loop

        sim.prefetcher = None
        if params.prefetcher == "perfect":
            sim.memory.perfect = True
        elif params.prefetcher != "none":
            sim.prefetcher = prefetchers.create(
                params.prefetcher, params, sim.memory, sim.btb, program, sim.stats
            )
            if params.prefetcher == "profile_guided":
                # Software prefetching: the offline profiling pass runs
                # over the warmup window only, like training on a
                # separate profiling run.
                from repro.prefetch.profile_guided import build_profile

                sim.prefetcher.profile = build_profile(
                    stream,
                    training_instructions=max(params.warmup_instructions, 1_000),
                    l1i_lines=params.memory.l1i_lines,
                    assoc=params.memory.l1i_assoc,
                    line_bytes=params.memory.line_bytes,
                )
            sim.trainer.add_branch_listener(sim.prefetcher.on_commit_branch)

        sim.fetch = FetchUnit(
            params=params,
            program=program,
            stream=stream,
            ftq=sim.ftq,
            memory=sim.memory,
            bpu=sim.bpu,
            hist_mgr=sim.hist_mgr,
            direction=sim.direction,
            decode_queue=sim.decode_queue,
            stats=sim.stats,
            prefetcher=sim.prefetcher,
        )

        # Declared hook points and the telemetry-observable surface.
        hooks = SimHooks()
        if sim.loop is not None:
            hooks.spec_sync.append(sim.loop.flush_spec)
        if sim.prefetcher is not None:
            hooks.warmup_boundary.append(sim.prefetcher.reset_queue)
        sim.hooks = hooks
        sim.observables = {
            "ftq": sim.ftq,
            "bpu": sim.bpu,
            "fetch": sim.fetch,
            "backend": sim.backend,
            "memory": sim.memory,
        }
        if sim.prefetcher is not None:
            sim.observables["prefetcher"] = sim.prefetcher

        sim.telemetry = telemetry
        if telemetry is not None:
            telemetry.attach(sim)
        sim.checker = None
        if params.check_invariants:
            # Imported lazily: the check layer is opt-in tooling and the
            # core simulator must not depend on it by default.
            from repro.check.invariants import InvariantChecker

            sim.checker = InvariantChecker(sim)
