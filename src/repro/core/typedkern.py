"""Flattened typed cycle kernel (the ``typed`` backend's loop body).

This module is the hand-lowered counterpart of the schedule-generated
interpreted kernel for the *uninstrumented* feature set (no telemetry,
no checker, no dedicated prefetcher, no profiler): one flat function
whose body inlines the five hot stage bodies -- ``memory_fill``,
``backend_retire``, ``fetch``, ``predict``, ``probe`` -- plus the
``measure_boundary``, ``idle_skip`` (including the fetch-bandwidth
drain extension) and ``livelock_guard`` hooks, operating on ints and
pre-bound component internals instead of per-cycle method dispatch.

**Bit identity is the contract.**  Every statement here replicates the
exact semantics (including stat-bump names and ordering-visible side
effects) of the components the interpreted kernel calls:
:class:`repro.core.backend.Backend`/:class:`DecodeQueue`,
:class:`repro.frontend.fetch.FetchUnit`,
:class:`repro.frontend.bpu.BranchPredictionUnit`,
:class:`repro.memory.hierarchy.InstructionMemory` (TLB / Cache / MSHR
inlined), and the ``idle_skip`` hook in
:mod:`repro.core.schedule`.  The contract is pinned by
``tests/test_typed.py`` and the fuzzer's ``typed_interp_identity``
property -- any drift is a test failure, not a tolerance.

Rare or cold paths stay calls into the real components so their logic
is never duplicated: ``trainer.advance`` (commit training),
``sim._on_flush`` (pipeline flush), ``fetch._predecode_checks`` (PFC),
``memory._fill_latency`` (L2/DRAM fill path), ``l1i.fill``,
``btb.scan_block``, ``direction.predict``, ``ittage.predict``,
``loop.predict``, ``compute_fault`` and ``sim._begin_measurement``.

The module is written to be **mypyc-compilable**: plain functions,
plain annotations, no dynamic class magic.  When a toolchain is
present (``pip install repro[compiled]`` + ``mypyc``), the compiled
extension shadows this file and :func:`repro.core.typed.backend_name`
reports ``typed-compiled``; otherwise the pure-Python module runs
as-is (``typed-python``), which is already faster than the
interpreted kernel because the per-cycle dispatch, dataclass
construction and stat-bump call overhead are gone.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.branch.history import TARGET_SHIFT
from repro.core.backend import _Chunk
from repro.frontend.bpu import compute_fault
from repro.frontend.ftq import FTQEntry
from repro.isa.instructions import BranchKind
from repro.memory.mshr import MSHREntry

_COND = BranchKind.COND_DIRECT
_CALL_DIRECT = BranchKind.CALL_DIRECT
_RETURN = BranchKind.RETURN
_INDIRECT = BranchKind.INDIRECT
_INDIRECT_CALL = BranchKind.INDIRECT_CALL


def _mshr_ready_key(entry) -> int:
    # Sort key matching MSHRFile.pop_ready (stable sort on ready_cycle).
    return entry.ready_cycle


def typed_kernel(sim, target: int, warmup: int, guard: int) -> None:
    """Run ``sim`` until ``target`` instructions commit.

    Drop-in replacement for the schedule-built ``_kernel(sim, target,
    warmup, guard)`` when ``sim.active_features()`` is empty; see
    :func:`repro.core.typed.supported`.
    """
    # ------------------------------------------------------------------
    # One-time binds.  Component *objects* are stable for the whole run
    # (the measurement-boundary swap replaces only `.stats`); container
    # internals (lists/dicts/deques) are mutated in place everywhere --
    # the single exception is the speculative RAS `_stack`, which
    # `copy_from` reassigns on flush, so only the RAS object is bound.
    # ------------------------------------------------------------------
    params = sim.params

    memory = sim.memory
    mshrs = memory.mshrs
    by_line = mshrs._by_line
    mshr_capacity: int = mshrs.n_entries
    l1i = memory.l1i
    l1i_sets = l1i._sets
    l1i_line_shift: int = l1i._line_shift
    l1i_line_mask: int = l1i._line_mask
    l1i_set_mask: int = l1i._set_mask
    l1i_n_sets: int = l1i.n_sets
    l1i_fill = l1i.fill
    fill_latency = memory._fill_latency
    perfect_mem: bool = memory.perfect
    prefetched_untouched = memory._prefetched_untouched
    tlb = memory.itlb
    tlb_pages = tlb._pages
    tlb_capacity: int = tlb.n_entries
    tlb_page_mask: int = ~(tlb.page_bytes - 1)
    tlb_miss_latency: int = tlb.miss_latency

    ftq = sim.ftq
    entries = ftq._entries
    ftq_capacity: int = ftq.n_entries

    dq = sim.decode_queue
    chunks = dq._chunks
    dq_capacity: int = dq.capacity

    backend = sim.backend
    trainer_advance = backend.trainer.advance
    retire_width: int = backend._retire_width
    on_flush = sim._on_flush

    fetch = sim.fetch
    fetch_width: int = fetch._fetch_width
    probe_width: int = fetch._probe_width
    wrong_path_fills: bool = fetch._wrong_path_fills
    predecode_checks = fetch._predecode_checks
    # _predecode_checks early-returns unless PFC or GHR2/3 fixups are
    # on; gate the call so the common configurations skip it entirely.
    predecode_active: bool = params.frontend.pfc_enabled or fetch.mgr.fixes_not_taken

    bpu = sim.bpu
    ras = bpu.ras
    ras_capacity: int = ras.n_entries
    mgr = bpu.mgr
    hist_mask: int = mgr.mask
    target_history: bool = mgr._target_history
    ideal: bool = mgr._ideal
    push_outcome = mgr.push_outcome
    ideal_pushes = bpu._ideal_pushes
    direction = bpu.direction  # None under perfect_direction
    direction_predict = direction.predict if direction is not None else None
    loop_pred = bpu.loop  # None unless the loop predictor is enabled
    ittage_predict = bpu.ittage.predict
    btb = bpu.btb
    scan_block = btb.scan_block
    two_level_btb: bool = bpu._two_level_btb
    was_l2_sourced = btb.was_l2_sourced if two_level_btb else None
    btb_l2_extra: int = params.branch.btb_l2_extra_latency
    predict_width: int = bpu._predict_width
    max_taken: int = bpu._max_taken
    perfect_btb: bool = bpu._perfect_btb
    perfect_direction: bool = bpu._perfect_direction
    perfect_indirect: bool = bpu._perfect_indirect
    block_mask: int = bpu._block_mask
    block_last_off: int = bpu._block_last
    segments = bpu._segments
    meta_addrs = bpu._meta_addrs
    meta_triples = bpu._meta_triples
    stream = sim.stream
    program = sim.program

    new_entry = FTQEntry.__new__

    # All components share one StatSet; bind its counter dict directly
    # (re-bound after the measurement-boundary swap).
    counters = sim.stats._counters
    measuring: bool = sim._measuring
    committed: int = backend.committed
    cycle: int = sim.cycle

    while committed < target:
        # ---- stage: memory_fill (InstructionMemory.tick inlined) -----
        if by_line:
            fills = [m for m in by_line.values() if m.ready_cycle <= cycle]
            if fills:
                for m in fills:
                    del by_line[m.line]
                if len(fills) > 1:
                    fills.sort(key=_mshr_ready_key)
                for m in fills:
                    line = m.line
                    victim = l1i_fill(line).victim
                    if victim and victim in prefetched_untouched:
                        prefetched_untouched.discard(victim)
                        counters["prefetch_useless"] += 1
                    if m.is_prefetch:
                        counters["prefetch_fill"] += 1
                        prefetched_untouched.add(line)
                # FetchUnit.complete_fills: wake waiting FTQ entries.
                for m in fills:
                    for waiter in m.waiters:
                        if waiter.state == 2:  # STATE_AWAIT_FILL
                            waiter.state = 3  # STATE_READY
                            waiter.way = 0
                            waiter.ready_cycle = cycle

        # ---- stage: backend_retire (Backend.cycle inlined) -----------
        if dq.total_instrs < retire_width:
            counters["starvation_cycles"] += 1
            retire = len(chunks) > 0
        else:
            retire = True
        if retire:
            budget = retire_width
            while budget > 0 and chunks:
                chunk = chunks[0]
                avail = chunk.n - chunk.pos
                take = budget if budget < avail else avail
                fault = chunk.fault
                if fault is not None and chunk.pos <= chunk.fault_index < chunk.pos + take:
                    take = chunk.fault_index - chunk.pos + 1
                    fault_hit = True
                else:
                    fault_hit = False
                if chunk.wrong_path:
                    counters["wrong_path_consumed"] += take
                else:
                    committed += take
                    backend.committed = committed
                    counters["committed_instructions"] += take
                    trainer_advance(take)
                chunk.pos += take
                dq.total_instrs -= take
                if chunk.pos >= chunk.n:
                    chunks.popleft()
                budget -= take
                if fault_hit:
                    counters["branch_mispredictions"] += 1
                    counters["mispredict_" + fault.kind_label] += 1
                    if fault.branch_kind is _COND:
                        counters["cond_mispredictions"] += 1
                    on_flush(fault, cycle)
                    break

        # ---- hook: measure_boundary ----------------------------------
        if not measuring and committed >= warmup:
            sim.cycle = cycle
            sim._begin_measurement()
            measuring = True
            counters = sim.stats._counters

        # ---- stage: fetch (FetchUnit.fetch_stage inlined) ------------
        budget = dq_capacity - dq.total_instrs
        if budget > fetch_width:
            budget = fetch_width
        while budget > 0:
            if not entries:
                break
            head = entries[0]
            if head.state != 3 or head.ready_cycle > cycle:
                if dq.total_instrs < fetch_width:
                    head.starved_while_head = True
                break
            if not head.pfc_checked:
                head.pfc_checked = True
                if predecode_active:
                    predecode_checks(head, cycle)
            consumed = head.consumed
            if consumed == 0 and head.missed:
                # Fig 14 classification (FetchUnit._classify_miss).
                if head.miss_issued_at_head:
                    counters["miss_fully_exposed"] += 1
                elif head.starved_while_head:
                    counters["miss_partially_exposed"] += 1
                else:
                    counters["miss_covered"] += 1
            remaining = ((head.term_addr - head.start) >> 2) + 1 - consumed
            take = budget if budget < remaining else remaining
            # FetchUnit._push_chunk inlined.
            fault = None
            fault_index = -1
            wrong_path = head.cursor_seg == -1  # WRONG_PATH
            head_fault = head.fault
            if head_fault is not None:
                rel = (head_fault.pc - head.start) >> 2
                if consumed <= rel < consumed + take:
                    fault = head_fault
                    fault_index = rel - consumed
                elif consumed > rel:
                    wrong_path = True
            chunks.append(_Chunk(take, fault, fault_index, wrong_path))
            dq.total_instrs += take
            head.consumed = consumed + take
            budget -= take
            if take == remaining:
                del entries[0]
                if ftq.probe_ptr > 0:
                    ftq.probe_ptr -= 1

        # ---- stage: predict (BranchPredictionUnit.cycle inlined) -----
        if cycle >= bpu.stall_until:
            pbudget = predict_width
            taken_budget = max_taken
            while pbudget > 0 and len(entries) < ftq_capacity:
                # _predict_entry inlined.
                start = bpu.pc
                cursor_seg = bpu.cursor_seg
                on_path = cursor_seg != -1
                seg = segments[cursor_seg] if on_path else None
                block_last = (start & block_mask) + block_last_off
                hist = bpu.hist
                hist_snapshot = hist
                detected: list[int] = []
                dir_pushes: list = []
                ras_stack = ras._stack
                ras_top = ras_stack[-1] if ras_stack else None
                pred_taken = False
                pred_target = 0
                term_addr = block_last

                if perfect_btb:
                    lo = bisect_left(meta_addrs, start)
                    hi = bisect_right(meta_addrs, block_last)
                    candidates = meta_triples[lo:hi]
                else:
                    candidates = [
                        (e.addr, e.kind, e.target) for e in scan_block(start, block_last)
                    ]

                for addr, kind, btb_target in candidates:
                    if kind is _COND:
                        override = loop_pred.predict(addr) if loop_pred is not None else None
                        if override is not None:
                            taken = override
                        elif perfect_direction:
                            if seg is not None:
                                taken = (
                                    seg.next_start != 0
                                    and seg.end == addr
                                    and seg.taken_branch is not None
                                )
                            else:
                                taken = False
                        else:
                            taken = direction_predict(addr, hist)
                        detected.append(addr)
                        if not taken:
                            if not target_history and not ideal:
                                hist = (hist << 1) & hist_mask
                                dir_pushes.append((addr, False))
                            continue
                        tgt = btb_target
                    else:
                        detected.append(addr)
                        # _resolve_target inlined: only register-indirect
                        # kinds consult the oracle/ITTAGE; every other
                        # kind takes the BTB target (returns get the RAS
                        # override below).
                        if kind is _INDIRECT or kind is _INDIRECT_CALL:
                            if (
                                perfect_indirect
                                and seg is not None
                                and seg.end == addr
                                and seg.next_start
                            ):
                                tgt = seg.next_start
                            else:
                                predicted_tgt = ittage_predict(addr, hist)
                                tgt = predicted_tgt if predicted_tgt is not None else btb_target
                        else:
                            tgt = btb_target
                    # Taken branch terminates the entry; apply its RAS
                    # effect (ReturnAddressStack push/pop inlined).
                    if kind is _CALL_DIRECT or kind is _INDIRECT_CALL:
                        ras.pushes += 1
                        ras_stack = ras._stack
                        if len(ras_stack) >= ras_capacity:
                            ras_stack.pop(0)
                            ras.overflows += 1
                        ras_stack.append(addr + 4)
                    elif kind is _RETURN:
                        ras.pops += 1
                        ras_stack = ras._stack
                        if ras_stack:
                            tgt = ras_stack.pop()
                        else:
                            ras.underflows += 1
                    if not ideal:
                        # HistoryManager.spec_push(taken) inlined.
                        if target_history:
                            hist = (
                                (hist << TARGET_SHIFT) ^ (addr >> 2) ^ (tgt >> 3)
                            ) & hist_mask
                        else:
                            hist = ((hist << 1) | 1) & hist_mask
                            dir_pushes.append((addr, True))
                    pred_taken = True
                    pred_target = tgt
                    term_addr = addr
                    counters["bpu_taken_predictions"] += 1
                    break

                if ideal:
                    if on_path:
                        hist = ideal_pushes(seg, start, term_addr, hist, dir_pushes)
                    else:
                        for d_addr in detected:
                            bit = d_addr == term_addr and pred_taken
                            hist = push_outcome(hist, d_addr, bit, pred_target)
                            dir_pushes.append((d_addr, bit))

                detected_upto = tuple(detected)
                fault = None
                cont_seg = -1
                if on_path:
                    fault, cont_seg = compute_fault(
                        stream,
                        cursor_seg,
                        start,
                        term_addr,
                        pred_taken,
                        pred_target,
                        detected_upto,
                        program,
                    )

                # FTQEntry construction without __init__/__post_init__
                # (bounds are aligned by construction here).
                entry = new_entry(FTQEntry)
                entry.uid = bpu._uid
                entry.start = start
                entry.term_addr = term_addr
                entry.pred_taken = pred_taken
                entry.pred_target = pred_target
                entry.hist_snapshot = hist_snapshot
                entry.detected = detected_upto
                entry.dir_pushes = tuple(dir_pushes)
                entry.ras_top = ras_top
                entry.cursor_seg = cursor_seg if on_path else -1
                entry.fault = fault
                entry.state = 1  # STATE_AWAIT_PROBE
                entry.way = -1
                entry.ready_cycle = -1
                entry.consumed = 0
                entry.missed = False
                entry.miss_issued_at_head = False
                entry.starved_while_head = False
                entry.pfc_checked = False
                bpu._uid += 1
                bpu.hist = hist
                bpu.pc = pred_target if pred_taken else term_addr + 4
                if not on_path or fault is not None:
                    bpu.cursor_seg = -1
                else:
                    bpu.cursor_seg = cont_seg

                entries.append(entry)
                counters["ftq_entries_created"] += 1
                pbudget -= ((term_addr - start) >> 2) + 1
                if pred_taken:
                    if two_level_btb and was_l2_sourced(term_addr):
                        counters["btb_l2_taken_predictions"] += 1
                        until = cycle + 1 + btb_l2_extra
                        if until > bpu.stall_until:
                            bpu.stall_until = until
                        break
                    taken_budget -= 1
                    if taken_budget <= 0:
                        break

        # ---- stage: probe (FetchUnit.probe_stage inlined) ------------
        n = len(entries)
        pp = ftq.probe_ptr
        while pp < n and entries[pp].state != 1:
            pp += 1
        ftq.probe_ptr = pp
        if pp < n:
            probes = probe_width
            idx = pp
            while idx < n and probes > 0:
                entry = entries[idx]
                if entry.state == 1:
                    if not wrong_path_fills and entry.cursor_seg == -1:
                        # Ablation: wrong-path entries consume no memory
                        # bandwidth.
                        entry.state = 3
                        entry.ready_cycle = cycle + 1
                        entry.way = 0
                    else:
                        probes -= 1
                        # InstructionMemory.demand_probe inlined:
                        # TLB.translate ...
                        addr = entry.start
                        page = addr & tlb_page_mask
                        if page in tlb_pages:
                            tlb_pages.move_to_end(page)
                            tlb.hits += 1
                            tlb_lat = 0
                        else:
                            tlb.misses += 1
                            if len(tlb_pages) >= tlb_capacity:
                                tlb_pages.popitem(last=False)
                            tlb_pages[page] = None
                            tlb_lat = tlb_miss_latency
                        counters["l1i_tag_access"] += 1
                        # ... then Cache.probe.
                        line = addr & l1i_line_mask
                        l1i.tag_probes += 1
                        set_shift = addr >> l1i_line_shift
                        if l1i_set_mask >= 0:
                            set_idx = set_shift & l1i_set_mask
                        else:
                            set_idx = set_shift % l1i_n_sets
                        ways = l1i_sets[set_idx]
                        way = -1
                        if ways:
                            if ways[0] == line:  # MRU fast path
                                way = 0
                            else:
                                w = 1
                                n_ways = len(ways)
                                while w < n_ways:
                                    if ways[w] == line:
                                        way = w
                                        del ways[w]
                                        ways.insert(0, line)
                                        break
                                    w += 1
                        if way >= 0:
                            l1i.hits += 1
                            counters["l1i_hit"] += 1
                            if line in prefetched_untouched:
                                prefetched_untouched.discard(line)
                                counters["prefetch_useful"] += 1
                            entry.state = 3
                            entry.way = way
                            entry.ready_cycle = cycle + tlb_lat + 1
                        else:
                            l1i.misses += 1
                            counters["l1i_tag_miss"] += 1
                            if perfect_mem:
                                counters["l1i_miss"] += 1
                                l1i_fill(addr)
                                counters["memory_requests"] += 1
                                entry.state = 3
                                entry.way = 0
                                entry.ready_cycle = cycle + tlb_lat + 1
                            else:
                                inflight = by_line.get(line)
                                if inflight is not None:
                                    # Secondary miss: merge into the
                                    # outstanding fill (MSHR allocate).
                                    primary = inflight.is_prefetch
                                    if primary:
                                        counters["prefetch_late"] += 1
                                        counters["l1i_miss"] += 1
                                    else:
                                        counters["l1i_miss_secondary"] += 1
                                    mshrs.merges += 1
                                    inflight.is_prefetch = False
                                    inflight.waiters.append(entry)
                                    entry.state = 2  # STATE_AWAIT_FILL
                                    entry.missed = primary
                                    entry.miss_issued_at_head = primary and idx == 0
                                elif len(by_line) >= mshr_capacity:
                                    counters["mshr_stall"] += 1
                                    counters["probe_retry"] += 1
                                    entry.missed = True
                                else:
                                    counters["l1i_miss"] += 1
                                    mshr = MSHREntry(
                                        line=line,
                                        issue_cycle=cycle,
                                        ready_cycle=cycle + tlb_lat + fill_latency(line),
                                        is_prefetch=False,
                                    )
                                    mshr.waiters.append(entry)
                                    by_line[line] = mshr
                                    mshrs.allocations += 1
                                    occ = len(by_line)
                                    if occ > mshrs.peak_occupancy:
                                        mshrs.peak_occupancy = occ
                                    entry.state = 2  # STATE_AWAIT_FILL
                                    entry.missed = True
                                    entry.miss_issued_at_head = idx == 0
                idx += 1

        # ---- hook: idle_skip + fetch-bandwidth drain -----------------
        # Mirrors the schedule's idle_skip hook exactly (see
        # repro.core.schedule), including the drain extension: when the
        # earliest wake event is known and the decode queue still holds
        # fault-free chunks, the retire-only cycles in between are
        # compressed (Simulator._drain_to inlined).
        if committed < target:
            head_entry = entries[0] if entries else None
            wake = 0
            if head_entry is None:
                wake = guard + 1
            elif head_entry.state == 2:  # AWAIT_FILL: woken by an MSHR completion
                wake = guard + 1
            elif head_entry.state == 3 and head_entry.ready_cycle > cycle + 1:
                wake = head_entry.ready_cycle
            if wake:
                if len(entries) < ftq_capacity:
                    stall_until = bpu.stall_until
                    if stall_until <= cycle + 1:
                        wake = 0  # the BPU can predict next cycle
                    elif stall_until < wake:
                        wake = stall_until
                if wake:
                    for e in entries:
                        if e.state == 1:  # AWAIT_PROBE: probe acts next cycle
                            wake = 0
                            break
            if wake:
                if by_line:
                    next_fill = min(m.ready_cycle for m in by_line.values())
                    if next_fill < wake:
                        wake = next_fill
                if wake > guard + 1:
                    wake = guard + 1
            if wake > cycle + 1:
                if not chunks:
                    counters["starvation_cycles"] += wake - cycle - 1
                    cycle = wake - 1
                else:
                    fault_free = True
                    for chunk in chunks:
                        if chunk.fault is not None:
                            fault_free = False
                            break
                    if fault_free:
                        # Drain: only the backend acts until `wake`; no
                        # flush is possible, so retire cycle-by-cycle
                        # (take-splitting and per-cycle starvation
                        # accounting replicated exactly) without running
                        # the no-op frontend stages.
                        c = cycle
                        end = wake - 1
                        while c < end:
                            c += 1
                            if dq.total_instrs < retire_width:
                                counters["starvation_cycles"] += 1
                            budget = retire_width
                            while budget > 0 and chunks:
                                chunk = chunks[0]
                                avail = chunk.n - chunk.pos
                                take = budget if budget < avail else avail
                                if chunk.wrong_path:
                                    counters["wrong_path_consumed"] += take
                                else:
                                    committed += take
                                    backend.committed = committed
                                    counters["committed_instructions"] += take
                                    trainer_advance(take)
                                chunk.pos += take
                                dq.total_instrs -= take
                                if chunk.pos >= chunk.n:
                                    chunks.popleft()
                                budget -= take
                            if not measuring and committed >= warmup:
                                sim.cycle = c
                                sim._begin_measurement()
                                measuring = True
                                counters = sim.stats._counters
                            # Fetch's starved flag: only when fetch would
                            # have run (free decode slots) and found too
                            # few banked instructions.
                            if (
                                head_entry is not None
                                and dq.total_instrs < dq_capacity
                                and dq.total_instrs < fetch_width
                            ):
                                head_entry.starved_while_head = True
                            if committed >= target:
                                break
                            if not chunks:
                                rem = end - c
                                if rem > 0:
                                    counters["starvation_cycles"] += rem
                                    if head_entry is not None:
                                        head_entry.starved_while_head = True
                                c = end
                                break
                        cycle = c

        # ---- hook: livelock_guard ------------------------------------
        cycle += 1
        if cycle > guard:
            sim.cycle = cycle
            raise sim._livelock_error(target)

    sim.cycle = cycle
