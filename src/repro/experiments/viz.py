"""Dependency-free ASCII visualisation for experiment output.

The benchmark tables are exact but shapes are easier to eyeball as
bars.  ``bar_chart`` renders labelled horizontal bars; ``series`` plots
a sweep (e.g. Fig 7's PFC gain vs BTB size) as aligned columns.  Used by
``python -m repro report --plot`` and the plotting script.
"""

from __future__ import annotations

from collections.abc import Sequence

_BAR = "#"
_WIDTH = 48


def bar_chart(
    title: str,
    items: Sequence[tuple[str, float]],
    unit: str = "%",
    width: int = _WIDTH,
) -> str:
    """Render labelled horizontal bars, scaled to the largest magnitude.

    Negative values render with ``-`` bars so regressions stand out.
    """
    if not items:
        raise ValueError("nothing to plot")
    label_w = max(len(label) for label, _ in items)
    peak = max(abs(v) for _, v in items) or 1.0
    lines = [f"== {title} =="]
    for label, value in items:
        n = round(abs(value) / peak * width)
        bar = (_BAR if value >= 0 else "-") * n
        lines.append(f"{label.ljust(label_w)} | {bar} {value:+.1f}{unit}")
    return "\n".join(lines)


def series(
    title: str,
    x_values: Sequence[object],
    rows: dict[str, Sequence[float]],
    height: int = 10,
) -> str:
    """Plot one or more numeric series over shared x values.

    Each series gets a glyph; columns align with x labels underneath.
    """
    if not rows:
        raise ValueError("nothing to plot")
    n = len(x_values)
    for name, ys in rows.items():
        if len(ys) != n:
            raise ValueError(f"series {name!r} length mismatch")
    glyphs = "*o+x@%"
    all_vals = [v for ys in rows.values() for v in ys]
    lo, hi = min(all_vals), max(all_vals)
    span = (hi - lo) or 1.0

    grid = [[" "] * n for _ in range(height)]
    for si, (name, ys) in enumerate(rows.items()):
        glyph = glyphs[si % len(glyphs)]
        for i, v in enumerate(ys):
            row = height - 1 - round((v - lo) / span * (height - 1))
            cell = grid[row][i]
            grid[row][i] = glyph if cell == " " else "&"

    col_w = max(max(len(str(x)) for x in x_values), 3) + 1
    lines = [f"== {title} ==", f"max {hi:.1f}"]
    for row in grid:
        lines.append("  " + "".join(c.ljust(col_w) for c in row))
    lines.append(f"min {lo:.1f}")
    lines.append("  " + "".join(str(x).ljust(col_w) for x in x_values))
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(rows)
    )
    lines.append(f"legend: {legend}  (&=overlap)")
    return "\n".join(lines)


def chart_for_experiment(data: dict) -> str | None:
    """Best-effort chart for a figure dict (label + one numeric column)."""
    rows = data.get("rows") or []
    if not rows:
        return None
    numeric_cols = [
        i
        for i in range(1, len(rows[0]))
        if all(isinstance(r[i], (int, float)) for r in rows)
    ]
    if not numeric_cols:
        return None
    col = numeric_cols[0]
    items = [(str(r[0]), float(r[col])) for r in rows]
    unit = "%" if "%" in str(data.get("headers", ["", ""])[col]) else ""
    return bar_chart(data["title"], items, unit=unit)
