"""Sweep scheduler: sharded, resumable execution of declarative specs.

:func:`run_sweep` executes one shard (default ``1/1``) of a parsed
:class:`~repro.experiments.spec.SweepSpec`:

* the expansion's shard subset goes through the ordinary cached runner
  (:func:`repro.experiments.runner.run_points`), so already-cached
  points resolve instantly -- **resumability and multi-machine
  distribution fall out of the content-addressed cache**: point a
  shared directory (``REPRO_CACHE_DIR``) at any shared filesystem and
  every shard/machine/retry skips everything any other already did;
* with ``REPRO_LEDGER`` set, every job is journalled through the run
  ledger with the sweep name and ``shard``/``shard_total`` stamped
  into each event;
* the shard's rows are written to a deterministic per-shard manifest
  (``shard-<k>-of-<N>.json``; no timestamps, so equal results mean
  equal bytes);
* when every sibling shard manifest exists, the shard outputs are
  merged into the figure-ready table (``table.csv`` / ``table.json`` /
  ``table.md``), rows sorted by point ID.  :func:`merge_sweep` can also
  be invoked on its own (``repro sweep spec.yaml --merge``).

Merging refuses to produce a table from inconsistent inputs: shard
manifests must agree on the spec fingerprint and shard total, cover
every expansion point exactly once, and contain no stranger points.
The differential harness (:mod:`repro.check.sweepdiff`) is built on the
guarantee this enforces: serial, parallel, any shard partition, and
interrupted-then-resumed executions of one spec produce bit-identical
merged tables.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.log import get_logger
from repro.experiments.cache import CACHE_STATS, ResultCache, cache_enabled
from repro.experiments.report import render_table
from repro.experiments.runner import run_points
from repro.experiments.spec import (
    SWEEP_SPEC_VERSION,
    SweepPoint,
    SweepSpec,
    SweepSpecError,
    metric_value,
    shard_points,
)

log = get_logger("experiments.sweep")

MERGED_BASENAME = "table"
"""Stem of the merged output files (``table.csv`` etc.)."""


def default_sweep_dir(spec: SweepSpec) -> Path:
    """Spec-declared output directory, else ``results/sweeps/<name>``."""
    if spec.out_dir:
        return Path(spec.out_dir)
    return Path(__file__).resolve().parents[3] / "results" / "sweeps" / spec.name


def shard_path(out_dir: Path, shard: int, total: int) -> Path:
    return Path(out_dir) / f"shard-{shard}-of-{total}.json"


@dataclass
class SweepOutcome:
    """What one ``run_sweep`` call did (CLI summary + test surface)."""

    spec: SweepSpec
    shard: tuple[int, int]
    points_total: int
    points_shard: int
    executed: int
    cache_hits: int
    rows: list[dict]
    shard_file: Path | None
    merged_files: list[Path] = field(default_factory=list)
    interrupted: bool = False


def _row(point: SweepPoint, result, metrics: tuple[str, ...]) -> dict:
    """One deterministic table row (point identity + axes + metrics)."""
    row = {
        "point": point.point_id,
        "workload": point.workload,
        "config": point.label,
    }
    for key, value in point.settings:
        row[key] = value
    for metric in metrics:
        row[metric] = metric_value(result, metric)
    return row


def _write_atomic(path: Path, text: str) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}")
    tmp.write_text(text)
    tmp.replace(path)
    return path


def run_sweep(
    spec: SweepSpec,
    points: list[SweepPoint],
    shard: tuple[int, int] = (1, 1),
    jobs: int | None = None,
    out_dir: Path | str | None = None,
    resume: bool = False,
    limit: int | None = None,
    merge: bool = True,
) -> SweepOutcome:
    """Execute one shard of an expanded spec; see the module docstring.

    ``limit`` truncates the shard to its first N points and suppresses
    the shard manifest -- a deterministic stand-in for a sweep killed
    mid-flight (results of completed points are already in the cache;
    nothing else is recorded), which the resume tests and the
    differential harness use as their interruption injection.
    """
    k, total = shard
    owned = shard_points(points, k, total)
    selected = owned if limit is None else owned[: max(0, limit)]
    interrupted = limit is not None and len(selected) < len(owned)

    if resume and cache_enabled():
        disk = ResultCache()
        already = sum(1 for p in selected if disk.contains(p.point_id))
        log.info(
            "resume: %d of %d shard point(s) already in the result cache",
            already,
            len(selected),
        )

    hits_before = CACHE_STATS.get("cache_memo_hit") + CACHE_STATS.get("cache_disk_hit")
    sims_before = CACHE_STATS.get("sim_runs")
    results = run_points(
        ((p.workload, p.params) for p in selected),
        jobs=jobs,
        ledger_context={
            "spec": spec.name,
            "shard": k,
            "shard_total": total,
            "resumed": bool(resume),
        },
    )
    cache_hits = (
        CACHE_STATS.get("cache_memo_hit") + CACHE_STATS.get("cache_disk_hit") - hits_before
    )
    executed = CACHE_STATS.get("sim_runs") - sims_before

    rows = [_row(p, results[p.point_id], spec.metrics) for p in selected]
    outcome = SweepOutcome(
        spec=spec,
        shard=shard,
        points_total=len(points),
        points_shard=len(owned),
        executed=executed,
        cache_hits=cache_hits,
        rows=rows,
        shard_file=None,
        interrupted=interrupted,
    )
    if interrupted:
        log.warning(
            "sweep interrupted after %d of %d point(s); no shard manifest written "
            "(re-run with --resume to finish from the cache)",
            len(selected),
            len(owned),
        )
        return outcome

    out_dir = Path(out_dir) if out_dir is not None else default_sweep_dir(spec)
    manifest = {
        "sweep_schema": SWEEP_SPEC_VERSION,
        "spec": spec.name,
        "spec_fingerprint": spec.fingerprint(),
        "shard": k,
        "shard_total": total,
        "points": [p.point_id for p in selected],
        "rows": rows,
    }
    outcome.shard_file = _write_atomic(
        shard_path(out_dir, k, total),
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
    )
    if merge:
        siblings = [shard_path(out_dir, i, total) for i in range(1, total + 1)]
        if all(p.is_file() for p in siblings):
            outcome.merged_files = merge_sweep(spec, points, out_dir)
        else:
            missing = sum(1 for p in siblings if not p.is_file())
            log.info(
                "shard %d/%d done; %d sibling shard(s) still missing, merge deferred",
                k,
                total,
                missing,
            )
    return outcome


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
def _load_shards(spec: SweepSpec, out_dir: Path) -> list[dict]:
    manifests = []
    for path in sorted(Path(out_dir).glob("shard-*-of-*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SweepSpecError(f"unreadable shard manifest {path}: {exc}") from exc
        if not isinstance(payload, dict) or "rows" not in payload:
            raise SweepSpecError(f"{path} is not a shard manifest")
        payload["_path"] = str(path)
        manifests.append(payload)
    if not manifests:
        raise SweepSpecError(f"no shard manifests under {out_dir}")
    fingerprints = {m.get("spec_fingerprint") for m in manifests}
    if len(fingerprints) != 1 or fingerprints != {spec.fingerprint()}:
        raise SweepSpecError(
            "shard manifests disagree with the spec (stale outputs from an "
            "edited spec?); delete the output directory and re-run"
        )
    totals = {m.get("shard_total") for m in manifests}
    if len(totals) != 1:
        raise SweepSpecError(
            f"mixed shard totals {sorted(totals)} under {out_dir}; "
            "clean out stale shard files before merging"
        )
    total = manifests[0]["shard_total"]
    expected_shards = set(range(1, total + 1))
    got = {m.get("shard") for m in manifests}
    if got != expected_shards:
        missing = sorted(expected_shards - got)
        raise SweepSpecError(
            f"incomplete shard set for N={total}: missing shard(s) "
            f"{', '.join(map(str, missing))}"
        )
    return manifests


def merge_sweep(
    spec: SweepSpec, points: list[SweepPoint], out_dir: Path | str
) -> list[Path]:
    """Join per-shard manifests into the merged, figure-ready table.

    Validates full coverage before writing anything: the union of shard
    point sets must equal the expansion exactly -- no point missing, no
    point twice, no stranger points -- and every shard must carry the
    same spec fingerprint and shard total.  Outputs are deterministic
    (rows sorted by point ID, no timestamps): equal results always
    produce byte-identical ``table.csv`` / ``table.json`` / ``table.md``.
    """
    out_dir = Path(out_dir)
    manifests = _load_shards(spec, out_dir)

    expected = {p.point_id for p in points}
    seen: dict[str, str] = {}
    rows: list[dict] = []
    for manifest in manifests:
        for row in manifest["rows"]:
            pid = row["point"]
            if pid in seen:
                raise SweepSpecError(
                    f"point {pid[:16]} appears in both {seen[pid]} and "
                    f"{manifest['_path']} -- shards must be disjoint"
                )
            seen[pid] = manifest["_path"]
            rows.append(row)
    strangers = set(seen) - expected
    if strangers:
        raise SweepSpecError(
            f"{len(strangers)} point(s) in shard manifests are not part of "
            "this spec's expansion; stale outputs from an edited spec?"
        )
    missing = expected - set(seen)
    if missing:
        raise SweepSpecError(
            f"{len(missing)} expansion point(s) missing from shard manifests "
            "(incomplete shard run?)"
        )

    rows.sort(key=lambda r: r["point"])
    columns = ["point", "workload", "config", *spec.axes, *spec.metrics]
    payload = {
        "sweep_schema": SWEEP_SPEC_VERSION,
        "spec": spec.name,
        "spec_fingerprint": spec.fingerprint(),
        "points": len(rows),
        "columns": columns,
        "rows": rows,
    }
    written = [
        _write_atomic(
            out_dir / f"{MERGED_BASENAME}.json",
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        ),
        _write_atomic(out_dir / f"{MERGED_BASENAME}.csv", _render_csv(columns, rows)),
        _write_atomic(
            out_dir / f"{MERGED_BASENAME}.md",
            render_table(
                f"Sweep {spec.name} ({len(rows)} points)",
                columns,
                [[row.get(c, "") for c in columns] for row in rows],
            )
            + "\n",
        ),
    ]
    log.info("merged %d shard(s) -> %s", len(manifests), written[0].parent)
    return written


def _csv_cell(value) -> str:
    """Deterministic CSV cell: shortest round-trip repr for floats."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    text = str(value)
    if any(ch in text for ch in (",", '"', "\n")):
        text = '"' + text.replace('"', '""') + '"'
    return text


def _render_csv(columns: list[str], rows: list[dict]) -> str:
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(_csv_cell(row.get(c, "")) for c in columns))
    return "\n".join(lines) + "\n"
