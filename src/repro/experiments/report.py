"""Plain-text table rendering for experiment output.

The benchmark harness prints each reproduced table/figure as an ASCII
table comparable, row for row, with the paper's charts.
:func:`render_trace_report` turns one telemetry summary (``repro
trace``) into a markdown report.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Render rows as a fixed-width table with a title banner."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        f"== {title} ==",
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def pct(x: float) -> str:
    """Format a speedup ratio as a percent-improvement string."""
    return f"{100.0 * (x - 1.0):+.1f}%"


def _md_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> list[str]:
    """Render a GitHub-flavoured markdown table as a list of lines."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_fmt(c) for c in row) + " |")
    return lines


def render_trace_report(summary: dict) -> str:
    """Render one telemetry summary (``Telemetry.summary``) as markdown.

    Sections: run header, top-down cycle accounting, prefetch
    usefulness, FDP miss exposure, event histogram.  See
    ``docs/OBSERVABILITY.md`` for how to read each one.
    """
    lines = [
        f"# Trace report: {summary['workload']}",
        "",
        f"- configuration: `{summary['label']}`",
        f"- instructions: {summary['instructions']:,}",
        f"- cycles: {summary['cycles']:,}",
        f"- IPC: {summary['ipc']:.3f}",
        "",
    ]

    accounting = summary.get("cycle_accounting") or {}
    if accounting:
        fractions = summary.get("cycle_accounting_fraction", {})
        lines.append("## Cycle accounting (top-down, sums to total cycles)")
        lines.append("")
        lines += _md_table(
            ["bucket", "cycles", "share"],
            [
                (name, count, f"{100.0 * fractions.get(name, 0.0):.1f}%")
                for name, count in accounting.items()
            ],
        )
        lines.append("")

    prefetch = summary.get("prefetch") or {}
    if prefetch.get("issued"):
        lines.append("## Prefetch usefulness (terminal states, full run)")
        lines.append("")
        lines += _md_table(
            ["state", "count"],
            [
                (name, prefetch[name])
                for name in (
                    "issued",
                    "timely",
                    "late",
                    "unused_evicted",
                    "in_flight_at_end",
                    "resident_untouched_at_end",
                    "redundant_unissued",
                )
            ],
        )
        lines.append("")
        lines.append(
            f"accuracy {100.0 * prefetch['accuracy']:.1f}% | "
            f"coverage {100.0 * prefetch['coverage']:.1f}% | "
            f"timeliness {100.0 * prefetch['timeliness']:.1f}%"
        )
        lines.append("")

    exposure = summary.get("fdp_miss_exposure") or {}
    if any(exposure.values()):
        lines.append("## FDP miss exposure (Fig 14 classification)")
        lines.append("")
        lines += _md_table(["class", "misses"], sorted(exposure.items()))
        lines.append("")

    events = summary.get("events") or {}
    if events:
        lines.append("## Event trace")
        lines.append("")
        lines.append(
            f"{events['emitted']:,} events emitted, {events['retained']:,} retained "
            f"(ring capacity {events['capacity']:,}, {events['dropped']:,} overwritten)"
        )
        lines.append("")
        lines += _md_table(["event", "count"], sorted(events.get("by_kind", {}).items()))
        lines.append("")

    lines.append(f"interval samples: {summary.get('samples', 0)}")
    return "\n".join(lines) + "\n"
