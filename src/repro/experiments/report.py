"""Plain-text table rendering for experiment output.

The benchmark harness prints each reproduced table/figure as an ASCII
table comparable, row for row, with the paper's charts.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Render rows as a fixed-width table with a title banner."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        f"== {title} ==",
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def pct(x: float) -> str:
    """Format a speedup ratio as a percent-improvement string."""
    return f"{100.0 * (x - 1.0):+.1f}%"
