"""Cached simulation runner and aggregation helpers.

Every figure shares the same baselines, so results are memoised by
(workload, parameters) within the process.  Aggregation follows the
paper's reporting (Section V): geometric mean for IPC speedups,
arithmetic mean for per-kilo-instruction metrics.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.common.params import SimParams
from repro.common.stats import amean, geomean
from repro.core.metrics import RunResult
from repro.core.simulator import simulate

_CACHE: dict[tuple[str, SimParams], RunResult] = {}


def run_config(workload: str, params: SimParams) -> RunResult:
    """Simulate (memoised) one workload under one configuration."""
    key = (workload, params)
    result = _CACHE.get(key)
    if result is None:
        result = simulate(workload, params)
        _CACHE[key] = result
    return result


def clear_cache() -> None:
    """Drop memoised results (tests use this for isolation)."""
    _CACHE.clear()


def cache_size() -> int:
    """Number of memoised (workload, params) results."""
    return len(_CACHE)


def run_matrix(
    configs: Mapping[str, SimParams],
    workloads: Iterable[str],
) -> dict[str, dict[str, RunResult]]:
    """Run every (config, workload) pair; returns results[label][workload]."""
    out: dict[str, dict[str, RunResult]] = {}
    for label, params in configs.items():
        out[label] = {wl: run_config(wl, params) for wl in workloads}
    return out


def geomean_speedup(
    results: Mapping[str, Mapping[str, RunResult]],
    label: str,
    baseline_label: str,
) -> float:
    """Geometric-mean IPC speedup of ``label`` over ``baseline_label``."""
    rows = results[label]
    base = results[baseline_label]
    return geomean([rows[wl].ipc / base[wl].ipc for wl in rows])


def mean_metric(
    results: Mapping[str, Mapping[str, RunResult]],
    label: str,
    metric: str,
) -> float:
    """Arithmetic mean of a :class:`RunResult` property across workloads."""
    rows = results[label]
    return amean([getattr(r, metric) for r in rows.values()])
