"""Cached simulation runner and aggregation helpers.

Every figure shares the same baselines, so results are memoised at two
levels: an in-process dict and the persistent on-disk cache
(:mod:`repro.experiments.cache`).  Both are keyed by the same stable
content hash of ``(workload, SimParams)``, so equal-but-distinct
parameter objects built via ``dataclasses.replace`` always hit.

:func:`run_matrix` fans uncached (workload, configuration) points
across a ``concurrent.futures.ProcessPoolExecutor``; the simulator is
deterministic by seed, so parallel results are bit-identical to serial
ones.  Worker count comes from ``REPRO_JOBS`` (default
``os.cpu_count()``; ``1`` keeps everything in-process).

Aggregation follows the paper's reporting (Section V): geometric mean
for IPC speedups, arithmetic mean for per-kilo-instruction metrics.
"""

from __future__ import annotations

import os
import time
from collections.abc import Iterable, Mapping
from concurrent.futures import ProcessPoolExecutor, as_completed

from repro.common.ledger import open_ledger
from repro.common.log import configure as configure_logging
from repro.common.log import current_level_name, get_logger
from repro.common.params import WARMUP_MODES, SimParams
from repro.common.stats import amean, geomean
from repro.core.batch import batchable, simulate_batch
from repro.core.build import resolve_components
from repro.core.metrics import RunResult
from repro.core.simulator import simulate
from repro.core.typed import resolve_kernel_mode as _resolve_kernel_env
from repro.core.typed import typed_eligible
from repro.experiments.cache import CACHE_STATS, ResultCache, cache_enabled, run_key
from repro.experiments.configs import repro_jobs
from repro.trace.workloads import make_trace

_CACHE: dict[str, RunResult] = {}
"""In-process memo, keyed by the stable content hash (run_key)."""

DEFAULT_BATCH_WIDTH = 8
"""Upper bound on lockstep batch size formed by the sweep runner; keeps
one pool worker from hoarding a whole workload's points while the rest
idle, and bounds per-worker memory."""

log = get_logger("experiments.runner")


def _disk() -> ResultCache | None:
    return ResultCache() if cache_enabled() else None


def batching_enabled() -> bool:
    """Whether the sweep runner groups cache-miss jobs into batches.

    On by default; ``REPRO_BATCH=0`` forces the scalar path (useful to
    bisect a suspected batching problem, and what the equivalence tests
    toggle).
    """
    raw = os.environ.get("REPRO_BATCH", "1").strip().lower()
    return raw not in ("0", "false", "no")


def batch_width() -> int:
    """Maximum lockstep batch size (``REPRO_BATCH_WIDTH`` overrides)."""
    raw = os.environ.get("REPRO_BATCH_WIDTH", "").strip()
    return max(2, int(raw)) if raw else DEFAULT_BATCH_WIDTH


def _peak_rss_kib() -> int | None:
    """This process's peak resident-set size in KiB (None if unavailable)."""
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ImportError, OSError):  # pragma: no cover - non-POSIX platform
        return None


def _unit_meta(started_ts: float, wall: float, instructions: int) -> dict:
    """Execution metadata one work unit reports back to the parent.

    Feeds the run ledger (``started``/``finished`` events) and the
    provenance manifests the disk cache writes alongside results.
    """
    return {
        "pid": os.getpid(),
        "started_ts": started_ts,
        "wall_seconds": wall,
        "instructions": instructions,
        "peak_rss_kib": _peak_rss_kib(),
    }


def _simulate_unit(
    workload: str, params_list: list[SimParams]
) -> tuple[list[RunResult], dict]:
    """Worker entry point: one work unit (top-level for pickling).

    A unit is either one scalar simulation (``len(params_list) == 1``)
    or one lockstep batch; either way it returns the results in input
    order plus the unit's execution metadata.
    """
    started_ts = time.time()
    t0 = time.perf_counter()
    if len(params_list) == 1:
        results = [simulate(workload, params_list[0])]
    else:
        results = simulate_batch(workload, params_list)
    wall = time.perf_counter() - t0
    total = sum(p.warmup_instructions + p.sim_instructions for p in params_list)
    return results, _unit_meta(started_ts, wall, total)


def _pool_worker_init(log_level: str) -> None:
    """Pool-worker initializer: inherit the parent's logging config.

    Workers spawned by ``ProcessPoolExecutor`` start with unconfigured
    logging on spawn-based platforms (and would silently drop
    ``--log-level debug`` diagnostics); the parent threads its effective
    level through so worker-side messages surface identically.
    """
    configure_logging(log_level)


def resolve_warmup_mode(params: SimParams) -> SimParams:
    """Resolve ``warmup_mode="auto"`` for sweep execution.

    The sweep runner defaults to functional fast-forward warmup
    (``REPRO_WARMUP_MODE`` overrides, e.g. ``cycle`` to recover the old
    behaviour).  Resolution happens *before* cache keys are computed,
    so cached results are always tagged with the concrete mode and the
    two modes never share entries.  Explicit modes pass through.
    """
    if params.warmup_mode != "auto":
        return params
    mode = os.environ.get("REPRO_WARMUP_MODE", "functional").strip().lower()
    if mode == "auto" or mode not in WARMUP_MODES:
        raise ValueError(
            f"REPRO_WARMUP_MODE must be 'cycle' or 'functional', got {mode!r}"
        )
    return params.replace(warmup_mode=mode)


def resolve_check_mode(params: SimParams) -> SimParams:
    """Apply the ``REPRO_CHECK`` invariant-checking override.

    ``REPRO_CHECK=1`` forces every sweep simulation to run with the
    runtime invariant layer on (``SimParams.check_invariants``) -- a
    whole-experiment self-check mode.  Like warmup-mode resolution this
    happens *before* cache keys are computed; checked runs are
    bit-identical to unchecked ones but never share cache entries, so a
    checked sweep actually re-executes every point under the checker.
    """
    raw = os.environ.get("REPRO_CHECK", "").strip().lower()
    if raw in ("", "0", "false", "no"):
        return params
    if raw not in ("1", "true", "yes"):
        raise ValueError(f"REPRO_CHECK must be a boolean flag, got {raw!r}")
    if params.check_invariants:
        return params
    return params.replace(check_invariants=True)


def resolve_kernel_mode(params: SimParams) -> SimParams:
    """Resolve ``kernel="auto"`` for sweep execution.

    ``auto`` defers to the ``REPRO_KERNEL`` environment variable and
    defaults to ``typed`` (:func:`repro.core.typed.resolve_kernel_mode`).
    Like warmup-mode and check-mode resolution this happens *before*
    cache keys are computed, so every cached result is tagged with the
    concrete backend choice that produced it -- the two backends are
    bit-identical by contract, but a forced ``interp`` sweep must
    actually run the interpreted kernel.  Explicit modes pass through.
    """
    resolved = _resolve_kernel_env(params.kernel)
    if resolved == params.kernel:
        return params
    return params.replace(kernel=resolved)


def _resolve(params: SimParams) -> SimParams:
    """All environment overrides, in cache-key order.

    Also resolves every registry-named component up front, so an
    unknown prefetcher/predictor/BTB-variant name fails fast in the
    submitting process instead of inside a sweep worker.
    """
    resolve_components(params)
    return resolve_kernel_mode(resolve_check_mode(resolve_warmup_mode(params)))


def run_config(workload: str, params: SimParams) -> RunResult:
    """Simulate (memoised + disk-cached) one workload configuration."""
    params = _resolve(params)
    key = run_key(workload, params)
    result = _CACHE.get(key)
    if result is not None:
        CACHE_STATS.bump("cache_memo_hit")
        return result
    disk = _disk()
    if disk is not None:
        result = disk.get(key)
        if result is not None:
            _CACHE[key] = result
            return result
    CACHE_STATS.bump("sim_runs")
    results, meta = _simulate_unit(workload, [params])
    result = results[0]
    _CACHE[key] = result
    if disk is not None:
        disk.put(key, result, meta=_manifest_meta(meta, unit_size=1))
    return result


def clear_cache() -> None:
    """Drop memoised results (tests use this for isolation).

    Only the in-process memo is dropped; the on-disk cache is managed
    separately (``repro cache clear`` / :class:`ResultCache.clear`).
    """
    _CACHE.clear()


def cache_size() -> int:
    """Number of memoised (workload, params) results."""
    return len(_CACHE)


def _workload_name(workload) -> str:
    """Catalogue name of a workload argument (string or explicit spec)."""
    return workload if isinstance(workload, str) else workload.name


def _manifest_meta(meta: dict, unit_size: int) -> dict:
    """Provenance-manifest fields derived from one unit's execution meta."""
    return {
        "wall_seconds": meta["wall_seconds"],
        "peak_rss_kib": meta["peak_rss_kib"],
        "worker_pid": meta["pid"],
        "batched": unit_size > 1,
        "unit_size": unit_size,
    }


def run_points(
    points: Iterable[tuple[str, SimParams]],
    jobs: int | None = None,
    ledger_context: dict | None = None,
) -> dict[str, RunResult]:
    """Resolve many (workload, params) points, in parallel when allowed.

    Returns ``{run_key: RunResult}`` covering every requested point.
    Cached points (memo or disk) never re-simulate; the remainder fans
    out across a process pool when ``jobs`` (default ``REPRO_JOBS``)
    exceeds 1 and more than one simulation is pending.

    With ``REPRO_LEDGER`` set, every deduplicated point's lifecycle is
    journalled to a run-ledger JSONL file (``queued`` ->
    ``cache_hit`` | ``started`` -> ``finished`` | ``failed``); the
    ledger only observes, so ledgered sweeps stay bit-identical to
    plain ones.  When a work unit raises, the remaining units still run
    (so the ledger reconciles) and the first failure re-raises after
    the sweep drains.
    """
    jobs = repro_jobs() if jobs is None else max(1, jobs)
    disk = _disk()
    ledger = open_ledger(context=ledger_context)
    if ledger is not None:
        ledger.begin(jobs=jobs, batching=batching_enabled(), batch_width=batch_width())

    resolved: dict[str, RunResult] = {}
    pending: dict[str, tuple[str, SimParams]] = {}
    n_hits = 0
    for workload, params in points:
        params = _resolve(params)
        key = run_key(workload, params)
        if key in resolved or key in pending:
            continue
        if ledger is not None:
            ledger.queued(key, _workload_name(workload), params.label())
        result = _CACHE.get(key)
        if result is not None:
            CACHE_STATS.bump("cache_memo_hit")
            resolved[key] = result
            n_hits += 1
            if ledger is not None:
                ledger.cache_hit(key, _workload_name(workload), params.label(), "memo")
            continue
        if disk is not None:
            result = disk.get(key)
            if result is not None:
                _CACHE[key] = result
                resolved[key] = result
                n_hits += 1
                if ledger is not None:
                    ledger.cache_hit(key, _workload_name(workload), params.label(), "disk")
                continue
        pending[key] = (workload, params)

    log.debug(
        "run_points: %d point(s) resolved from cache, %d pending",
        len(resolved),
        len(pending),
    )
    if not pending:
        if ledger is not None:
            ledger.end(queued=n_hits, cache_hits=n_hits, finished=0, failed=0)
        return resolved

    CACHE_STATS.bump("sim_runs", len(pending))
    batches, singles = _plan_batches(pending)
    if batches:
        log.debug(
            "grouped %d point(s) into %d lockstep batch(es), %d scalar",
            sum(len(b) for b in batches),
            len(batches),
            len(singles),
        )
    units: list[tuple[str, list[str]]] = [
        (f"u{i}", group)
        for i, group in enumerate(batches + [[key] for key in singles])
    ]
    n_finished = 0
    n_failed = 0
    failure: BaseException | None = None

    def _record_unit(unit_id: str, group: list[str], results, meta) -> None:
        nonlocal n_finished
        if ledger is not None:
            for key in group:
                ledger.started(
                    key,
                    _workload_name(pending[key][0]),
                    unit_id,
                    meta["pid"],
                    meta["started_ts"],
                )
        rate = (
            meta["instructions"] / meta["wall_seconds"]
            if meta["wall_seconds"] > 0
            else 0.0
        )
        for key, result in zip(group, results):
            workload, params = pending[key]
            resolved[key] = result
            _CACHE[key] = result
            if disk is not None:
                disk.put(key, result, meta=_manifest_meta(meta, unit_size=len(group)))
            n_finished += 1
            if ledger is not None:
                ledger.finished(
                    key,
                    _workload_name(workload),
                    params.label(),
                    unit_id,
                    len(group),
                    meta["pid"],
                    meta["wall_seconds"],
                    params.warmup_instructions + params.sim_instructions,
                    rate,
                    result.ipc,
                )

    def _record_failure(unit_id: str, group: list[str], exc: BaseException) -> None:
        nonlocal n_failed, failure
        n_failed += len(group)
        if failure is None:
            failure = exc
        log.error("work unit %s failed: %s", unit_id, exc)
        if ledger is not None:
            for key in group:
                workload, params = pending[key]
                ledger.failed(
                    key, _workload_name(workload), params.label(), unit_id, str(exc)
                )

    if jobs > 1 and len(units) > 1:
        log.debug("fanning %d work unit(s) across %d worker(s)", len(units), jobs)
        # Pre-generate the needed traces so forked workers inherit warm
        # lru_caches instead of regenerating per process.
        for workload, params in pending.values():
            make_trace(workload, params.warmup_instructions + params.sim_instructions)
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(units)),
            initializer=_pool_worker_init,
            initargs=(current_level_name(),),
        ) as pool:
            futures = {
                pool.submit(
                    _simulate_unit,
                    pending[group[0]][0],
                    [pending[k][1] for k in group],
                ): (unit_id, group)
                for unit_id, group in units
            }
            for future in as_completed(futures):
                unit_id, group = futures[future]
                try:
                    results, meta = future.result()
                except Exception as exc:
                    _record_failure(unit_id, group, exc)
                    continue
                _record_unit(unit_id, group, results, meta)
    else:
        for unit_id, group in units:
            try:
                results, meta = _simulate_unit(
                    pending[group[0]][0], [pending[k][1] for k in group]
                )
            except Exception as exc:
                _record_failure(unit_id, group, exc)
                continue
            _record_unit(unit_id, group, results, meta)

    if ledger is not None:
        ledger.end(
            queued=n_hits + len(pending),
            cache_hits=n_hits,
            finished=n_finished,
            failed=n_failed,
        )
    if failure is not None:
        raise failure
    return resolved


def _plan_batches(
    pending: Mapping[str, tuple[str, SimParams]],
) -> tuple[list[list[str]], list[str]]:
    """Group pending run keys into lockstep batches plus scalar leftovers.

    Points batch together when they share a workload *and* a trace
    length (members of one batch must predict against the same oracle
    stream; see :func:`repro.core.batch.simulate_batch`) and their
    config is :func:`~repro.core.batch.batchable`.  Groups are chunked
    to :func:`batch_width`; singletons and non-batchable configs run on
    the scalar path unchanged.

    Typed-kernel-eligible points (:func:`repro.core.typed.typed_eligible`)
    also stay scalar: lockstep batching interleaves the interpreted
    stepping kernels, and the typed scalar path is faster than the
    batching win, so batching them would be a de-optimisation.
    """
    if not batching_enabled():
        return [], list(pending)
    singles: list[str] = []
    groups: dict[tuple[str, int], list[str]] = {}
    for key, (workload, params) in pending.items():
        if typed_eligible(params) or not batchable(params)[0]:
            singles.append(key)
            continue
        n = params.warmup_instructions + params.sim_instructions
        groups.setdefault((workload, n), []).append(key)
    width = batch_width()
    batches: list[list[str]] = []
    for keys in groups.values():
        for i in range(0, len(keys), width):
            chunk = keys[i : i + width]
            if len(chunk) == 1:
                singles.append(chunk[0])
            else:
                batches.append(chunk)
    return batches, singles


def run_matrix(
    configs: Mapping[str, SimParams],
    workloads: Iterable[str],
    jobs: int | None = None,
) -> dict[str, dict[str, RunResult]]:
    """Run every (config, workload) pair; returns results[label][workload]."""
    workloads = list(workloads)
    by_key = run_points(
        ((wl, params) for params in configs.values() for wl in workloads),
        jobs=jobs,
    )
    return {
        label: {wl: by_key[run_key(wl, _resolve(params))] for wl in workloads}
        for label, params in configs.items()
    }


def geomean_speedup(
    results: Mapping[str, Mapping[str, RunResult]],
    label: str,
    baseline_label: str,
) -> float:
    """Geometric-mean IPC speedup of ``label`` over ``baseline_label``."""
    rows = results[label]
    base = results[baseline_label]
    return geomean([rows[wl].ipc / base[wl].ipc for wl in rows])


def mean_metric(
    results: Mapping[str, Mapping[str, RunResult]],
    label: str,
    metric: str,
) -> float:
    """Arithmetic mean of a :class:`RunResult` property across workloads."""
    rows = results[label]
    return amean([getattr(r, metric) for r in rows.values()])
